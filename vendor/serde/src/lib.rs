//! Offline shim for `serde`: marker traits plus no-op derives.
//!
//! The workspace only *derives* `Serialize`/`Deserialize` (for future wire
//! formats); nothing calls a serializer, so empty marker traits satisfy every
//! in-tree use. See `vendor/README.md`.

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize` (no methods; never invoked).
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize` (no methods; never invoked).
pub trait Deserialize<'de> {}
