//! Offline shim for `rand` 0.8: the subset the workspace uses.
//!
//! Provides [`rngs::SmallRng`] (xoshiro256++ seeded via SplitMix64),
//! [`SeedableRng::seed_from_u64`], and [`Rng::gen_range`] over integer and
//! float ranges. Deterministic for a given seed, statistically solid for
//! simulation workloads; not compatible with the real crate's streams.

use std::ops::{Range, RangeInclusive};

/// Core entropy source: 64 random bits per call.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seeding interface (only `seed_from_u64` is used in-tree).
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed (SplitMix64 expansion).
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from `range`; panics on an empty range.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<T: RngCore> Rng for T {}

/// A range that knows how to sample itself uniformly.
pub trait SampleRange<T> {
    /// Draw one uniform value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                self.start.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as u128) - (lo as u128) + 1;
                lo.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        // 53 uniform mantissa bits in [0, 1).
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "gen_range: empty range");
        let unit = (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32);
        self.start + unit * (self.end - self.start)
    }
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Small fast generator: xoshiro256++ (Blackman/Vigna).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.s;
            let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
            let t = s1 << 17;
            let mut s = [s0, s1, s2, s3];
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            self.s = s;
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = r.gen_range(10u32..20);
            assert!((10..20).contains(&v));
            let w = r.gen_range(5u64..=6);
            assert!((5..=6).contains(&w));
            let f = r.gen_range(f64::MIN_POSITIVE..1.0);
            assert!((f64::MIN_POSITIVE..1.0).contains(&f));
            let i = r.gen_range(-5i64..5);
            assert!((-5..5).contains(&i));
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        let same = (0..64)
            .filter(|_| a.gen_range(0u64..u64::MAX) == b.gen_range(0u64..u64::MAX))
            .count();
        assert_eq!(same, 0);
    }
}
