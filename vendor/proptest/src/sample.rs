//! Sampling strategies over explicit value pools
//! (`proptest::sample::{select, subsequence}`).

use crate::collection::SizeRange;
use crate::strategy::Strategy;
use rand::rngs::SmallRng;
use rand::Rng;

/// The strategy returned by [`select`].
pub struct Select<T: Clone> {
    pool: Vec<T>,
}

impl<T: Clone> Strategy for Select<T> {
    type Value = T;

    fn sample(&self, rng: &mut SmallRng) -> T {
        self.pool[rng.gen_range(0..self.pool.len())].clone()
    }
}

/// Uniformly pick one element of `pool`.
pub fn select<T: Clone + 'static>(pool: Vec<T>) -> Select<T> {
    assert!(!pool.is_empty(), "select: empty pool");
    Select { pool }
}

/// The strategy returned by [`subsequence`].
pub struct Subsequence<T: Clone> {
    pool: Vec<T>,
    size: SizeRange,
}

impl<T: Clone> Strategy for Subsequence<T> {
    type Value = Vec<T>;

    fn sample(&self, rng: &mut SmallRng) -> Vec<T> {
        let len = self.size.pick(rng).min(self.pool.len());
        // Choose `len` distinct indices via partial Fisher–Yates, then emit
        // them in pool order (a subsequence preserves relative order).
        let mut indices: Vec<usize> = (0..self.pool.len()).collect();
        for i in 0..len {
            let j = rng.gen_range(i..indices.len());
            indices.swap(i, j);
        }
        let mut chosen = indices[..len].to_vec();
        chosen.sort_unstable();
        chosen.into_iter().map(|i| self.pool[i].clone()).collect()
    }
}

/// Order-preserving random subsequences of `pool`, with length in `size`.
pub fn subsequence<T: Clone + 'static>(pool: Vec<T>, size: impl Into<SizeRange>) -> Subsequence<T> {
    let size = size.into();
    assert!(
        size.max_len() <= pool.len(),
        "subsequence: length range exceeds pool size"
    );
    Subsequence { pool, size }
}
