//! Collection strategies (`proptest::collection::vec`).

use crate::strategy::Strategy;
use rand::rngs::SmallRng;
use rand::Rng;
use std::ops::{Range, RangeInclusive};

/// A closed-open length range accepted by [`vec`] and the samplers.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl SizeRange {
    /// Draw one length.
    pub fn pick(&self, rng: &mut SmallRng) -> usize {
        if self.lo + 1 >= self.hi {
            self.lo
        } else {
            rng.gen_range(self.lo..self.hi)
        }
    }

    /// Largest admissible length.
    pub fn max_len(&self) -> usize {
        self.hi.saturating_sub(1).max(self.lo)
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            lo: *r.start(),
            hi: *r.end() + 1,
        }
    }
}

/// The strategy returned by [`vec`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut SmallRng) -> Vec<S::Value> {
        let len = self.size.pick(rng);
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}

/// Vectors of `element` values with a length drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}
