//! Offline shim for `proptest`: the subset the workspace's property tests
//! use.
//!
//! Semantics: every `proptest!` test runs `ProptestConfig::cases` cases, each
//! sampling its strategies from an RNG seeded deterministically from the test
//! path and case index — so failures are reproducible run-to-run. There is
//! **no shrinking**: a failing case prints its full inputs and panics. See
//! `vendor/README.md`.

pub mod collection;
pub mod sample;
pub mod strategy;
pub mod test_runner;

/// The glob import every test file uses.
pub mod prelude {
    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Declare property tests: optional `#![proptest_config(..)]`, then test
/// functions whose arguments bind `name in strategy`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            cfg = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = $cfg:expr;
     $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
     )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::ProptestConfig = $cfg;
                let __strategies = ( $($strat,)+ );
                for __case in 0..__config.cases as u64 {
                    let mut __rng = $crate::test_runner::rng_for(
                        concat!(module_path!(), "::", stringify!($name)),
                        __case,
                    );
                    let ( $($arg,)+ ) = {
                        let ( $(ref $arg,)+ ) = __strategies;
                        ( $($crate::strategy::Strategy::sample($arg, &mut __rng),)+ )
                    };
                    let __inputs = {
                        let mut __s = ::std::string::String::new();
                        $(
                            __s.push_str(&format!(
                                concat!("    ", stringify!($arg), " = {:?}\n"),
                                &$arg
                            ));
                        )+
                        __s
                    };
                    let __outcome = ::std::panic::catch_unwind(
                        ::std::panic::AssertUnwindSafe(
                            || -> ::std::result::Result<(), ::std::string::String> {
                                $body
                                ::std::result::Result::Ok(())
                            }
                        )
                    );
                    match __outcome {
                        Ok(Ok(())) => {}
                        Ok(Err(__msg)) => panic!(
                            "property failed at case {}/{}: {}\n  inputs:\n{}",
                            __case, __config.cases, __msg, __inputs
                        ),
                        Err(__payload) => {
                            eprintln!(
                                "property panicked at case {}/{}\n  inputs:\n{}",
                                __case, __config.cases, __inputs
                            );
                            ::std::panic::resume_unwind(__payload);
                        }
                    }
                }
            }
        )*
    };
}

/// Weighted (`w => strat`) or uniform (`strat, ...`) choice between
/// strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
}

/// Assert inside a property body; failure aborts the case with its inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(format!($($fmt)+));
        }
    };
}

/// Equality assertion inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(__l == __r) {
            return ::std::result::Result::Err(format!(
                concat!(
                    "assertion failed: ",
                    stringify!($left),
                    " == ",
                    stringify!($right),
                    "\n  left: {:?}\n  right: {:?}"
                ),
                __l, __r
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(__l == __r) {
            return ::std::result::Result::Err(format!(
                "{}\n  left: {:?}\n  right: {:?}",
                format!($($fmt)+),
                __l,
                __r
            ));
        }
    }};
}

/// Inequality assertion inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if __l == __r {
            return ::std::result::Result::Err(format!(
                concat!(
                    "assertion failed: ",
                    stringify!($left),
                    " != ",
                    stringify!($right),
                    "\n  both: {:?}"
                ),
                __l
            ));
        }
    }};
}
