//! Strategies: composable value generators (sampling only, no shrinking).

use rand::rngs::SmallRng;
use rand::Rng;
use std::ops::{Range, RangeInclusive};

/// A generator of values of type `Self::Value`.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut SmallRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Erase the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;

    fn sample(&self, rng: &mut SmallRng) -> Self::Value {
        (**self).sample(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn sample(&self, rng: &mut SmallRng) -> Self::Value {
        (**self).sample(rng)
    }
}

/// Always generates a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut SmallRng) -> T {
        self.0.clone()
    }
}

/// The result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn sample(&self, rng: &mut SmallRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// Weighted choice among boxed strategies (built by `prop_oneof!`).
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total: u64,
}

impl<T> Union<T> {
    /// Build from `(weight, strategy)` arms; total weight must be positive.
    pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        let total = arms.iter().map(|(w, _)| *w as u64).sum();
        assert!(total > 0, "prop_oneof! needs positive total weight");
        Union { arms, total }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn sample(&self, rng: &mut SmallRng) -> T {
        let mut roll = rng.gen_range(0..self.total);
        for (weight, strat) in &self.arms {
            if roll < *weight as u64 {
                return strat.sample(rng);
            }
            roll -= *weight as u64;
        }
        unreachable!("roll bounded by total weight")
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut SmallRng) -> $t {
                rng.gen_range(self.clone())
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut SmallRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut SmallRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

impl Strategy for Range<f32> {
    type Value = f32;

    fn sample(&self, rng: &mut SmallRng) -> f32 {
        rng.gen_range(self.clone())
    }
}

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut SmallRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);

/// Trait behind [`any`]: types with a canonical full-range strategy.
pub trait Arbitrary: Sized {
    /// Draw an unconstrained value.
    fn arbitrary(rng: &mut SmallRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut SmallRng) -> $t {
                use rand::RngCore;
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut SmallRng) -> bool {
        use rand::RngCore;
        rng.next_u64() & 1 == 1
    }
}

/// The strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut SmallRng) -> T {
        T::arbitrary(rng)
    }
}

/// Full-range strategy for `T` (`any::<u8>()` etc.).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}
