//! Test-runner configuration and deterministic per-case RNG derivation.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::hash::{Hash, Hasher};

/// Subset of the real crate's config: case count only.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Deterministic RNG for `(test path, case index)`: stable across runs and
/// processes, so failures reproduce.
pub fn rng_for(test_path: &str, case: u64) -> SmallRng {
    // DefaultHasher is SipHash with fixed keys — deterministic everywhere.
    let mut hasher = std::collections::hash_map::DefaultHasher::new();
    test_path.hash(&mut hasher);
    case.hash(&mut hasher);
    SmallRng::seed_from_u64(hasher.finish())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, RngCore};

    #[test]
    fn rng_is_stable_per_case_and_distinct_across_cases() {
        let mut a = rng_for("mod::test", 3);
        let mut b = rng_for("mod::test", 3);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = rng_for("mod::test", 4);
        let vals_a: Vec<u64> = (0..8).map(|_| a.gen_range(0u64..1 << 60)).collect();
        let vals_c: Vec<u64> = (0..8).map(|_| c.gen_range(0u64..1 << 60)).collect();
        assert_ne!(vals_a, vals_c);
    }
}
