//! Offline shim for `crossbeam`: just the `channel` module, backed by
//! `std::sync::mpsc`. Unified `Sender` covers both bounded and unbounded
//! flavours, as the real crate's does. See `vendor/README.md`.

pub mod channel {
    use std::sync::mpsc;

    /// Error returned by [`Sender::send`] when the receiver is gone; carries
    /// the unsent value like the real crate's.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::recv`] when every sender is gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// Channel currently empty.
        Empty,
        /// Every sender is gone and the buffer is drained.
        Disconnected,
    }

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// No value arrived within the timeout.
        Timeout,
        /// Every sender is gone and the buffer is drained.
        Disconnected,
    }

    enum Tx<T> {
        Unbounded(mpsc::Sender<T>),
        Bounded(mpsc::SyncSender<T>),
    }

    /// Sending half of a channel (clonable, blocking on a full bounded
    /// channel).
    pub struct Sender<T>(Tx<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(match &self.0 {
                Tx::Unbounded(tx) => Tx::Unbounded(tx.clone()),
                Tx::Bounded(tx) => Tx::Bounded(tx.clone()),
            })
        }
    }

    impl<T> Sender<T> {
        /// Send `value`, blocking while a bounded channel is full.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            match &self.0 {
                Tx::Unbounded(tx) => tx.send(value).map_err(|e| SendError(e.0)),
                Tx::Bounded(tx) => tx.send(value).map_err(|e| SendError(e.0)),
            }
        }
    }

    /// Receiving half of a channel.
    pub struct Receiver<T>(mpsc::Receiver<T>);

    impl<T> Receiver<T> {
        /// Block until a value arrives or every sender is dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv().map_err(|_| RecvError)
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.0.try_recv().map_err(|e| match e {
                mpsc::TryRecvError::Empty => TryRecvError::Empty,
                mpsc::TryRecvError::Disconnected => TryRecvError::Disconnected,
            })
        }

        /// Block for at most `timeout` waiting for a value.
        pub fn recv_timeout(&self, timeout: std::time::Duration) -> Result<T, RecvTimeoutError> {
            self.0.recv_timeout(timeout).map_err(|e| match e {
                mpsc::RecvTimeoutError::Timeout => RecvTimeoutError::Timeout,
                mpsc::RecvTimeoutError::Disconnected => RecvTimeoutError::Disconnected,
            })
        }

        /// Blocking iterator over received values, ending at disconnect.
        pub fn iter(&self) -> impl Iterator<Item = T> + '_ {
            self.0.iter()
        }
    }

    /// A channel with unlimited buffering.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(Tx::Unbounded(tx)), Receiver(rx))
    }

    /// A channel buffering at most `cap` values (`0` = rendezvous).
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (Sender(Tx::Bounded(tx)), Receiver(rx))
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn unbounded_round_trip() {
            let (tx, rx) = unbounded();
            let tx2 = tx.clone();
            tx.send(1).unwrap();
            tx2.send(2).unwrap();
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Ok(2));
            drop((tx, tx2));
            assert_eq!(rx.recv(), Err(RecvError));
        }

        #[test]
        fn bounded_one_shot_across_threads() {
            let (tx, rx) = bounded(1);
            std::thread::spawn(move || tx.send(41).unwrap());
            assert_eq!(rx.recv(), Ok(41));
        }

        #[test]
        fn send_to_dropped_receiver_errors() {
            let (tx, rx) = unbounded();
            drop(rx);
            assert_eq!(tx.send(9), Err(SendError(9)));
        }

        #[test]
        fn recv_timeout_times_out_then_delivers() {
            let (tx, rx) = unbounded();
            assert_eq!(
                rx.recv_timeout(std::time::Duration::from_millis(1)),
                Err(RecvTimeoutError::Timeout)
            );
            tx.send(5).unwrap();
            assert_eq!(rx.recv_timeout(std::time::Duration::from_millis(50)), Ok(5));
            drop(tx);
            assert_eq!(
                rx.recv_timeout(std::time::Duration::from_millis(1)),
                Err(RecvTimeoutError::Disconnected)
            );
        }
    }
}
