//! Offline shim for `bytes`: the subset the wire codec uses.
//!
//! [`Bytes`] is a cheaply-clonable shared byte view whose [`Buf`] reads
//! consume from the front (advancing a cursor rather than reallocating);
//! [`BytesMut`] is a growable builder whose [`BufMut`] writes append, frozen
//! into a [`Bytes`] when complete. See `vendor/README.md`.

use std::sync::Arc;

/// Read cursor over a byte sequence; reads consume from the front.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// Consume and return one byte; panics when empty.
    fn get_u8(&mut self) -> u8;
    /// Consume a little-endian `u16`; panics when short.
    fn get_u16_le(&mut self) -> u16;
    /// Consume a little-endian `u32`; panics when short.
    fn get_u32_le(&mut self) -> u32;
    /// Consume a little-endian `u64`; panics when short.
    fn get_u64_le(&mut self) -> u64;
}

/// Append-only byte sink.
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);
    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }
    /// Append a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }
    /// Append a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }
    /// Append a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
}

/// Immutable shared byte buffer with a read cursor.
///
/// `pos..end` delimit the live view inside the shared allocation, so
/// [`Bytes::slice`] is zero-copy: sub-views share the same `Arc` with
/// narrowed bounds instead of reallocating. A receive path can freeze one
/// big read buffer and hand out per-frame views without copying payloads.
#[derive(Debug, Clone)]
pub struct Bytes {
    data: Arc<[u8]>,
    pos: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes {
            data: Arc::from(&[][..]),
            pos: 0,
            end: 0,
        }
    }

    /// Unread length.
    pub fn len(&self) -> usize {
        self.end - self.pos
    }

    /// True when fully consumed (or empty).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A new view of the sub-range `range` of the unread bytes.
    ///
    /// Zero-copy: the view shares this buffer's allocation.
    pub fn slice(&self, range: std::ops::Range<usize>) -> Bytes {
        assert!(range.start <= range.end, "Bytes: inverted slice range");
        assert!(range.end <= self.len(), "Bytes: slice out of bounds");
        Bytes {
            data: Arc::clone(&self.data),
            pos: self.pos + range.start,
            end: self.pos + range.end,
        }
    }

    fn take(&mut self, n: usize) -> &[u8] {
        assert!(self.len() >= n, "Bytes: read past end");
        let start = self.pos;
        self.pos += n;
        &self.data[start..self.pos]
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Self::new()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data[self.pos..self.end]
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_ref() == other.as_ref()
    }
}

impl Eq for Bytes {}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let end = v.len();
        Bytes {
            data: Arc::from(v.into_boxed_slice()),
            pos: 0,
            end,
        }
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn get_u8(&mut self) -> u8 {
        self.take(1)[0]
    }

    fn get_u16_le(&mut self) -> u16 {
        u16::from_le_bytes(self.take(2).try_into().expect("2 bytes"))
    }

    fn get_u32_le(&mut self) -> u32 {
        u32::from_le_bytes(self.take(4).try_into().expect("4 bytes"))
    }

    fn get_u64_le(&mut self) -> u64 {
        u64::from_le_bytes(self.take(8).try_into().expect("8 bytes"))
    }
}

/// Growable byte builder.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty builder.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// An empty builder with `cap` bytes pre-reserved.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Finish building: an immutable shared [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }

    /// Discard everything written so far, keeping the allocation.
    pub fn clear(&mut self) {
        self.data.clear();
    }

    /// Copy the written bytes out as an immutable [`Bytes`] and clear the
    /// builder, **retaining its capacity** for the next frame. This is the
    /// shim's stand-in for the real crate's `split().freeze()` idiom: a
    /// long-lived encoder reuses one builder allocation across frames
    /// instead of growing a fresh `BytesMut` per frame.
    pub fn take_frame(&mut self) -> Bytes {
        let end = self.data.len();
        let frame = Bytes {
            data: Arc::from(&self.data[..]),
            pos: 0,
            end,
        };
        self.data.clear();
        frame
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_all_widths() {
        let mut b = BytesMut::with_capacity(16);
        b.put_u8(7);
        b.put_u16_le(0xBEEF);
        b.put_u32_le(0xDEAD_BEEF);
        b.put_u64_le(u64::MAX - 1);
        let mut f = b.freeze();
        assert_eq!(f.len(), 15);
        assert_eq!(f.get_u8(), 7);
        assert_eq!(f.get_u16_le(), 0xBEEF);
        assert_eq!(f.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(f.get_u64_le(), u64::MAX - 1);
        assert_eq!(f.remaining(), 0);
    }

    #[test]
    fn slice_is_independent() {
        let mut b = BytesMut::new();
        b.put_slice(&[1, 2, 3, 4]);
        let f = b.freeze();
        let mut s = f.slice(1..3);
        assert_eq!(s.len(), 2);
        assert_eq!(s.get_u8(), 2);
        assert_eq!(f.len(), 4, "slicing does not consume the source");
    }

    #[test]
    fn slice_shares_allocation() {
        let mut b = BytesMut::new();
        b.put_slice(&[10, 20, 30, 40, 50]);
        let f = b.freeze();
        let s = f.slice(1..4);
        assert_eq!(s.as_ref(), &[20, 30, 40]);
        // Zero-copy: the view points into the same allocation.
        assert!(std::ptr::eq(&f.as_ref()[1], &s.as_ref()[0]));
        let mut nested = s.slice(1..2);
        assert_eq!(nested.get_u8(), 30);
        assert_eq!(nested.remaining(), 0);
    }

    #[test]
    #[should_panic(expected = "slice out of bounds")]
    fn slice_out_of_bounds_panics() {
        let f = Bytes::from(vec![1, 2, 3]);
        let _ = f.slice(1..5);
    }

    #[test]
    fn take_frame_reuses_capacity() {
        let mut b = BytesMut::with_capacity(32);
        b.put_slice(&[1, 2, 3]);
        let f1 = b.take_frame();
        assert_eq!(f1.as_ref(), &[1, 2, 3]);
        assert!(b.is_empty(), "builder is cleared");
        b.put_slice(&[9]);
        let f2 = b.take_frame();
        assert_eq!(f2.as_ref(), &[9]);
        assert_eq!(f1.as_ref(), &[1, 2, 3], "earlier frames are unaffected");
    }

    #[test]
    #[should_panic(expected = "read past end")]
    fn overread_panics() {
        let mut f = Bytes::from(vec![1]);
        let _ = f.get_u16_le();
    }
}
