//! Offline shim for `serde_derive`: emits empty marker-trait impls.
//!
//! Nothing in the workspace ever invokes a real serializer, so the derives
//! only need to make `#[derive(Serialize, Deserialize)]` (including
//! `#[serde(...)]` helper attributes) compile. No type in the tree derives
//! serde on a generic container, so generics are rejected loudly rather than
//! handled.

use proc_macro::{TokenStream, TokenTree};

/// Extract the type name following `struct` / `enum` / `union`.
fn type_name(input: TokenStream) -> String {
    let mut iter = input.into_iter();
    while let Some(tt) = iter.next() {
        if let TokenTree::Ident(id) = &tt {
            let kw = id.to_string();
            if kw == "struct" || kw == "enum" || kw == "union" {
                match iter.next() {
                    Some(TokenTree::Ident(name)) => {
                        if let Some(TokenTree::Punct(p)) = iter.next() {
                            assert!(
                                p.as_char() != '<',
                                "serde shim cannot derive for generic type {name}"
                            );
                        }
                        return name.to_string();
                    }
                    other => panic!("serde shim: expected type name, got {other:?}"),
                }
            }
        }
    }
    panic!("serde shim: no struct/enum/union in derive input");
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let name = type_name(input);
    format!("impl ::serde::Serialize for {name} {{}}")
        .parse()
        .expect("valid impl block")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let name = type_name(input);
    format!("impl<'de> ::serde::Deserialize<'de> for {name} {{}}")
        .parse()
        .expect("valid impl block")
}
