//! Offline shim for `criterion`: same macro/builder surface, simple
//! wall-clock measurement.
//!
//! Each benchmark is warmed up briefly, then timed over batches whose
//! iteration count is scaled so a batch takes ≳1 ms; the reported figure is
//! the median batch's ns/iteration, printed to stdout. No statistics files,
//! no CLI parsing — enough to compare hot paths before/after a change on the
//! same machine. See `vendor/README.md`.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How `iter_batched` amortizes setup (accepted, ignored: every shim batch
/// re-runs setup per iteration group).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration input.
    SmallInput,
    /// Large per-iteration input.
    LargeInput,
    /// Setup re-run for every single iteration.
    PerIteration,
}

/// Passed to every benchmark closure; drives the measurement loop.
pub struct Bencher {
    /// Filled by `iter*`: observed (elapsed, iterations) batches.
    samples: Vec<(Duration, u64)>,
    sample_count: usize,
}

impl Bencher {
    fn new(sample_count: usize) -> Self {
        Bencher {
            samples: Vec::new(),
            sample_count,
        }
    }

    /// Time `routine` repeatedly.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        // Warm up and size the batch so one batch is ≥ ~1 ms.
        let mut per_batch = 1u64;
        loop {
            let start = Instant::now();
            for _ in 0..per_batch {
                black_box(routine());
            }
            if start.elapsed() >= Duration::from_millis(1) || per_batch >= 1 << 20 {
                break;
            }
            per_batch *= 4;
        }
        for _ in 0..self.sample_count {
            let start = Instant::now();
            for _ in 0..per_batch {
                black_box(routine());
            }
            self.samples.push((start.elapsed(), per_batch));
        }
    }

    /// Time `routine` on fresh inputs built by `setup` (setup excluded from
    /// the measurement).
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        for _ in 0..self.sample_count.max(10) {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.samples.push((start.elapsed(), 1));
        }
    }

    fn report(&self, name: &str) {
        self.report_with(name, None);
    }

    fn report_with(&self, name: &str, throughput: Option<Throughput>) {
        if self.samples.is_empty() {
            println!("{name:<40} (no samples)");
            return;
        }
        let mut per_iter: Vec<f64> = self
            .samples
            .iter()
            .map(|(d, n)| d.as_nanos() as f64 / *n as f64)
            .collect();
        per_iter.sort_by(|a, b| a.total_cmp(b));
        let median = per_iter[per_iter.len() / 2];
        match throughput {
            None => println!("{name:<40} time: [{median:>12.1} ns/iter]"),
            Some(t) => {
                let (count, unit) = match t {
                    Throughput::Elements(n) => (n, "elem/s"),
                    Throughput::Bytes(n) => (n, "B/s"),
                };
                let rate = count as f64 / (median / 1e9);
                println!("{name:<40} time: [{median:>12.1} ns/iter]  thrpt: [{rate:>14.0} {unit}]");
            }
        }
    }
}

/// Units the shim converts a per-iteration time into when a group declares
/// its throughput, as the real crate does.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Each iteration processes this many abstract elements.
    Elements(u64),
    /// Each iteration processes this many bytes.
    Bytes(u64),
}

/// A named group of benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_count: usize,
    throughput: Option<Throughput>,
    _c: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set the per-benchmark sample count.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_count = n.max(2);
        self
    }

    /// Accepted for compatibility; the shim's batches are already bounded.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Report each benchmark's rate (elements or bytes per second) alongside
    /// its per-iteration time.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Run one benchmark in this group.
    pub fn bench_function(
        &mut self,
        id: impl Into<String>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let mut f = f;
        let mut b = Bencher::new(self.sample_count);
        f(&mut b);
        b.report_with(&format!("{}/{}", self.name, id.into()), self.throughput);
        self
    }

    /// End the group (no-op beyond symmetry with the real API).
    pub fn finish(self) {}
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Open a named group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_count: 20,
            throughput: None,
            _c: self,
        }
    }

    /// Run one ungrouped benchmark.
    pub fn bench_function(
        &mut self,
        id: impl Into<String>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let mut f = f;
        let mut b = Bencher::new(20);
        f(&mut b);
        b.report(&id.into());
        self
    }
}

/// Define a benchmark group function, as the real crate does.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            let _ = &$cfg;
            $( $target(&mut c); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Define `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_and_reports() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        g.sample_size(3);
        g.bench_function("add", |b| b.iter(|| black_box(1u64) + black_box(2u64)));
        g.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput)
        });
        g.finish();
    }
}
