//! **dlm** — a peer-to-peer, multi-mode, hierarchical distributed lock
//! manager: a full reproduction of Desai & Mueller, *A Log(n) Multi-Mode
//! Locking Protocol for Distributed Systems* (IPPS 2003).
//!
//! This façade crate re-exports the workspace members; see each for depth:
//!
//! * [`modes`] — the five CosConcurrency access modes and the protocol's
//!   rule tables (Table 1(a)–(d)),
//! * [`core`] — the sans-IO protocol state machine (Rules 2–7), its
//!   invariant auditor and a deterministic lock-step test runtime,
//! * [`naimi`] — the Naimi–Trehel baseline the paper compares against,
//! * [`sim`] — a deterministic discrete-event simulator (the stand-in for
//!   the paper's Linux-cluster and IBM-SP testbeds),
//! * [`cluster`] — a thread-per-node runtime with a binary wire codec,
//! * [`api`] — a CosConcurrency-style `LockSet` facade with RAII guards,
//! * [`workload`] — the multi-airline-reservation workload of §4,
//! * [`metrics`] — histograms and summary statistics,
//! * [`harness`] — regenerates every figure of the paper's evaluation.
//!
//! # Quickstart
//!
//! ```
//! use dlm::core::testkit::LockStepNet;
//! use dlm::core::Mode;
//!
//! // Three nodes; node 0 starts with the token.
//! let mut net = LockStepNet::star(3);
//! // Two concurrent readers: both granted (R is compatible with R).
//! net.acquire(1, Mode::Read);
//! net.acquire(2, Mode::Read);
//! net.deliver_all();
//! assert_eq!(net.node(1).held(), Mode::Read);
//! assert_eq!(net.node(2).held(), Mode::Read);
//! // A writer has to wait for both.
//! net.acquire(0, Mode::Write);
//! net.deliver_all();
//! assert_eq!(net.node(0).held(), Mode::NoLock);
//! net.release(1);
//! net.release(2);
//! net.settle();
//! assert_eq!(net.node(0).held(), Mode::Write);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use dlm_api as api;
pub use dlm_cluster as cluster;
pub use dlm_core as core;
pub use dlm_harness as harness;
pub use dlm_metrics as metrics;
pub use dlm_modes as modes;
pub use dlm_naimi as naimi;
pub use dlm_sim as sim;
pub use dlm_workload as workload;
