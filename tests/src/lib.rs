//! Workspace-level integration tests live in this package's `tests/`
//! directory; the library itself only hosts shared helpers.

#![forbid(unsafe_code)]

use dlm_core::ProtocolConfig;
use dlm_sim::{LatencyModel, MICROS_PER_MS};
use dlm_workload::{ModeMix, ProtocolKind, WorkloadParams};

/// A small, fast workload configuration for integration tests.
pub fn small_params(protocol: ProtocolKind, nodes: usize, seed: u64) -> WorkloadParams {
    WorkloadParams {
        nodes,
        entries: 4,
        cs_mean: 2 * MICROS_PER_MS,
        idle_mean: 10 * MICROS_PER_MS,
        ops_per_node: 12,
        mix: ModeMix::paper(),
        protocol,
        hier_config: ProtocolConfig::paper(),
        latency: LatencyModel::uniform(MICROS_PER_MS),
        seed,
        upgrade_u_ops: true,
        geo: None,
        hot_entry_percent: 0,
    }
}
