//! Shape checks on the reproduced figures: the qualitative claims of the
//! paper's evaluation must hold on reduced (fast) sweeps. These are the
//! executable version of EXPERIMENTS.md.

use dlm_harness::{ablations, all_figures, fig10, fig7, fig8, fig9, latency_tail, FigureOptions};

fn opts() -> FigureOptions {
    FigureOptions::quick()
}

/// The shared-run plan behind `all_figures` (figs 7+8 and 9+10 each read
/// two metrics off one set of runs) and the per-figure entry points must
/// produce bit-identical values, for any worker count — the parallel merge
/// folds seeds in the same order the sequential sweep did.
#[test]
fn shared_plan_matches_standalone_figures() {
    let shared = all_figures(&opts());
    let mut serial_opts = opts();
    serial_opts.workers = 1;
    let standalone = [
        fig7(&serial_opts),
        fig8(&serial_opts),
        fig9(&serial_opts),
        fig10(&serial_opts),
        ablations(&serial_opts),
        latency_tail(&serial_opts),
    ];
    assert_eq!(shared.len(), standalone.len());
    for (a, b) in shared.iter().zip(&standalone) {
        assert_eq!(a.name, b.name);
        assert_eq!(a.x, b.x);
        for (sa, sb) in a.series.iter().zip(&b.series) {
            assert_eq!(sa.label, sb.label, "{}", a.name);
            let a_bits: Vec<u64> = sa.values.iter().map(|v| v.to_bits()).collect();
            let b_bits: Vec<u64> = sb.values.iter().map(|v| v.to_bits()).collect();
            assert_eq!(a_bits, b_bits, "{} series {}", a.name, sa.label);
        }
    }
}

/// Figure 7's claims: the hierarchical protocol's message overhead
/// (a) approaches a low asymptote (≈3, "from which point on the message
/// overhead is in the order of 3-9 messages"), (b) undercuts Naimi-pure at
/// scale ("approximately 20% fewer messages"), and (c) Naimi-same-work grows
/// far beyond both.
#[test]
fn fig7_shapes() {
    let fig = fig7(&opts());
    let ours = fig.series("our-protocol");
    let pure = fig.series("naimi-pure");
    let same = fig.series("naimi-same-work");
    let n = fig.x.len();

    // (a) Low, flattening asymptote: last value in the paper's 3-9 band and
    // the tail growth per step is small.
    let tail = ours.values[n - 1];
    assert!((2.0..5.0).contains(&tail), "our asymptote {tail}");
    let step = ours.values[n - 1] - ours.values[n - 2];
    assert!(step < 0.5, "our curve must flatten (last step {step})");

    // (b) Ours below pure at every point from 8 nodes on.
    for (i, &x) in fig.x.iter().enumerate() {
        if x >= 8.0 {
            assert!(
                ours.values[i] < pure.values[i],
                "at {x} nodes: ours {} !< pure {}",
                ours.values[i],
                pure.values[i]
            );
        }
    }

    // (c) Same-work (per functional request) far above both at scale.
    assert!(
        same.values[n - 1] > 1.5 * pure.values[n - 1],
        "same-work {} vs pure {}",
        same.values[n - 1],
        pure.values[n - 1]
    );
}

/// Figure 8's claims: same-work latency is superlinear and dominates; the
/// hierarchical protocol tracks at or below Naimi-pure.
#[test]
fn fig8_shapes() {
    let fig = fig8(&opts());
    let ours = fig.series("our-protocol");
    let pure = fig.series("naimi-pure");
    let same = fig.series("naimi-same-work");
    let n = fig.x.len();

    assert!(
        same.values[n - 1] > 5.0 * ours.values[n - 1],
        "same-work latency explodes: {} vs ours {}",
        same.values[n - 1],
        ours.values[n - 1]
    );
    // Superlinearity proxy: the second half grows faster than the first.
    let mid = n / 2;
    let first_half = same.values[mid] - same.values[0];
    let second_half = same.values[n - 1] - same.values[mid];
    assert!(
        second_half > first_half,
        "same-work should accelerate: {first_half} then {second_half}"
    );
    // Ours at or below pure (small tolerance: the curves converge at scale).
    for i in 0..n {
        assert!(
            ours.values[i] <= pure.values[i] * 1.15,
            "at {} nodes ours {} should not exceed pure {} by >15%",
            fig.x[i],
            ours.values[i],
            pure.values[i]
        );
    }
}

/// Figure 9's claims: message overhead stays in the 3-9 band at scale and
/// is ordered by ratio (higher non-critical:critical ratio ⇒ lower
/// concurrency ⇒ longer propagation paths ⇒ more messages).
#[test]
fn fig9_shapes() {
    let fig = fig9(&opts());
    let n = fig.x.len();
    let r1 = fig.series("ratio=1").values[n - 1];
    let r25 = fig.series("ratio=25").values[n - 1];
    assert!(
        r1 < r25,
        "ratio 1 ({r1}) must cost fewer msgs than ratio 25 ({r25})"
    );
    for label in ["ratio=1", "ratio=5", "ratio=10", "ratio=25"] {
        let tail = fig.series(label).values[n - 1];
        assert!(
            (2.0..10.0).contains(&tail),
            "{label} tail {tail} out of the paper's 3-9 band"
        );
    }
}

/// Figure 10's claims: latency grows with node count for every ratio;
/// lower ratios (higher concurrency) are strictly slower; the high-ratio
/// configuration stays in low single-digit milliseconds at moderate sizes
/// ("response times under 2 msec for up to 25 nodes" at ratio 25).
#[test]
fn fig10_shapes() {
    let fig = fig10(&opts());
    let n = fig.x.len();
    for label in ["ratio=1", "ratio=25"] {
        let s = fig.series(label);
        assert!(
            s.values[n - 1] > s.values[1],
            "{label} latency must grow with nodes"
        );
    }
    let r1 = fig.series("ratio=1").values[n - 1];
    let r25 = fig.series("ratio=25").values[n - 1];
    assert!(r1 > r25, "high concurrency (ratio 1) must be slower");
    // Ratio 25 at ≤32 nodes: low single-digit ms.
    for (i, &x) in fig.x.iter().enumerate() {
        if x <= 32.0 {
            assert!(
                fig.series("ratio=25").values[i] < 5.0,
                "ratio-25 latency at {x} nodes should be low, got {}",
                fig.series("ratio=25").values[i]
            );
        }
    }
}

/// The ablation study must show each §4.1 design claim pulling in the
/// documented direction.
#[test]
fn ablation_shapes() {
    let fig = ablations(&opts());
    let paper_msgs = fig.series("paper").values[0];
    let eager_msgs = fig.series("eager-release").values[0];
    assert!(
        eager_msgs > paper_msgs,
        "release suppression saves messages: {paper_msgs} vs eager {eager_msgs}"
    );
    let no_queue_msgs = fig.series("no-local-queueing").values[0];
    assert!(
        no_queue_msgs >= paper_msgs,
        "local queueing saves messages: {paper_msgs} vs {no_queue_msgs}"
    );
}
