//! Cross-crate integration: the same protocol state machines under the
//! deterministic simulator and the threaded cluster, audited end to end.

use dlm_cluster::{Cluster, ClusterConfig};
use dlm_core::{LockId, Mode, ProtocolConfig};
use dlm_tests::small_params;
use dlm_workload::{audit_hier_run, run_workload, ProtocolKind};
use std::time::Duration;

/// Every protocol completes the same workload and quiesces.
#[test]
fn all_protocols_complete_the_workload() {
    for protocol in [
        ProtocolKind::Hier,
        ProtocolKind::NaimiPure,
        ProtocolKind::NaimiSameWork,
    ] {
        for seed in [1u64, 2, 3] {
            let report = run_workload(&small_params(protocol, 8, seed));
            assert!(report.complete(), "{protocol:?} seed {seed}: {report:?}");
            assert!(report.quiesced);
        }
    }
}

/// Simulated hierarchical runs stay audit-clean across seeds, sizes and
/// ablations (safety under the full workload, not just unit scenarios).
#[test]
fn hier_runs_audit_clean_across_configs() {
    for nodes in [2usize, 5, 9, 17] {
        for seed in [11u64, 12] {
            let (report, errors) = audit_hier_run(&small_params(ProtocolKind::Hier, nodes, seed));
            assert!(errors.is_empty(), "n={nodes} seed={seed}: {errors:?}");
            assert!(report.complete());
        }
    }
    for ablation in dlm_core::ALL_ABLATIONS {
        let mut params = small_params(ProtocolKind::Hier, 8, 99);
        params.hier_config = ProtocolConfig::paper().without(ablation);
        let (report, errors) = audit_hier_run(&params);
        assert!(errors.is_empty(), "{ablation:?}: {errors:?}");
        assert!(report.complete(), "{ablation:?} must stay live");
    }
    // The literal Rule 3.2 policy is equally safe.
    let mut params = small_params(ProtocolKind::Hier, 8, 7);
    params.hier_config = ProtocolConfig::paper().literal_rule_3_2();
    let (report, errors) = audit_hier_run(&params);
    assert!(errors.is_empty(), "{errors:?}");
    assert!(report.complete());
}

/// Identical parameters give identical reports (full-stack determinism:
/// engine ordering, RNG streams, protocol, metrics folding).
#[test]
fn simulation_is_deterministic_end_to_end() {
    for protocol in [ProtocolKind::Hier, ProtocolKind::NaimiSameWork] {
        let a = run_workload(&small_params(protocol, 9, 4242));
        let b = run_workload(&small_params(protocol, 9, 4242));
        assert_eq!(a.messages, b.messages);
        assert_eq!(a.requests, b.requests);
        assert_eq!(a.end_time, b.end_time);
        assert_eq!(a.request_latency.mean(), b.request_latency.mean());
        assert_eq!(a.op_latency.quantile(0.99), b.op_latency.quantile(0.99));
    }
}

/// The threaded cluster and the simulator agree on protocol outcomes for a
/// scripted scenario: readers share, writers exclude, upgrades are atomic,
/// and the final audit is clean on both substrates.
#[test]
fn cluster_and_sim_agree_on_a_scripted_scenario() {
    // Simulator side: use the lock-step runtime for exact control.
    let mut net = dlm_core::testkit::LockStepNet::star(3);
    net.acquire(1, Mode::Upgrade);
    net.deliver_all();
    net.acquire(2, Mode::IntentRead);
    net.deliver_all();
    assert_eq!(net.node(1).held(), Mode::Upgrade);
    assert_eq!(net.node(2).held(), Mode::IntentRead);
    net.upgrade(1);
    net.deliver_all();
    assert_eq!(net.node(1).held(), Mode::Upgrade, "waits for the IR holder");
    net.release(2);
    net.settle();
    assert_eq!(net.node(1).held(), Mode::Write);
    net.release(1);
    net.settle();

    // Cluster side: same script through threads and the wire codec.
    let cluster = Cluster::new(ClusterConfig {
        nodes: 3,
        locks: 1,
        ..Default::default()
    });
    let h1 = cluster.handle(1);
    let h2 = cluster.handle(2);
    h1.acquire(LockId::TABLE, Mode::Upgrade).unwrap();
    h2.acquire(LockId::TABLE, Mode::IntentRead).unwrap();
    let h1b = h1.clone();
    let upgrader = std::thread::spawn(move || h1b.upgrade(LockId::TABLE));
    std::thread::sleep(Duration::from_millis(20));
    assert!(!upgrader.is_finished(), "upgrade waits for the IR holder");
    h2.release(LockId::TABLE).unwrap();
    upgrader.join().unwrap().unwrap();
    h1.release(LockId::TABLE).unwrap();
    cluster.quiesce(Duration::from_millis(10));
    let report = cluster.shutdown();
    assert!(report.audit_errors.is_empty(), "{:?}", report.audit_errors);
}

/// Message-count sanity across substrates: a two-node exclusive handoff
/// costs the same number of protocol messages on the lock-step runtime and
/// on the threaded cluster (same state machines, same rules).
#[test]
fn substrates_agree_on_message_counts() {
    // Lock-step.
    let mut net = dlm_core::testkit::LockStepNet::star(2);
    net.acquire(1, Mode::Write);
    net.deliver_all();
    net.release(1);
    net.deliver_all();
    let lockstep_msgs = net.messages_sent;

    // Threads.
    let cluster = Cluster::new(ClusterConfig {
        nodes: 2,
        locks: 1,
        ..Default::default()
    });
    let h = cluster.handle(1);
    h.acquire(LockId::TABLE, Mode::Write).unwrap();
    h.release(LockId::TABLE).unwrap();
    let cluster_msgs = cluster.quiesce(Duration::from_millis(10));
    let report = cluster.shutdown();
    assert!(report.audit_errors.is_empty());
    assert_eq!(
        lockstep_msgs, cluster_msgs,
        "identical scenario, identical protocol traffic"
    );
}
