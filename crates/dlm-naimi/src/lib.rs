//! The Naimi–Trehel–Arnold token-based distributed mutual-exclusion
//! algorithm (*A log(N) distributed mutual exclusion algorithm based on path
//! reversal*, JPDC 1996) — the baseline the paper compares against in §2/§4.
//!
//! Two dynamically maintained structures:
//!
//! * a **probable-owner tree**: each node points toward the node it believes
//!   last asked for the token; requests climb these links and every hop
//!   *reverses the path* (points itself at the new requester), which keeps
//!   the tree shallow and yields the O(log n) average message bound;
//! * a **distributed FIFO queue** of waiting requesters threaded through
//!   `next` pointers, starting at the current token holder.
//!
//! Unlike the hierarchical protocol in `dlm-core`, every lock acquisition is
//! exclusive — there are no modes, no concurrent grants, no hierarchy. The
//! sans-IO surface mirrors [`dlm_core::HierNode`] so the same runtimes can
//! drive both protocols.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use dlm_core::{EffectBuf, NodeId};
use serde::{Deserialize, Serialize};

/// A Naimi–Trehel protocol message.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum NaimiMessage {
    /// A request travelling along probable-owner links; `requester` is the
    /// originator (hops reverse their owner pointer to it).
    Request {
        /// The node asking for the token.
        requester: NodeId,
    },
    /// The token itself, granting entry to the critical section.
    Token,
}

/// Effects for the runtime, mirroring [`dlm_core::Effect`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NaimiEffect {
    /// Transmit `message` to `to`.
    Send {
        /// Destination node.
        to: NodeId,
        /// Payload.
        message: NaimiMessage,
    },
    /// The local application may enter its critical section.
    Granted,
}

/// API misuse errors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NaimiError {
    /// Acquire while holding or waiting.
    Busy,
    /// Release without holding.
    NotHeld,
}

impl std::fmt::Display for NaimiError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NaimiError::Busy => write!(f, "a request is already held or pending"),
            NaimiError::NotHeld => write!(f, "release without holding the token"),
        }
    }
}

impl std::error::Error for NaimiError {}

/// One node's Naimi–Trehel state for one lock object.
#[derive(Debug, Clone)]
pub struct NaimiNode {
    id: NodeId,
    /// Probable owner. `None` means "I am the (virtual) root": either I hold
    /// the token or I was the last requester and the token is on its way.
    owner: Option<NodeId>,
    /// The next requester to hand the token to after my critical section.
    next: Option<NodeId>,
    /// Token possession.
    has_token: bool,
    /// True between a request and the end of the critical section.
    requesting: bool,
    /// True while inside the critical section.
    in_cs: bool,
}

impl NaimiNode {
    /// A node whose probable owner is `owner` (the initial tree, typically a
    /// star around the initial token holder).
    pub fn new(id: NodeId, owner: NodeId) -> Self {
        NaimiNode {
            id,
            owner: Some(owner),
            next: None,
            has_token: false,
            requesting: false,
            in_cs: false,
        }
    }

    /// The initial token holder (root: no probable owner).
    pub fn with_token(id: NodeId) -> Self {
        NaimiNode {
            id,
            owner: None,
            next: None,
            has_token: true,
            requesting: false,
            in_cs: false,
        }
    }

    /// This node's identity.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// True while inside the critical section.
    pub fn in_cs(&self) -> bool {
        self.in_cs
    }

    /// True if a request is outstanding (not yet granted).
    pub fn waiting(&self) -> bool {
        self.requesting && !self.in_cs
    }

    /// Token possession (for audits).
    pub fn has_token(&self) -> bool {
        self.has_token
    }

    /// Probable-owner link (for audits / path-length studies).
    pub fn owner(&self) -> Option<NodeId> {
        self.owner
    }

    /// The queued successor, if any.
    pub fn next(&self) -> Option<NodeId> {
        self.next
    }

    /// Request the critical section.
    ///
    /// If this node is the idle root with the token, entry is immediate and
    /// message-free; otherwise one `Request` goes to the probable owner and
    /// this node becomes the new virtual root (`owner = None`).
    pub fn on_acquire(&mut self) -> Result<Vec<NaimiEffect>, NaimiError> {
        let mut effects = EffectBuf::new();
        self.on_acquire_into(&mut effects)?;
        Ok(effects.take_vec())
    }

    /// The allocation-free form of [`Self::on_acquire`]: effects go into the
    /// caller-owned reusable sink (mirrors `HierNode::on_acquire_into`, so
    /// the same runtimes can drive both protocols with one scratch buffer
    /// discipline).
    pub fn on_acquire_into(
        &mut self,
        effects: &mut EffectBuf<NaimiEffect>,
    ) -> Result<(), NaimiError> {
        if self.requesting || self.in_cs {
            return Err(NaimiError::Busy);
        }
        self.requesting = true;
        if self.has_token {
            debug_assert!(self.owner.is_none(), "token holder is the root");
            self.in_cs = true;
            effects.push(NaimiEffect::Granted);
            return Ok(());
        }
        let owner = self
            .owner
            .expect("a tokenless idle node always has a probable owner");
        self.owner = None;
        effects.push(NaimiEffect::Send {
            to: owner,
            message: NaimiMessage::Request { requester: self.id },
        });
        Ok(())
    }

    /// Leave the critical section; pass the token to the queued successor if
    /// one exists, keep it otherwise.
    pub fn on_release(&mut self) -> Result<Vec<NaimiEffect>, NaimiError> {
        let mut effects = EffectBuf::new();
        self.on_release_into(&mut effects)?;
        Ok(effects.take_vec())
    }

    /// The allocation-free form of [`Self::on_release`].
    pub fn on_release_into(
        &mut self,
        effects: &mut EffectBuf<NaimiEffect>,
    ) -> Result<(), NaimiError> {
        if !self.in_cs {
            return Err(NaimiError::NotHeld);
        }
        self.in_cs = false;
        self.requesting = false;
        if let Some(next) = self.next.take() {
            self.has_token = false;
            // The successor is about to be the token holder; our probable
            // owner already points at the latest requester via path reversal.
            effects.push(NaimiEffect::Send {
                to: next,
                message: NaimiMessage::Token,
            });
        }
        Ok(())
    }

    /// Handle a received message.
    pub fn on_message(&mut self, from: NodeId, message: NaimiMessage) -> Vec<NaimiEffect> {
        let mut effects = EffectBuf::new();
        self.on_message_into(from, message, &mut effects);
        effects.take_vec()
    }

    /// The allocation-free form of [`Self::on_message`].
    pub fn on_message_into(
        &mut self,
        _from: NodeId,
        message: NaimiMessage,
        effects: &mut EffectBuf<NaimiEffect>,
    ) {
        match message {
            NaimiMessage::Request { requester } => self.handle_request(requester, effects),
            NaimiMessage::Token => self.handle_token(effects),
        }
    }

    fn handle_request(&mut self, requester: NodeId, effects: &mut EffectBuf<NaimiEffect>) {
        debug_assert_ne!(requester, self.id, "requests never loop back");
        match self.owner {
            None => {
                // We are the root: the requester is either queued behind us
                // (if we hold or await the token) or served right away (idle
                // token in hand).
                if self.requesting {
                    debug_assert!(self.next.is_none(), "root holds at most one next");
                    self.next = Some(requester);
                } else if self.has_token {
                    self.has_token = false;
                    effects.push(NaimiEffect::Send {
                        to: requester,
                        message: NaimiMessage::Token,
                    });
                } else {
                    // Root without token and without request: the token was
                    // just passed on; enqueue behind the departing token by
                    // pointing next at the requester is wrong — instead this
                    // state cannot receive requests because every passer
                    // immediately reversed owner to the new holder's chain.
                    // Keep the algorithm total anyway: forward to next hop is
                    // impossible (none), so queue locally as next.
                    debug_assert!(false, "request at tokenless idle root");
                    self.next = Some(requester);
                }
            }
            Some(owner) => {
                effects.push(NaimiEffect::Send {
                    to: owner,
                    message: NaimiMessage::Request { requester },
                });
            }
        }
        // Path reversal: whoever asked will soon be the most recent owner.
        self.owner = Some(requester);
    }

    fn handle_token(&mut self, effects: &mut EffectBuf<NaimiEffect>) {
        debug_assert!(self.requesting, "token arrives only on request");
        self.has_token = true;
        self.in_cs = true;
        effects.push(NaimiEffect::Granted);
    }
}

pub mod testkit;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn token_holder_enters_for_free() {
        let mut n = NaimiNode::with_token(NodeId(0));
        let eff = n.on_acquire().unwrap();
        assert_eq!(eff, vec![NaimiEffect::Granted]);
        assert!(n.in_cs());
        assert!(n.on_release().unwrap().is_empty(), "keeps idle token");
        assert!(n.has_token());
    }

    #[test]
    fn acquire_sends_request_and_becomes_root() {
        let mut n = NaimiNode::new(NodeId(1), NodeId(0));
        let eff = n.on_acquire().unwrap();
        assert_eq!(
            eff,
            vec![NaimiEffect::Send {
                to: NodeId(0),
                message: NaimiMessage::Request {
                    requester: NodeId(1)
                },
            }]
        );
        assert_eq!(n.owner(), None, "requester becomes the virtual root");
        assert!(n.waiting());
    }

    #[test]
    fn double_acquire_and_bad_release_error() {
        let mut n = NaimiNode::with_token(NodeId(0));
        n.on_acquire().unwrap();
        assert_eq!(n.on_acquire(), Err(NaimiError::Busy));
        let mut m = NaimiNode::new(NodeId(1), NodeId(0));
        assert_eq!(m.on_release(), Err(NaimiError::NotHeld));
    }

    #[test]
    fn idle_root_passes_token_and_reverses_path() {
        let mut root = NaimiNode::with_token(NodeId(0));
        let eff = root.on_message(
            NodeId(1),
            NaimiMessage::Request {
                requester: NodeId(1),
            },
        );
        assert_eq!(
            eff,
            vec![NaimiEffect::Send {
                to: NodeId(1),
                message: NaimiMessage::Token,
            }]
        );
        assert!(!root.has_token());
        assert_eq!(root.owner(), Some(NodeId(1)), "path reversed to requester");
    }

    #[test]
    fn busy_root_queues_successor() {
        let mut root = NaimiNode::with_token(NodeId(0));
        root.on_acquire().unwrap(); // in CS
        let eff = root.on_message(
            NodeId(2),
            NaimiMessage::Request {
                requester: NodeId(2),
            },
        );
        assert!(eff.is_empty());
        assert_eq!(root.next(), Some(NodeId(2)));
        // Release hands the token over.
        let eff = root.on_release().unwrap();
        assert_eq!(
            eff,
            vec![NaimiEffect::Send {
                to: NodeId(2),
                message: NaimiMessage::Token,
            }]
        );
    }

    #[test]
    fn intermediate_node_forwards_and_reverses() {
        let mut mid = NaimiNode::new(NodeId(1), NodeId(0));
        let eff = mid.on_message(
            NodeId(2),
            NaimiMessage::Request {
                requester: NodeId(2),
            },
        );
        assert_eq!(
            eff,
            vec![NaimiEffect::Send {
                to: NodeId(0),
                message: NaimiMessage::Request {
                    requester: NodeId(2)
                },
            }]
        );
        assert_eq!(mid.owner(), Some(NodeId(2)));
    }
}
