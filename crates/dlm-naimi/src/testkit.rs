//! Deterministic lock-step harness for the Naimi–Trehel baseline, mirroring
//! [`dlm_core::testkit`].

use crate::{NaimiEffect, NaimiError, NaimiMessage, NaimiNode};
use dlm_core::NodeId;
use std::collections::VecDeque;

/// An in-flight Naimi message.
#[derive(Debug, Clone)]
pub struct NaimiFlight {
    /// Transport-level sender.
    pub from: NodeId,
    /// Receiver.
    pub to: NodeId,
    /// Payload.
    pub message: NaimiMessage,
}

/// A deterministic in-memory Naimi–Trehel network with FIFO delivery.
#[derive(Debug, Clone)]
pub struct NaimiNet {
    nodes: Vec<NaimiNode>,
    inbox: VecDeque<NaimiFlight>,
    /// Grants observed, in order.
    pub granted: Vec<NodeId>,
    /// Total messages sent.
    pub messages_sent: u64,
}

impl NaimiNet {
    /// Star topology: node 0 holds the token.
    pub fn star(n: usize) -> Self {
        assert!(n >= 1);
        let nodes = (0..n)
            .map(|i| {
                if i == 0 {
                    NaimiNode::with_token(NodeId(0))
                } else {
                    NaimiNode::new(NodeId(i as u32), NodeId(0))
                }
            })
            .collect();
        NaimiNet {
            nodes,
            inbox: VecDeque::new(),
            granted: Vec::new(),
            messages_sent: 0,
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if empty (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Immutable node view.
    pub fn node(&self, id: u32) -> &NaimiNode {
        &self.nodes[id as usize]
    }

    /// Request the critical section.
    pub fn acquire(&mut self, id: u32) -> Result<(), NaimiError> {
        let eff = self.nodes[id as usize].on_acquire()?;
        self.absorb(NodeId(id), eff);
        Ok(())
    }

    /// Leave the critical section.
    pub fn release(&mut self, id: u32) -> Result<(), NaimiError> {
        let eff = self.nodes[id as usize].on_release()?;
        self.absorb(NodeId(id), eff);
        Ok(())
    }

    /// Deliver the oldest message; `false` when idle.
    pub fn deliver_one(&mut self) -> bool {
        let Some(flight) = self.inbox.pop_front() else {
            return false;
        };
        let eff = self.nodes[flight.to.index()].on_message(flight.from, flight.message);
        self.absorb(flight.to, eff);
        self.assert_safe();
        true
    }

    /// Deliver until quiet.
    pub fn deliver_all(&mut self) {
        let mut steps = 0;
        while self.deliver_one() {
            steps += 1;
            assert!(steps < 1_000_000, "message storm");
        }
    }

    /// Safety: at most one node in the critical section; exactly one token
    /// (resident or flying).
    pub fn assert_safe(&self) {
        let in_cs = self.nodes.iter().filter(|n| n.in_cs()).count();
        assert!(in_cs <= 1, "mutual exclusion violated: {in_cs} in CS");
        let tokens = self.nodes.iter().filter(|n| n.has_token()).count()
            + self
                .inbox
                .iter()
                .filter(|f| matches!(f.message, NaimiMessage::Token))
                .count();
        assert_eq!(tokens, 1, "token count {tokens}");
    }

    fn absorb(&mut self, from: NodeId, effects: Vec<NaimiEffect>) {
        for e in effects {
            match e {
                NaimiEffect::Send { to, message } => {
                    self.messages_sent += 1;
                    self.inbox.push_back(NaimiFlight { from, to, message });
                }
                NaimiEffect::Granted => self.granted.push(from),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn three_nodes_round_robin() {
        let mut net = NaimiNet::star(3);
        net.acquire(1).unwrap();
        net.acquire(2).unwrap();
        net.deliver_all();
        // Exactly one of them is in the CS.
        let holders: Vec<u32> = (0..3).filter(|&i| net.node(i).in_cs()).collect();
        assert_eq!(holders.len(), 1);
        net.release(holders[0]).unwrap();
        net.deliver_all();
        let holders2: Vec<u32> = (0..3).filter(|&i| net.node(i).in_cs()).collect();
        assert_eq!(holders2.len(), 1);
        assert_ne!(holders2[0], holders[0], "FIFO successor got the token");
        net.release(holders2[0]).unwrap();
        net.deliver_all();
        assert_eq!(net.granted.len(), 2);
    }

    #[test]
    fn fifo_order_respected() {
        let mut net = NaimiNet::star(4);
        // Sequential requests with full propagation between them must be
        // served in issue order.
        net.acquire(1).unwrap();
        net.deliver_all();
        net.acquire(2).unwrap();
        net.deliver_all();
        net.acquire(3).unwrap();
        net.deliver_all();
        // 1 is in CS; 2 and 3 are chained via next pointers.
        assert!(net.node(1).in_cs());
        net.release(1).unwrap();
        net.deliver_all();
        assert!(net.node(2).in_cs());
        net.release(2).unwrap();
        net.deliver_all();
        assert!(net.node(3).in_cs());
        net.release(3).unwrap();
        net.deliver_all();
        assert_eq!(
            net.granted,
            vec![NodeId(1), NodeId(2), NodeId(3)],
            "distributed next-queue is FIFO"
        );
    }

    #[test]
    fn path_reversal_shortens_chains() {
        // Chain star: after node 3 is served once, later requests from node 3
        // reach the holder in fewer hops than the initial topology implies.
        let mut net = NaimiNet::star(8);
        for i in 1..8 {
            net.acquire(i).unwrap();
            net.deliver_all();
            // Serve in order so each completes.
            for j in 0..8 {
                if net.node(j).in_cs() {
                    net.release(j).unwrap();
                }
            }
            net.deliver_all();
        }
        // Everyone got in exactly once.
        assert_eq!(net.granted.len(), 7);
    }
}
