//! Property tests for the Naimi–Trehel baseline: mutual exclusion and
//! liveness under random schedules, and FIFO service order under sequential
//! propagation.

use dlm_naimi::testkit::NaimiNet;
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Step {
    Deliver,
    Acquire(u8),
    Release(u8),
}

fn step_strategy() -> impl Strategy<Value = Step> {
    prop_oneof![
        3 => Just(Step::Deliver),
        3 => any::<u8>().prop_map(Step::Acquire),
        2 => any::<u8>().prop_map(Step::Release),
    ]
}

proptest! {
    /// Random schedules keep the single-token / single-CS invariants (the
    /// testkit asserts them on every delivery) and drain to everyone served.
    #[test]
    fn random_schedules_stay_safe_and_live(
        n in 2usize..8,
        steps in proptest::collection::vec(step_strategy(), 1..100),
    ) {
        let mut net = NaimiNet::star(n);
        for step in steps {
            match step {
                Step::Deliver => {
                    let _ = net.deliver_one();
                }
                Step::Acquire(who) => {
                    let id = (who as usize % n) as u32;
                    if !net.node(id).in_cs() && !net.node(id).waiting() {
                        net.acquire(id).unwrap();
                    }
                }
                Step::Release(who) => {
                    let id = (who as usize % n) as u32;
                    if net.node(id).in_cs() {
                        net.release(id).unwrap();
                    }
                }
            }
        }
        // Drain: release holders until nobody waits.
        for _ in 0..10_000 {
            net.deliver_all();
            let holder = (0..n as u32).find(|&i| net.node(i).in_cs());
            let waiting = (0..n as u32).any(|i| net.node(i).waiting());
            match holder {
                Some(h) => net.release(h).unwrap(),
                None if !waiting => break,
                None => {}
            }
        }
        net.deliver_all();
        for i in 0..n as u32 {
            prop_assert!(!net.node(i).waiting(), "node {i} starved");
        }
    }

    /// With full propagation between requests, service order is exactly
    /// request order (the distributed next-queue is FIFO).
    #[test]
    fn sequential_requests_serve_fifo(order in proptest::sample::subsequence(vec![1u32,2,3,4,5,6], 2..6)) {
        let mut net = NaimiNet::star(7);
        for &id in &order {
            net.acquire(id).unwrap();
            net.deliver_all();
        }
        let mut served = Vec::new();
        for _ in 0..order.len() {
            let holder = (0..7u32).find(|&i| net.node(i).in_cs()).expect("a holder");
            served.push(holder);
            net.release(holder).unwrap();
            net.deliver_all();
        }
        prop_assert_eq!(served, order);
    }
}
