//! Reliable-delivery shim: per-peer sequence numbers, cumulative acks,
//! timeout-driven retransmission, and receive-side dedup/reorder buffering.
//!
//! The protocol state machine assumes FIFO reliable channels (the paper runs
//! over TCP). The [`crate::transport::Faulty`] link breaks that assumption
//! on purpose; this module *recovers* it, the way a real deployment's
//! transport layer would:
//!
//! * every data frame carries a per-`(sender, receiver)` sequence number and
//!   a piggybacked cumulative ack of the reverse direction,
//! * unacked frames are retransmitted on a capped exponential backoff until
//!   the cumulative ack passes them,
//! * the receiver delivers strictly in sequence order: duplicates are
//!   suppressed, gaps are buffered until the missing frame (re)arrives, and
//!   every data arrival schedules a bare cumulative ack if no reverse data
//!   frame is about to carry one.
//!
//! Wire format (little-endian), wrapped around the [`crate::codec`] frame:
//!
//! ```text
//! data:  u8 = 1 | u64 seq | u64 cumulative-ack | payload …
//! ack:   u8 = 2 | u64 cumulative-ack
//! ```
//!
//! A cumulative ack of `a` means "every seq `< a` arrived"; acks are never
//! retransmitted on their own (a lost ack is repaired by the next ack, or by
//! the retransmission it fails to prevent — a duplicate, which the receiver
//! suppresses).

use bytes::{Buf, BufMut, Bytes, BytesMut};
use dlm_core::NodeId;
use dlm_trace::ProtocolEvent;
use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Reliability parameters for a cluster whose transport may lose frames.
#[derive(Debug, Clone, Copy)]
pub struct ReliableConfig {
    /// Initial retransmission timeout — the floor of the backoff schedule.
    /// Should comfortably exceed the transport's round-trip (twice the base
    /// delay plus scheduling noise). The default is tuned for the in-process
    /// transports ([`Self::in_process`]); a link with real wire latency
    /// wants [`Self::wan`] or an explicit [`Self::with_rto`].
    pub rto: Duration,
    /// Upper bound of the exponential backoff.
    pub rto_cap: Duration,
}

impl Default for ReliableConfig {
    /// The automatic config: the runtime picks the floor per transport
    /// class at construction (see [`ReliableConfig::resolved_for`]), so
    /// channel clusters get the in-process floor and socket clusters the
    /// WAN floor without the caller tuning anything.
    fn default() -> Self {
        Self::auto()
    }
}

/// The broad latency class of a transport, used to pick a retransmission
/// floor automatically (see [`ReliableConfig::auto`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransportClass {
    /// Channel handoffs inside one process: µs round trips.
    InProcess,
    /// Real sockets (TCP/UDP), even on loopback: syscalls, wakeup latency
    /// and possibly a wire on the path.
    Socket,
}

impl ReliableConfig {
    /// Tuning for in-process transports (channel handoffs, µs round
    /// trips): a 400 µs floor. The floor — not the loss rate — sets the
    /// latency of a dropped frame's repair, so on a lossy in-process link
    /// this is the difference between ~26 µs clean round trips degrading
    /// to ~1 ms (the old 2 ms floor) versus a few hundred µs. Premature
    /// retransmissions cost only a duplicate, which the receive side
    /// suppresses.
    pub fn in_process() -> Self {
        ReliableConfig {
            rto: Duration::from_micros(400),
            rto_cap: Duration::from_millis(64),
        }
    }

    /// Tuning for links with real wire latency (the previous default):
    /// 2 ms floor, 64 ms cap.
    pub fn wan() -> Self {
        ReliableConfig {
            rto: Duration::from_millis(2),
            rto_cap: Duration::from_millis(64),
        }
    }

    /// This config with an explicit retransmission-timeout floor.
    pub fn with_rto(mut self, rto: Duration) -> Self {
        self.rto = rto;
        self
    }

    /// Defer the RTO choice to the runtime: a zero-RTO sentinel that the
    /// cluster/node constructors resolve to [`Self::in_process`] or
    /// [`Self::wan`] depending on the transport actually in use. Workers
    /// never see an unresolved auto config — an [`Endpoint`] built from one
    /// would retransmit instantly.
    pub fn auto() -> Self {
        ReliableConfig {
            rto: Duration::ZERO,
            rto_cap: Duration::from_millis(64),
        }
    }

    /// True for the [`Self::auto`] sentinel.
    pub fn is_auto(&self) -> bool {
        self.rto == Duration::ZERO
    }

    /// Resolve the [`Self::auto`] sentinel against a transport class:
    /// in-process channels get the 400 µs floor, sockets the 2 ms WAN
    /// floor. Explicit (non-auto) configs pass through untouched.
    pub fn resolved_for(self, class: TransportClass) -> Self {
        if !self.is_auto() {
            return self;
        }
        match class {
            TransportClass::InProcess => Self::in_process(),
            TransportClass::Socket => Self::wan(),
        }
    }
}

const KIND_DATA: u8 = 1;
const KIND_ACK: u8 = 2;
const DATA_HEADER: usize = 1 + 8 + 8;

/// Why an incoming frame was rejected by the shim.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum LinkError {
    /// Header truncated or unknown kind byte.
    Malformed,
}

/// One frame awaiting a cumulative ack.
struct Unacked {
    seq: u64,
    /// Lock id of the wrapped protocol frame (trace stamping only).
    lock: u32,
    payload: Bytes,
    due: Instant,
    /// Retransmissions so far (0 = only the original send).
    attempts: u32,
}

/// Both directions of one `(self, peer)` link.
#[derive(Default)]
struct Peer {
    // Sender side: frames self → peer.
    next_seq: u64,
    unacked: VecDeque<Unacked>,
    data_sent: u64,
    retransmits: u64,
    acks_sent: u64,
    // Receiver side: frames peer → self.
    recv_next: u64,
    reorder: BTreeMap<u64, Bytes>,
    pending_ack: bool,
    dups_suppressed: u64,
    reorders_buffered: u64,
    /// The peer is known dead ([`Endpoint::forget_peer`]): frames to it
    /// are sent fire-and-forget (never registered for retransmission) and
    /// nothing from it is awaited.
    dead: bool,
}

/// Per-peer reliability counters, reported at node exit.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub(crate) struct PeerSnapshot {
    pub peer: u32,
    pub data_sent: u64,
    pub retransmits: u64,
    pub acks_sent: u64,
    pub dups_suppressed: u64,
    pub reorders_buffered: u64,
}

/// One node's reliability endpoint: the send/receive state for every peer
/// link, owned by the node thread.
pub(crate) struct Endpoint {
    me: NodeId,
    config: ReliableConfig,
    peers: Vec<Peer>,
    /// Cluster-wide gauge of data sequences sent but not yet cumulatively
    /// acked; `quiesce` refuses to declare quiescence while it is non-zero.
    unacked_gauge: Arc<AtomicU64>,
    scratch: BytesMut,
}

impl Endpoint {
    pub(crate) fn new(
        me: NodeId,
        nodes: usize,
        config: ReliableConfig,
        unacked_gauge: Arc<AtomicU64>,
    ) -> Self {
        debug_assert!(
            !config.is_auto(),
            "ReliableConfig::auto must be resolved before an Endpoint is built"
        );
        Endpoint {
            me,
            config,
            peers: (0..nodes).map(|_| Peer::default()).collect(),
            unacked_gauge,
            scratch: BytesMut::with_capacity(64),
        }
    }

    fn build_data(scratch: &mut BytesMut, seq: u64, ack: u64, payload: &Bytes) -> Bytes {
        scratch.clear();
        scratch.put_u8(KIND_DATA);
        scratch.put_u64_le(seq);
        scratch.put_u64_le(ack);
        scratch.put_slice(payload.as_ref());
        scratch.take_frame()
    }

    /// Wrap an outgoing protocol frame for `to`: assign the next sequence
    /// number, piggyback the cumulative ack, and register the frame for
    /// retransmission until acked.
    pub(crate) fn wrap_data(
        &mut self,
        to: NodeId,
        lock: u32,
        payload: Bytes,
        now: Instant,
    ) -> Bytes {
        let rto = self.config.rto;
        let peer = &mut self.peers[to.index()];
        let seq = peer.next_seq;
        peer.next_seq += 1;
        peer.data_sent += 1;
        // This frame carries the freshest ack; no bare ack needed.
        peer.pending_ack = false;
        let frame = Self::build_data(&mut self.scratch, seq, peer.recv_next, &payload);
        // A dead peer will never ack: sending is harmless (the transport
        // discards or the crashed worker drains it), but registering for
        // retransmission would hold the unacked gauge — and quiescence —
        // hostage forever.
        if !peer.dead {
            peer.unacked.push_back(Unacked {
                seq,
                lock,
                payload,
                due: now + rto,
                attempts: 0,
            });
            self.unacked_gauge.fetch_add(1, Ordering::Relaxed);
        }
        frame
    }

    /// Link-layer obituary for `dead`: drop every frame awaiting its ack
    /// (releasing their claims on the unacked gauge), discard its reorder
    /// buffer, and mark the link so future sends to it are
    /// fire-and-forget. Idempotent; the counters survive for the final
    /// link report.
    pub(crate) fn forget_peer(&mut self, dead: NodeId) {
        let Some(peer) = self.peers.get_mut(dead.index()) else {
            return;
        };
        self.unacked_gauge
            .fetch_sub(peer.unacked.len() as u64, Ordering::Relaxed);
        peer.unacked.clear();
        peer.reorder.clear();
        peer.pending_ack = false;
        peer.dead = true;
    }

    /// Process one incoming wire frame from `from`. In-order payloads (and
    /// any reorder-buffered successors they unblock) are handed to
    /// `deliver`; protocol-visible reliability actions are handed to `emit`
    /// as `(lock, event)` for trace stamping.
    pub(crate) fn on_frame(
        &mut self,
        from: NodeId,
        mut frame: Bytes,
        deliver: &mut impl FnMut(Bytes),
        emit: &mut impl FnMut(u32, ProtocolEvent),
    ) -> Result<(), LinkError> {
        if frame.remaining() < 1 {
            return Err(LinkError::Malformed);
        }
        let kind = frame.get_u8();
        let peer = &mut self.peers[from.index()];
        match kind {
            KIND_DATA => {
                if frame.remaining() < DATA_HEADER - 1 {
                    return Err(LinkError::Malformed);
                }
                let seq = frame.get_u64_le();
                let ack = frame.get_u64_le();
                Self::apply_ack(peer, ack, &self.unacked_gauge);
                let payload = frame;
                // Every data arrival owes the sender a cumulative ack (even
                // duplicates: their retransmission stops only when the ack
                // gets through).
                peer.pending_ack = true;
                if seq < peer.recv_next {
                    peer.dups_suppressed += 1;
                    emit(
                        peek_lock(&payload),
                        ProtocolEvent::DupSuppressed { from: from.0, seq },
                    );
                } else if seq == peer.recv_next {
                    peer.recv_next += 1;
                    deliver(payload);
                    while let Some(next) = peer.reorder.remove(&peer.recv_next) {
                        peer.recv_next += 1;
                        deliver(next);
                    }
                } else if peer.reorder.contains_key(&seq) {
                    peer.dups_suppressed += 1;
                    emit(
                        peek_lock(&payload),
                        ProtocolEvent::DupSuppressed { from: from.0, seq },
                    );
                } else {
                    peer.reorders_buffered += 1;
                    peer.reorder.insert(seq, payload);
                }
                Ok(())
            }
            KIND_ACK => {
                if frame.remaining() < 8 {
                    return Err(LinkError::Malformed);
                }
                let ack = frame.get_u64_le();
                Self::apply_ack(peer, ack, &self.unacked_gauge);
                Ok(())
            }
            _ => Err(LinkError::Malformed),
        }
    }

    fn apply_ack(peer: &mut Peer, ack: u64, gauge: &AtomicU64) {
        while peer.unacked.front().is_some_and(|u| u.seq < ack) {
            peer.unacked.pop_front();
            gauge.fetch_sub(1, Ordering::Relaxed);
        }
    }

    /// Flush bare cumulative acks for every peer still owed one.
    pub(crate) fn take_acks(&mut self, send: &mut impl FnMut(NodeId, Bytes)) {
        for (i, peer) in self.peers.iter_mut().enumerate() {
            if !peer.pending_ack {
                continue;
            }
            peer.pending_ack = false;
            peer.acks_sent += 1;
            self.scratch.clear();
            self.scratch.put_u8(KIND_ACK);
            self.scratch.put_u64_le(peer.recv_next);
            send(NodeId(i as u32), self.scratch.take_frame());
        }
    }

    /// Earliest retransmission deadline across every link, if any frame is
    /// unacked.
    pub(crate) fn next_due(&self) -> Option<Instant> {
        self.peers
            .iter()
            .flat_map(|p| p.unacked.iter().map(|u| u.due))
            .min()
    }

    /// Retransmit every frame whose deadline has passed, with capped
    /// exponential backoff. Rebuilt frames carry the current cumulative ack.
    pub(crate) fn on_tick(
        &mut self,
        now: Instant,
        send: &mut impl FnMut(NodeId, Bytes),
        emit: &mut impl FnMut(u32, ProtocolEvent),
    ) {
        let (rto, cap) = (self.config.rto, self.config.rto_cap);
        for (i, peer) in self.peers.iter_mut().enumerate() {
            let recv_next = peer.recv_next;
            for u in peer.unacked.iter_mut() {
                if u.due > now {
                    continue;
                }
                u.attempts += 1;
                let backoff = rto
                    .saturating_mul(1u32 << u.attempts.min(16))
                    .min(cap.max(rto));
                u.due = now + backoff;
                peer.retransmits += 1;
                // A retransmitted data frame is as good an ack carrier as a
                // fresh one.
                peer.pending_ack = false;
                let frame = Self::build_data(&mut self.scratch, u.seq, recv_next, &u.payload);
                send(NodeId(i as u32), frame);
                emit(
                    u.lock,
                    ProtocolEvent::Retransmit {
                        to: i as u32,
                        seq: u.seq,
                        attempt: u.attempts,
                    },
                );
            }
        }
    }

    /// Per-peer counters for links with any activity.
    pub(crate) fn snapshots(&self) -> Vec<PeerSnapshot> {
        self.peers
            .iter()
            .enumerate()
            .filter(|(i, p)| {
                *i != self.me.index()
                    && (p.data_sent
                        + p.retransmits
                        + p.acks_sent
                        + p.dups_suppressed
                        + p.reorders_buffered)
                        > 0
            })
            .map(|(i, p)| PeerSnapshot {
                peer: i as u32,
                data_sent: p.data_sent,
                retransmits: p.retransmits,
                acks_sent: p.acks_sent,
                dups_suppressed: p.dups_suppressed,
                reorders_buffered: p.reorders_buffered,
            })
            .collect()
    }
}

/// The lock id of the wrapped protocol frame (its first four bytes), for
/// trace stamping; [`crate::transport::TRANSPORT_LOCK`] if too short.
fn peek_lock(payload: &Bytes) -> u32 {
    match payload.as_ref().get(0..4) {
        Some(b) => u32::from_le_bytes([b[0], b[1], b[2], b[3]]),
        None => crate::transport::TRANSPORT_LOCK,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn endpoint(me: u32) -> Endpoint {
        Endpoint::new(
            NodeId(me),
            3,
            ReliableConfig::in_process(),
            Arc::new(AtomicU64::new(0)),
        )
    }

    #[test]
    fn auto_config_resolves_per_transport_class() {
        let auto = ReliableConfig::default();
        assert!(auto.is_auto(), "the default defers to the transport class");
        assert_eq!(
            auto.resolved_for(TransportClass::InProcess).rto,
            ReliableConfig::in_process().rto,
            "channel transports get the in-process floor"
        );
        assert_eq!(
            auto.resolved_for(TransportClass::Socket).rto,
            ReliableConfig::wan().rto,
            "socket transports get the WAN floor"
        );
        // Explicit configs pass through untouched.
        let explicit = ReliableConfig::wan().with_rto(Duration::from_millis(7));
        assert_eq!(
            explicit.resolved_for(TransportClass::InProcess).rto,
            Duration::from_millis(7)
        );
    }

    fn collect_delivered(
        ep: &mut Endpoint,
        from: u32,
        frame: Bytes,
    ) -> Result<Vec<Bytes>, LinkError> {
        let mut out = Vec::new();
        ep.on_frame(NodeId(from), frame, &mut |p| out.push(p), &mut |_, _| {})?;
        Ok(out)
    }

    #[test]
    fn in_order_delivery_and_cumulative_ack() {
        let now = Instant::now();
        let mut tx = endpoint(0);
        let mut rx = endpoint(1);
        let p1 = Bytes::from(b"\x01\x00\x00\x00one".to_vec());
        let p2 = Bytes::from(b"\x01\x00\x00\x00two".to_vec());
        let f1 = tx.wrap_data(NodeId(1), 1, p1.clone(), now);
        let f2 = tx.wrap_data(NodeId(1), 1, p2.clone(), now);
        assert_eq!(collect_delivered(&mut rx, 0, f1).unwrap(), vec![p1]);
        assert_eq!(collect_delivered(&mut rx, 0, f2).unwrap(), vec![p2]);
        // The receiver owes an ack; applying it clears the sender's queue.
        let mut acks = Vec::new();
        rx.take_acks(&mut |to, frame| acks.push((to, frame)));
        assert_eq!(acks.len(), 1);
        assert_eq!(acks[0].0, NodeId(0));
        assert_eq!(
            collect_delivered(&mut tx, 1, acks[0].1.clone()).unwrap(),
            vec![]
        );
        assert_eq!(tx.next_due(), None, "everything acked");
        assert_eq!(tx.unacked_gauge.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn reordered_frames_are_buffered_then_released_in_order() {
        let now = Instant::now();
        let mut tx = endpoint(0);
        let mut rx = endpoint(1);
        let p: Vec<Bytes> = (0..3)
            .map(|i| Bytes::from(vec![1, 0, 0, 0, i as u8]))
            .collect();
        let frames: Vec<Bytes> = p
            .iter()
            .map(|pl| tx.wrap_data(NodeId(1), 1, pl.clone(), now))
            .collect();
        // Arrival order 2, 0, 1: 2 buffers, 0 delivers, 1 releases 1 and 2.
        assert_eq!(
            collect_delivered(&mut rx, 0, frames[2].clone()).unwrap(),
            vec![]
        );
        assert_eq!(
            collect_delivered(&mut rx, 0, frames[0].clone()).unwrap(),
            vec![p[0].clone()]
        );
        assert_eq!(
            collect_delivered(&mut rx, 0, frames[1].clone()).unwrap(),
            vec![p[1].clone(), p[2].clone()]
        );
        assert_eq!(rx.snapshots()[0].reorders_buffered, 1);
    }

    #[test]
    fn duplicates_are_suppressed_and_reacked() {
        let now = Instant::now();
        let mut tx = endpoint(0);
        let mut rx = endpoint(1);
        let p = Bytes::from(b"\x02\x00\x00\x00pay".to_vec());
        let f = tx.wrap_data(NodeId(1), 2, p.clone(), now);
        assert_eq!(collect_delivered(&mut rx, 0, f.clone()).unwrap(), vec![p]);
        let mut events = Vec::new();
        rx.on_frame(
            NodeId(0),
            f,
            &mut |_| panic!("dup delivered"),
            &mut |l, e| events.push((l, e)),
        )
        .unwrap();
        assert_eq!(
            events,
            vec![(2, ProtocolEvent::DupSuppressed { from: 0, seq: 0 })]
        );
        // Even the duplicate schedules an ack (the sender clearly missed it).
        let mut acks = 0;
        rx.take_acks(&mut |_, _| acks += 1);
        assert_eq!(acks, 1);
    }

    #[test]
    fn retransmission_backs_off_and_stops_on_ack() {
        let now = Instant::now();
        let mut tx = endpoint(0);
        let p = Bytes::from(b"\x00\x00\x00\x00x".to_vec());
        let _ = tx.wrap_data(NodeId(1), 0, p, now);
        let due1 = tx.next_due().expect("one unacked frame");
        assert!(due1 > now);
        // First tick past the deadline retransmits with attempt 1.
        let mut sent = Vec::new();
        let mut events = Vec::new();
        tx.on_tick(due1, &mut |to, f| sent.push((to, f)), &mut |l, e| {
            events.push((l, e))
        });
        assert_eq!(sent.len(), 1);
        assert!(matches!(
            events[0].1,
            ProtocolEvent::Retransmit {
                to: 1,
                seq: 0,
                attempt: 1
            }
        ));
        let due2 = tx.next_due().unwrap();
        assert!(due2 > due1, "backoff pushed the deadline out");
        // A later ack clears the queue; ticking again retransmits nothing.
        let mut rx = endpoint(1);
        assert_eq!(
            collect_delivered(&mut rx, 0, sent[0].1.clone())
                .unwrap()
                .len(),
            1
        );
        let mut ack = None;
        rx.take_acks(&mut |_, f| ack = Some(f));
        collect_delivered(&mut tx, 1, ack.unwrap()).unwrap();
        assert_eq!(tx.next_due(), None);
        sent.clear();
        tx.on_tick(
            due2 + Duration::from_secs(1),
            &mut |to, f| sent.push((to, f)),
            &mut |_, _| {},
        );
        assert!(sent.is_empty());
    }

    /// A coalesced container is one payload to the shim: losing its first
    /// transmission costs one retransmission (not one per packed frame),
    /// and the retransmitted copy unpacks into the original sub-frames
    /// byte for byte.
    #[test]
    fn containers_survive_loss_as_a_unit() {
        use crate::codec;
        use dlm_core::{LockId, Message};

        let now = Instant::now();
        let mut tx = endpoint(0);
        let mut rx = endpoint(1);
        let mut scratch = bytes::BytesMut::new();
        let subs: Vec<Bytes> = (0..5u32)
            .map(|l| {
                codec::encode_corr_into(
                    LockId(l),
                    (7 << 32) | l as u64,
                    l as u16,
                    0,
                    &Message::Grant {
                        mode: dlm_core::Mode::Read,
                    },
                    &mut scratch,
                )
            })
            .collect();
        let container = codec::encode_container_into(&subs, &mut scratch);
        let lost = tx.wrap_data(NodeId(1), codec::CONTAINER_MARKER, container, now);
        drop(lost); // the network ate the first copy
        let due = tx.next_due().expect("container awaits ack");
        let mut resent = Vec::new();
        tx.on_tick(due, &mut |_, f| resent.push(f), &mut |_, _| {});
        assert_eq!(resent.len(), 1, "one retransmission covers the whole pack");
        let delivered = collect_delivered(&mut rx, 0, resent.remove(0)).unwrap();
        assert_eq!(delivered.len(), 1);
        assert!(codec::is_container(&delivered[0]));
        let mut out = Vec::new();
        codec::decode_container_into(delivered[0].clone(), &mut out).unwrap();
        assert_eq!(out, subs, "sub-frames byte-identical after loss + repair");
    }

    #[test]
    fn malformed_headers_are_rejected_not_panicked() {
        let mut rx = endpoint(1);
        for bad in [
            Bytes::new(),
            Bytes::from(b"\x09whatever".to_vec()),
            Bytes::from(b"\x01\x01\x02".to_vec()),
            Bytes::from(b"\x02\x01".to_vec()),
        ] {
            assert_eq!(
                collect_delivered(&mut rx, 0, bad),
                Err(LinkError::Malformed)
            );
        }
    }
}
