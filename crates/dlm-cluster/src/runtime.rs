//! The cluster runtime: sharded per-node worker threads, the pluggable
//! transport, the optional reliability shim, per-link frame coalescing, and
//! lifecycle management.
//!
//! # Sharded workers
//!
//! Every node runs [`ClusterConfig::shards`] worker threads; lock `L` is
//! owned by shard [`crate::shard::shard_of`]`(L)` on *every* node, so a
//! frame for `L` goes straight from the sending worker to the owning worker
//! of the destination node with no cross-thread handoff in between. The
//! transport address space is therefore *worker slots*
//! (`node * shards + shard`), not nodes; fault tallies and trace events are
//! folded back to node granularity.
//!
//! Each worker owns its shard's protocol instances (created lazily on first
//! touch, so a node can host millions of mostly-idle locks), its own
//! [`EffectBuf`] and codec scratch, its own reliability endpoint, and a
//! bounded application-ingress gate ([`crate::shard::ShardGate`]) that sheds
//! new load with [`ClusterError::Overloaded`] instead of queueing without
//! bound.
//!
//! # Coalescing
//!
//! A worker drains its input channel in batches. Outgoing protocol frames
//! produced while processing one batch are buffered per destination and
//! flushed at batch end: several protocol frames to the same peer travel as
//! one container wire frame ([`crate::codec::encode_container_into`]) — one
//! transport handoff, one reliability sequence number, one ack. Per-link
//! [`LinkReport::proto_sent`]/[`LinkReport::wire_sent`] counters report the
//! achieved packing ratio.

use crate::codec;
use crate::handle::{ClusterError, Completion, NodeHandle, OpKind, PipeOp, Reply};
use crate::reliable::{Endpoint, PeerSnapshot, ReliableConfig, TransportClass};
use crate::shard::{effective_shards, shard_of, FastMap, ShardGate};
use crate::transport::{
    Delayed, Direct, Faulty, LinkFaults, SocketLinkStat, Transport, TransportKind, TRANSPORT_LOCK,
};
use bytes::Bytes;
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use dlm_core::{
    audit, AuditError, Effect, EffectBuf, HierNode, LockId, Mode, NodeId, ProtocolConfig,
};
use dlm_metrics::Histogram;
use dlm_trace::{
    merge_records, NullObserver, Observer, ProtocolEvent, Recorder, RingRecorder, Stamp,
    TraceRecord,
};
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Upper bound on inputs a worker processes before it flushes its coalesce
/// buffers (and reliability acks). Large enough to pack hot links well,
/// small enough to keep retransmission ticks timely.
const BATCH: usize = 256;

/// How often an otherwise idle worker wakes to refresh its heartbeat stamp.
/// Bounds failure-detection latency from below: [`Cluster::suspects`] should
/// use a staleness threshold of several multiples of this.
const HEARTBEAT: Duration = Duration::from_millis(25);

/// Cluster construction parameters.
#[derive(Debug, Clone, Copy)]
pub struct ClusterConfig {
    /// Number of nodes.
    pub nodes: usize,
    /// Number of lock objects hosted (ids `0..locks`). Protocol state is
    /// created lazily on first touch, so this may be in the millions.
    pub locks: usize,
    /// Protocol feature toggles.
    pub protocol: ProtocolConfig,
    /// The interconnect carrying encoded frames between workers; see
    /// [`TransportKind`].
    pub transport: TransportKind,
    /// When set, every protocol frame travels through the per-link
    /// reliability shim (sequence numbers, cumulative acks, retransmission,
    /// dedup/reorder buffering) — required for a clean run over
    /// [`TransportKind::Faulty`] links with a non-zero drop rate.
    pub reliable: Option<ReliableConfig>,
    /// Per-worker flight-recorder capacity for structured protocol events;
    /// `0` disables tracing (workers then pay one branch per event site).
    /// Retained records are merged at shutdown into
    /// [`ClusterReport::trace`].
    pub trace_capacity: usize,
    /// Worker threads per node, rounded up to a power of two. Lock-id →
    /// shard assignment is the splittable hash in [`crate::shard`]; `1`
    /// (the default) reproduces the classic one-thread-per-node runtime.
    pub shards: usize,
    /// Bound on queued application operations per shard worker; operations
    /// beyond it are refused with [`ClusterError::Overloaded`]. Network
    /// frames are never gated.
    pub shard_queue: usize,
    /// Pack protocol frames sharing a destination within one input batch
    /// into a single container wire frame. On by default; turn off to
    /// measure the per-frame transport cost it amortizes.
    pub coalesce: bool,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            nodes: 2,
            locks: 1,
            protocol: ProtocolConfig::paper(),
            transport: TransportKind::Direct,
            reliable: None,
            trace_capacity: 0,
            shards: 1,
            shard_queue: 8192,
            coalesce: true,
        }
    }
}

/// What a worker thread receives.
pub(crate) enum Input {
    /// An encoded wire frame from worker slot `from`.
    Net { from: NodeId, frame: Bytes },
    /// Application request: acquire `lock` in `mode`; answer on `reply`.
    Acquire {
        lock: LockId,
        mode: Mode,
        reply: Reply,
    },
    /// Application request: acquire `lock` in `mode` only if that is
    /// possible locally without waiting; answer on `reply` with
    /// `Ok(granted)`.
    TryAcquire {
        lock: LockId,
        mode: Mode,
        reply: crate::handle::TryReply,
    },
    /// Application request: Rule 7 upgrade on `lock`.
    Upgrade { lock: LockId, reply: Reply },
    /// Application request: release `lock`.
    Release { lock: LockId, reply: Reply },
    /// A pipelined batch of operations. Outcomes settled while processing
    /// the batch are answered as one vector on `tx`; deferred grants follow
    /// later as singleton vectors.
    Ops {
        ops: Vec<PipeOp>,
        tx: Sender<Vec<Completion>>,
    },
    /// Simulated node crash: the worker abandons its protocol state and
    /// enters a silent drain loop — incoming frames are discarded and
    /// application operations fail with [`ClusterError::WorkerDied`] —
    /// until `Shutdown`. It stops heartbeating, which is how the failure
    /// detector notices.
    Die,
    /// Link-layer obituary: stop retransmitting to (and expecting acks
    /// from) `dead`, whose silence would otherwise hold the unacked gauge —
    /// and with it quiescence — hostage forever.
    Isolate { dead: NodeId },
    /// Report `(lock, has_token, epoch)` for every lock this worker hosts,
    /// tagged with the worker's node id. The recovery coordinator scans
    /// survivors with this before planning a repair wave.
    Scan(Sender<ScanReport>),
    /// Recovery wave (DESIGN.md §17): repair every planned lock owned by
    /// this worker around the crashed node. Plans are
    /// `(lock, new_root, new_epoch)`.
    PeerDown {
        dead: NodeId,
        survivors: Arc<Vec<NodeId>>,
        plans: Arc<Vec<(u32, u32, u32)>>,
    },
    /// Test hook: panic the worker thread, exercising the shutdown path
    /// that reports [`ClusterReport::workers_died`] instead of propagating
    /// the panic.
    Panic,
    /// Test hook: tear down the registered application waiter for the
    /// outstanding operation on `lock`, leaving the operation active in
    /// the protocol. The caller sees its reply channel close; the grant,
    /// when it arrives, has nobody to answer and must be counted in
    /// [`ClusterReport::replies_dropped`] instead of panicking the worker.
    OrphanWaiter { lock: LockId },
    /// Tear down the worker thread; it returns its protocol states.
    Shutdown,
}

/// Per-directed-link telemetry merged from the reliability endpoints, the
/// coalescing counters, and the transport's fault tallies at shutdown.
/// Reliability and fault counters are zero unless the corresponding
/// machinery was configured ([`ClusterConfig::reliable`],
/// [`TransportKind::Faulty`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LinkReport {
    /// Sender.
    pub from: u32,
    /// Receiver.
    pub to: u32,
    /// Data frames originally sent (retransmissions not included). With
    /// coalescing this counts *wire* frames, so it equals
    /// [`Self::wire_sent`] on a reliable link.
    pub data_sent: u64,
    /// Retransmissions of unacked data frames.
    pub retransmits: u64,
    /// Bare cumulative acks the receiver sent back for this link's data.
    pub acks_sent: u64,
    /// Duplicate data frames the receiver suppressed.
    pub dups_suppressed: u64,
    /// Out-of-order data frames the receiver parked until the gap filled.
    pub reorders_buffered: u64,
    /// Frames the transport dropped in flight.
    pub dropped: u64,
    /// Extra copies the transport injected.
    pub duplicated: u64,
    /// Frames the transport held back past later traffic.
    pub reordered: u64,
    /// Protocol frames carried over this link (the payload count).
    pub proto_sent: u64,
    /// Physical wire frames that carried them; `proto_sent / wire_sent`
    /// is the link's coalescing ratio (1.0 with coalescing off).
    pub wire_sent: u64,
    /// Payload bytes observed on a real wire for this link (socket
    /// transports only; 0 in-process).
    pub wire_bytes: u64,
    /// Socket connection losses observed on this link (peer reset, EOF
    /// mid-stream, or a write failure); the node keeps serving after each.
    pub resets: u64,
}

/// Final report of a shut-down cluster.
#[derive(Debug)]
pub struct ClusterReport {
    /// Total protocol messages transmitted (retransmissions and acks are
    /// link-layer frames and not counted here; see [`Self::links`]).
    pub messages_sent: u64,
    /// Per-lock audit findings on the final states (with the cluster
    /// quiesced, these should all be empty). Locks never touched by any
    /// node hold their initial state by construction and are skipped.
    pub audit_errors: Vec<AuditError>,
    /// Merged structured event trace (wall-clock µs since cluster start;
    /// empty when [`ClusterConfig::trace_capacity`] is 0). Ordered by
    /// `(at, node)` with a fresh global sequence. Transport and reliability
    /// events that no lock can claim carry the sentinel lock id
    /// [`TRANSPORT_LOCK`].
    pub trace: Vec<TraceRecord>,
    /// Events evicted from the per-worker flight recorders before shutdown
    /// (0 means [`Self::trace`] is complete).
    pub trace_dropped: u64,
    /// Completion replies whose application-side receiver had already gone
    /// away (e.g. a handle dropped mid-call). Non-zero values mean some
    /// caller never saw its outcome.
    pub replies_dropped: u64,
    /// Frames that arrived but could not be decoded (truncated, bad tag,
    /// bad reliability header). The receiving worker counts them and keeps
    /// serving; on a healthy in-process transport this is always 0.
    pub decode_errors: u64,
    /// Stale-generation frames fenced by epoch rule R3 (DESIGN.md §17): a
    /// non-`Recover` frame stamped with an epoch other than the receiving
    /// node's was dropped without touching protocol state. Non-zero only
    /// after a crash recovery raced in-flight traffic — which is the fence
    /// doing its job.
    pub frames_fenced: u64,
    /// Worker threads that terminated by panicking instead of returning
    /// their state at shutdown. Reported (and their states excluded from
    /// the audit) rather than propagating the panic; the live-cluster
    /// analogue is [`ClusterError::WorkerDied`].
    pub workers_died: u64,
    /// Per-link reliability/coalescing/fault counters, sorted by
    /// `(from, to)`; empty when no link carried anything to report.
    pub links: Vec<LinkReport>,
    /// Wall-clock latency (µs) of every completed application acquire and
    /// upgrade, merged across nodes: issue at the worker thread → grant
    /// delivered to the waiter.
    pub acquire_latency: Histogram,
    /// Causal network hops on each completed operation's granting chain
    /// (0 = local admit without any message).
    pub acquire_hops: Histogram,
}

/// An in-process cluster of protocol nodes, each running one worker thread
/// per shard.
pub struct Cluster {
    /// One input channel per worker slot (`node * shards + shard`).
    inputs: Vec<Sender<Input>>,
    /// One admission gate per worker slot.
    gates: Vec<Arc<ShardGate>>,
    joins: Vec<JoinHandle<NodeExit>>,
    transport: Arc<dyn Transport>,
    messages: Arc<AtomicU64>,
    replies_dropped: Arc<AtomicU64>,
    /// Physical frames created but not yet fully processed by their
    /// receiving worker (includes frames parked inside the transport and
    /// protocol frames buffered for coalescing).
    in_flight: Arc<AtomicU64>,
    /// Data sequences sent but not yet cumulatively acked (reliability shim
    /// only; 0 otherwise).
    unacked: Arc<AtomicU64>,
    /// Per-worker-slot request metrics, shared with the workers so
    /// [`Cluster::metrics_snapshot`] can read them live. Each mutex is
    /// touched once per completed *operation* (not per message), so the
    /// steady-state message path never contends on it.
    metrics: Vec<Arc<Mutex<NodeMetrics>>>,
    /// Per-worker-slot heartbeat stamps (µs since `epoch`), refreshed by
    /// every worker loop iteration; [`Cluster::suspects`] reads them.
    beats: Arc<Vec<AtomicU64>>,
    epoch: Instant,
    /// Nodes administratively crashed via [`Cluster::crash_node`]; their
    /// final states are excluded from the shutdown audit.
    crashed: Mutex<BTreeSet<u32>>,
    nodes: usize,
    locks: usize,
    shards: usize,
    protocol: ProtocolConfig,
}

/// Per-worker operation metrics: request latency/hop distributions and
/// operation counters. Owned by the worker thread, read by
/// [`Cluster::metrics_snapshot`] under a short-lived mutex.
#[derive(Debug, Default)]
pub(crate) struct NodeMetrics {
    /// Wall-clock µs, issue → grant, for completed acquires and upgrades.
    pub(crate) acquire_latency: Histogram,
    /// Causal hop depth of the frame that delivered each grant.
    pub(crate) acquire_hops: Histogram,
    /// Completed acquire operations (blocking, pipelined, and try fast
    /// path).
    pub(crate) acquires: u64,
    /// Completed Rule 7 upgrades.
    pub(crate) upgrades: u64,
    /// Completed releases.
    pub(crate) releases: u64,
}

/// Per-peer coalescing counters a worker hands back at exit.
pub(crate) struct CoalesceStat {
    pub(crate) peer: u32,
    pub(crate) proto_sent: u64,
    pub(crate) wire_sent: u64,
}

/// What a worker thread hands back at shutdown.
pub(crate) struct NodeExit {
    /// This shard's protocol instances, keyed by lock id (only locks the
    /// worker ever touched; empty if the worker crashed).
    pub(crate) locks: FastMap<u32, HierNode>,
    pub(crate) trace: Vec<TraceRecord>,
    pub(crate) trace_dropped: u64,
    pub(crate) decode_errors: u64,
    pub(crate) frames_fenced: u64,
    pub(crate) links: Vec<PeerSnapshot>,
    pub(crate) coalesce: Vec<CoalesceStat>,
}

impl Cluster {
    /// Spawn the cluster. Node 0 initially holds every token.
    pub fn new(mut config: ClusterConfig) -> Self {
        assert!(config.nodes >= 1);
        assert!(config.locks >= 1);
        // Every in-process transport is a channel handoff; an auto reliable
        // config resolves to the in-process RTO floor here (sockets resolve
        // to the WAN floor in `Node::new`).
        config.reliable = config
            .reliable
            .map(|cfg| cfg.resolved_for(TransportClass::InProcess));
        let shards = effective_shards(config.shards);
        let slots = config.nodes * shards;
        let messages = Arc::new(AtomicU64::new(0));
        let replies_dropped = Arc::new(AtomicU64::new(0));
        let in_flight = Arc::new(AtomicU64::new(0));
        let unacked = Arc::new(AtomicU64::new(0));
        // One epoch shared by every worker thread, so wall-clock trace
        // stamps are comparable across threads and merge into one timeline.
        let epoch = Instant::now();

        let channels: Vec<(Sender<Input>, Receiver<Input>)> =
            (0..slots).map(|_| unbounded()).collect();
        let inputs: Vec<Sender<Input>> = channels.iter().map(|(tx, _)| tx.clone()).collect();
        let gates: Vec<Arc<ShardGate>> = (0..slots)
            .map(|_| Arc::new(ShardGate::new(config.shard_queue)))
            .collect();

        let transport: Arc<dyn Transport> = match config.transport {
            TransportKind::Direct => Arc::new(Direct::new(inputs.clone(), Arc::clone(&in_flight))),
            TransportKind::Delayed(delay) => {
                Arc::new(Delayed::new(inputs.clone(), Arc::clone(&in_flight), delay))
            }
            TransportKind::Faulty(faults) => Arc::new(Faulty::new(
                inputs.clone(),
                Arc::clone(&in_flight),
                faults,
                config.nodes,
                shards,
                config.trace_capacity,
                epoch,
            )),
        };

        let metrics: Vec<Arc<Mutex<NodeMetrics>>> = (0..slots)
            .map(|_| Arc::new(Mutex::new(NodeMetrics::default())))
            .collect();
        let beats: Arc<Vec<AtomicU64>> = Arc::new((0..slots).map(|_| AtomicU64::new(0)).collect());

        let mut joins = Vec::with_capacity(slots);
        for (slot, (_, rx)) in channels.into_iter().enumerate() {
            let me = NodeId((slot / shards) as u32);
            let shard = (slot % shards) as u32;
            let link = Arc::clone(&transport);
            let counter = Arc::clone(&messages);
            let gauge = Arc::clone(&in_flight);
            let unacked_gauge = Arc::clone(&unacked);
            let dropped = Arc::clone(&replies_dropped);
            let slot_metrics = Arc::clone(&metrics[slot]);
            let gate = Arc::clone(&gates[slot]);
            let slot_beats = Arc::clone(&beats);
            let cfg = config;
            let join = std::thread::Builder::new()
                .name(format!("dlm-node-{}.{}", me.0, shard))
                .spawn(move || {
                    worker_loop(
                        me,
                        shard,
                        shards as u32,
                        cfg,
                        rx,
                        link,
                        counter,
                        gauge,
                        unacked_gauge,
                        dropped,
                        epoch,
                        slot_metrics,
                        gate,
                        slot_beats,
                        slot,
                    )
                })
                .expect("spawn worker thread");
            joins.push(join);
        }

        Cluster {
            inputs,
            gates,
            joins,
            transport,
            messages,
            replies_dropped,
            in_flight,
            unacked,
            metrics,
            beats,
            epoch,
            crashed: Mutex::new(BTreeSet::new()),
            nodes: config.nodes,
            locks: config.locks,
            shards,
            protocol: config.protocol,
        }
    }

    /// A cloneable blocking handle to node `id`.
    pub fn handle(&self, id: u32) -> NodeHandle {
        let base = id as usize * self.shards;
        NodeHandle::new(
            NodeId(id),
            self.inputs[base..base + self.shards].to_vec(),
            self.gates[base..base + self.shards].to_vec(),
            Arc::clone(&self.replies_dropped),
        )
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes
    }

    /// Always false (a cluster has at least one node).
    pub fn is_empty(&self) -> bool {
        self.nodes == 0
    }

    /// Worker threads per node (the effective, power-of-two shard count).
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Protocol messages transmitted so far.
    pub fn messages_sent(&self) -> u64 {
        self.messages.load(Ordering::Relaxed)
    }

    /// Completion replies dropped so far because the application-side
    /// receiver was already gone (see [`ClusterReport::replies_dropped`]).
    pub fn replies_dropped(&self) -> u64 {
        self.replies_dropped.load(Ordering::Relaxed)
    }

    /// Render a Prometheus-text-format snapshot of the cluster's live
    /// metrics: global counters and gauges, per-node operation counters,
    /// per-shard queue/ops/rejection series, and cluster-wide
    /// acquire-latency / hops-per-acquire summaries with p50/p95/p99
    /// quantiles.
    ///
    /// Safe to call at any time; each worker's metrics mutex is held only
    /// long enough to copy its histograms out.
    pub fn metrics_snapshot(&self) -> String {
        use std::fmt::Write;
        let mut out = String::with_capacity(1024);
        let counter = |out: &mut String, name: &str, help: &str, v: u64| {
            let _ = writeln!(out, "# HELP {name} {help}");
            let _ = writeln!(out, "# TYPE {name} counter");
            let _ = writeln!(out, "{name} {v}");
        };
        counter(
            &mut out,
            "dlm_messages_total",
            "Protocol messages transmitted.",
            self.messages_sent(),
        );
        counter(
            &mut out,
            "dlm_replies_dropped_total",
            "Completion replies whose receiver had gone away.",
            self.replies_dropped(),
        );
        let gauge = |out: &mut String, name: &str, help: &str, v: u64| {
            let _ = writeln!(out, "# HELP {name} {help}");
            let _ = writeln!(out, "# TYPE {name} gauge");
            let _ = writeln!(out, "{name} {v}");
        };
        gauge(
            &mut out,
            "dlm_frames_in_flight",
            "Physical frames sent but not yet fully processed.",
            self.in_flight.load(Ordering::Relaxed),
        );
        gauge(
            &mut out,
            "dlm_frames_unacked",
            "Data sequences sent but not yet cumulatively acked.",
            self.unacked.load(Ordering::Relaxed),
        );

        // Per-worker copies, folded into per-node aggregates below.
        let mut latency = Histogram::new();
        let mut hops = Histogram::new();
        let mut per_slot: Vec<(u64, u64, u64)> = Vec::with_capacity(self.metrics.len());
        for m in &self.metrics {
            let m = m.lock().expect("metrics mutex");
            latency.merge(&m.acquire_latency);
            hops.merge(&m.acquire_hops);
            per_slot.push((m.acquires, m.upgrades, m.releases));
        }
        let per_node: Vec<(u64, u64, u64)> = per_slot
            .chunks(self.shards)
            .map(|c| {
                c.iter().fold((0, 0, 0), |acc, row| {
                    (acc.0 + row.0, acc.1 + row.1, acc.2 + row.2)
                })
            })
            .collect();
        for (name, help, pick) in [
            (
                "dlm_acquires_total",
                "Completed acquire operations.",
                0usize,
            ),
            ("dlm_upgrades_total", "Completed Rule 7 upgrades.", 1),
            ("dlm_releases_total", "Completed releases.", 2),
        ] {
            let _ = writeln!(out, "# HELP {name} {help}");
            let _ = writeln!(out, "# TYPE {name} counter");
            for (node, row) in per_node.iter().enumerate() {
                let v = [row.0, row.1, row.2][pick];
                let _ = writeln!(out, "{name}{{node=\"{node}\"}} {v}");
            }
        }

        // Per-shard series: queue depth and rejections from the admission
        // gates, completed operations from the worker metrics.
        for (name, help, kind) in [
            (
                "dlm_shard_queue_depth",
                "Application operations queued per shard worker.",
                "gauge",
            ),
            (
                "dlm_shard_rejections_total",
                "Operations refused because a shard queue was full.",
                "counter",
            ),
            (
                "dlm_shard_ops_total",
                "Operations completed per shard worker.",
                "counter",
            ),
        ] {
            let _ = writeln!(out, "# HELP {name} {help}");
            let _ = writeln!(out, "# TYPE {name} {kind}");
            for (slot, (gate, row)) in self.gates.iter().zip(&per_slot).enumerate() {
                let (node, shard) = (slot / self.shards, slot % self.shards);
                let v = match name {
                    "dlm_shard_queue_depth" => gate.depth(),
                    "dlm_shard_rejections_total" => gate.rejections(),
                    _ => row.0 + row.1 + row.2,
                };
                let _ = writeln!(out, "{name}{{node=\"{node}\",shard=\"{shard}\"}} {v}");
            }
        }

        for (name, help, h) in [
            (
                "dlm_acquire_latency_us",
                "Issue-to-grant wall-clock latency of completed operations (microseconds).",
                &latency,
            ),
            (
                "dlm_acquire_hops",
                "Causal network hops on each completed operation's granting chain.",
                &hops,
            ),
        ] {
            let p = h.percentiles();
            let _ = writeln!(out, "# HELP {name} {help}");
            let _ = writeln!(out, "# TYPE {name} summary");
            let _ = writeln!(out, "{name}{{quantile=\"0.5\"}} {}", p.p50);
            let _ = writeln!(out, "{name}{{quantile=\"0.95\"}} {}", p.p95);
            let _ = writeln!(out, "{name}{{quantile=\"0.99\"}} {}", p.p99);
            let sum = (h.mean() * h.count() as f64).round() as u64;
            let _ = writeln!(out, "{name}_sum {sum}");
            let _ = writeln!(out, "{name}_count {}", h.count());
        }
        out
    }

    /// Test hook: push a raw wire frame into the cluster as if node `from`
    /// had sent it to node `to` (shard-0 workers on both ends). The frame
    /// takes the normal transport path (so it is subject to delay and fault
    /// injection) and counts as a physical frame but not as a protocol
    /// message — fault-injection tests use this to exercise the
    /// decode-error and reliability paths.
    pub fn inject_frame(&self, from: u32, to: u32, frame: Vec<u8>) {
        self.in_flight.fetch_add(1, Ordering::Relaxed);
        self.transport.send(
            NodeId(from * self.shards as u32),
            NodeId(to * self.shards as u32),
            Bytes::from(frame),
        );
    }

    /// Simulate the crash of node `id`: its workers abandon their protocol
    /// state, fail their waiting callers with
    /// [`ClusterError::WorkerDied`], and go silent — they stop
    /// heartbeating (so [`Self::suspects`] flags the node) but keep
    /// draining their input channels so the in-flight accounting stays
    /// truthful. Every surviving worker's link layer is simultaneously
    /// told to stop expecting acks from the dead node
    /// ([`Input::Isolate`]), so quiescence still converges.
    ///
    /// The node's final state is excluded from the shutdown audit; call
    /// [`Self::recover`] to repair the survivors around it.
    pub fn crash_node(&self, id: u32) {
        self.crashed.lock().expect("crashed mutex").insert(id);
        let base = id as usize * self.shards;
        for (slot, tx) in self.inputs.iter().enumerate() {
            if slot >= base && slot < base + self.shards {
                let _ = tx.send(Input::Die);
            } else {
                let _ = tx.send(Input::Isolate { dead: NodeId(id) });
            }
        }
    }

    /// Heartbeat failure detector: node ids with at least one worker whose
    /// heartbeat stamp is older than `stale` or whose thread has
    /// terminated outright (panicked). Healthy workers refresh their
    /// stamps at least every 25 ms ([`HEARTBEAT`]), so thresholds of a few
    /// hundred milliseconds give a detector with no false positives on an
    /// unloaded machine.
    pub fn suspects(&self, stale: Duration) -> Vec<u32> {
        let now = self.epoch.elapsed().as_micros() as u64;
        let stale_us = stale.as_micros() as u64;
        let mut out = Vec::new();
        for node in 0..self.nodes {
            let base = node * self.shards;
            let dead = (0..self.shards).any(|s| {
                let slot = base + s;
                self.joins[slot].is_finished()
                    || now.saturating_sub(self.beats[slot].load(Ordering::Relaxed)) > stale_us
            });
            if dead {
                out.push(node as u32);
            }
        }
        out
    }

    /// Recover the survivors around crashed node `dead` (DESIGN.md §17):
    ///
    /// 1. *Quiesce* — the scan below is only race-free with no token in
    ///    flight. (Crashed workers keep draining their channels and
    ///    [`Self::crash_node`] already isolated the dead link ends, so
    ///    this converges.)
    /// 2. *Scan* — every surviving worker reports `(lock, has_token,
    ///    epoch)` for the locks it hosts.
    /// 3. *Plan* — per affected lock: the next epoch is one past the
    ///    highest epoch seen, and the new root is the surviving token
    ///    holder at that epoch if any, else the lowest-numbered survivor
    ///    (which will regenerate the token, Rule R2). If node 0 died,
    ///    every lock is affected: untouched locks' initial tokens lived
    ///    there implicitly.
    /// 4. *Repair* — broadcast the wave ([`Input::PeerDown`]) and wait for
    ///    it to settle.
    ///
    /// Returns the number of locks repaired.
    pub fn recover(&self, dead: u32) -> usize {
        self.recover_within(dead, Duration::from_millis(20))
    }

    /// [`Self::recover`] with a caller-chosen quiescence idle window for
    /// the settle phases (steps 1 and 4). The default 20 ms is safe margin
    /// for chaos tests on loaded machines; latency measurements use a
    /// tighter window so the settle constant does not drown the actual
    /// scan/repair fan-out being measured.
    pub fn recover_within(&self, dead: u32, idle: Duration) -> usize {
        self.quiesce_within(idle, Duration::from_secs(10));
        let crashed = self.crashed.lock().expect("crashed mutex").clone();
        let survivors: Vec<NodeId> = (0..self.nodes as u32)
            .filter(|n| !crashed.contains(n))
            .map(NodeId)
            .collect();
        let (tx, rx) = unbounded();
        let mut expected = 0usize;
        for node in &survivors {
            let base = node.index() * self.shards;
            for slot in base..base + self.shards {
                let _ = self.inputs[slot].send(Input::Scan(tx.clone()));
                expected += 1;
            }
        }
        drop(tx);
        let mut rows: Vec<ScanReport> = Vec::with_capacity(expected);
        for _ in 0..expected {
            let Ok(row) = rx.recv_timeout(Duration::from_secs(5)) else {
                break;
            };
            rows.push(row);
        }
        let survivor_ids: Vec<u32> = survivors.iter().map(|n| n.0).collect();
        let plans: Arc<Vec<(u32, u32, u32)>> =
            Arc::new(plan_recovery(&rows, dead, &survivor_ids, self.locks));
        let survivors = Arc::new(survivors);
        for node in survivors.iter() {
            let base = node.index() * self.shards;
            for slot in base..base + self.shards {
                let _ = self.inputs[slot].send(Input::PeerDown {
                    dead: NodeId(dead),
                    survivors: Arc::clone(&survivors),
                    plans: Arc::clone(&plans),
                });
            }
        }
        self.quiesce_within(idle, Duration::from_secs(10));
        plans.len()
    }

    /// Test hook: make one worker thread of `node` panic, exercising the
    /// shutdown path that counts [`ClusterReport::workers_died`] instead
    /// of propagating the panic. The node's (now partial) state is
    /// excluded from the shutdown audit, like a crashed node's.
    #[doc(hidden)]
    pub fn inject_worker_panic(&self, node: u32) {
        self.crashed.lock().expect("crashed mutex").insert(node);
        let _ = self.inputs[node as usize * self.shards].send(Input::Panic);
    }

    /// Test hook: tear down the application waiter registered for the
    /// outstanding operation on `lock` at `node` (see
    /// [`Input::OrphanWaiter`]). The blocked caller observes
    /// [`ClusterError::Disconnected`]; the eventual grant is counted in
    /// [`ClusterReport::replies_dropped`] instead of panicking the worker.
    #[doc(hidden)]
    pub fn orphan_waiter(&self, node: u32, lock: LockId) {
        let shard = shard_of(lock, self.shards);
        let _ = self.inputs[node as usize * self.shards + shard].send(Input::OrphanWaiter { lock });
    }

    /// Quiescence wait: returns once the message counter has stayed stable
    /// for `idle` *and* no physical frame is in flight or awaiting ack,
    /// bounded by a generous default timeout. Use after all application
    /// operations completed to let release waves drain.
    pub fn quiesce(&self, idle: Duration) -> u64 {
        self.quiesce_within(idle, Duration::from_secs(30))
    }

    /// [`Self::quiesce`] with an explicit upper bound: returns the final
    /// message count once the cluster is idle for `idle`, or whatever the
    /// count is when `timeout` elapses first.
    ///
    /// "Idle" consults the in-flight gauge, not just the send counter: a
    /// frame parked in a [`TransportKind::Delayed`] router (or a dropped
    /// frame awaiting retransmission, or a protocol frame buffered for
    /// coalescing) produces no sends for longer than a small `idle` window,
    /// and judging by counter stability alone would declare quiescence
    /// while the cluster still owes itself traffic.
    pub fn quiesce_within(&self, idle: Duration, timeout: Duration) -> u64 {
        let start = Instant::now();
        let tick = (idle / 8).max(Duration::from_micros(200)).min(idle);
        let mut last = self.messages_sent();
        let mut stable_since = Instant::now();
        loop {
            if start.elapsed() >= timeout {
                return self.messages_sent();
            }
            std::thread::sleep(tick);
            let count = self.messages_sent();
            let busy = self.in_flight.load(Ordering::Relaxed) > 0
                || self.unacked.load(Ordering::Relaxed) > 0;
            if count != last || busy {
                last = count;
                stable_since = Instant::now();
            } else if stable_since.elapsed() >= idle {
                return count;
            }
        }
    }

    /// Shut down all threads and audit the final protocol states per lock.
    ///
    /// Teardown order matters:
    /// 1. *Drain* — wait (bounded) until no physical frame is in flight and
    ///    no data sequence is unacked, so nothing is still parked in a
    ///    router heap or a retransmission queue.
    /// 2. *Stop the transport* — any straggler still parked is flushed into
    ///    its destination channel while the worker threads are alive.
    /// 3. *Stop the workers* — `Shutdown` is queued behind the flushed
    ///    frames, so every worker processes all delivered traffic first.
    ///
    /// The original teardown ran 3 before 2 and lost parked frames: nodes
    /// exited, then the router flushed into channels nobody would read,
    /// and the final audit saw a cluster missing messages it was owed.
    pub fn shutdown(self) -> ClusterReport {
        let deadline = Instant::now() + Duration::from_secs(10);
        while self.in_flight.load(Ordering::Relaxed) > 0 || self.unacked.load(Ordering::Relaxed) > 0
        {
            if Instant::now() >= deadline {
                break;
            }
            std::thread::sleep(Duration::from_micros(200));
        }
        let transport_report = self.transport.shutdown();

        for tx in &self.inputs {
            let _ = tx.send(Input::Shutdown);
        }
        // One state map per node, merged from its workers (disjoint by
        // shard assignment).
        let crashed = self.crashed.lock().expect("crashed mutex").clone();
        let mut states: Vec<HashMap<u32, HierNode>> =
            (0..self.nodes).map(|_| HashMap::new()).collect();
        let mut traces: Vec<Vec<TraceRecord>> = Vec::with_capacity(self.joins.len() + 1);
        let mut trace_dropped = transport_report.trace_dropped;
        let mut decode_errors = 0;
        let mut frames_fenced = 0;
        let mut workers_died: u64 = 0;
        let mut per_node: Vec<(u32, Vec<PeerSnapshot>)> = Vec::new();
        let mut coalesce: Vec<(u32, Vec<CoalesceStat>)> = Vec::new();
        for (slot, join) in self.joins.into_iter().enumerate() {
            let node = (slot / self.shards) as u32;
            // A worker that panicked is reported, not propagated: its
            // shard's state is simply gone, exactly as if the node crashed.
            let exit = match join.join() {
                Ok(exit) => exit,
                Err(_) => {
                    workers_died += 1;
                    continue;
                }
            };
            states[node as usize].extend(exit.locks);
            traces.push(exit.trace);
            trace_dropped += exit.trace_dropped;
            decode_errors += exit.decode_errors;
            frames_fenced += exit.frames_fenced;
            if !exit.links.is_empty() {
                per_node.push((node, exit.links));
            }
            if !exit.coalesce.is_empty() {
                coalesce.push((node, exit.coalesce));
            }
        }
        traces.push(transport_report.trace);

        // Audit every lock any node ever touched; an untouched lock holds
        // its initial (token-at-node-0) state on every node by
        // construction. Nodes that never touched a *touched* lock
        // contribute a synthesized initial state. Crashed nodes are
        // excluded: their state died with them, and after a recovery wave
        // the survivors form a complete, self-consistent hierarchy on
        // their own.
        let touched: BTreeSet<u32> = states.iter().flat_map(|m| m.keys().copied()).collect();
        let fresh = |node: usize| {
            if node == 0 {
                HierNode::with_token(NodeId(0), self.protocol)
            } else {
                HierNode::new(NodeId(node as u32), NodeId(0), self.protocol)
            }
        };
        let survivors: Vec<usize> = (0..self.nodes)
            .filter(|n| !crashed.contains(&(*n as u32)))
            .collect();
        let mut audit_errors = Vec::new();
        for lock in touched {
            let nodes: Vec<HierNode> = survivors
                .iter()
                .map(|&n| states[n].get(&lock).cloned().unwrap_or_else(|| fresh(n)))
                .collect();
            audit_errors.extend(audit(&nodes, &[], true));
        }
        let mut acquire_latency = Histogram::new();
        let mut acquire_hops = Histogram::new();
        for m in &self.metrics {
            let m = m.lock().expect("metrics mutex");
            acquire_latency.merge(&m.acquire_latency);
            acquire_hops.merge(&m.acquire_hops);
        }
        ClusterReport {
            messages_sent: self.messages.load(Ordering::Relaxed),
            audit_errors,
            trace: merge_records(traces),
            trace_dropped,
            replies_dropped: self.replies_dropped.load(Ordering::Relaxed),
            decode_errors,
            frames_fenced,
            workers_died,
            links: merge_links(
                &per_node,
                &transport_report.faults,
                &coalesce,
                &transport_report.socket,
            ),
            acquire_latency,
            acquire_hops,
        }
    }
}

/// One survivor's recovery scan report: its node id plus a `(lock,
/// has_token, epoch)` row for every lock its workers host. Produced by
/// [`Input::Scan`] in-process and by [`crate::Node::scan_locks`] in the
/// multi-process path; consumed by [`plan_recovery`].
pub type ScanReport = (u32, Vec<(u32, bool, u32)>);

/// Turn survivor scan rows into a repair plan: one `(lock, new_root,
/// new_epoch)` triple per affected lock.
///
/// `rows` is one `(node, [(lock, has_token, epoch)])` entry per surviving
/// worker ([`Input::Scan`] output, or a [`crate::Node::scan_locks`] report
/// per member in the multi-process path). Per lock, the next epoch is one
/// past the highest epoch any survivor reported, and the new root is the
/// surviving token holder at that epoch if there is one — otherwise the
/// lowest-numbered survivor, which will regenerate the token (Rule R2).
/// When node 0 died, every lock in `0..locks` is affected: locks nobody
/// ever touched held their initial token at node 0 implicitly.
///
/// Shared by [`Cluster::recover`], the socket-node recovery path, and the
/// multi-process harness, so all three plan identically.
pub fn plan_recovery(
    rows: &[ScanReport],
    dead: u32,
    survivors: &[u32],
    locks: usize,
) -> Vec<(u32, u32, u32)> {
    // Per lock: the highest epoch seen and the surviving token holder at
    // that epoch, if any.
    let mut per_lock: BTreeMap<u32, (u32, Option<u32>)> = BTreeMap::new();
    for (node, entries) in rows {
        for &(lock, has_token, epoch) in entries {
            let entry = per_lock.entry(lock).or_insert((epoch, None));
            if epoch > entry.0 {
                *entry = (epoch, None);
            }
            if has_token && epoch == entry.0 {
                entry.1 = Some(*node);
            }
        }
    }
    if dead == 0 {
        for lock in 0..locks as u32 {
            per_lock.entry(lock).or_insert((0, None));
        }
    }
    let fallback = survivors.first().copied().unwrap_or(0);
    per_lock
        .into_iter()
        .map(|(lock, (epoch, holder))| (lock, holder.unwrap_or(fallback), epoch + 1))
        .collect()
}

/// Combine per-worker reliability snapshots, coalescing counters,
/// transport fault tallies, and socket wire counters into one
/// directed-link table.
pub(crate) fn merge_links(
    per_node: &[(u32, Vec<PeerSnapshot>)],
    faults: &[LinkFaults],
    coalesce: &[(u32, Vec<CoalesceStat>)],
    socket: &[SocketLinkStat],
) -> Vec<LinkReport> {
    fn slot(map: &mut BTreeMap<(u32, u32), LinkReport>, from: u32, to: u32) -> &mut LinkReport {
        map.entry((from, to)).or_insert_with(|| LinkReport {
            from,
            to,
            ..LinkReport::default()
        })
    }
    let mut map: BTreeMap<(u32, u32), LinkReport> = BTreeMap::new();
    for (node, snaps) in per_node {
        for s in snaps {
            // `s` is `node`'s endpoint state for peer `s.peer`: the sender
            // half describes the `node → peer` link, the receiver half (and
            // the acks it produced) describes `peer → node`.
            let tx = slot(&mut map, *node, s.peer);
            tx.data_sent += s.data_sent;
            tx.retransmits += s.retransmits;
            let rx = slot(&mut map, s.peer, *node);
            rx.acks_sent += s.acks_sent;
            rx.dups_suppressed += s.dups_suppressed;
            rx.reorders_buffered += s.reorders_buffered;
        }
    }
    for (node, stats) in coalesce {
        for c in stats {
            let link = slot(&mut map, *node, c.peer);
            link.proto_sent += c.proto_sent;
            link.wire_sent += c.wire_sent;
        }
    }
    for f in faults {
        let link = slot(&mut map, f.from, f.to);
        link.dropped += f.dropped;
        link.duplicated += f.duplicated;
        link.reordered += f.reordered;
    }
    for s in socket {
        let link = slot(&mut map, s.from, s.to);
        link.wire_bytes += s.bytes;
        link.resets += s.resets;
    }
    map.into_values().collect()
}

/// A blocked application operation: its reply channel plus the request-span
/// identity and issue time used for grant-side metrics and trace events.
struct Waiter {
    reply: Reply,
    /// Request id assigned at issue (`node << 32 | per-worker counter`).
    req: u64,
    /// Wall-clock issue time, for the acquire-latency histogram.
    started: Instant,
}

/// Long-lived per-worker-thread state threaded through every protocol entry
/// point: trace recorder, application waiters, reliability endpoint, encode
/// scratch, effect sink, coalesce buffers, shared metrics, and the
/// request-id allocator.
///
/// Bundling these lets [`NodeCtx::flush`] — the one place effects become
/// frames, grants, and metrics — borrow them together without a
/// ten-argument function.
struct NodeCtx<'a> {
    me: NodeId,
    /// This worker's shard index — used to filter recovery plans down to
    /// the locks this worker owns.
    shard: u32,
    /// The node's shard count — the stride of this worker's request-id
    /// counter and the slot-to-node divisor for transport addresses.
    shards: u32,
    epoch: Instant,
    /// Frames dropped by the epoch fence (Rule R3); folded into
    /// [`ClusterReport::frames_fenced`] at shutdown.
    fenced: u64,
    recorder: Option<RingRecorder>,
    /// Application waiters keyed by `(lock, request id)`. The protocol
    /// still admits one *pending* operation per lock per node (enforced via
    /// `active`), but the key shape keeps every waiter's identity distinct
    /// across locks — any number of locks can have an operation in flight
    /// concurrently from one node.
    waiters: FastMap<(u32, u64), Waiter>,
    /// The outstanding request id per lock, if any ([`ClusterError::Busy`]
    /// guards it).
    active: FastMap<u32, u64>,
    endpoint: Option<Endpoint>,
    encode_scratch: bytes::BytesMut,
    container_scratch: bytes::BytesMut,
    effect_buf: EffectBuf,
    metrics: &'a Mutex<NodeMetrics>,
    messages: Arc<AtomicU64>,
    in_flight: Arc<AtomicU64>,
    replies_dropped: Arc<AtomicU64>,
    next_req: u64,
    /// Coalescing state: per-peer-node buffered protocol frames, the peers
    /// with a non-empty buffer (in first-touch order), and per-peer packing
    /// counters.
    coalesce_on: bool,
    pending: Vec<Vec<Bytes>>,
    pending_peers: Vec<u32>,
    proto_sent: Vec<u64>,
    wire_sent: Vec<u64>,
    /// Completions settled synchronously while processing one pipelined
    /// [`Input::Ops`] chunk, shipped to the client as a single channel send
    /// at chunk end. Deferred grants (waiters completed by later network
    /// traffic) bypass this and send singletons.
    comp_batch: Vec<Completion>,
}

impl NodeCtx<'_> {
    /// Allocate a fresh, never-zero request id: `node << 32 | counter`,
    /// where the counter is strided by the shard count so workers of one
    /// node never collide (worker `s` issues `s + shards`, `s + 2·shards`,
    /// …; the counter wraps at 32 bits).
    fn alloc_req(&mut self) -> u64 {
        self.next_req += self.shards as u64;
        ((self.me.0 as u64) << 32) | (self.next_req & 0xFFFF_FFFF)
    }

    /// Record one span/transport event at this worker, if tracing is on.
    fn trace(&mut self, lock: u32, event: ProtocolEvent) {
        if let Some(ring) = &mut self.recorder {
            ring.record(
                self.epoch.elapsed().as_micros() as u64,
                lock,
                self.me.0,
                event,
            );
        }
    }

    /// Drive one protocol entry point, stamping its events with wall-clock
    /// µs since the cluster epoch when this worker records a trace.
    fn observed<T>(
        &mut self,
        lock: LockId,
        f: impl FnOnce(&mut dyn Observer, &mut EffectBuf) -> T,
    ) -> T {
        match &mut self.recorder {
            Some(ring) => {
                let mut stamp = Stamp {
                    at: self.epoch.elapsed().as_micros() as u64,
                    lock: lock.0,
                    sink: ring,
                };
                f(&mut stamp, &mut self.effect_buf)
            }
            None => f(&mut NullObserver, &mut self.effect_buf),
        }
    }

    /// Fast path for a protocol step whose only effect is the local grant
    /// (the token is here and nothing conflicts — the case a well-sharded
    /// single node hits millions of times per second): complete the reply
    /// immediately and skip the waiter registration the generic path would
    /// insert and remove again within the same call. Returns the reply back
    /// when the step produced anything else and the slow path must run.
    fn fast_grant(&mut self, lock: LockId, req: u64, reply: Reply) -> Option<Reply> {
        let upgraded = match (self.effect_buf.len(), self.effect_buf.iter().next()) {
            (1, Some(Effect::Granted { .. })) => false,
            (1, Some(Effect::Upgraded)) => true,
            _ => return Some(reply),
        };
        self.effect_buf.clear();
        {
            let mut m = self.metrics.lock().expect("metrics mutex");
            // A same-call grant never left the worker; its service time is
            // below the histogram's µs resolution, so record it as 0 rather
            // than pay two `Instant::now` reads per fast-path op.
            m.acquire_latency.record(0);
            m.acquire_hops.record(0);
            if upgraded {
                m.upgrades += 1;
            } else {
                m.acquires += 1;
            }
        }
        if self.recorder.is_some() {
            self.trace(lock.0, ProtocolEvent::RequestGrant { req, hops: 0 });
        }
        reply.complete_into(Ok(()), &mut self.comp_batch);
        None
    }

    /// Drain the effects of one protocol entry point. Sends are encoded
    /// with the correlated frame header — `req` is the request chain being
    /// extended (0 = uncorrelated) and `hops` the causal depth of whatever
    /// triggered this step, so outgoing frames carry `hops + 1`. With
    /// coalescing on, encoded frames are buffered per destination (raising
    /// the in-flight gauge so quiescence can't be declared under them) and
    /// flushed at batch end; otherwise they are wrapped and transmitted
    /// immediately. Grants complete the lock's waiting application call,
    /// record its latency/hop metrics, and close its trace span.
    fn flush(
        &mut self,
        lock: LockId,
        req: u64,
        hops: u16,
        node_epoch: u32,
        put: &dyn Fn(NodeId, Bytes),
    ) {
        let NodeCtx {
            me,
            epoch,
            recorder,
            waiters,
            active,
            endpoint,
            encode_scratch,
            effect_buf,
            metrics,
            messages,
            in_flight,
            replies_dropped,
            coalesce_on,
            pending,
            pending_peers,
            proto_sent,
            wire_sent,
            ..
        } = self;
        for effect in effect_buf.drain() {
            let upgraded = matches!(effect, Effect::Upgraded);
            match effect {
                Effect::Send { to, message } => {
                    messages.fetch_add(1, Ordering::Relaxed);
                    let payload = codec::encode_corr_into(
                        lock,
                        req,
                        hops.saturating_add(1),
                        node_epoch,
                        &message,
                        encode_scratch,
                    );
                    if *coalesce_on {
                        // The buffered frame is already owed to the wire:
                        // raise the gauge now so a quiescence probe between
                        // here and the batch-end flush sees a busy cluster.
                        in_flight.fetch_add(1, Ordering::Relaxed);
                        let buf = &mut pending[to.index()];
                        if buf.is_empty() {
                            pending_peers.push(to.0);
                        }
                        buf.push(payload);
                    } else {
                        proto_sent[to.index()] += 1;
                        wire_sent[to.index()] += 1;
                        let frame = match endpoint {
                            Some(ep) => ep.wrap_data(to, lock.0, payload, Instant::now()),
                            None => payload,
                        };
                        put(to, frame);
                    }
                }
                Effect::Granted { .. } | Effect::Upgraded => {
                    if let Some(req0) = active.remove(&lock.0) {
                        // A grant without a matching waiter can occur after a
                        // recovery wave re-issues an operation whose original
                        // waiter was already torn down; count the dropped
                        // completion instead of panicking the worker.
                        let Some(w) = waiters.remove(&(lock.0, req0)) else {
                            replies_dropped.fetch_add(1, Ordering::Relaxed);
                            continue;
                        };
                        let latency = w.started.elapsed().as_micros() as u64;
                        {
                            let mut m = metrics.lock().expect("metrics mutex");
                            m.acquire_latency.record(latency);
                            m.acquire_hops.record(hops as u64);
                            if upgraded {
                                m.upgrades += 1;
                            } else {
                                m.acquires += 1;
                            }
                        }
                        if let Some(ring) = recorder {
                            ring.record(
                                epoch.elapsed().as_micros() as u64,
                                lock.0,
                                me.0,
                                ProtocolEvent::RequestGrant {
                                    req: w.req,
                                    hops: hops as u32,
                                },
                            );
                        }
                        w.reply.complete(Ok(()));
                    }
                }
            }
        }
    }

    /// Transmit every coalesce buffer: one wire frame per destination with
    /// pending traffic (a container when more than one protocol frame is
    /// packed). Called at the end of each input batch.
    fn flush_pending(&mut self, put: &dyn Fn(NodeId, Bytes)) {
        if self.pending_peers.is_empty() {
            return;
        }
        let NodeCtx {
            endpoint,
            container_scratch,
            in_flight,
            pending,
            pending_peers,
            proto_sent,
            wire_sent,
            ..
        } = self;
        for &peer in pending_peers.iter() {
            let frames = &mut pending[peer as usize];
            let k = frames.len();
            debug_assert!(k > 0, "registered peer has buffered frames");
            let payload = if k == 1 {
                frames.pop().expect("one frame")
            } else {
                let c = codec::encode_container_into(frames, container_scratch);
                frames.clear();
                c
            };
            proto_sent[peer as usize] += k as u64;
            wire_sent[peer as usize] += 1;
            // Containers peek as TRANSPORT_LOCK (their marker occupies the
            // lock-id slot); single frames keep their lock for trace
            // stamping of retransmissions.
            let lock = payload
                .as_ref()
                .get(0..4)
                .map(|b| u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
                .unwrap_or(TRANSPORT_LOCK);
            let to = NodeId(peer);
            let frame = match endpoint {
                Some(ep) => ep.wrap_data(to, lock, payload, Instant::now()),
                None => payload,
            };
            put(to, frame);
            // The physical frame replaced k buffered protocol frames on the
            // gauge; `put` raised it by one, settle the difference after so
            // the gauge never transiently reads idle.
            in_flight.fetch_sub(k as u64, Ordering::Relaxed);
        }
        pending_peers.clear();
    }
}

/// This worker's protocol instance for `lock`, created on first touch
/// (node 0 holds every token initially).
fn lock_state(
    locks: &mut FastMap<u32, HierNode>,
    me: NodeId,
    protocol: ProtocolConfig,
    lock: LockId,
) -> &mut HierNode {
    locks.entry(lock.0).or_insert_with(|| {
        if me == NodeId(0) {
            HierNode::with_token(me, protocol)
        } else {
            HierNode::new(me, NodeId(0), protocol)
        }
    })
}

/// Process one blocking-or-pipelined acquire.
fn do_acquire(
    ctx: &mut NodeCtx<'_>,
    locks: &mut FastMap<u32, HierNode>,
    protocol: ProtocolConfig,
    lock: LockId,
    mode: Mode,
    reply: Reply,
    put: &dyn Fn(NodeId, Bytes),
) {
    // A second outstanding op on this lock would race the protocol's
    // single-pending model; refuse loudly instead. Operations on *other*
    // locks are unaffected — waiters are keyed `(lock, req)`.
    if ctx.active.contains_key(&lock.0) {
        reply.complete_into(Err(ClusterError::Busy), &mut ctx.comp_batch);
        return;
    }
    let req = ctx.alloc_req();
    ctx.trace(
        lock.0,
        ProtocolEvent::RequestStart {
            req,
            mode,
            upgrade: false,
        },
    );
    let node = lock_state(locks, ctx.me, protocol, lock);
    let result = ctx.observed(lock, |obs, buf| node.on_acquire_into(mode, 0, buf, obs));
    let node_epoch = node.epoch();
    match result {
        Ok(()) => {
            let Some(reply) = ctx.fast_grant(lock, req, reply) else {
                return;
            };
            // Only ops that actually wait pay for a start timestamp.
            let started = Instant::now();
            ctx.active.insert(lock.0, req);
            ctx.waiters.insert(
                (lock.0, req),
                Waiter {
                    reply,
                    req,
                    started,
                },
            );
            ctx.flush(lock, req, 0, node_epoch, put);
        }
        Err(e) => reply.complete_into(Err(ClusterError::Acquire(e)), &mut ctx.comp_batch),
    }
}

/// Process one blocking-or-pipelined Rule 7 upgrade.
fn do_upgrade(
    ctx: &mut NodeCtx<'_>,
    locks: &mut FastMap<u32, HierNode>,
    protocol: ProtocolConfig,
    lock: LockId,
    reply: Reply,
    put: &dyn Fn(NodeId, Bytes),
) {
    if ctx.active.contains_key(&lock.0) {
        reply.complete_into(Err(ClusterError::Busy), &mut ctx.comp_batch);
        return;
    }
    let req = ctx.alloc_req();
    ctx.trace(
        lock.0,
        ProtocolEvent::RequestStart {
            req,
            mode: Mode::Write,
            upgrade: true,
        },
    );
    let node = lock_state(locks, ctx.me, protocol, lock);
    let result = ctx.observed(lock, |obs, buf| node.on_upgrade_into(buf, obs));
    let node_epoch = node.epoch();
    match result {
        Ok(()) => {
            let Some(reply) = ctx.fast_grant(lock, req, reply) else {
                return;
            };
            let started = Instant::now();
            ctx.active.insert(lock.0, req);
            ctx.waiters.insert(
                (lock.0, req),
                Waiter {
                    reply,
                    req,
                    started,
                },
            );
            ctx.flush(lock, req, 0, node_epoch, put);
        }
        Err(e) => reply.complete_into(Err(ClusterError::Upgrade(e)), &mut ctx.comp_batch),
    }
}

/// Process one blocking-or-pipelined release.
fn do_release(
    ctx: &mut NodeCtx<'_>,
    locks: &mut FastMap<u32, HierNode>,
    protocol: ProtocolConfig,
    lock: LockId,
    reply: Reply,
    put: &dyn Fn(NodeId, Bytes),
) {
    let node = lock_state(locks, ctx.me, protocol, lock);
    let result = ctx.observed(lock, |obs, buf| node.on_release_into(buf, obs));
    let node_epoch = node.epoch();
    match result {
        Ok(()) => {
            // Releases open no span: their frames travel with req 0
            // (uncorrelated).
            ctx.flush(lock, 0, 0, node_epoch, put);
            ctx.metrics.lock().expect("metrics mutex").releases += 1;
            reply.complete_into(Ok(()), &mut ctx.comp_batch);
        }
        Err(e) => reply.complete_into(Err(ClusterError::Release(e)), &mut ctx.comp_batch),
    }
}

/// Decode and apply one correlated protocol frame (possibly one sub-frame
/// of a container). Returns false if the frame was malformed.
fn on_protocol_frame(
    ctx: &mut NodeCtx<'_>,
    locks: &mut FastMap<u32, HierNode>,
    protocol: ProtocolConfig,
    from: NodeId,
    payload: Bytes,
    put: &dyn Fn(NodeId, Bytes),
) -> bool {
    match codec::decode_corr(payload) {
        Ok((lock, req, hops, frame_epoch, message)) => {
            // One network leg of request `req`'s causal chain landed here;
            // record it before the handler so the hop precedes its
            // consequences.
            if req != 0 {
                ctx.trace(
                    lock.0,
                    ProtocolEvent::RequestHop {
                        req,
                        hop: hops as u32,
                    },
                );
            }
            let node = lock_state(locks, ctx.me, protocol, lock);
            // Rule R3: frames stamped with a generation other than the
            // receiving node's are fenced (dropped) instead of delivered;
            // `Recover` frames bypass the fence because they *install* the
            // new generation.
            let delivered = ctx.observed(lock, |obs, buf| {
                node.on_frame_into(from, frame_epoch, message, buf, obs)
            });
            if !delivered {
                ctx.fenced += 1;
            }
            let node_epoch = node.epoch();
            ctx.flush(lock, req, hops, node_epoch, put);
            true
        }
        Err(_) => false,
    }
}

/// What the worker loop should do after one input.
#[derive(PartialEq, Eq)]
enum Flow {
    /// Keep serving.
    Run,
    /// Clean shutdown: return protocol state.
    Stop,
    /// Simulated crash: abandon state and enter the silent drain loop.
    Crash,
}

/// Handle one worker input.
#[allow(clippy::too_many_arguments)]
fn handle_input(
    input: Input,
    ctx: &mut NodeCtx<'_>,
    locks: &mut FastMap<u32, HierNode>,
    config: &ClusterConfig,
    gate: &ShardGate,
    decode_errors: &mut u64,
    inbox: &mut Vec<Bytes>,
    subframes: &mut Vec<Bytes>,
    rel_events: &mut Vec<(u32, ProtocolEvent)>,
    in_flight: &AtomicU64,
    put: &dyn Fn(NodeId, Bytes),
) -> Flow {
    match input {
        Input::Net { from, frame } => {
            // Transport addresses are worker slots; fold back to the node.
            let from = NodeId(from.0 / ctx.shards);
            let mut direct = None;
            let mut malformed = false;
            match ctx.endpoint.as_mut() {
                Some(ep) => {
                    malformed = ep
                        .on_frame(
                            from,
                            frame,
                            &mut |payload| inbox.push(payload),
                            &mut |lock, event| rel_events.push((lock, event)),
                        )
                        .is_err();
                }
                None => direct = Some(frame),
            }
            for payload in direct.into_iter().chain(inbox.drain(..)) {
                if codec::is_container(&payload) {
                    match codec::decode_container_into(payload, subframes) {
                        Ok(()) => {
                            for sub in subframes.drain(..) {
                                if !on_protocol_frame(ctx, locks, config.protocol, from, sub, put) {
                                    malformed = true;
                                }
                            }
                        }
                        Err(_) => malformed = true,
                    }
                } else if !on_protocol_frame(ctx, locks, config.protocol, from, payload, put) {
                    malformed = true;
                }
            }
            if malformed {
                *decode_errors += 1;
                ctx.trace(TRANSPORT_LOCK, ProtocolEvent::DecodeError { from: from.0 });
            }
            // This physical frame is fully absorbed; any traffic it caused
            // has already raised the gauge above.
            in_flight.fetch_sub(1, Ordering::Relaxed);
            Flow::Run
        }
        Input::Acquire { lock, mode, reply } => {
            gate.leave(1);
            do_acquire(ctx, locks, config.protocol, lock, mode, reply, put);
            Flow::Run
        }
        Input::TryAcquire { lock, mode, reply } => {
            gate.leave(1);
            let node = lock_state(locks, ctx.me, config.protocol, lock);
            if node.can_admit_locally(mode) {
                let req = ctx.alloc_req();
                ctx.trace(
                    lock.0,
                    ProtocolEvent::RequestStart {
                        req,
                        mode,
                        upgrade: false,
                    },
                );
                ctx.observed(lock, |obs, buf| {
                    node.on_acquire_into(mode, 0, buf, obs)
                        .expect("local admit is well-formed")
                });
                // `can_admit_locally` promises "zero messages": the admit
                // may produce only the local grant, never a Send.
                debug_assert!(
                    ctx.effect_buf
                        .iter()
                        .all(|e| matches!(e, Effect::Granted { .. })),
                    "try_acquire fast path emitted network traffic"
                );
                // The fast path registers no waiter, so close the span and
                // count the zero-message, zero-hop grant here.
                let node_epoch = node.epoch();
                ctx.flush(lock, req, 0, node_epoch, put);
                {
                    let mut m = ctx.metrics.lock().expect("metrics mutex");
                    m.acquire_latency.record(0);
                    m.acquire_hops.record(0);
                    m.acquires += 1;
                }
                ctx.trace(lock.0, ProtocolEvent::RequestGrant { req, hops: 0 });
                reply.complete(true);
            } else {
                reply.complete(false);
            }
            Flow::Run
        }
        Input::Upgrade { lock, reply } => {
            gate.leave(1);
            do_upgrade(ctx, locks, config.protocol, lock, reply, put);
            Flow::Run
        }
        Input::Release { lock, reply } => {
            gate.leave(1);
            do_release(ctx, locks, config.protocol, lock, reply, put);
            Flow::Run
        }
        Input::Ops { ops, tx } => {
            gate.leave(ops.len());
            // Synchronously-settled outcomes accumulate in the chunk batch
            // and ship as one channel send below; only deferred grants pay
            // a per-completion send (later, when they resolve).
            debug_assert!(ctx.comp_batch.is_empty());
            ctx.comp_batch.reserve(ops.len());
            for op in ops {
                let reply = Reply::shared(tx.clone(), op.lock, op.tag, &ctx.replies_dropped);
                match op.kind {
                    OpKind::Acquire(mode) => {
                        do_acquire(ctx, locks, config.protocol, op.lock, mode, reply, put)
                    }
                    OpKind::Upgrade => do_upgrade(ctx, locks, config.protocol, op.lock, reply, put),
                    OpKind::Release => do_release(ctx, locks, config.protocol, op.lock, reply, put),
                }
            }
            if !ctx.comp_batch.is_empty() {
                let n = ctx.comp_batch.len() as u64;
                if tx.send(std::mem::take(&mut ctx.comp_batch)).is_err() {
                    ctx.replies_dropped.fetch_add(n, Ordering::Relaxed);
                }
            }
            Flow::Run
        }
        Input::Die => Flow::Crash,
        Input::Panic => panic!("injected worker panic (Input::Panic test hook)"),
        Input::OrphanWaiter { lock } => {
            if let Some(&req) = ctx.active.get(&lock.0) {
                // Dropping the Reply un-completed closes the caller's
                // channel; `active` stays, so the eventual grant exercises
                // the orphaned-completion accounting in `flush`.
                ctx.waiters.remove(&(lock.0, req));
            }
            Flow::Run
        }
        Input::Isolate { dead } => {
            if let Some(ep) = ctx.endpoint.as_mut() {
                ep.forget_peer(dead);
            }
            Flow::Run
        }
        Input::Scan(tx) => {
            let rows: Vec<(u32, bool, u32)> = locks
                .iter()
                .map(|(&l, n)| (l, n.has_token(), n.epoch()))
                .collect();
            // The coordinator may have timed out and gone; that is its
            // problem, not ours.
            let _ = tx.send((ctx.me.0, rows));
            Flow::Run
        }
        Input::PeerDown {
            dead,
            survivors,
            plans,
        } => {
            ctx.trace(
                TRANSPORT_LOCK,
                ProtocolEvent::NodeSuspected { node: dead.0 },
            );
            // The link layer must stop expecting acks from the dead node
            // even if no explicit `Isolate` preceded this wave.
            if let Some(ep) = ctx.endpoint.as_mut() {
                ep.forget_peer(dead);
            }
            for &(lock, new_root, new_epoch) in plans.iter() {
                if shard_of(LockId(lock), ctx.shards as usize) != ctx.shard as usize {
                    continue;
                }
                let lock = LockId(lock);
                let node = lock_state(locks, ctx.me, config.protocol, lock);
                ctx.observed(lock, |obs, buf| {
                    node.on_peer_down_into(dead, NodeId(new_root), new_epoch, &survivors, buf, obs)
                });
                let node_epoch = node.epoch();
                ctx.flush(lock, 0, 0, node_epoch, put);
            }
            Flow::Run
        }
        Input::Shutdown => Flow::Stop,
    }
}

#[allow(clippy::too_many_arguments)]
pub(crate) fn worker_loop(
    me: NodeId,
    shard: u32,
    shards: u32,
    config: ClusterConfig,
    rx: Receiver<Input>,
    transport: Arc<dyn Transport>,
    messages: Arc<AtomicU64>,
    in_flight: Arc<AtomicU64>,
    unacked: Arc<AtomicU64>,
    replies_dropped: Arc<AtomicU64>,
    epoch: Instant,
    metrics: Arc<Mutex<NodeMetrics>>,
    gate: Arc<ShardGate>,
    beats: Arc<Vec<AtomicU64>>,
    beat_slot: usize,
) -> NodeExit {
    // This shard's protocol instances, created on first touch: a node
    // hosting a million locks pays only for the ones it uses. The table is
    // pre-sized to the shard's expected share so a million-lock churn run
    // never stalls on mid-run rehashes of a multi-hundred-megabyte map.
    let mut locks: FastMap<u32, HierNode> =
        FastMap::with_capacity_and_hasher(config.locks / shards as usize + 1, Default::default());
    let mut ctx = NodeCtx {
        me,
        shard,
        shards,
        epoch,
        fenced: 0,
        recorder: (config.trace_capacity > 0).then(|| RingRecorder::new(config.trace_capacity)),
        waiters: FastMap::default(),
        active: FastMap::default(),
        endpoint: config
            .reliable
            .map(|cfg| Endpoint::new(me, config.nodes, cfg, Arc::clone(&unacked))),
        // One long-lived encode buffer per worker: every outgoing frame is
        // built in place and copied out, so steady-state transmission does
        // no buffer growth. The container scratch is separate because a
        // container is assembled from frames the encode scratch already
        // produced.
        encode_scratch: bytes::BytesMut::with_capacity(64),
        container_scratch: bytes::BytesMut::with_capacity(256),
        // One long-lived effect sink per worker: every protocol entry point
        // drains into it via the `*_into` API, so steady-state protocol
        // steps do no heap allocation for effects.
        effect_buf: EffectBuf::new(),
        metrics: &metrics,
        messages,
        in_flight: Arc::clone(&in_flight),
        replies_dropped,
        next_req: shard as u64,
        coalesce_on: config.coalesce,
        pending: (0..config.nodes).map(|_| Vec::new()).collect(),
        pending_peers: Vec::with_capacity(config.nodes),
        proto_sent: vec![0; config.nodes],
        wire_sent: vec![0; config.nodes],
        comp_batch: Vec::new(),
    };
    let mut decode_errors: u64 = 0;

    // Every physical frame leaving this worker raises the in-flight gauge;
    // the gauge falls when the receiving worker finishes processing it (or
    // when the transport kills it). Peers are addressed by node; the slot
    // is the same shard on the destination (lock → shard is
    // node-independent, so lock state for this shard's locks lives on this
    // shard everywhere).
    let my_slot = NodeId(me.0 * shards + shard);
    let put = |to: NodeId, frame: Bytes| {
        in_flight.fetch_add(1, Ordering::Relaxed);
        transport.send(my_slot, NodeId(to.0 * shards + shard), frame);
    };

    // Reused per-iteration scratch for the reliability shim's outputs and
    // container unpacking.
    let mut inbox: Vec<Bytes> = Vec::new();
    let mut subframes: Vec<Bytes> = Vec::new();
    let mut rel_events: Vec<(u32, ProtocolEvent)> = Vec::new();

    'outer: loop {
        // Refresh the heartbeat every iteration; a worker that stops
        // looping (crashed, panicked, wedged) goes stale and the failure
        // detector flags its node.
        beats[beat_slot].store(epoch.elapsed().as_micros() as u64, Ordering::Relaxed);
        // With unacked frames outstanding, sleep only until the earliest
        // retransmission deadline; either way wake at least every
        // `HEARTBEAT` so the stamp above stays fresh while idle.
        let wait = match ctx.endpoint.as_ref().and_then(Endpoint::next_due) {
            Some(due) => due.saturating_duration_since(Instant::now()).min(HEARTBEAT),
            None => HEARTBEAT,
        };
        let first = match rx.recv_timeout(wait) {
            Ok(input) => Some(input),
            Err(RecvTimeoutError::Timeout) => None,
            Err(RecvTimeoutError::Disconnected) => break 'outer,
        };
        // Drain a batch: the first (blocking) input plus whatever else is
        // already queued, bounded so coalesce flushes and retransmission
        // ticks stay timely under sustained load.
        let mut flow = Flow::Run;
        if let Some(input) = first {
            flow = handle_input(
                input,
                &mut ctx,
                &mut locks,
                &config,
                &gate,
                &mut decode_errors,
                &mut inbox,
                &mut subframes,
                &mut rel_events,
                &in_flight,
                &put,
            );
            let mut drained = 1;
            while flow == Flow::Run && drained < BATCH {
                match rx.try_recv() {
                    Ok(input) => {
                        flow = handle_input(
                            input,
                            &mut ctx,
                            &mut locks,
                            &config,
                            &gate,
                            &mut decode_errors,
                            &mut inbox,
                            &mut subframes,
                            &mut rel_events,
                            &in_flight,
                            &put,
                        );
                        drained += 1;
                    }
                    Err(_) => break,
                }
            }
        }
        if flow == Flow::Crash {
            // Simulated node death. Everything buffered dies with the node
            // *before* the batch-boundary flush below would transmit it: a
            // crashed node sends nothing, ever again.
            for (_, w) in ctx.waiters.drain() {
                w.reply.complete(Err(ClusterError::WorkerDied));
            }
            ctx.active.clear();
            for &peer in &ctx.pending_peers {
                let k = ctx.pending[peer as usize].len() as u64;
                ctx.pending[peer as usize].clear();
                in_flight.fetch_sub(k, Ordering::Relaxed);
            }
            ctx.pending_peers.clear();
            ctx.effect_buf.clear();
            // Stop owing the link layer anything (and release whatever it
            // still counted against the unacked gauge on our behalf).
            if let Some(ep) = ctx.endpoint.as_mut() {
                for n in 0..config.nodes as u32 {
                    ep.forget_peer(NodeId(n));
                }
            }
            crashed_loop(&rx, &gate, &in_flight);
            let (trace, trace_dropped) = match ctx.recorder {
                Some(ring) => {
                    let dropped = ring.dropped();
                    (ring.into_records(), dropped)
                }
                None => (Vec::new(), 0),
            };
            // An empty lock map: a dead node's state is gone, and the
            // shutdown audit must not see it.
            return NodeExit {
                locks: FastMap::default(),
                trace,
                trace_dropped,
                decode_errors,
                frames_fenced: ctx.fenced,
                links: Vec::new(),
                coalesce: Vec::new(),
            };
        }
        // Batch boundary: transmit coalesced traffic, then let the
        // reliability shim retransmit and flush acks.
        ctx.flush_pending(&put);
        if let Some(ep) = ctx.endpoint.as_mut() {
            let now = Instant::now();
            if ep.next_due().is_some_and(|due| due <= now) {
                ep.on_tick(now, &mut |to, frame| put(to, frame), &mut |lock, event| {
                    rel_events.push((lock, event))
                });
            }
            // Flush cumulative acks owed after this round of input.
            ep.take_acks(&mut |to, frame| put(to, frame));
            if let Some(ring) = &mut ctx.recorder {
                for (lock, event) in rel_events.drain(..) {
                    ring.record(epoch.elapsed().as_micros() as u64, lock, me.0, event);
                }
            }
            rel_events.clear();
        }
        if flow == Flow::Stop {
            break;
        }
    }
    let (trace, trace_dropped) = match ctx.recorder {
        Some(ring) => {
            let dropped = ring.dropped();
            (ring.into_records(), dropped)
        }
        None => (Vec::new(), 0),
    };
    let coalesce = ctx
        .proto_sent
        .iter()
        .zip(ctx.wire_sent.iter())
        .enumerate()
        .filter(|(_, (&p, &w))| p + w > 0)
        .map(|(peer, (&p, &w))| CoalesceStat {
            peer: peer as u32,
            proto_sent: p,
            wire_sent: w,
        })
        .collect();
    NodeExit {
        locks,
        trace,
        trace_dropped,
        decode_errors,
        frames_fenced: ctx.fenced,
        links: ctx.endpoint.map(|ep| ep.snapshots()).unwrap_or_default(),
        coalesce,
    }
}

/// The post-crash drain loop: a dead node neither sends nor processes, but
/// it must keep *consuming* so the cluster's accounting stays truthful —
/// every arriving physical frame still decrements the in-flight gauge, and
/// every application operation is refused with
/// [`ClusterError::WorkerDied`] instead of hanging its caller. Exits on
/// `Shutdown` (or channel closure).
fn crashed_loop(rx: &Receiver<Input>, gate: &ShardGate, in_flight: &AtomicU64) {
    loop {
        match rx.recv() {
            Ok(Input::Net { .. }) => {
                in_flight.fetch_sub(1, Ordering::Relaxed);
            }
            Ok(Input::Acquire { reply, .. })
            | Ok(Input::Upgrade { reply, .. })
            | Ok(Input::Release { reply, .. }) => {
                gate.leave(1);
                reply.complete(Err(ClusterError::WorkerDied));
            }
            Ok(Input::TryAcquire { reply, .. }) => {
                gate.leave(1);
                reply.complete(false);
            }
            Ok(Input::Ops { ops, tx }) => {
                gate.leave(ops.len());
                let comps: Vec<Completion> = ops
                    .iter()
                    .map(|op| Completion {
                        lock: op.lock,
                        tag: op.tag,
                        result: Err(ClusterError::WorkerDied),
                    })
                    .collect();
                let _ = tx.send(comps);
            }
            Ok(Input::Scan(_))
            | Ok(Input::Die)
            | Ok(Input::Isolate { .. })
            | Ok(Input::PeerDown { .. })
            | Ok(Input::Panic)
            | Ok(Input::OrphanWaiter { .. }) => {}
            Ok(Input::Shutdown) | Err(_) => break,
        }
    }
}
