//! The cluster runtime: node threads, the pluggable transport, the optional
//! reliability shim, and lifecycle management.

use crate::codec;
use crate::handle::{ClusterError, NodeHandle, Reply};
use crate::reliable::{Endpoint, PeerSnapshot, ReliableConfig};
use crate::transport::{
    Delayed, Direct, Faulty, LinkFaults, Transport, TransportKind, TRANSPORT_LOCK,
};
use bytes::Bytes;
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use dlm_core::{
    audit, AuditError, Effect, EffectBuf, HierNode, LockId, Mode, NodeId, ProtocolConfig,
};
use dlm_metrics::Histogram;
use dlm_trace::{
    merge_records, NullObserver, Observer, ProtocolEvent, Recorder, RingRecorder, Stamp,
    TraceRecord,
};
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Cluster construction parameters.
#[derive(Debug, Clone, Copy)]
pub struct ClusterConfig {
    /// Number of node threads.
    pub nodes: usize,
    /// Number of lock objects hosted (ids `0..locks`).
    pub locks: usize,
    /// Protocol feature toggles.
    pub protocol: ProtocolConfig,
    /// The interconnect carrying encoded frames between nodes; see
    /// [`TransportKind`].
    pub transport: TransportKind,
    /// When set, every protocol frame travels through the per-link
    /// reliability shim (sequence numbers, cumulative acks, retransmission,
    /// dedup/reorder buffering) — required for a clean run over
    /// [`TransportKind::Faulty`] links with a non-zero drop rate.
    pub reliable: Option<ReliableConfig>,
    /// Per-node flight-recorder capacity for structured protocol events;
    /// `0` disables tracing (node threads then pay one branch per event
    /// site). Retained records are merged at shutdown into
    /// [`ClusterReport::trace`].
    pub trace_capacity: usize,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            nodes: 2,
            locks: 1,
            protocol: ProtocolConfig::paper(),
            transport: TransportKind::Direct,
            reliable: None,
            trace_capacity: 0,
        }
    }
}

/// What a node thread receives.
pub(crate) enum Input {
    /// An encoded wire frame from `from`.
    Net { from: NodeId, frame: Bytes },
    /// Application request: acquire `lock` in `mode`; answer on `reply`.
    Acquire {
        lock: LockId,
        mode: Mode,
        reply: Reply,
    },
    /// Application request: acquire `lock` in `mode` only if that is
    /// possible locally without waiting; answer on `reply` with
    /// `Ok(granted)`.
    TryAcquire {
        lock: LockId,
        mode: Mode,
        reply: crate::handle::TryReply,
    },
    /// Application request: Rule 7 upgrade on `lock`.
    Upgrade { lock: LockId, reply: Reply },
    /// Application request: release `lock`.
    Release { lock: LockId, reply: Reply },
    /// Tear down the node thread; it returns its protocol states.
    Shutdown,
}

/// Per-directed-link telemetry merged from the reliability endpoints and the
/// transport's fault tallies at shutdown. All counters are zero unless the
/// corresponding machinery was configured ([`ClusterConfig::reliable`],
/// [`TransportKind::Faulty`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LinkReport {
    /// Sender.
    pub from: u32,
    /// Receiver.
    pub to: u32,
    /// Data frames originally sent (retransmissions not included).
    pub data_sent: u64,
    /// Retransmissions of unacked data frames.
    pub retransmits: u64,
    /// Bare cumulative acks the receiver sent back for this link's data.
    pub acks_sent: u64,
    /// Duplicate data frames the receiver suppressed.
    pub dups_suppressed: u64,
    /// Out-of-order data frames the receiver parked until the gap filled.
    pub reorders_buffered: u64,
    /// Frames the transport dropped in flight.
    pub dropped: u64,
    /// Extra copies the transport injected.
    pub duplicated: u64,
    /// Frames the transport held back past later traffic.
    pub reordered: u64,
}

/// Final report of a shut-down cluster.
#[derive(Debug)]
pub struct ClusterReport {
    /// Total protocol messages transmitted (retransmissions and acks are
    /// link-layer frames and not counted here; see [`Self::links`]).
    pub messages_sent: u64,
    /// Per-lock audit findings on the final states (with the cluster
    /// quiesced, these should all be empty).
    pub audit_errors: Vec<AuditError>,
    /// Merged structured event trace (wall-clock µs since cluster start;
    /// empty when [`ClusterConfig::trace_capacity`] is 0). Ordered by
    /// `(at, node)` with a fresh global sequence. Transport and reliability
    /// events that no lock can claim carry the sentinel lock id
    /// [`TRANSPORT_LOCK`].
    pub trace: Vec<TraceRecord>,
    /// Events evicted from the per-node flight recorders before shutdown
    /// (0 means [`Self::trace`] is complete).
    pub trace_dropped: u64,
    /// Completion replies whose application-side receiver had already gone
    /// away (e.g. a handle dropped mid-call). Non-zero values mean some
    /// caller never saw its outcome.
    pub replies_dropped: u64,
    /// Frames that arrived but could not be decoded (truncated, bad tag,
    /// bad reliability header). The receiving node counts them and keeps
    /// serving; on a healthy in-process transport this is always 0.
    pub decode_errors: u64,
    /// Per-link reliability/fault counters, sorted by `(from, to)`; empty
    /// when neither the reliability shim nor fault injection was active.
    pub links: Vec<LinkReport>,
    /// Wall-clock latency (µs) of every completed application acquire and
    /// upgrade, merged across nodes: issue at the node thread → grant
    /// delivered to the waiter.
    pub acquire_latency: Histogram,
    /// Causal network hops on each completed operation's granting chain
    /// (0 = local admit without any message).
    pub acquire_hops: Histogram,
}

/// An in-process cluster of protocol nodes.
pub struct Cluster {
    inputs: Vec<Sender<Input>>,
    joins: Vec<JoinHandle<NodeExit>>,
    transport: Arc<dyn Transport>,
    messages: Arc<AtomicU64>,
    replies_dropped: Arc<AtomicU64>,
    /// Physical frames created but not yet fully processed by their
    /// receiving node (includes frames parked inside the transport).
    in_flight: Arc<AtomicU64>,
    /// Data sequences sent but not yet cumulatively acked (reliability shim
    /// only; 0 otherwise).
    unacked: Arc<AtomicU64>,
    /// Per-node request metrics, shared with the node threads so
    /// [`Cluster::metrics_snapshot`] can read them live. Each mutex is
    /// touched once per completed *operation* (not per message), so the
    /// steady-state message path never contends on it.
    metrics: Vec<Arc<Mutex<NodeMetrics>>>,
    locks: usize,
}

/// Per-node operation metrics: request latency/hop distributions and
/// operation counters. Owned by the node thread, read by
/// [`Cluster::metrics_snapshot`] under a short-lived mutex.
#[derive(Debug, Default)]
struct NodeMetrics {
    /// Wall-clock µs, issue → grant, for completed acquires and upgrades.
    acquire_latency: Histogram,
    /// Causal hop depth of the frame that delivered each grant.
    acquire_hops: Histogram,
    /// Completed acquire operations (blocking and try fast path).
    acquires: u64,
    /// Completed Rule 7 upgrades.
    upgrades: u64,
    /// Completed releases.
    releases: u64,
}

/// What a node thread hands back at shutdown.
struct NodeExit {
    locks: Vec<HierNode>,
    trace: Vec<TraceRecord>,
    trace_dropped: u64,
    decode_errors: u64,
    links: Vec<PeerSnapshot>,
}

impl Cluster {
    /// Spawn the cluster. Node 0 initially holds every token.
    pub fn new(config: ClusterConfig) -> Self {
        assert!(config.nodes >= 1);
        assert!(config.locks >= 1);
        let messages = Arc::new(AtomicU64::new(0));
        let replies_dropped = Arc::new(AtomicU64::new(0));
        let in_flight = Arc::new(AtomicU64::new(0));
        let unacked = Arc::new(AtomicU64::new(0));
        // One epoch shared by every node thread, so wall-clock trace stamps
        // are comparable across threads and merge into one timeline.
        let epoch = Instant::now();

        let channels: Vec<(Sender<Input>, Receiver<Input>)> =
            (0..config.nodes).map(|_| unbounded()).collect();
        let inputs: Vec<Sender<Input>> = channels.iter().map(|(tx, _)| tx.clone()).collect();

        let transport: Arc<dyn Transport> = match config.transport {
            TransportKind::Direct => Arc::new(Direct::new(inputs.clone(), Arc::clone(&in_flight))),
            TransportKind::Delayed(delay) => {
                Arc::new(Delayed::new(inputs.clone(), Arc::clone(&in_flight), delay))
            }
            TransportKind::Faulty(faults) => Arc::new(Faulty::new(
                inputs.clone(),
                Arc::clone(&in_flight),
                faults,
                config.nodes,
                config.trace_capacity,
                epoch,
            )),
        };

        let metrics: Vec<Arc<Mutex<NodeMetrics>>> = (0..config.nodes)
            .map(|_| Arc::new(Mutex::new(NodeMetrics::default())))
            .collect();

        let mut joins = Vec::with_capacity(config.nodes);
        for (i, (_, rx)) in channels.into_iter().enumerate() {
            let me = NodeId(i as u32);
            let link = Arc::clone(&transport);
            let counter = Arc::clone(&messages);
            let gauge = Arc::clone(&in_flight);
            let unacked_gauge = Arc::clone(&unacked);
            let node_metrics = Arc::clone(&metrics[i]);
            let cfg = config;
            let join = std::thread::Builder::new()
                .name(format!("dlm-node-{i}"))
                .spawn(move || {
                    node_loop(
                        me,
                        cfg,
                        rx,
                        link,
                        counter,
                        gauge,
                        unacked_gauge,
                        epoch,
                        node_metrics,
                    )
                })
                .expect("spawn node thread");
            joins.push(join);
        }

        Cluster {
            inputs,
            joins,
            transport,
            messages,
            replies_dropped,
            in_flight,
            unacked,
            metrics,
            locks: config.locks,
        }
    }

    /// A cloneable blocking handle to node `id`.
    pub fn handle(&self, id: u32) -> NodeHandle {
        NodeHandle::new(
            NodeId(id),
            self.inputs[id as usize].clone(),
            Arc::clone(&self.replies_dropped),
        )
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.inputs.len()
    }

    /// Always false (a cluster has at least one node).
    pub fn is_empty(&self) -> bool {
        self.inputs.is_empty()
    }

    /// Protocol messages transmitted so far.
    pub fn messages_sent(&self) -> u64 {
        self.messages.load(Ordering::Relaxed)
    }

    /// Completion replies dropped so far because the application-side
    /// receiver was already gone (see [`ClusterReport::replies_dropped`]).
    pub fn replies_dropped(&self) -> u64 {
        self.replies_dropped.load(Ordering::Relaxed)
    }

    /// Render a Prometheus-text-format snapshot of the cluster's live
    /// metrics: global counters and gauges, per-node operation counters,
    /// and cluster-wide acquire-latency / hops-per-acquire summaries with
    /// p50/p95/p99 quantiles.
    ///
    /// Safe to call at any time; each node's metrics mutex is held only long
    /// enough to copy its histograms out.
    pub fn metrics_snapshot(&self) -> String {
        use std::fmt::Write;
        let mut out = String::with_capacity(1024);
        let counter = |out: &mut String, name: &str, help: &str, v: u64| {
            let _ = writeln!(out, "# HELP {name} {help}");
            let _ = writeln!(out, "# TYPE {name} counter");
            let _ = writeln!(out, "{name} {v}");
        };
        counter(
            &mut out,
            "dlm_messages_total",
            "Protocol messages transmitted.",
            self.messages_sent(),
        );
        counter(
            &mut out,
            "dlm_replies_dropped_total",
            "Completion replies whose receiver had gone away.",
            self.replies_dropped(),
        );
        let gauge = |out: &mut String, name: &str, help: &str, v: u64| {
            let _ = writeln!(out, "# HELP {name} {help}");
            let _ = writeln!(out, "# TYPE {name} gauge");
            let _ = writeln!(out, "{name} {v}");
        };
        gauge(
            &mut out,
            "dlm_frames_in_flight",
            "Physical frames sent but not yet fully processed.",
            self.in_flight.load(Ordering::Relaxed),
        );
        gauge(
            &mut out,
            "dlm_frames_unacked",
            "Data sequences sent but not yet cumulatively acked.",
            self.unacked.load(Ordering::Relaxed),
        );

        let mut latency = Histogram::new();
        let mut hops = Histogram::new();
        let mut per_node: Vec<(u64, u64, u64)> = Vec::with_capacity(self.metrics.len());
        for m in &self.metrics {
            let m = m.lock().expect("metrics mutex");
            latency.merge(&m.acquire_latency);
            hops.merge(&m.acquire_hops);
            per_node.push((m.acquires, m.upgrades, m.releases));
        }
        for (name, help, pick) in [
            (
                "dlm_acquires_total",
                "Completed acquire operations.",
                0usize,
            ),
            ("dlm_upgrades_total", "Completed Rule 7 upgrades.", 1),
            ("dlm_releases_total", "Completed releases.", 2),
        ] {
            let _ = writeln!(out, "# HELP {name} {help}");
            let _ = writeln!(out, "# TYPE {name} counter");
            for (node, row) in per_node.iter().enumerate() {
                let v = [row.0, row.1, row.2][pick];
                let _ = writeln!(out, "{name}{{node=\"{node}\"}} {v}");
            }
        }
        for (name, help, h) in [
            (
                "dlm_acquire_latency_us",
                "Issue-to-grant wall-clock latency of completed operations (microseconds).",
                &latency,
            ),
            (
                "dlm_acquire_hops",
                "Causal network hops on each completed operation's granting chain.",
                &hops,
            ),
        ] {
            let p = h.percentiles();
            let _ = writeln!(out, "# HELP {name} {help}");
            let _ = writeln!(out, "# TYPE {name} summary");
            let _ = writeln!(out, "{name}{{quantile=\"0.5\"}} {}", p.p50);
            let _ = writeln!(out, "{name}{{quantile=\"0.95\"}} {}", p.p95);
            let _ = writeln!(out, "{name}{{quantile=\"0.99\"}} {}", p.p99);
            let sum = (h.mean() * h.count() as f64).round() as u64;
            let _ = writeln!(out, "{name}_sum {sum}");
            let _ = writeln!(out, "{name}_count {}", h.count());
        }
        out
    }

    /// Test hook: push a raw wire frame into the cluster as if `from` had
    /// sent it to `to`. The frame takes the normal transport path (so it is
    /// subject to delay and fault injection) and counts as a physical frame
    /// but not as a protocol message — fault-injection tests use this to
    /// exercise the decode-error and reliability paths.
    pub fn inject_frame(&self, from: u32, to: u32, frame: Vec<u8>) {
        self.in_flight.fetch_add(1, Ordering::Relaxed);
        self.transport
            .send(NodeId(from), NodeId(to), Bytes::from(frame));
    }

    /// Quiescence wait: returns once the message counter has stayed stable
    /// for `idle` *and* no physical frame is in flight or awaiting ack,
    /// bounded by a generous default timeout. Use after all application
    /// operations completed to let release waves drain.
    pub fn quiesce(&self, idle: Duration) -> u64 {
        self.quiesce_within(idle, Duration::from_secs(30))
    }

    /// [`Self::quiesce`] with an explicit upper bound: returns the final
    /// message count once the cluster is idle for `idle`, or whatever the
    /// count is when `timeout` elapses first.
    ///
    /// "Idle" consults the in-flight gauge, not just the send counter: a
    /// frame parked in a [`TransportKind::Delayed`] router (or a dropped
    /// frame awaiting retransmission) produces no sends for longer than a
    /// small `idle` window, and judging by counter stability alone would
    /// declare quiescence while the cluster still owes itself traffic.
    pub fn quiesce_within(&self, idle: Duration, timeout: Duration) -> u64 {
        let start = Instant::now();
        let tick = (idle / 8).max(Duration::from_micros(200)).min(idle);
        let mut last = self.messages_sent();
        let mut stable_since = Instant::now();
        loop {
            if start.elapsed() >= timeout {
                return self.messages_sent();
            }
            std::thread::sleep(tick);
            let count = self.messages_sent();
            let busy = self.in_flight.load(Ordering::Relaxed) > 0
                || self.unacked.load(Ordering::Relaxed) > 0;
            if count != last || busy {
                last = count;
                stable_since = Instant::now();
            } else if stable_since.elapsed() >= idle {
                return count;
            }
        }
    }

    /// Shut down all threads and audit the final protocol states per lock.
    ///
    /// Teardown order matters:
    /// 1. *Drain* — wait (bounded) until no physical frame is in flight and
    ///    no data sequence is unacked, so nothing is still parked in a
    ///    router heap or a retransmission queue.
    /// 2. *Stop the transport* — any straggler still parked is flushed into
    ///    its destination channel while the node threads are alive.
    /// 3. *Stop the nodes* — `Shutdown` is queued behind the flushed
    ///    frames, so every node processes all delivered traffic first.
    ///
    /// The original teardown ran 3 before 2 and lost parked frames: nodes
    /// exited, then the router flushed into channels nobody would read,
    /// and the final audit saw a cluster missing messages it was owed.
    pub fn shutdown(self) -> ClusterReport {
        let deadline = Instant::now() + Duration::from_secs(10);
        while self.in_flight.load(Ordering::Relaxed) > 0 || self.unacked.load(Ordering::Relaxed) > 0
        {
            if Instant::now() >= deadline {
                break;
            }
            std::thread::sleep(Duration::from_micros(200));
        }
        let transport_report = self.transport.shutdown();

        for tx in &self.inputs {
            let _ = tx.send(Input::Shutdown);
        }
        let mut states: Vec<Vec<HierNode>> = Vec::with_capacity(self.joins.len());
        let mut traces: Vec<Vec<TraceRecord>> = Vec::with_capacity(self.joins.len() + 1);
        let mut trace_dropped = transport_report.trace_dropped;
        let mut decode_errors = 0;
        let mut per_node: Vec<(u32, Vec<PeerSnapshot>)> = Vec::new();
        for (i, join) in self.joins.into_iter().enumerate() {
            let exit = join.join().expect("node thread panicked");
            states.push(exit.locks);
            traces.push(exit.trace);
            trace_dropped += exit.trace_dropped;
            decode_errors += exit.decode_errors;
            if !exit.links.is_empty() {
                per_node.push((i as u32, exit.links));
            }
        }
        traces.push(transport_report.trace);

        let mut audit_errors = Vec::new();
        for lock in 0..self.locks {
            let nodes: Vec<HierNode> = states.iter().map(|s| s[lock].clone()).collect();
            audit_errors.extend(audit(&nodes, &[], true));
        }
        let mut acquire_latency = Histogram::new();
        let mut acquire_hops = Histogram::new();
        for m in &self.metrics {
            let m = m.lock().expect("metrics mutex");
            acquire_latency.merge(&m.acquire_latency);
            acquire_hops.merge(&m.acquire_hops);
        }
        ClusterReport {
            messages_sent: self.messages.load(Ordering::Relaxed),
            audit_errors,
            trace: merge_records(traces),
            trace_dropped,
            replies_dropped: self.replies_dropped.load(Ordering::Relaxed),
            decode_errors,
            links: merge_links(&per_node, &transport_report.faults),
            acquire_latency,
            acquire_hops,
        }
    }
}

/// Combine per-node reliability snapshots and transport fault tallies into
/// one directed-link table.
fn merge_links(per_node: &[(u32, Vec<PeerSnapshot>)], faults: &[LinkFaults]) -> Vec<LinkReport> {
    fn slot(map: &mut BTreeMap<(u32, u32), LinkReport>, from: u32, to: u32) -> &mut LinkReport {
        map.entry((from, to)).or_insert_with(|| LinkReport {
            from,
            to,
            ..LinkReport::default()
        })
    }
    let mut map: BTreeMap<(u32, u32), LinkReport> = BTreeMap::new();
    for (node, snaps) in per_node {
        for s in snaps {
            // `s` is `node`'s endpoint state for peer `s.peer`: the sender
            // half describes the `node → peer` link, the receiver half (and
            // the acks it produced) describes `peer → node`.
            let tx = slot(&mut map, *node, s.peer);
            tx.data_sent += s.data_sent;
            tx.retransmits += s.retransmits;
            let rx = slot(&mut map, s.peer, *node);
            rx.acks_sent += s.acks_sent;
            rx.dups_suppressed += s.dups_suppressed;
            rx.reorders_buffered += s.reorders_buffered;
        }
    }
    for f in faults {
        let link = slot(&mut map, f.from, f.to);
        link.dropped += f.dropped;
        link.duplicated += f.duplicated;
        link.reordered += f.reordered;
    }
    map.into_values().collect()
}

/// A blocked application operation: its reply channel plus the request-span
/// identity and issue time used for grant-side metrics and trace events.
struct Waiter {
    reply: Reply,
    /// Request id assigned at issue (`node << 32 | per-node counter`).
    req: u64,
    /// Wall-clock issue time, for the acquire-latency histogram.
    started: Instant,
}

/// Long-lived per-node-thread state threaded through every protocol entry
/// point: trace recorder, application waiters, reliability endpoint, encode
/// scratch, effect sink, shared metrics, and the request-id allocator.
///
/// Bundling these lets [`NodeCtx::flush`] — the one place effects become
/// frames, grants, and metrics — borrow them together without a
/// ten-argument function.
struct NodeCtx<'a> {
    me: NodeId,
    epoch: Instant,
    recorder: Option<RingRecorder>,
    waiters: HashMap<LockId, Waiter>,
    endpoint: Option<Endpoint>,
    encode_scratch: bytes::BytesMut,
    effect_buf: EffectBuf,
    metrics: &'a Mutex<NodeMetrics>,
    messages: Arc<AtomicU64>,
    next_req: u64,
}

impl NodeCtx<'_> {
    /// Allocate a fresh, never-zero request id: `node << 32 | counter`.
    fn alloc_req(&mut self) -> u64 {
        self.next_req += 1;
        ((self.me.0 as u64) << 32) | self.next_req
    }

    /// Record one span/transport event at this node, if tracing is on.
    fn trace(&mut self, lock: u32, event: ProtocolEvent) {
        if let Some(ring) = &mut self.recorder {
            ring.record(
                self.epoch.elapsed().as_micros() as u64,
                lock,
                self.me.0,
                event,
            );
        }
    }

    /// Drive one protocol entry point, stamping its events with wall-clock
    /// µs since the cluster epoch when this node records a trace.
    fn observed<T>(
        &mut self,
        lock: LockId,
        f: impl FnOnce(&mut dyn Observer, &mut EffectBuf) -> T,
    ) -> T {
        match &mut self.recorder {
            Some(ring) => {
                let mut stamp = Stamp {
                    at: self.epoch.elapsed().as_micros() as u64,
                    lock: lock.0,
                    sink: ring,
                };
                f(&mut stamp, &mut self.effect_buf)
            }
            None => f(&mut NullObserver, &mut self.effect_buf),
        }
    }

    /// Drain the effects of one protocol entry point. Sends are encoded
    /// with the correlated frame header — `req` is the request chain being
    /// extended (0 = uncorrelated) and `hops` the causal depth of whatever
    /// triggered this step, so outgoing frames carry `hops + 1` — wrapped
    /// by the reliability endpoint when one is configured, and put on the
    /// wire. Grants complete the lock's waiting application call, record
    /// its latency/hop metrics, and close its trace span.
    fn flush(&mut self, lock: LockId, req: u64, hops: u16, put: &dyn Fn(NodeId, Bytes)) {
        let NodeCtx {
            me,
            epoch,
            recorder,
            waiters,
            endpoint,
            encode_scratch,
            effect_buf,
            metrics,
            messages,
            ..
        } = self;
        for effect in effect_buf.drain() {
            let upgraded = matches!(effect, Effect::Upgraded);
            match effect {
                Effect::Send { to, message } => {
                    messages.fetch_add(1, Ordering::Relaxed);
                    let payload = codec::encode_corr_into(
                        lock,
                        req,
                        hops.saturating_add(1),
                        &message,
                        encode_scratch,
                    );
                    let frame = match endpoint {
                        Some(ep) => ep.wrap_data(to, lock.0, payload, Instant::now()),
                        None => payload,
                    };
                    put(to, frame);
                }
                Effect::Granted { .. } | Effect::Upgraded => {
                    if let Some(w) = waiters.remove(&lock) {
                        let latency = w.started.elapsed().as_micros() as u64;
                        {
                            let mut m = metrics.lock().expect("metrics mutex");
                            m.acquire_latency.record(latency);
                            m.acquire_hops.record(hops as u64);
                            if upgraded {
                                m.upgrades += 1;
                            } else {
                                m.acquires += 1;
                            }
                        }
                        if let Some(ring) = recorder {
                            ring.record(
                                epoch.elapsed().as_micros() as u64,
                                lock.0,
                                me.0,
                                ProtocolEvent::RequestGrant {
                                    req: w.req,
                                    hops: hops as u32,
                                },
                            );
                        }
                        w.reply.complete(Ok(()));
                    }
                }
            }
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn node_loop(
    me: NodeId,
    config: ClusterConfig,
    rx: Receiver<Input>,
    transport: Arc<dyn Transport>,
    messages: Arc<AtomicU64>,
    in_flight: Arc<AtomicU64>,
    unacked: Arc<AtomicU64>,
    epoch: Instant,
    metrics: Arc<Mutex<NodeMetrics>>,
) -> NodeExit {
    let mut locks: Vec<HierNode> = (0..config.locks)
        .map(|_| {
            if me == NodeId(0) {
                HierNode::with_token(me, config.protocol)
            } else {
                HierNode::new(me, NodeId(0), config.protocol)
            }
        })
        .collect();
    let mut ctx = NodeCtx {
        me,
        epoch,
        recorder: (config.trace_capacity > 0).then(|| RingRecorder::new(config.trace_capacity)),
        // Application waiters per lock: at most one outstanding op per lock
        // — enforced below with `ClusterError::Busy`, never by silent
        // clobbering.
        waiters: HashMap::new(),
        endpoint: config
            .reliable
            .map(|cfg| Endpoint::new(me, config.nodes, cfg, Arc::clone(&unacked))),
        // One long-lived encode buffer per node thread: every outgoing
        // frame is built in place and copied out, so steady-state
        // transmission does no buffer growth.
        encode_scratch: bytes::BytesMut::with_capacity(64),
        // One long-lived effect sink per node thread: every protocol entry
        // point drains into it via the `*_into` API, so steady-state
        // protocol steps do no heap allocation for effects.
        effect_buf: EffectBuf::new(),
        metrics: &metrics,
        messages,
        next_req: 0,
    };
    let mut decode_errors: u64 = 0;

    // Every physical frame leaving this node raises the in-flight gauge;
    // the gauge falls when the receiving node finishes processing it (or
    // when the transport kills it).
    let put = |to: NodeId, frame: Bytes| {
        in_flight.fetch_add(1, Ordering::Relaxed);
        transport.send(me, to, frame);
    };

    // Reused per-iteration scratch for the reliability shim's outputs.
    let mut inbox: Vec<Bytes> = Vec::new();
    let mut rel_events: Vec<(u32, ProtocolEvent)> = Vec::new();

    loop {
        // With unacked frames outstanding, sleep only until the earliest
        // retransmission deadline; otherwise block until input arrives.
        let input = match ctx.endpoint.as_ref().and_then(Endpoint::next_due) {
            Some(due) => match rx.recv_timeout(due.saturating_duration_since(Instant::now())) {
                Ok(input) => Some(input),
                Err(RecvTimeoutError::Timeout) => None,
                Err(RecvTimeoutError::Disconnected) => break,
            },
            None => match rx.recv() {
                Ok(input) => Some(input),
                Err(_) => break,
            },
        };
        match input {
            Some(Input::Net { from, frame }) => {
                let mut direct = None;
                let mut malformed = false;
                match ctx.endpoint.as_mut() {
                    Some(ep) => {
                        malformed = ep
                            .on_frame(
                                from,
                                frame,
                                &mut |payload| inbox.push(payload),
                                &mut |lock, event| rel_events.push((lock, event)),
                            )
                            .is_err();
                    }
                    None => direct = Some(frame),
                }
                for payload in direct.into_iter().chain(inbox.drain(..)) {
                    match codec::decode_corr(payload) {
                        Ok((lock, req, hops, message)) => {
                            // One network leg of request `req`'s causal
                            // chain landed here; record it before the
                            // handler so the hop precedes its consequences.
                            if req != 0 {
                                ctx.trace(
                                    lock.0,
                                    ProtocolEvent::RequestHop {
                                        req,
                                        hop: hops as u32,
                                    },
                                );
                            }
                            ctx.observed(lock, |obs, buf| {
                                locks[lock.index()].on_message_into(from, message, buf, obs)
                            });
                            ctx.flush(lock, req, hops, &put);
                        }
                        // A malformed frame is the sender's bug (or an
                        // injected fault), not a reason to take this node
                        // down: count it, trace it, keep serving.
                        Err(_) => malformed = true,
                    }
                }
                if malformed {
                    decode_errors += 1;
                    ctx.trace(TRANSPORT_LOCK, ProtocolEvent::DecodeError { from: from.0 });
                }
                // This physical frame is fully absorbed; any traffic it
                // caused has already raised the gauge above.
                in_flight.fetch_sub(1, Ordering::Relaxed);
            }
            Some(Input::Acquire { lock, mode, reply }) => {
                // A second outstanding op on this lock would clobber the
                // first caller's reply channel; refuse loudly instead.
                if ctx.waiters.contains_key(&lock) {
                    reply.complete(Err(ClusterError::Busy));
                } else {
                    let req = ctx.alloc_req();
                    let started = Instant::now();
                    ctx.trace(
                        lock.0,
                        ProtocolEvent::RequestStart {
                            req,
                            mode,
                            upgrade: false,
                        },
                    );
                    let result = ctx.observed(lock, |obs, buf| {
                        locks[lock.index()].on_acquire_into(mode, 0, buf, obs)
                    });
                    match result {
                        Ok(()) => {
                            ctx.waiters.insert(
                                lock,
                                Waiter {
                                    reply,
                                    req,
                                    started,
                                },
                            );
                            ctx.flush(lock, req, 0, &put);
                        }
                        Err(e) => reply.complete(Err(ClusterError::Acquire(e))),
                    }
                }
            }
            Some(Input::TryAcquire { lock, mode, reply }) => {
                let node = &mut locks[lock.index()];
                if node.can_admit_locally(mode) {
                    let req = ctx.alloc_req();
                    ctx.trace(
                        lock.0,
                        ProtocolEvent::RequestStart {
                            req,
                            mode,
                            upgrade: false,
                        },
                    );
                    ctx.observed(lock, |obs, buf| {
                        node.on_acquire_into(mode, 0, buf, obs)
                            .expect("local admit is well-formed")
                    });
                    // `can_admit_locally` promises "zero messages": the
                    // admit may produce only the local grant, never a Send.
                    debug_assert!(
                        ctx.effect_buf
                            .iter()
                            .all(|e| matches!(e, Effect::Granted { .. })),
                        "try_acquire fast path emitted network traffic"
                    );
                    // The fast path registers no waiter, so close the span
                    // and count the zero-message, zero-hop grant here.
                    ctx.flush(lock, req, 0, &put);
                    {
                        let mut m = ctx.metrics.lock().expect("metrics mutex");
                        m.acquire_latency.record(0);
                        m.acquire_hops.record(0);
                        m.acquires += 1;
                    }
                    ctx.trace(lock.0, ProtocolEvent::RequestGrant { req, hops: 0 });
                    reply.complete(true);
                } else {
                    reply.complete(false);
                }
            }
            Some(Input::Upgrade { lock, reply }) => {
                if ctx.waiters.contains_key(&lock) {
                    reply.complete(Err(ClusterError::Busy));
                } else {
                    let req = ctx.alloc_req();
                    let started = Instant::now();
                    ctx.trace(
                        lock.0,
                        ProtocolEvent::RequestStart {
                            req,
                            mode: Mode::Write,
                            upgrade: true,
                        },
                    );
                    let result = ctx.observed(lock, |obs, buf| {
                        locks[lock.index()].on_upgrade_into(buf, obs)
                    });
                    match result {
                        Ok(()) => {
                            ctx.waiters.insert(
                                lock,
                                Waiter {
                                    reply,
                                    req,
                                    started,
                                },
                            );
                            ctx.flush(lock, req, 0, &put);
                        }
                        Err(e) => reply.complete(Err(ClusterError::Upgrade(e))),
                    }
                }
            }
            Some(Input::Release { lock, reply }) => {
                let result = ctx.observed(lock, |obs, buf| {
                    locks[lock.index()].on_release_into(buf, obs)
                });
                match result {
                    Ok(()) => {
                        // Releases open no span: their frames travel with
                        // req 0 (uncorrelated).
                        ctx.flush(lock, 0, 0, &put);
                        ctx.metrics.lock().expect("metrics mutex").releases += 1;
                        reply.complete(Ok(()));
                    }
                    Err(e) => reply.complete(Err(ClusterError::Release(e))),
                }
            }
            Some(Input::Shutdown) => break,
            // Timeout: fall through to the retransmission tick.
            None => {}
        }
        if let Some(ep) = ctx.endpoint.as_mut() {
            let now = Instant::now();
            if ep.next_due().is_some_and(|due| due <= now) {
                ep.on_tick(now, &mut |to, frame| put(to, frame), &mut |lock, event| {
                    rel_events.push((lock, event))
                });
            }
            // Flush cumulative acks owed after this round of input.
            ep.take_acks(&mut |to, frame| put(to, frame));
            if let Some(ring) = &mut ctx.recorder {
                for (lock, event) in rel_events.drain(..) {
                    ring.record(epoch.elapsed().as_micros() as u64, lock, me.0, event);
                }
            }
            rel_events.clear();
        }
    }
    let (trace, trace_dropped) = match ctx.recorder {
        Some(ring) => {
            let dropped = ring.dropped();
            (ring.into_records(), dropped)
        }
        None => (Vec::new(), 0),
    };
    NodeExit {
        locks,
        trace,
        trace_dropped,
        decode_errors,
        links: ctx.endpoint.map(|ep| ep.snapshots()).unwrap_or_default(),
    }
}
