//! The cluster runtime: node threads, the optional latency router, and
//! lifecycle management.

use crate::codec;
use crate::handle::{ClusterError, NodeHandle, Reply};
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use dlm_core::{
    audit, AuditError, Effect, EffectBuf, HierNode, LockId, Mode, NodeId, ProtocolConfig,
};
use dlm_trace::{merge_records, NullObserver, Observer, RingRecorder, Stamp, TraceRecord};
use std::collections::{BinaryHeap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Cluster construction parameters.
#[derive(Debug, Clone, Copy)]
pub struct ClusterConfig {
    /// Number of node threads.
    pub nodes: usize,
    /// Number of lock objects hosted (ids `0..locks`).
    pub locks: usize,
    /// Protocol feature toggles.
    pub protocol: ProtocolConfig,
    /// Artificial one-way latency added by the router thread; `None` routes
    /// directly (FIFO per channel either way).
    pub delay: Option<Duration>,
    /// Per-node flight-recorder capacity for structured protocol events;
    /// `0` disables tracing (node threads then pay one branch per event
    /// site). Retained records are merged at shutdown into
    /// [`ClusterReport::trace`].
    pub trace_capacity: usize,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            nodes: 2,
            locks: 1,
            protocol: ProtocolConfig::paper(),
            delay: None,
            trace_capacity: 0,
        }
    }
}

/// What a node thread receives.
pub(crate) enum Input {
    /// An encoded protocol frame from `from`.
    Net { from: NodeId, frame: bytes::Bytes },
    /// Application request: acquire `lock` in `mode`; answer on `reply`.
    Acquire {
        lock: LockId,
        mode: Mode,
        reply: Reply,
    },
    /// Application request: acquire `lock` in `mode` only if that is
    /// possible locally without waiting; answer on `reply` with
    /// `Ok(granted)`.
    TryAcquire {
        lock: LockId,
        mode: Mode,
        reply: crate::handle::TryReply,
    },
    /// Application request: Rule 7 upgrade on `lock`.
    Upgrade { lock: LockId, reply: Reply },
    /// Application request: release `lock`.
    Release { lock: LockId, reply: Reply },
    /// Tear down the node thread; it returns its protocol states.
    Shutdown,
}

/// Final report of a shut-down cluster.
#[derive(Debug)]
pub struct ClusterReport {
    /// Total protocol messages transmitted.
    pub messages_sent: u64,
    /// Per-lock audit findings on the final states (with the cluster
    /// quiesced, these should all be empty).
    pub audit_errors: Vec<AuditError>,
    /// Merged structured event trace (wall-clock µs since cluster start;
    /// empty when [`ClusterConfig::trace_capacity`] is 0). Ordered by
    /// `(at, node)` with a fresh global sequence.
    pub trace: Vec<TraceRecord>,
    /// Events evicted from the per-node flight recorders before shutdown
    /// (0 means [`Self::trace`] is complete).
    pub trace_dropped: u64,
    /// Completion replies whose application-side receiver had already gone
    /// away (e.g. a handle dropped mid-call). Non-zero values mean some
    /// caller never saw its outcome.
    pub replies_dropped: u64,
}

/// An in-process cluster of protocol nodes.
pub struct Cluster {
    inputs: Vec<Sender<Input>>,
    joins: Vec<JoinHandle<NodeExit>>,
    router_join: Option<JoinHandle<()>>,
    router_tx: Option<Sender<RouterMsg>>,
    messages: Arc<AtomicU64>,
    replies_dropped: Arc<AtomicU64>,
    locks: usize,
}

/// What a node thread hands back at shutdown.
struct NodeExit {
    locks: Vec<HierNode>,
    trace: Vec<TraceRecord>,
    trace_dropped: u64,
}

enum RouterMsg {
    Forward {
        from: NodeId,
        to: NodeId,
        frame: bytes::Bytes,
    },
    Shutdown,
}

impl Cluster {
    /// Spawn the cluster. Node 0 initially holds every token.
    pub fn new(config: ClusterConfig) -> Self {
        assert!(config.nodes >= 1);
        assert!(config.locks >= 1);
        let messages = Arc::new(AtomicU64::new(0));
        let replies_dropped = Arc::new(AtomicU64::new(0));
        // One epoch shared by every node thread, so wall-clock trace stamps
        // are comparable across threads and merge into one timeline.
        let epoch = Instant::now();

        let channels: Vec<(Sender<Input>, Receiver<Input>)> =
            (0..config.nodes).map(|_| unbounded()).collect();
        let inputs: Vec<Sender<Input>> = channels.iter().map(|(tx, _)| tx.clone()).collect();

        // Optional latency router.
        let (router_tx, router_join) = if let Some(delay) = config.delay {
            let (tx, rx) = unbounded::<RouterMsg>();
            let outs = inputs.clone();
            let join = std::thread::Builder::new()
                .name("dlm-router".into())
                .spawn(move || router_loop(rx, outs, delay))
                .expect("spawn router");
            (Some(tx), Some(join))
        } else {
            (None, None)
        };

        let mut joins = Vec::with_capacity(config.nodes);
        for (i, (_, rx)) in channels.into_iter().enumerate() {
            let me = NodeId(i as u32);
            let outs = inputs.clone();
            let router = router_tx.clone();
            let counter = Arc::clone(&messages);
            let cfg = config;
            let join = std::thread::Builder::new()
                .name(format!("dlm-node-{i}"))
                .spawn(move || node_loop(me, cfg, rx, outs, router, counter, epoch))
                .expect("spawn node thread");
            joins.push(join);
        }

        Cluster {
            inputs,
            joins,
            router_join,
            router_tx,
            messages,
            replies_dropped,
            locks: config.locks,
        }
    }

    /// A cloneable blocking handle to node `id`.
    pub fn handle(&self, id: u32) -> NodeHandle {
        NodeHandle::new(
            NodeId(id),
            self.inputs[id as usize].clone(),
            Arc::clone(&self.replies_dropped),
        )
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.inputs.len()
    }

    /// Always false (a cluster has at least one node).
    pub fn is_empty(&self) -> bool {
        self.inputs.is_empty()
    }

    /// Protocol messages transmitted so far.
    pub fn messages_sent(&self) -> u64 {
        self.messages.load(Ordering::Relaxed)
    }

    /// Completion replies dropped so far because the application-side
    /// receiver was already gone (see [`ClusterReport::replies_dropped`]).
    pub fn replies_dropped(&self) -> u64 {
        self.replies_dropped.load(Ordering::Relaxed)
    }

    /// Quiescence wait: returns once the message counter has stayed stable
    /// for `idle`, bounded by a generous default timeout. Use after all
    /// application operations completed to let release waves drain.
    ///
    /// Unlike the original fixed settle-sleep (which slept a full `settle`
    /// period per counter check and was unbounded under sustained traffic),
    /// this polls at a fine grain — a quiet cluster returns after one
    /// `idle` window, an active one as soon as traffic stops, and a runaway
    /// one after the bound instead of never.
    pub fn quiesce(&self, idle: Duration) -> u64 {
        self.quiesce_within(idle, Duration::from_secs(30))
    }

    /// [`Self::quiesce`] with an explicit upper bound: returns the final
    /// message count once the counter is stable for `idle`, or whatever the
    /// count is when `timeout` elapses first.
    pub fn quiesce_within(&self, idle: Duration, timeout: Duration) -> u64 {
        let start = Instant::now();
        let tick = (idle / 8).max(Duration::from_micros(200)).min(idle);
        let mut last = self.messages_sent();
        let mut stable_since = Instant::now();
        loop {
            if start.elapsed() >= timeout {
                return self.messages_sent();
            }
            std::thread::sleep(tick);
            let count = self.messages_sent();
            if count != last {
                last = count;
                stable_since = Instant::now();
            } else if stable_since.elapsed() >= idle {
                return count;
            }
        }
    }

    /// Shut down all threads and audit the final protocol states per lock.
    pub fn shutdown(self) -> ClusterReport {
        for tx in &self.inputs {
            let _ = tx.send(Input::Shutdown);
        }
        let mut states: Vec<Vec<HierNode>> = Vec::with_capacity(self.joins.len());
        let mut traces: Vec<Vec<TraceRecord>> = Vec::with_capacity(self.joins.len());
        let mut trace_dropped = 0;
        for join in self.joins {
            let exit = join.join().expect("node thread panicked");
            states.push(exit.locks);
            traces.push(exit.trace);
            trace_dropped += exit.trace_dropped;
        }
        if let Some(tx) = self.router_tx {
            let _ = tx.send(RouterMsg::Shutdown);
        }
        if let Some(j) = self.router_join {
            let _ = j.join();
        }

        let mut audit_errors = Vec::new();
        for lock in 0..self.locks {
            let nodes: Vec<HierNode> = states.iter().map(|s| s[lock].clone()).collect();
            audit_errors.extend(audit(&nodes, &[], true));
        }
        ClusterReport {
            messages_sent: self.messages.load(Ordering::Relaxed),
            audit_errors,
            trace: merge_records(traces),
            trace_dropped,
            replies_dropped: self.replies_dropped.load(Ordering::Relaxed),
        }
    }
}

/// A frame parked in the router until its delivery deadline.
struct Delayed {
    due: Instant,
    seq: u64,
    from: NodeId,
    to: NodeId,
    frame: bytes::Bytes,
}

impl PartialEq for Delayed {
    fn eq(&self, other: &Self) -> bool {
        self.due == other.due && self.seq == other.seq
    }
}

impl Eq for Delayed {}

impl PartialOrd for Delayed {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Delayed {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed: `BinaryHeap` is a max-heap, earliest deadline first;
        // ingress sequence breaks ties so equal deadlines stay FIFO.
        (other.due, other.seq).cmp(&(self.due, self.seq))
    }
}

fn router_loop(rx: Receiver<RouterMsg>, outs: Vec<Sender<Input>>, delay: Duration) {
    // Deadline-sorted delivery: every frame is stamped `ingress + delay` on
    // arrival and parked in a min-heap; each wakeup drains *all* frames
    // whose deadline has passed. N frames in flight concurrently therefore
    // all arrive after ~`delay`, not ~`N × delay` — the original
    // sleep-per-message loop serialized the artificial latency, so delivery
    // time grew with queue depth instead of modeling a parallel link.
    //
    // Single router + constant delay ⇒ deadlines are ingress-ordered ⇒
    // global FIFO, which implies the per-channel FIFO the protocol's
    // fairness machinery assumes.
    let mut parked: BinaryHeap<Delayed> = BinaryHeap::new();
    let mut seq = 0u64;
    let mut park = |parked: &mut BinaryHeap<Delayed>, from, to, frame| {
        parked.push(Delayed {
            due: Instant::now() + delay,
            seq,
            from,
            to,
            frame,
        });
        seq += 1;
    };
    loop {
        // Deliver everything due (sends to already-exited nodes are no-ops).
        let now = Instant::now();
        while parked.peek().is_some_and(|d| d.due <= now) {
            let d = parked.pop().expect("peeked frame");
            let _ = outs[d.to.index()].send(Input::Net {
                from: d.from,
                frame: d.frame,
            });
        }
        // Wait for new traffic, but never past the earliest deadline.
        let msg = match parked.peek() {
            Some(next) => {
                match rx.recv_timeout(next.due.saturating_duration_since(Instant::now())) {
                    Ok(msg) => Some(msg),
                    Err(RecvTimeoutError::Timeout) => continue,
                    Err(RecvTimeoutError::Disconnected) => None,
                }
            }
            None => rx.recv().ok(),
        };
        match msg {
            Some(RouterMsg::Forward { from, to, frame }) => {
                park(&mut parked, from, to, frame);
            }
            // Shutdown (or all senders gone): flush whatever is still
            // parked without honoring deadlines — the cluster is going
            // down and no one is measuring latency any more.
            Some(RouterMsg::Shutdown) | None => {
                while let Some(d) = parked.pop() {
                    let _ = outs[d.to.index()].send(Input::Net {
                        from: d.from,
                        frame: d.frame,
                    });
                }
                return;
            }
        }
    }
}

/// Drive one protocol entry point, stamping its events with wall-clock µs
/// since the cluster epoch when this node records a trace.
fn observed<T>(
    recorder: &mut Option<RingRecorder>,
    epoch: Instant,
    lock: LockId,
    f: impl FnOnce(&mut dyn Observer) -> T,
) -> T {
    match recorder {
        Some(ring) => {
            let mut stamp = Stamp {
                at: epoch.elapsed().as_micros() as u64,
                lock: lock.0,
                sink: ring,
            };
            f(&mut stamp)
        }
        None => f(&mut NullObserver),
    }
}

fn node_loop(
    me: NodeId,
    config: ClusterConfig,
    rx: Receiver<Input>,
    outs: Vec<Sender<Input>>,
    router: Option<Sender<RouterMsg>>,
    counter: Arc<AtomicU64>,
    epoch: Instant,
) -> NodeExit {
    let mut recorder: Option<RingRecorder> =
        (config.trace_capacity > 0).then(|| RingRecorder::new(config.trace_capacity));
    let mut locks: Vec<HierNode> = (0..config.locks)
        .map(|_| {
            if me == NodeId(0) {
                HierNode::with_token(me, config.protocol)
            } else {
                HierNode::new(me, NodeId(0), config.protocol)
            }
        })
        .collect();
    // Application waiters per lock: at most one outstanding op per lock.
    let mut waiters: HashMap<LockId, Reply> = HashMap::new();

    // One long-lived encode buffer per node thread: every outgoing frame is
    // built in place and copied out, so steady-state transmission does no
    // buffer growth.
    let mut encode_scratch = bytes::BytesMut::with_capacity(64);
    let mut transmit = |from: NodeId, to: NodeId, lock: LockId, message: &dlm_core::Message| {
        counter.fetch_add(1, Ordering::Relaxed);
        let frame = codec::encode_into(lock, message, &mut encode_scratch);
        match &router {
            Some(r) => {
                let _ = r.send(RouterMsg::Forward { from, to, frame });
            }
            None => {
                let _ = outs[to.index()].send(Input::Net { from, frame });
            }
        }
    };

    // One long-lived effect sink per node thread: every protocol entry point
    // drains into it via the `*_into` API, so steady-state protocol steps do
    // no heap allocation for effects.
    let mut effect_buf = EffectBuf::new();

    let absorb =
        |lock: LockId,
         effects: &mut EffectBuf,
         waiters: &mut HashMap<LockId, Reply>,
         transmit: &mut dyn FnMut(NodeId, NodeId, LockId, &dlm_core::Message)| {
            for effect in effects.drain() {
                match effect {
                    Effect::Send { to, message } => transmit(me, to, lock, &message),
                    Effect::Granted { .. } | Effect::Upgraded => {
                        if let Some(reply) = waiters.remove(&lock) {
                            reply.complete(Ok(()));
                        }
                    }
                }
            }
        };

    while let Ok(input) = rx.recv() {
        match input {
            Input::Net { from, frame } => {
                let (lock, message) = codec::decode(frame).expect("peer sends valid frames");
                observed(&mut recorder, epoch, lock, |obs| {
                    locks[lock.index()].on_message_into(from, message, &mut effect_buf, obs)
                });
                absorb(lock, &mut effect_buf, &mut waiters, &mut transmit);
            }
            Input::Acquire { lock, mode, reply } => {
                let result = observed(&mut recorder, epoch, lock, |obs| {
                    locks[lock.index()].on_acquire_into(mode, 0, &mut effect_buf, obs)
                });
                match result {
                    Ok(()) => {
                        waiters.insert(lock, reply);
                        absorb(lock, &mut effect_buf, &mut waiters, &mut transmit);
                    }
                    Err(e) => reply.complete(Err(ClusterError::Acquire(e))),
                }
            }
            Input::TryAcquire { lock, mode, reply } => {
                let node = &mut locks[lock.index()];
                if node.can_admit_locally(mode) {
                    observed(&mut recorder, epoch, lock, |obs| {
                        node.on_acquire_into(mode, 0, &mut effect_buf, obs)
                            .expect("local admit is well-formed")
                    });
                    debug_assert!(effect_buf
                        .iter()
                        .all(|e| matches!(e, Effect::Granted { .. } | Effect::Send { .. })));
                    absorb(lock, &mut effect_buf, &mut waiters, &mut transmit);
                    reply.complete(true);
                } else {
                    reply.complete(false);
                }
            }
            Input::Upgrade { lock, reply } => {
                let result = observed(&mut recorder, epoch, lock, |obs| {
                    locks[lock.index()].on_upgrade_into(&mut effect_buf, obs)
                });
                match result {
                    Ok(()) => {
                        waiters.insert(lock, reply);
                        absorb(lock, &mut effect_buf, &mut waiters, &mut transmit);
                    }
                    Err(e) => reply.complete(Err(ClusterError::Upgrade(e))),
                }
            }
            Input::Release { lock, reply } => {
                let result = observed(&mut recorder, epoch, lock, |obs| {
                    locks[lock.index()].on_release_into(&mut effect_buf, obs)
                });
                match result {
                    Ok(()) => {
                        absorb(lock, &mut effect_buf, &mut waiters, &mut transmit);
                        reply.complete(Ok(()));
                    }
                    Err(e) => reply.complete(Err(ClusterError::Release(e))),
                }
            }
            Input::Shutdown => break,
        }
    }
    let (trace, trace_dropped) = match recorder {
        Some(ring) => {
            let dropped = ring.dropped();
            (ring.into_records(), dropped)
        }
        None => (Vec::new(), 0),
    };
    NodeExit {
        locks,
        trace,
        trace_dropped,
    }
}
