//! Pluggable cluster interconnects.
//!
//! The node threads never talk to each other directly: every encoded frame
//! goes through a [`Transport`], the seam where link behavior is decided.
//! Three implementations ship with the runtime, selected by
//! [`TransportKind`]:
//!
//! * [`Direct`] — frames land in the receiver's input channel immediately
//!   (today's perfect in-process links; zero extra hops or threads),
//! * [`Delayed`] — a router thread parks every frame in a deadline-sorted
//!   heap for a constant per-message latency (the paper's LAN model),
//! * [`Faulty`] — the same router, plus seeded drop / duplicate / reorder
//!   injection at configurable rates ([`FaultConfig`]) — the adversarial
//!   link the reliability shim in [`crate::reliable`] is built to survive.
//!
//! Fault decisions are drawn from a seeded SplitMix64 stream, so a given
//! seed produces a reproducible fault pattern for a given frame arrival
//! order (the OS scheduler still decides that order — true determinism is
//! the simulator's job; the cluster's is realism).
//!
//! Transport-level trace records ([`dlm_trace::ProtocolEvent::FrameDropped`])
//! don't belong to a lock the transport can see, so they are stamped with
//! the sentinel lock id [`TRANSPORT_LOCK`].

use crate::runtime::Input;
use bytes::Bytes;
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use dlm_core::NodeId;
use dlm_trace::{ProtocolEvent, Recorder, RingRecorder, TraceRecord};
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Sentinel lock id carried by transport-level trace records (a raw frame's
/// lock is opaque to the link layer).
pub const TRANSPORT_LOCK: u32 = u32::MAX;

/// Which interconnect a [`crate::Cluster`] runs on.
#[derive(Debug, Clone, Copy, Default)]
pub enum TransportKind {
    /// Perfect in-process channels, zero added latency.
    #[default]
    Direct,
    /// Constant one-way per-message latency through a router thread.
    Delayed(Duration),
    /// Seeded drop / duplicate / reorder / delay injection. Pair with
    /// [`crate::ReliableConfig`] unless the test *wants* lost frames.
    Faulty(FaultConfig),
}

/// Fault-injection parameters for [`TransportKind::Faulty`].
///
/// Rates are independent per-frame probabilities in `0.0..=1.0`; decisions
/// come from a SplitMix64 stream seeded with `seed`.
#[derive(Debug, Clone, Copy)]
pub struct FaultConfig {
    /// PRNG seed for every fault decision.
    pub seed: u64,
    /// Probability a frame vanishes in flight.
    pub drop: f64,
    /// Probability a frame is delivered twice (the copy arrives later).
    pub duplicate: f64,
    /// Probability a frame is held back by a random extra `jitter`,
    /// letting later frames overtake it.
    pub reorder: f64,
    /// Base one-way latency applied to every frame.
    pub delay: Duration,
    /// Maximum extra hold-back for reordered (and duplicated) frames.
    pub jitter: Duration,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig {
            seed: 1,
            drop: 0.0,
            duplicate: 0.0,
            reorder: 0.0,
            delay: Duration::ZERO,
            jitter: Duration::from_micros(500),
        }
    }
}

impl FaultConfig {
    /// A uniformly hostile link: `rate` applied to drop, duplicate, and
    /// reorder alike, with a 500 µs reorder window.
    pub fn lossy(seed: u64, rate: f64) -> Self {
        FaultConfig {
            seed,
            drop: rate,
            duplicate: rate,
            reorder: rate,
            ..FaultConfig::default()
        }
    }
}

/// Per-link fault tallies reported by a transport at shutdown.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LinkFaults {
    /// Sender.
    pub from: u32,
    /// Receiver.
    pub to: u32,
    /// Frames dropped in flight.
    pub dropped: u64,
    /// Extra copies injected.
    pub duplicated: u64,
    /// Frames held back past later traffic.
    pub reordered: u64,
}

/// Wire-level counters for one directed socket link, as observed by the
/// reporting process (sent when `from` is the local node, received when
/// `to` is). Counts are *wire* frames after coalescing — one wire frame may
/// carry a whole container of protocol frames.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SocketLinkStat {
    /// Sending node.
    pub from: u32,
    /// Receiving node.
    pub to: u32,
    /// Wire frames observed on this directed link.
    pub frames: u64,
    /// Payload bytes observed (excluding the wire header).
    pub bytes: u64,
    /// Connection losses observed on the link's underlying connection
    /// (peer reset, EOF mid-stream, or a write failure); the node keeps
    /// serving after each.
    pub resets: u64,
}

/// What a transport hands back when it stops.
#[derive(Debug, Default)]
pub struct TransportReport {
    /// Transport-side trace records (frame drops), stamped with
    /// [`TRANSPORT_LOCK`].
    pub trace: Vec<TraceRecord>,
    /// Records evicted from the transport's flight recorder.
    pub trace_dropped: u64,
    /// Per-link fault tallies (links with at least one fault).
    pub faults: Vec<LinkFaults>,
    /// Per-link wire counters (socket transports only; empty for the
    /// in-process transports).
    pub socket: Vec<SocketLinkStat>,
    /// Connections a socket transport killed because their byte stream
    /// failed frame reassembly (truncated/corrupt/oversized framing);
    /// always 0 for the in-process transports.
    pub wire_decode_errors: u64,
}

/// A cluster interconnect: carries encoded frames between node threads.
///
/// `send` is called concurrently from every node thread. `shutdown` must
/// flush every parked frame into its destination channel (the cluster calls
/// it *before* stopping the node threads, so flushed frames are still
/// processed) and stop any background threads; sends arriving after
/// `shutdown` must still be delivered (directly, latency no longer
/// modelled) — the cluster is going down, losing them would corrupt the
/// final audit.
pub trait Transport: Send + Sync {
    /// Carry `frame` from `from` toward `to`'s input channel.
    fn send(&self, from: NodeId, to: NodeId, frame: Bytes);

    /// Flush parked frames, stop background threads, report telemetry.
    /// Idempotent; later calls return an empty report.
    fn shutdown(&self) -> TransportReport;
}

/// Deliver one frame into a node input channel, or account for its death if
/// the node is already gone (only possible for post-shutdown stragglers).
fn deliver(outs: &[Sender<Input>], in_flight: &AtomicU64, from: NodeId, to: NodeId, frame: Bytes) {
    if outs[to.index()].send(Input::Net { from, frame }).is_err() {
        in_flight.fetch_sub(1, Ordering::Relaxed);
    }
}

// ------------------------------------------------------------------ Direct

/// Perfect links: a send is an immediate channel handoff.
pub struct Direct {
    outs: Vec<Sender<Input>>,
    in_flight: Arc<AtomicU64>,
}

impl Direct {
    pub(crate) fn new(outs: Vec<Sender<Input>>, in_flight: Arc<AtomicU64>) -> Self {
        Direct { outs, in_flight }
    }
}

impl Transport for Direct {
    fn send(&self, from: NodeId, to: NodeId, frame: Bytes) {
        deliver(&self.outs, &self.in_flight, from, to, frame);
    }

    fn shutdown(&self) -> TransportReport {
        TransportReport::default()
    }
}

// ------------------------------------------------- Delayed / Faulty router

enum RouterMsg {
    Forward {
        from: NodeId,
        to: NodeId,
        frame: Bytes,
    },
    Shutdown,
}

/// A frame parked in the router until its delivery deadline.
struct Parked {
    due: Instant,
    seq: u64,
    from: NodeId,
    to: NodeId,
    frame: Bytes,
}

impl PartialEq for Parked {
    fn eq(&self, other: &Self) -> bool {
        self.due == other.due && self.seq == other.seq
    }
}

impl Eq for Parked {}

impl PartialOrd for Parked {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Parked {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed: `BinaryHeap` is a max-heap, earliest deadline first;
        // ingress sequence breaks ties so equal deadlines stay FIFO.
        (other.due, other.seq).cmp(&(self.due, self.seq))
    }
}

/// The shared router chassis: a thread parking frames in a deadline heap.
/// `Delayed` runs it fault-free; `Faulty` adds the fault stage at ingress.
struct Router {
    tx: Sender<RouterMsg>,
    join: Mutex<Option<JoinHandle<TransportReport>>>,
    /// Post-shutdown fallback path (and death accounting).
    outs: Vec<Sender<Input>>,
    in_flight: Arc<AtomicU64>,
}

impl Router {
    fn spawn(
        outs: Vec<Sender<Input>>,
        in_flight: Arc<AtomicU64>,
        delay: Duration,
        faults: Option<FaultState>,
    ) -> Self {
        let (tx, rx) = unbounded::<RouterMsg>();
        let louts = outs.clone();
        let lgauge = Arc::clone(&in_flight);
        let join = std::thread::Builder::new()
            .name("dlm-router".into())
            .spawn(move || router_loop(rx, louts, lgauge, delay, faults))
            .expect("spawn router");
        Router {
            tx,
            join: Mutex::new(Some(join)),
            outs,
            in_flight,
        }
    }

    fn send(&self, from: NodeId, to: NodeId, frame: Bytes) {
        // After shutdown the router channel is disconnected; deliver
        // directly so late frames (e.g. cascades triggered by the flush)
        // still reach their node before it exits.
        if let Err(crossbeam::channel::SendError(RouterMsg::Forward { from, to, frame })) =
            self.tx.send(RouterMsg::Forward { from, to, frame })
        {
            deliver(&self.outs, &self.in_flight, from, to, frame);
        }
    }

    fn shutdown(&self) -> TransportReport {
        let join = self.join.lock().expect("router join lock").take();
        match join {
            Some(handle) => {
                let _ = self.tx.send(RouterMsg::Shutdown);
                handle.join().expect("router thread panicked")
            }
            None => TransportReport::default(),
        }
    }
}

/// Constant-latency links through the deadline-heap router.
pub struct Delayed(Router);

impl Delayed {
    pub(crate) fn new(
        outs: Vec<Sender<Input>>,
        in_flight: Arc<AtomicU64>,
        delay: Duration,
    ) -> Self {
        Delayed(Router::spawn(outs, in_flight, delay, None))
    }
}

impl Transport for Delayed {
    fn send(&self, from: NodeId, to: NodeId, frame: Bytes) {
        self.0.send(from, to, frame);
    }

    fn shutdown(&self) -> TransportReport {
        self.0.shutdown()
    }
}

/// Lossy, duplicating, reordering links (seeded).
pub struct Faulty(Router);

impl Faulty {
    pub(crate) fn new(
        outs: Vec<Sender<Input>>,
        in_flight: Arc<AtomicU64>,
        config: FaultConfig,
        nodes: usize,
        shards: usize,
        trace_capacity: usize,
        epoch: Instant,
    ) -> Self {
        let faults = FaultState {
            rng: SplitMix64::new(config.seed),
            config,
            nodes,
            shards,
            tallies: vec![LinkFaults::default(); nodes * nodes],
            recorder: (trace_capacity > 0).then(|| RingRecorder::new(trace_capacity)),
            epoch,
        };
        Faulty(Router::spawn(outs, in_flight, config.delay, Some(faults)))
    }
}

impl Transport for Faulty {
    fn send(&self, from: NodeId, to: NodeId, frame: Bytes) {
        self.0.send(from, to, frame);
    }

    fn shutdown(&self) -> TransportReport {
        self.0.shutdown()
    }
}

/// The fault stage the router applies at frame ingress.
struct FaultState {
    rng: SplitMix64,
    config: FaultConfig,
    nodes: usize,
    /// Worker slots per node: transport addresses are worker slots
    /// (`node * shards + shard`), but faults are reported per node link, so
    /// tallies and trace events divide the slot back down.
    shards: usize,
    tallies: Vec<LinkFaults>,
    recorder: Option<RingRecorder>,
    epoch: Instant,
}

impl FaultState {
    /// Node id owning worker slot `slot`.
    fn node_of(&self, slot: NodeId) -> u32 {
        slot.0 / self.shards as u32
    }

    fn tally(&mut self, from: NodeId, to: NodeId) -> &mut LinkFaults {
        let (from, to) = (self.node_of(from), self.node_of(to));
        let slot = &mut self.tallies[from as usize * self.nodes + to as usize];
        slot.from = from;
        slot.to = to;
        slot
    }
}

fn router_loop(
    rx: Receiver<RouterMsg>,
    outs: Vec<Sender<Input>>,
    in_flight: Arc<AtomicU64>,
    delay: Duration,
    mut faults: Option<FaultState>,
) -> TransportReport {
    // Deadline-sorted delivery: every frame is stamped `ingress + delay` on
    // arrival and parked in a min-heap; each wakeup drains *all* frames
    // whose deadline has passed, so N frames in flight concurrently all
    // arrive after ~`delay`, not ~`N × delay`.
    //
    // Fault-free with a constant delay, deadlines are ingress-ordered ⇒
    // global FIFO, which implies the per-channel FIFO the protocol assumes.
    // The fault stage breaks exactly that (reorder jitter, drops, dups) —
    // which is the point: the reliability shim has to rebuild FIFO on top.
    let mut parked: BinaryHeap<Parked> = BinaryHeap::new();
    let mut seq = 0u64;
    let mut ingress = |parked: &mut BinaryHeap<Parked>,
                       faults: &mut Option<FaultState>,
                       from: NodeId,
                       to: NodeId,
                       frame: Bytes| {
        let mut due = Instant::now() + delay;
        if let Some(f) = faults {
            if f.rng.chance(f.config.drop) {
                f.tally(from, to).dropped += 1;
                in_flight.fetch_sub(1, Ordering::Relaxed);
                let (from_node, to_node) = (f.node_of(from), f.node_of(to));
                if let Some(ring) = &mut f.recorder {
                    ring.record(
                        f.epoch.elapsed().as_micros() as u64,
                        TRANSPORT_LOCK,
                        from_node,
                        ProtocolEvent::FrameDropped { to: to_node },
                    );
                }
                return;
            }
            if f.rng.chance(f.config.reorder) {
                f.tally(from, to).reordered += 1;
                due += f.rng.jitter(f.config.jitter);
            }
            if f.rng.chance(f.config.duplicate) {
                f.tally(from, to).duplicated += 1;
                in_flight.fetch_add(1, Ordering::Relaxed);
                let copy_due = due + f.rng.jitter(f.config.jitter);
                parked.push(Parked {
                    due: copy_due,
                    seq,
                    from,
                    to,
                    frame: frame.clone(),
                });
                seq += 1;
            }
        }
        parked.push(Parked {
            due,
            seq,
            from,
            to,
            frame,
        });
        seq += 1;
    };
    let report = |faults: Option<FaultState>| {
        let mut report = TransportReport::default();
        if let Some(f) = faults {
            report.faults = f
                .tallies
                .into_iter()
                .filter(|t| t.dropped + t.duplicated + t.reordered > 0)
                .collect();
            if let Some(ring) = f.recorder {
                report.trace_dropped = ring.dropped();
                report.trace = ring.into_records();
            }
        }
        report
    };
    loop {
        // Deliver everything due.
        let now = Instant::now();
        while parked.peek().is_some_and(|d| d.due <= now) {
            let d = parked.pop().expect("peeked frame");
            deliver(&outs, &in_flight, d.from, d.to, d.frame);
        }
        // Wait for new traffic, but never past the earliest deadline.
        let msg = match parked.peek() {
            Some(next) => {
                match rx.recv_timeout(next.due.saturating_duration_since(Instant::now())) {
                    Ok(msg) => Some(msg),
                    Err(RecvTimeoutError::Timeout) => continue,
                    Err(RecvTimeoutError::Disconnected) => None,
                }
            }
            None => rx.recv().ok(),
        };
        match msg {
            Some(RouterMsg::Forward { from, to, frame }) => {
                ingress(&mut parked, &mut faults, from, to, frame);
            }
            // Shutdown (or all senders gone): flush whatever is still
            // parked without honoring deadlines — the cluster is going
            // down, and the node threads are still alive to process the
            // flush (the cluster stops the transport *first*).
            Some(RouterMsg::Shutdown) | None => {
                while let Some(d) = parked.pop() {
                    deliver(&outs, &in_flight, d.from, d.to, d.frame);
                }
                return report(faults);
            }
        }
    }
}

// ------------------------------------------------------------------- PRNG

/// SplitMix64: tiny, seedable, dependency-free. Good enough for fault
/// injection; not for cryptography.
struct SplitMix64(u64);

impl SplitMix64 {
    fn new(seed: u64) -> Self {
        SplitMix64(seed)
    }

    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// True with probability `p`.
    fn chance(&mut self, p: f64) -> bool {
        p > 0.0 && self.next_f64() < p
    }

    /// Uniform duration in `[0, max]`.
    fn jitter(&mut self, max: Duration) -> Duration {
        max.mul_f64(self.next_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic_and_spread() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys, "same seed, same stream");
        let mut c = SplitMix64::new(43);
        assert_ne!(xs[0], c.next_u64(), "different seed diverges");
        // Rates empirically land near p.
        let mut r = SplitMix64::new(7);
        let hits = (0..10_000).filter(|_| r.chance(0.1)).count();
        assert!((800..1200).contains(&hits), "~10% hit rate, got {hits}");
    }

    #[test]
    fn chance_zero_never_fires_and_one_always() {
        let mut r = SplitMix64::new(9);
        assert!((0..100).all(|_| !r.chance(0.0)));
        assert!((0..100).all(|_| r.chance(1.0)));
    }
}
