//! Compact binary wire format for protocol messages.
//!
//! The cluster runtime encodes every message into a [`bytes::Bytes`] frame
//! before "transmission" and decodes it at the receiver, so the protocol's
//! wire representation is a tested artifact rather than an afterthought.
//!
//! Frame layout (all integers little-endian):
//!
//! ```text
//! u32  lock id
//! u8   message tag (1=Request 2=Grant 3=Token 4=Release 5=SetFrozen 6=Recover)
//! ...  tag-specific payload
//! ```
//!
//! Queued requests serialize as `(u32 from, u8 mode, u8 upgrade, u8 priority)`.
//!
//! The *correlated* layout ([`encode_corr_into`] / [`decode_corr`]) inserts a
//! request-span header between the lock id and the tag:
//!
//! ```text
//! u32  lock id
//! u64  request id  (0 = uncorrelated)
//! u16  causal hop count of this frame
//! u32  sender's epoch for this lock (crash recovery, DESIGN.md §17)
//! u8   message tag
//! ...  tag-specific payload
//! ```
//!
//! The epoch stamp lives in the frame header, not in the message body: the
//! receiver fences a mismatched stamp *before* interpreting the payload,
//! exactly like `HierNode::on_frame_into`.
//!
//! Correlation lives in the frame header — not in `dlm_core::Message` — so
//! the protocol state machine, its structural fingerprints, and the model
//! checker never see request ids. The lock id stays first in both layouts,
//! which keeps the reliability shim's `peek_lock` valid for either.
//!
//! Coalesced links pack several correlated frames into one *container*
//! frame ([`encode_container_into`] / [`decode_container_into`]):
//!
//! ```text
//! u32  CONTAINER_MARKER (0xFFFF_FFFF)
//! u16  sub-frame count (≥ 1)
//! ...  count × (u32 length | correlated frame bytes)
//! ```
//!
//! The marker occupies the lock-id slot, and `u32::MAX` is reserved — it is
//! the transport sentinel ([`crate::transport::TRANSPORT_LOCK`]), never a
//! real lock — so a receiver (and the reliability shim's `peek_lock`)
//! distinguishes a container from a bare frame by its first four bytes
//! alone. The container travels as one wire frame through the reliability
//! shim: one sequence number, one ack, one retransmission unit.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use dlm_core::{LockId, Message, Mode, ModeSet, NodeId, QueuedRequest};
use std::collections::VecDeque;

/// Errors raised while decoding a frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// Frame ended before the payload was complete.
    Truncated,
    /// Unknown message tag byte.
    BadTag(u8),
    /// Invalid mode byte.
    BadMode(u8),
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::Truncated => write!(f, "frame truncated"),
            DecodeError::BadTag(t) => write!(f, "unknown message tag {t}"),
            DecodeError::BadMode(m) => write!(f, "invalid mode byte {m}"),
        }
    }
}

impl std::error::Error for DecodeError {}

fn put_mode(buf: &mut BytesMut, mode: Mode) {
    buf.put_u8(mode.index() as u8);
}

fn get_mode(buf: &mut Bytes) -> Result<Mode, DecodeError> {
    if buf.remaining() < 1 {
        return Err(DecodeError::Truncated);
    }
    let b = buf.get_u8();
    Mode::from_index(b as usize).ok_or(DecodeError::BadMode(b))
}

fn put_modeset(buf: &mut BytesMut, set: ModeSet) {
    let mut bits = 0u8;
    for m in set.iter() {
        bits |= 1 << m.index();
    }
    buf.put_u8(bits);
}

fn get_modeset(buf: &mut Bytes) -> Result<ModeSet, DecodeError> {
    if buf.remaining() < 1 {
        return Err(DecodeError::Truncated);
    }
    let bits = buf.get_u8();
    let mut set = ModeSet::new();
    for i in 0..6 {
        if bits & (1 << i) != 0 {
            set.insert(Mode::from_index(i).expect("six modes"));
        }
    }
    Ok(set)
}

fn put_queued(buf: &mut BytesMut, q: &QueuedRequest) {
    buf.put_u32_le(q.from.0);
    put_mode(buf, q.mode);
    buf.put_u8(q.upgrade as u8);
    buf.put_u8(q.priority);
}

fn get_queued(buf: &mut Bytes) -> Result<QueuedRequest, DecodeError> {
    if buf.remaining() < 4 {
        return Err(DecodeError::Truncated);
    }
    let from = NodeId(buf.get_u32_le());
    let mode = get_mode(buf)?;
    if buf.remaining() < 1 {
        return Err(DecodeError::Truncated);
    }
    let upgrade = buf.get_u8() != 0;
    if buf.remaining() < 1 {
        return Err(DecodeError::Truncated);
    }
    let priority = buf.get_u8();
    Ok(QueuedRequest {
        from,
        mode,
        upgrade,
        priority,
    })
}

/// Encode `(lock, message)` into a frame.
///
/// Convenience wrapper over [`encode_into`] that allocates a fresh scratch
/// buffer; hot paths (the cluster runtime's per-node transmit loop) hold a
/// long-lived scratch and call [`encode_into`] directly so every frame
/// reuses one allocation.
pub fn encode(lock: LockId, message: &Message) -> Bytes {
    encode_into(lock, message, &mut BytesMut::with_capacity(32))
}

/// Encode `(lock, message)` into a frame built inside `scratch`.
///
/// `scratch` is cleared first and left empty (capacity retained), so a
/// caller encoding many frames pays zero buffer growth after the largest
/// frame seen.
pub fn encode_into(lock: LockId, message: &Message, scratch: &mut BytesMut) -> Bytes {
    scratch.clear();
    let buf = scratch;
    buf.put_u32_le(lock.0);
    put_body(buf, message);
    buf.take_frame()
}

/// Encode `(lock, message)` with the request-correlation header: `req` is the
/// request id whose causal chain this frame extends (0 = uncorrelated),
/// `hops` is the frame's causal depth (1 = the requester's own first send)
/// and `epoch` is the sender's crash-recovery epoch for this lock.
pub fn encode_corr_into(
    lock: LockId,
    req: u64,
    hops: u16,
    epoch: u32,
    message: &Message,
    scratch: &mut BytesMut,
) -> Bytes {
    scratch.clear();
    let buf = scratch;
    buf.put_u32_le(lock.0);
    buf.put_u64_le(req);
    buf.put_u16_le(hops);
    buf.put_u32_le(epoch);
    put_body(buf, message);
    buf.take_frame()
}

/// Allocating convenience wrapper over [`encode_corr_into`] (tests, tools).
pub fn encode_corr(lock: LockId, req: u64, hops: u16, epoch: u32, message: &Message) -> Bytes {
    encode_corr_into(
        lock,
        req,
        hops,
        epoch,
        message,
        &mut BytesMut::with_capacity(48),
    )
}

fn put_body(buf: &mut BytesMut, message: &Message) {
    match message {
        Message::Request(q) => {
            buf.put_u8(1);
            put_queued(buf, q);
        }
        Message::Grant { mode } => {
            buf.put_u8(2);
            put_mode(buf, *mode);
        }
        Message::Token {
            mode,
            granter_owned,
            queue,
            frozen,
        } => {
            buf.put_u8(3);
            put_mode(buf, *mode);
            put_mode(buf, *granter_owned);
            put_modeset(buf, *frozen);
            buf.put_u16_le(queue.len() as u16);
            for q in queue {
                put_queued(buf, q);
            }
        }
        Message::Release { new_owned, ack } => {
            buf.put_u8(4);
            put_mode(buf, *new_owned);
            buf.put_u64_le(*ack);
        }
        Message::SetFrozen { modes } => {
            buf.put_u8(5);
            put_modeset(buf, *modes);
        }
        Message::Recover {
            dead,
            new_root,
            epoch,
            survivors,
        } => {
            buf.put_u8(6);
            buf.put_u32_le(dead.0);
            buf.put_u32_le(new_root.0);
            buf.put_u32_le(*epoch);
            buf.put_u16_le(survivors.len() as u16);
            for s in survivors {
                buf.put_u32_le(s.0);
            }
        }
    }
}

/// Decode a frame back into `(lock, message)`.
pub fn decode(mut frame: Bytes) -> Result<(LockId, Message), DecodeError> {
    if frame.remaining() < 5 {
        return Err(DecodeError::Truncated);
    }
    let lock = LockId(frame.get_u32_le());
    let message = get_body(&mut frame)?;
    Ok((lock, message))
}

/// Decode a correlated frame back into `(lock, req, hops, epoch, message)`.
pub fn decode_corr(mut frame: Bytes) -> Result<(LockId, u64, u16, u32, Message), DecodeError> {
    if frame.remaining() < 19 {
        return Err(DecodeError::Truncated);
    }
    let lock = LockId(frame.get_u32_le());
    let req = frame.get_u64_le();
    let hops = frame.get_u16_le();
    let epoch = frame.get_u32_le();
    let message = get_body(&mut frame)?;
    Ok((lock, req, hops, epoch, message))
}

fn get_body(frame: &mut Bytes) -> Result<Message, DecodeError> {
    if frame.remaining() < 1 {
        return Err(DecodeError::Truncated);
    }
    let tag = frame.get_u8();
    let message = match tag {
        1 => Message::Request(get_queued(frame)?),
        2 => Message::Grant {
            mode: get_mode(frame)?,
        },
        3 => {
            let mode = get_mode(frame)?;
            let granter_owned = get_mode(frame)?;
            let frozen = get_modeset(frame)?;
            if frame.remaining() < 2 {
                return Err(DecodeError::Truncated);
            }
            let len = frame.get_u16_le() as usize;
            let mut queue = VecDeque::with_capacity(len);
            for _ in 0..len {
                queue.push_back(get_queued(frame)?);
            }
            Message::Token {
                mode,
                granter_owned,
                queue,
                frozen,
            }
        }
        4 => {
            let new_owned = get_mode(frame)?;
            if frame.remaining() < 8 {
                return Err(DecodeError::Truncated);
            }
            let ack = frame.get_u64_le();
            Message::Release { new_owned, ack }
        }
        5 => Message::SetFrozen {
            modes: get_modeset(frame)?,
        },
        6 => {
            if frame.remaining() < 14 {
                return Err(DecodeError::Truncated);
            }
            let dead = NodeId(frame.get_u32_le());
            let new_root = NodeId(frame.get_u32_le());
            let epoch = frame.get_u32_le();
            let len = frame.get_u16_le() as usize;
            if frame.remaining() < len * 4 {
                return Err(DecodeError::Truncated);
            }
            let survivors = (0..len).map(|_| NodeId(frame.get_u32_le())).collect();
            Message::Recover {
                dead,
                new_root,
                epoch,
                survivors,
            }
        }
        t => return Err(DecodeError::BadTag(t)),
    };
    Ok(message)
}

/// First four bytes of a container frame. Reserved: no protocol frame
/// carries this lock id (it is the transport trace sentinel).
pub const CONTAINER_MARKER: u32 = u32::MAX;

/// Does this wire frame carry a coalesced container rather than a single
/// protocol frame?
pub fn is_container(frame: &Bytes) -> bool {
    frame
        .as_ref()
        .get(0..4)
        .is_some_and(|b| u32::from_le_bytes([b[0], b[1], b[2], b[3]]) == CONTAINER_MARKER)
}

/// Pack `frames` (each a correlated frame from [`encode_corr_into`]) into
/// one container frame built inside `scratch`.
///
/// Panics if `frames` is empty or longer than `u16::MAX` (the runtime's
/// coalesce buffers flush well below that).
pub fn encode_container_into(frames: &[Bytes], scratch: &mut BytesMut) -> Bytes {
    assert!(!frames.is_empty(), "container needs at least one frame");
    assert!(frames.len() <= u16::MAX as usize, "container overflow");
    scratch.clear();
    let buf = scratch;
    buf.put_u32_le(CONTAINER_MARKER);
    buf.put_u16_le(frames.len() as u16);
    for f in frames {
        debug_assert!(!is_container(f), "containers do not nest");
        buf.put_u32_le(f.len() as u32);
        buf.put_slice(f.as_ref());
    }
    buf.take_frame()
}

/// Unpack a container frame into its sub-frames, appended to `out` (which
/// is cleared first). Each sub-frame is a self-contained correlated frame
/// for [`decode_corr`]. Trailing garbage, a zero count, and truncation all
/// error — a container is exact or it is rejected whole.
pub fn decode_container_into(frame: Bytes, out: &mut Vec<Bytes>) -> Result<(), DecodeError> {
    out.clear();
    let b = frame.as_ref();
    if b.len() < 6 {
        return Err(DecodeError::Truncated);
    }
    let marker = u32::from_le_bytes([b[0], b[1], b[2], b[3]]);
    if marker != CONTAINER_MARKER {
        return Err(DecodeError::BadTag(0));
    }
    let count = u16::from_le_bytes([b[4], b[5]]) as usize;
    if count == 0 {
        return Err(DecodeError::Truncated);
    }
    let mut pos = 6usize;
    for _ in 0..count {
        let Some(hdr) = b.get(pos..pos + 4) else {
            return Err(DecodeError::Truncated);
        };
        let len = u32::from_le_bytes([hdr[0], hdr[1], hdr[2], hdr[3]]) as usize;
        pos += 4;
        if b.len() < pos + len {
            return Err(DecodeError::Truncated);
        }
        out.push(frame.slice(pos..pos + len));
        pos += len;
    }
    if pos != b.len() {
        return Err(DecodeError::Truncated);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(lock: LockId, msg: Message) {
        let frame = encode(lock, &msg);
        let (l2, m2) = decode(frame).expect("decodes");
        assert_eq!(l2, lock);
        assert_eq!(m2, msg);
    }

    #[test]
    fn round_trips_every_variant() {
        round_trip(
            LockId(3),
            Message::Request(QueuedRequest {
                from: NodeId(7),
                mode: Mode::Upgrade,
                upgrade: false,
                priority: 0,
            }),
        );
        round_trip(LockId::TABLE, Message::Grant { mode: Mode::Read });
        round_trip(
            LockId(9),
            Message::Token {
                mode: Mode::Write,
                granter_owned: Mode::IntentRead,
                queue: VecDeque::from(vec![
                    QueuedRequest {
                        from: NodeId(1),
                        mode: Mode::Write,
                        upgrade: true,
                        priority: 0,
                    },
                    QueuedRequest {
                        from: NodeId(2),
                        mode: Mode::IntentWrite,
                        upgrade: false,
                        priority: 255,
                    },
                ]),
                frozen: ModeSet::from_modes([Mode::IntentRead, Mode::Read]),
            },
        );
        round_trip(
            LockId(1),
            Message::Release {
                new_owned: Mode::NoLock,
                ack: u64::MAX,
            },
        );
        round_trip(
            LockId(2),
            Message::SetFrozen {
                modes: ModeSet::ALL,
            },
        );
        round_trip(
            LockId(4),
            Message::Recover {
                dead: NodeId(3),
                new_root: NodeId(0),
                epoch: 9,
                survivors: vec![NodeId(0), NodeId(1), NodeId(2)],
            },
        );
    }

    #[test]
    fn truncated_frames_error() {
        let frame = encode(
            LockId(0),
            &Message::Release {
                new_owned: Mode::Read,
                ack: 5,
            },
        );
        for cut in 0..frame.len() {
            let partial = frame.slice(0..cut);
            assert!(
                decode(partial).is_err(),
                "decoding a {cut}-byte prefix must fail"
            );
        }
    }

    #[test]
    fn bad_tag_and_mode_error() {
        let mut buf = BytesMut::new();
        buf.put_u32_le(0);
        buf.put_u8(99);
        assert_eq!(decode(buf.freeze()), Err(DecodeError::BadTag(99)));

        let mut buf = BytesMut::new();
        buf.put_u32_le(0);
        buf.put_u8(2); // Grant
        buf.put_u8(200); // invalid mode
        assert_eq!(decode(buf.freeze()), Err(DecodeError::BadMode(200)));
    }

    #[test]
    fn corr_frames_round_trip_and_keep_lock_first() {
        let msg = Message::Request(QueuedRequest {
            from: NodeId(7),
            mode: Mode::Write,
            upgrade: true,
            priority: 3,
        });
        let req = (7u64 << 32) | 42;
        let frame = encode_corr(LockId(11), req, 5, 2, &msg);
        // Lock id stays in bytes 0..4 so `peek_lock` works on either layout.
        assert_eq!(&frame.as_ref()[0..4], &11u32.to_le_bytes());
        let (lock, r, hops, epoch, m) = decode_corr(frame).expect("decodes");
        assert_eq!(lock, LockId(11));
        assert_eq!(r, req);
        assert_eq!(hops, 5);
        assert_eq!(epoch, 2);
        assert_eq!(m, msg);
    }

    #[test]
    fn corr_truncated_frames_error() {
        let frame = encode_corr(LockId(0), 1, 1, 0, &Message::Grant { mode: Mode::Read });
        assert_eq!(frame.len(), 20, "corr grant frame is 20 bytes");
        for cut in 0..frame.len() {
            assert!(
                decode_corr(frame.slice(0..cut)).is_err(),
                "decoding a {cut}-byte corr prefix must fail"
            );
        }
        // A plain (uncorrelated) frame is too short for the corr layout
        // unless its payload happens to pad it out; a 6-byte grant errors.
        let plain = encode(LockId(0), &Message::Grant { mode: Mode::Read });
        assert!(decode_corr(plain).is_err());
    }

    #[test]
    fn containers_round_trip_and_preserve_order() {
        let frames: Vec<Bytes> = (0..5u32)
            .map(|i| {
                encode_corr(
                    LockId(i),
                    (3u64 << 32) | (i as u64 + 1),
                    i as u16,
                    i,
                    &Message::Grant { mode: Mode::Read },
                )
            })
            .collect();
        let mut scratch = BytesMut::with_capacity(64);
        let container = encode_container_into(&frames, &mut scratch);
        assert!(is_container(&container));
        assert!(!is_container(&frames[0]), "bare frames are not containers");
        let mut out = Vec::new();
        decode_container_into(container, &mut out).expect("container decodes");
        assert_eq!(out.len(), 5);
        for (i, sub) in out.into_iter().enumerate() {
            assert_eq!(sub, frames[i], "sub-frame {i} byte-identical");
            let (lock, req, hops, epoch, msg) = decode_corr(sub).expect("sub-frame decodes");
            assert_eq!(lock, LockId(i as u32));
            assert_eq!(req, (3u64 << 32) | (i as u64 + 1));
            assert_eq!(hops, i as u16);
            assert_eq!(epoch, i as u32);
            assert_eq!(msg, Message::Grant { mode: Mode::Read });
        }
    }

    #[test]
    fn container_truncations_and_bad_shapes_error() {
        let frames = vec![encode_corr(LockId(1), 7, 1, 0, &Message::Grant { mode: Mode::Read }); 3];
        let mut scratch = BytesMut::new();
        let container = encode_container_into(&frames, &mut scratch);
        let mut out = Vec::new();
        for cut in 0..container.len() {
            assert!(
                decode_container_into(container.slice(0..cut), &mut out).is_err(),
                "a {cut}-byte container prefix must not decode"
            );
        }
        // Trailing garbage is rejected.
        let mut padded = BytesMut::new();
        padded.put_slice(container.as_ref());
        padded.put_u8(0);
        assert!(decode_container_into(padded.freeze(), &mut out).is_err());
        // A zero-count container is rejected.
        let mut empty = BytesMut::new();
        empty.put_u32_le(CONTAINER_MARKER);
        empty.put_u16_le(0);
        assert!(decode_container_into(empty.freeze(), &mut out).is_err());
        // A bare frame is not a container.
        assert!(decode_container_into(frames[0].clone(), &mut out).is_err());
    }

    #[test]
    fn frames_are_compact() {
        let frame = encode(LockId(0), &Message::Grant { mode: Mode::Read });
        assert_eq!(frame.len(), 6, "grant frame is 6 bytes");
        let frame = encode(
            LockId(0),
            &Message::Token {
                mode: Mode::Write,
                granter_owned: Mode::NoLock,
                queue: VecDeque::new(),
                frozen: ModeSet::EMPTY,
            },
        );
        assert_eq!(frame.len(), 10, "empty token frame is 10 bytes");
    }
}
