//! One cluster member as its own process: the socket-backed node runtime.
//!
//! [`Cluster`](crate::Cluster) spawns every node of the system inside one
//! process; [`Node`] spawns exactly one member — its shard workers, its
//! input channels, and a [`SocketTransport`] that carries frames to the
//! other members over TCP or UDP. N `Node`s (in N processes, or several in
//! one process for tests and benches) form the same cluster the in-process
//! runtime simulates, running the identical `worker_loop`.
//!
//! What necessarily changes versus `Cluster`:
//!
//! * **Reliability is always on.** Frames in wire transit are invisible to
//!   this process's in-flight gauge (see the gauge discipline in
//!   [`crate::socket`]), so quiescence leans on the sender's unacked
//!   gauge — which only exists with the shim. `Node::new` therefore treats
//!   [`ClusterConfig::reliable`]`: None` as [`crate::ReliableConfig::auto`],
//!   and
//!   resolves auto to the socket (WAN) RTO floor.
//! * **Shutdown is local.** A `Node` can only report its own per-lock
//!   states; the global audit needs every member's. [`NodeReport::states`]
//!   carries them out (portably via
//!   [`HierNode::encode_state`](dlm_core::HierNode::encode_state) for the
//!   multi-process harness), and [`audit_process_states`] reassembles and
//!   audits a full cluster's worth.
//!
//! Callers coordinate global quiescence themselves: poll every member's
//! [`Node::is_idle`] / [`Node::messages_sent`] until all are idle at once
//! and the message sum is stable, then shut all members down.

use crate::reliable::{PeerSnapshot, TransportClass};
use crate::runtime::{
    merge_links, worker_loop, ClusterConfig, CoalesceStat, Input, LinkReport, NodeExit, NodeMetrics,
};
use crate::shard::{effective_shards, ShardGate};
use crate::socket::{SocketConfig, SocketTransport};
use crate::transport::Transport;
use crate::NodeHandle;
use bytes::Bytes;
use crossbeam::channel::{unbounded, Sender};
use dlm_core::{audit, AuditError, HierNode, NodeId, ProtocolConfig};
use dlm_metrics::Histogram;
use dlm_trace::{merge_records, TraceRecord};
use std::collections::{BTreeSet, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Configuration of one socket-backed cluster member.
#[derive(Debug, Clone)]
pub struct NodeConfig {
    /// The cluster-wide parameters — node count, locks, shards, protocol,
    /// reliability, tracing, coalescing. Every member must use identical
    /// values. [`ClusterConfig::transport`] is ignored (the wire is
    /// [`Self::socket`]); `reliable: None` means automatic (see module
    /// docs).
    pub cluster: ClusterConfig,
    /// This member's identity and the cluster's socket addresses.
    pub socket: SocketConfig,
}

/// Final report of one shut-down member. The fields mirror
/// [`crate::ClusterReport`] restricted to what a single process can know;
/// there is no local audit because auditing needs every member's states —
/// see [`audit_process_states`].
#[derive(Debug)]
pub struct NodeReport {
    /// Protocol messages this member transmitted.
    pub messages_sent: u64,
    /// This member's final per-lock protocol states (only locks it ever
    /// touched).
    pub states: Vec<(u32, HierNode)>,
    /// Frames that arrived but could not be decoded — payload-level
    /// failures counted by the workers plus wire-level reassembly failures
    /// counted by the socket transport.
    pub decode_errors: u64,
    /// Stale-generation frames fenced by epoch rule R3 (see
    /// [`crate::ClusterReport::frames_fenced`]).
    pub frames_fenced: u64,
    /// Worker threads that panicked instead of returning state at
    /// shutdown (see [`crate::ClusterReport::workers_died`]).
    pub workers_died: u64,
    /// Completion replies whose application-side receiver had gone away.
    pub replies_dropped: u64,
    /// Per-link reliability/coalescing/wire counters involving this member.
    pub links: Vec<LinkReport>,
    /// This member's merged structured event trace.
    pub trace: Vec<TraceRecord>,
    /// Events evicted from the flight recorders before shutdown.
    pub trace_dropped: u64,
    /// Issue-to-grant latency (µs) of this member's completed operations.
    pub acquire_latency: Histogram,
    /// Causal hops of this member's completed operations.
    pub acquire_hops: Histogram,
}

/// One socket-backed cluster member: this process's shard workers plus a
/// [`SocketTransport`] to the other members.
pub struct Node {
    inputs: Vec<Sender<Input>>,
    gates: Vec<Arc<ShardGate>>,
    joins: Vec<JoinHandle<NodeExit>>,
    transport: Arc<SocketTransport>,
    messages: Arc<AtomicU64>,
    replies_dropped: Arc<AtomicU64>,
    in_flight: Arc<AtomicU64>,
    unacked: Arc<AtomicU64>,
    metrics: Vec<Arc<Mutex<NodeMetrics>>>,
    me: u32,
    shards: usize,
}

impl Node {
    /// Bind this member's socket and spawn its shard workers. Peers that
    /// are not up yet are dialed in the background (see
    /// [`SocketConfig::connect_timeout`]); operations issued before a link
    /// is established wait in that link's write queue.
    pub fn new(config: NodeConfig) -> std::io::Result<Node> {
        let mut cluster = config.cluster;
        assert!(cluster.nodes >= 1);
        assert!(cluster.locks >= 1);
        assert_eq!(
            cluster.nodes,
            config.socket.addrs.len(),
            "one socket address per node"
        );
        assert!((config.socket.me as usize) < cluster.nodes);
        // Sockets always run the reliability shim (module docs); an auto
        // or absent config resolves to the WAN floor here.
        cluster.reliable = Some(
            cluster
                .reliable
                .unwrap_or_default()
                .resolved_for(TransportClass::Socket),
        );
        let me = config.socket.me;
        let shards = effective_shards(cluster.shards);
        let messages = Arc::new(AtomicU64::new(0));
        let replies_dropped = Arc::new(AtomicU64::new(0));
        let in_flight = Arc::new(AtomicU64::new(0));
        let unacked = Arc::new(AtomicU64::new(0));
        let epoch = Instant::now();

        let channels: Vec<_> = (0..shards).map(|_| unbounded()).collect();
        let inputs: Vec<Sender<Input>> = channels.iter().map(|(tx, _)| tx.clone()).collect();
        let gates: Vec<Arc<ShardGate>> = (0..shards)
            .map(|_| Arc::new(ShardGate::new(cluster.shard_queue)))
            .collect();
        let transport = SocketTransport::bind(
            config.socket,
            inputs.clone(),
            Arc::clone(&in_flight),
            shards,
        )?;

        let metrics: Vec<Arc<Mutex<NodeMetrics>>> = (0..shards)
            .map(|_| Arc::new(Mutex::new(NodeMetrics::default())))
            .collect();
        let beats: Arc<Vec<AtomicU64>> = Arc::new((0..shards).map(|_| AtomicU64::new(0)).collect());
        let mut joins = Vec::with_capacity(shards);
        for (shard, (_, rx)) in channels.into_iter().enumerate() {
            let link: Arc<dyn Transport> = transport.clone();
            let counter = Arc::clone(&messages);
            let gauge = Arc::clone(&in_flight);
            let unacked_gauge = Arc::clone(&unacked);
            let dropped = Arc::clone(&replies_dropped);
            let gate = Arc::clone(&gates[shard]);
            let metrics = Arc::clone(&metrics[shard]);
            let shard_beats = Arc::clone(&beats);
            let cfg = cluster;
            let join = std::thread::Builder::new()
                .name(format!("dlm-proc-{me}.{shard}"))
                .spawn(move || {
                    worker_loop(
                        NodeId(me),
                        shard as u32,
                        shards as u32,
                        cfg,
                        rx,
                        link,
                        counter,
                        gauge,
                        unacked_gauge,
                        dropped,
                        epoch,
                        metrics,
                        gate,
                        shard_beats,
                        shard,
                    )
                })
                .expect("spawn worker thread");
            joins.push(join);
        }

        Ok(Node {
            inputs,
            gates,
            joins,
            transport,
            messages,
            replies_dropped,
            in_flight,
            unacked,
            metrics,
            me,
            shards,
        })
    }

    /// This member's node id.
    pub fn id(&self) -> u32 {
        self.me
    }

    /// A cloneable blocking handle to this member's application interface.
    pub fn handle(&self) -> NodeHandle {
        NodeHandle::new(
            NodeId(self.me),
            self.inputs.clone(),
            self.gates.clone(),
            Arc::clone(&self.replies_dropped),
        )
    }

    /// Protocol messages this member transmitted so far.
    pub fn messages_sent(&self) -> u64 {
        self.messages.load(Ordering::Relaxed)
    }

    /// True when this member owes the cluster nothing it knows about: no
    /// frame in local flight and no data sequence awaiting a peer's ack.
    /// Global quiescence needs *every* member idle at once with a stable
    /// global message count — one member's idle is necessary, not
    /// sufficient.
    pub fn is_idle(&self) -> bool {
        self.in_flight.load(Ordering::Relaxed) == 0 && self.unacked.load(Ordering::Relaxed) == 0
    }

    /// Local quiescence wait, mirroring
    /// [`Cluster::quiesce_within`](crate::Cluster::quiesce_within): returns
    /// the message count once this member has been idle with a stable
    /// counter for `idle`, or whatever it is at `timeout`.
    pub fn quiesce_within(&self, idle: Duration, timeout: Duration) -> u64 {
        let start = Instant::now();
        let tick = (idle / 8).max(Duration::from_micros(200)).min(idle);
        let mut last = self.messages_sent();
        let mut stable_since = Instant::now();
        loop {
            if start.elapsed() >= timeout {
                return self.messages_sent();
            }
            std::thread::sleep(tick);
            let count = self.messages_sent();
            if count != last || !self.is_idle() {
                last = count;
                stable_since = Instant::now();
            } else if stable_since.elapsed() >= idle {
                return count;
            }
        }
    }

    /// Shut this member down and collect its final report. Same teardown
    /// order as the in-process cluster: drain (bounded), stop the
    /// transport (final wire flush), then stop the workers. The caller is
    /// responsible for only shutting down a *globally* quiescent cluster;
    /// a member with unacked data to an already-dead peer gives up after
    /// the bounded drain.
    pub fn shutdown(self) -> NodeReport {
        let deadline = Instant::now() + Duration::from_secs(10);
        while !self.is_idle() {
            if Instant::now() >= deadline {
                break;
            }
            std::thread::sleep(Duration::from_micros(200));
        }
        let transport_report = self.transport.shutdown();
        for tx in &self.inputs {
            let _ = tx.send(Input::Shutdown);
        }
        let mut states: HashMap<u32, HierNode> = HashMap::new();
        let mut traces: Vec<Vec<TraceRecord>> = Vec::with_capacity(self.joins.len() + 1);
        let mut trace_dropped = transport_report.trace_dropped;
        let mut decode_errors = transport_report.wire_decode_errors;
        let mut frames_fenced = 0;
        let mut workers_died: u64 = 0;
        let mut snaps: Vec<PeerSnapshot> = Vec::new();
        let mut coalesce: Vec<CoalesceStat> = Vec::new();
        let mut acquire_latency = Histogram::new();
        let mut acquire_hops = Histogram::new();
        for m in &self.metrics {
            let m = m.lock().expect("metrics mutex");
            acquire_latency.merge(&m.acquire_latency);
            acquire_hops.merge(&m.acquire_hops);
        }
        for join in self.joins {
            // A panicked worker is reported, not propagated; its shard's
            // state is gone, exactly as if it crashed.
            let exit = match join.join() {
                Ok(exit) => exit,
                Err(_) => {
                    workers_died += 1;
                    continue;
                }
            };
            states.extend(exit.locks);
            traces.push(exit.trace);
            trace_dropped += exit.trace_dropped;
            decode_errors += exit.decode_errors;
            frames_fenced += exit.frames_fenced;
            snaps.extend(exit.links);
            coalesce.extend(exit.coalesce);
        }
        traces.push(transport_report.trace);
        let per_node = [(self.me, snaps)];
        let coalesce = [(self.me, coalesce)];
        let mut states: Vec<(u32, HierNode)> = states.into_iter().collect();
        states.sort_by_key(|(lock, _)| *lock);
        NodeReport {
            messages_sent: self.messages.load(Ordering::Relaxed),
            states,
            decode_errors,
            frames_fenced,
            workers_died,
            replies_dropped: self.replies_dropped.load(Ordering::Relaxed),
            links: merge_links(
                &per_node,
                &transport_report.faults,
                &coalesce,
                &transport_report.socket,
            ),
            trace: merge_records(traces),
            trace_dropped,
            acquire_latency,
            acquire_hops,
        }
    }

    /// Worker threads per node (the effective shard count).
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Simulate this member's crash: its workers abandon their protocol
    /// state and fail waiting callers with
    /// [`crate::ClusterError::WorkerDied`], and the wire is torn down so
    /// peers observe the TCP connections dying *now* — their
    /// [`Node::suspects`] detectors flag this member. Consumes the node;
    /// a dead member reports nothing.
    pub fn crash(self) {
        for tx in &self.inputs {
            let _ = tx.send(Input::Die);
        }
        let _ = self.transport.shutdown();
        for tx in &self.inputs {
            let _ = tx.send(Input::Shutdown);
        }
        for join in self.joins {
            let _ = join.join();
        }
    }

    /// Report `(lock, has_token, epoch)` for every lock this member hosts;
    /// `(self.id(), self.scan_locks())` is one input row for
    /// [`crate::plan_recovery`]. Only meaningful on a quiescent member.
    pub fn scan_locks(&self) -> Vec<(u32, bool, u32)> {
        let (tx, rx) = unbounded();
        for input in &self.inputs {
            let _ = input.send(Input::Scan(tx.clone()));
        }
        drop(tx);
        let mut rows = Vec::new();
        for _ in 0..self.shards {
            let Ok((_, mut shard_rows)) = rx.recv_timeout(Duration::from_secs(5)) else {
                break;
            };
            rows.append(&mut shard_rows);
        }
        rows.sort_unstable();
        rows
    }

    /// Apply a repair wave planned by [`crate::plan_recovery`] around the
    /// crashed member `dead` (DESIGN.md §17): isolates the dead link end,
    /// then repairs every planned lock this member's workers own. Every
    /// surviving member must apply the same wave; quiesce all survivors
    /// afterwards before relying on the repaired state.
    pub fn repair(&self, dead: u32, survivors: &[u32], plans: &[(u32, u32, u32)]) {
        let survivors: Arc<Vec<NodeId>> = Arc::new(survivors.iter().map(|&n| NodeId(n)).collect());
        let plans: Arc<Vec<(u32, u32, u32)>> = Arc::new(plans.to_vec());
        for input in &self.inputs {
            let _ = input.send(Input::Isolate { dead: NodeId(dead) });
            let _ = input.send(Input::PeerDown {
                dead: NodeId(dead),
                survivors: Arc::clone(&survivors),
                plans: Arc::clone(&plans),
            });
        }
    }

    /// Socket-path failure detector: peers whose TCP link to this member
    /// has died at least once (connection reset, EOF mid-stream, or a
    /// write failure). A killed member process shows up here on every
    /// survivor it was connected to.
    pub fn suspects(&self) -> Vec<u32> {
        self.transport
            .peer_resets()
            .iter()
            .enumerate()
            .filter(|&(peer, &resets)| peer as u32 != self.me && resets > 0)
            .map(|(peer, _)| peer as u32)
            .collect()
    }

    /// Test hook: push a raw wire payload into this member's shard-0
    /// worker as if node `from` had sent it, bypassing the socket (so
    /// tests can exercise the decode-error and epoch-fence paths without a
    /// cooperating remote).
    #[doc(hidden)]
    pub fn inject_frame(&self, from: u32, frame: Vec<u8>) {
        self.in_flight.fetch_add(1, Ordering::Relaxed);
        let _ = self.inputs[0].send(Input::Net {
            from: NodeId(from * self.shards as u32),
            frame: Bytes::from(frame),
        });
    }
}

/// Audit a whole cluster from its members' reported states.
///
/// `states[n]` is member `n`'s [`NodeReport::states`] (decoded with
/// [`HierNode::decode_state`](dlm_core::HierNode::decode_state) when they
/// crossed a process boundary). Locks a member never touched contribute a
/// synthesized initial state, exactly as
/// [`Cluster::shutdown`](crate::Cluster::shutdown) does; the audit runs
/// with `quiescent = true`, so the cluster must have been globally
/// quiescent when the states were captured.
pub fn audit_process_states(
    protocol: ProtocolConfig,
    states: &[Vec<(u32, HierNode)>],
) -> Vec<AuditError> {
    audit_surviving_states(protocol, states, &[])
}

/// [`audit_process_states`] for a cluster that lost members: `crashed`
/// lists the member ids that died. A dead member contributes no states
/// (pass its slot empty) and is excluded from the audit rather than
/// synthesized fresh — resurrecting it at epoch 0 would re-create the very
/// token the recovery's new epoch replaced. The per-lock audit runs over
/// the survivors only (the audit resolves nodes by id, so a survivor-only
/// snapshot is well-formed).
pub fn audit_surviving_states(
    protocol: ProtocolConfig,
    states: &[Vec<(u32, HierNode)>],
    crashed: &[u32],
) -> Vec<AuditError> {
    let nodes = states.len();
    let touched: BTreeSet<u32> = states
        .iter()
        .flat_map(|s| s.iter().map(|(lock, _)| *lock))
        .collect();
    let by_node: Vec<HashMap<u32, &HierNode>> = states
        .iter()
        .map(|s| s.iter().map(|(lock, node)| (*lock, node)).collect())
        .collect();
    let fresh = |node: usize| {
        if node == 0 {
            HierNode::with_token(NodeId(0), protocol)
        } else {
            HierNode::new(NodeId(node as u32), NodeId(0), protocol)
        }
    };
    let mut errors = Vec::new();
    for lock in touched {
        let members: Vec<HierNode> = (0..nodes)
            .filter(|n| !crashed.contains(&(*n as u32)))
            .map(|n| {
                by_node[n]
                    .get(&lock)
                    .map(|s| (*s).clone())
                    .unwrap_or_else(|| fresh(n))
            })
            .collect();
        errors.extend(audit(&members, &[], true));
    }
    errors
}
