//! A thread-per-node, channel-connected **in-process cluster** running the
//! hierarchical locking protocol — the "real concurrency" counterpart to the
//! deterministic simulator in `dlm-sim`, standing in for the paper's
//! TCP/MPI testbeds.
//!
//! * every node is an OS thread owning its per-lock [`dlm_core::HierNode`]s,
//! * links are crossbeam channels; every protocol message is round-tripped
//!   through the compact binary [`codec`] (so the wire format is exercised,
//!   not just in-memory moves),
//! * an optional router thread injects artificial per-message latency,
//! * applications drive nodes through cloneable blocking [`NodeHandle`]s
//!   (`acquire` / `release` / `upgrade`).
//!
//! The runtime exists to demonstrate the protocol under true parallelism
//! (`cargo run --example cluster_demo`) and to cross-validate the simulator:
//! the same state machines, byte-identical rules, different scheduler.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codec;
mod handle;
mod runtime;

pub use handle::{ClusterError, NodeHandle};
pub use runtime::{Cluster, ClusterConfig, ClusterReport};

pub use dlm_core::{LockId, Mode, NodeId};
pub use dlm_trace::TraceRecord;
