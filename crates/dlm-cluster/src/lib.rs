//! A sharded, channel-connected **in-process cluster** running the
//! hierarchical locking protocol — the "real concurrency" counterpart to the
//! deterministic simulator in `dlm-sim`, standing in for the paper's
//! TCP/MPI testbeds.
//!
//! * every node runs one worker thread per [`shard`] (default one), each
//!   owning the [`dlm_core::HierNode`]s of the locks hashing to it —
//!   created lazily, so a node can host millions of mostly-idle locks,
//! * links are a pluggable [`transport::Transport`] — perfect channels,
//!   constant-latency routing, or seeded fault injection
//!   ([`TransportKind`]); every protocol message is round-tripped through
//!   the compact binary [`codec`] (so the wire format is exercised, not
//!   just in-memory moves),
//! * an optional reliability shim ([`ReliableConfig`]) rebuilds the FIFO
//!   reliable links the protocol assumes on top of a lossy transport:
//!   per-link sequence numbers, cumulative acks, retransmission with capped
//!   exponential backoff, and receive-side dedup/reorder buffering,
//! * protocol frames sharing a destination within one worker batch are
//!   coalesced into a single container wire frame
//!   ([`codec::encode_container_into`]) — one transport handoff, one
//!   reliability sequence number per batch per link,
//! * applications drive nodes through cloneable blocking [`NodeHandle`]s
//!   (`acquire` / `release` / `upgrade`) or the batched [`Pipeline`]
//!   (`submit_*` / [`Completion`]s), both guarded per shard by a bounded
//!   admission gate that sheds overload as [`ClusterError::Overloaded`].
//!
//! The runtime exists to demonstrate the protocol under true parallelism
//! (`cargo run --example cluster_demo`), to cross-validate the simulator
//! (same state machines, byte-identical rules, different scheduler), and —
//! with [`TransportKind::Faulty`] — to show the protocol surviving an
//! adversarial network that drops, duplicates, and reorders frames.
//!
//! Beyond the in-process cluster, the [`socket`] module puts the same
//! worker loop on a real wire: [`Node`] runs one cluster member per
//! process over TCP or UDP loopback/LAN sockets (the paper's actual
//! experimental setup), with the `dlm-node` binary and harness driver in
//! `dlm-harness` spawning and measuring multi-process clusters end to end.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codec;
mod handle;
mod node;
mod reliable;
mod runtime;
pub mod shard;
pub mod socket;
pub mod transport;

pub use handle::{ClusterError, Completion, NodeHandle, Pipeline};
pub use node::{audit_process_states, audit_surviving_states, Node, NodeConfig, NodeReport};
pub use reliable::{ReliableConfig, TransportClass};
pub use runtime::{plan_recovery, Cluster, ClusterConfig, ClusterReport, LinkReport, ScanReport};
pub use socket::{SocketConfig, SocketMode, SocketTransport};
pub use transport::{FaultConfig, SocketLinkStat, TransportKind};

pub use dlm_core::{LockId, Mode, NodeId};
pub use dlm_trace::TraceRecord;
