//! Application-side handles: blocking per-node handles and the pipelined
//! batch interface.
//!
//! Both route every operation to the shard worker owning its lock
//! ([`crate::shard::shard_of`]) and reserve a slot on that shard's
//! admission gate first — a full shard refuses with
//! [`ClusterError::Overloaded`] instead of queueing without bound.

use crate::runtime::Input;
use crate::shard::{shard_of, ShardGate};
use crossbeam::channel::{bounded, unbounded, Receiver, Sender, TryRecvError};
use dlm_core::{AcquireError, LockId, Mode, NodeId, ReleaseError, UpgradeError};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Application-visible failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClusterError {
    /// Acquire misuse (double acquire, NoLock request, …).
    Acquire(AcquireError),
    /// Upgrade misuse (not holding U, …).
    Upgrade(UpgradeError),
    /// Release misuse (not holding).
    Release(ReleaseError),
    /// The lock already has an outstanding `acquire`/`upgrade` on this node
    /// (the protocol's single-pending model); retry after it completes.
    /// Operations on *other* locks are unaffected.
    Busy,
    /// The lock's shard worker has a full ingress queue
    /// ([`crate::ClusterConfig::shard_queue`]); the operation was shed
    /// before it was queued — retry after draining some completions.
    Overloaded,
    /// The node thread is gone (cluster shut down).
    Disconnected,
    /// The lock's worker died mid-operation — its node crashed (or the
    /// worker thread panicked) while this operation was queued or waiting.
    /// The failure detector ([`crate::Cluster::suspects`]) will flag the
    /// node; the operation can be retried on a survivor after recovery.
    WorkerDied,
}

impl std::fmt::Display for ClusterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClusterError::Acquire(e) => write!(f, "acquire: {e}"),
            ClusterError::Upgrade(e) => write!(f, "upgrade: {e}"),
            ClusterError::Release(e) => write!(f, "release: {e}"),
            ClusterError::Busy => {
                write!(f, "lock already has an outstanding operation on this node")
            }
            ClusterError::Overloaded => {
                write!(f, "shard ingress queue is full; operation shed")
            }
            ClusterError::Disconnected => write!(f, "cluster is shut down"),
            ClusterError::WorkerDied => {
                write!(f, "the lock's worker died (node crash or worker panic)")
            }
        }
    }
}

impl std::error::Error for ClusterError {}

/// The finished outcome of one pipelined operation, correlated back to its
/// submission by `(lock, tag)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Completion {
    /// The lock the operation targeted.
    pub lock: LockId,
    /// The caller-chosen tag passed at submission.
    pub tag: u64,
    /// The operation's outcome.
    pub result: Result<(), ClusterError>,
}

/// What a pipelined operation does to its lock.
#[derive(Debug, Clone, Copy)]
pub(crate) enum OpKind {
    Acquire(Mode),
    Upgrade,
    Release,
}

/// One operation inside an [`Input::Ops`] batch.
pub(crate) struct PipeOp {
    pub(crate) lock: LockId,
    pub(crate) kind: OpKind,
    pub(crate) tag: u64,
}

/// Where a worker delivers an operation's outcome: a dedicated one-shot
/// channel (blocking calls) or a shared completion stream tagged with the
/// operation's identity (pipelined calls). The stream carries *vectors* of
/// completions so a worker can answer a whole synchronous chunk with one
/// channel send; deferred completions travel as singleton vectors.
enum ReplySink {
    Oneshot(Sender<Result<(), ClusterError>>),
    Shared {
        tx: Sender<Vec<Completion>>,
        lock: LockId,
        tag: u64,
    },
}

/// Completion channel used by a shard worker to answer an application
/// operation.
pub(crate) struct Reply {
    sink: ReplySink,
    dropped: Arc<AtomicU64>,
}

impl Reply {
    fn oneshot(tx: Sender<Result<(), ClusterError>>, dropped: &Arc<AtomicU64>) -> Self {
        Reply {
            sink: ReplySink::Oneshot(tx),
            dropped: Arc::clone(dropped),
        }
    }

    pub(crate) fn shared(
        tx: Sender<Vec<Completion>>,
        lock: LockId,
        tag: u64,
        dropped: &Arc<AtomicU64>,
    ) -> Self {
        Reply {
            sink: ReplySink::Shared { tx, lock, tag },
            dropped: Arc::clone(dropped),
        }
    }

    /// Deliver the outcome immediately (deferred grants, completing long
    /// after the batch that submitted them).
    pub(crate) fn complete(self, result: Result<(), ClusterError>) {
        // The application side may have given up; an answer nobody hears is
        // not an error, but it must not vanish silently either.
        let heard = match self.sink {
            ReplySink::Oneshot(tx) => tx.send(result).is_ok(),
            ReplySink::Shared { tx, lock, tag } => {
                tx.send(vec![Completion { lock, tag, result }]).is_ok()
            }
        };
        if !heard {
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Deliver the outcome of a synchronously-settled operation: pipelined
    /// outcomes are appended to `batch` (the worker ships the whole batch
    /// with one send at chunk end), blocking outcomes go straight to their
    /// one-shot channel.
    pub(crate) fn complete_into(
        self,
        result: Result<(), ClusterError>,
        batch: &mut Vec<Completion>,
    ) {
        match self.sink {
            ReplySink::Oneshot(tx) => {
                if tx.send(result).is_err() {
                    self.dropped.fetch_add(1, Ordering::Relaxed);
                }
            }
            ReplySink::Shared { lock, tag, .. } => {
                batch.push(Completion { lock, tag, result });
            }
        }
    }
}

/// One-shot boolean answer for `try_acquire`.
pub(crate) struct TryReply {
    tx: Sender<bool>,
    dropped: Arc<AtomicU64>,
}

impl TryReply {
    pub(crate) fn complete(self, granted: bool) {
        if self.tx.send(granted).is_err() {
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// A cloneable, blocking handle to one cluster node.
///
/// All operations are forwarded to the shard worker owning the lock;
/// `acquire` and `upgrade` block until the protocol grants. A node supports
/// one outstanding operation per lock (the protocol's single-pending
/// model); concurrent misuse surfaces as [`ClusterError`].
#[derive(Clone)]
pub struct NodeHandle {
    node: NodeId,
    /// One input channel and admission gate per shard worker of this node.
    txs: Vec<Sender<Input>>,
    gates: Vec<Arc<ShardGate>>,
    replies_dropped: Arc<AtomicU64>,
}

impl NodeHandle {
    pub(crate) fn new(
        node: NodeId,
        txs: Vec<Sender<Input>>,
        gates: Vec<Arc<ShardGate>>,
        replies_dropped: Arc<AtomicU64>,
    ) -> Self {
        debug_assert_eq!(txs.len(), gates.len());
        debug_assert!(txs.len().is_power_of_two());
        NodeHandle {
            node,
            txs,
            gates,
            replies_dropped,
        }
    }

    /// The node this handle drives.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// The shard worker owning `lock` on this node.
    fn shard(&self, lock: LockId) -> usize {
        shard_of(lock, self.txs.len())
    }

    fn call(&self, lock: LockId, make: impl FnOnce(Reply) -> Input) -> Result<(), ClusterError> {
        let shard = self.shard(lock);
        if !self.gates[shard].try_admit(1) {
            return Err(ClusterError::Overloaded);
        }
        let (tx, rx) = bounded(1);
        let reply = Reply::oneshot(tx, &self.replies_dropped);
        self.txs[shard]
            .send(make(reply))
            .map_err(|_| ClusterError::Disconnected)?;
        rx.recv().map_err(|_| ClusterError::Disconnected)?
    }

    /// Acquire `lock` in `mode`; blocks until granted.
    pub fn acquire(&self, lock: LockId, mode: Mode) -> Result<(), ClusterError> {
        self.call(lock, |reply| Input::Acquire { lock, mode, reply })
    }

    /// Acquire `lock` in `mode` only if this node can admit it locally with
    /// zero messages (the conservative CosConcurrency `try_lock` semantic);
    /// returns whether the lock was taken.
    pub fn try_acquire(&self, lock: LockId, mode: Mode) -> Result<bool, ClusterError> {
        let shard = self.shard(lock);
        if !self.gates[shard].try_admit(1) {
            return Err(ClusterError::Overloaded);
        }
        let (tx, rx) = bounded(1);
        self.txs[shard]
            .send(Input::TryAcquire {
                lock,
                mode,
                reply: TryReply {
                    tx,
                    dropped: Arc::clone(&self.replies_dropped),
                },
            })
            .map_err(|_| ClusterError::Disconnected)?;
        rx.recv().map_err(|_| ClusterError::Disconnected)
    }

    /// Atomically upgrade a held `U` lock to `W`; blocks until complete.
    pub fn upgrade(&self, lock: LockId) -> Result<(), ClusterError> {
        self.call(lock, |reply| Input::Upgrade { lock, reply })
    }

    /// Release `lock`.
    pub fn release(&self, lock: LockId) -> Result<(), ClusterError> {
        self.call(lock, |reply| Input::Release { lock, reply })
    }

    /// A pipelined interface to this node: submit many operations without
    /// blocking per call, then drain [`Completion`]s.
    pub fn pipeline(&self) -> Pipeline {
        let (comp_tx, comp_rx) = unbounded();
        Pipeline {
            txs: self.txs.clone(),
            gates: self.gates.clone(),
            comp_tx,
            comp_rx,
            ready: std::collections::VecDeque::new(),
            bufs: (0..self.txs.len()).map(|_| Vec::new()).collect(),
            buffered: 0,
            outstanding: 0,
        }
    }
}

/// Submit a shard's buffered operations once this many have accumulated
/// (one channel hop then carries the whole batch).
const PIPELINE_CHUNK: usize = 256;

/// A pipelined, single-threaded client to one node: operations are
/// buffered per shard, shipped in batches of [`PIPELINE_CHUNK`] (one
/// channel handoff per batch instead of two per operation), and complete
/// asynchronously on a shared stream.
///
/// The protocol's single-pending rule still applies per lock — submitting
/// an operation for a lock whose previous operation has not completed yet
/// yields a [`ClusterError::Busy`] completion — but operations on distinct
/// locks overlap freely, which is what the pipeline is for.
///
/// Dropping a pipeline with operations still in flight is safe: their
/// completions count into the cluster's `replies_dropped` tally.
pub struct Pipeline {
    txs: Vec<Sender<Input>>,
    gates: Vec<Arc<ShardGate>>,
    comp_tx: Sender<Vec<Completion>>,
    comp_rx: Receiver<Vec<Completion>>,
    /// Completions received from the stream but not yet handed to the
    /// caller (workers answer synchronous chunks as whole vectors).
    ready: std::collections::VecDeque<Completion>,
    /// Not-yet-shipped operations, per shard.
    bufs: Vec<Vec<PipeOp>>,
    /// Operations sitting in `bufs`.
    buffered: usize,
    /// Operations submitted (shipped or buffered) without a drained
    /// completion yet.
    outstanding: usize,
}

impl Pipeline {
    fn submit(&mut self, lock: LockId, kind: OpKind, tag: u64) -> Result<(), ClusterError> {
        let shard = shard_of(lock, self.txs.len());
        // Reserve the worker-queue slot at submission, while the op is
        // still buffered client-side: the gate bounds *admitted* work, and
        // shedding here keeps a fast submitter from outrunning its shard.
        if !self.gates[shard].try_admit(1) {
            return Err(ClusterError::Overloaded);
        }
        self.bufs[shard].push(PipeOp { lock, kind, tag });
        self.buffered += 1;
        self.outstanding += 1;
        if self.bufs[shard].len() >= PIPELINE_CHUNK {
            self.ship(shard)?;
        }
        Ok(())
    }

    /// Submit an acquire of `lock` in `mode`; its [`Completion`] carries
    /// `tag` back.
    pub fn submit_acquire(
        &mut self,
        lock: LockId,
        mode: Mode,
        tag: u64,
    ) -> Result<(), ClusterError> {
        self.submit(lock, OpKind::Acquire(mode), tag)
    }

    /// Submit a Rule 7 upgrade of `lock`.
    pub fn submit_upgrade(&mut self, lock: LockId, tag: u64) -> Result<(), ClusterError> {
        self.submit(lock, OpKind::Upgrade, tag)
    }

    /// Submit a release of `lock`.
    pub fn submit_release(&mut self, lock: LockId, tag: u64) -> Result<(), ClusterError> {
        self.submit(lock, OpKind::Release, tag)
    }

    fn ship(&mut self, shard: usize) -> Result<(), ClusterError> {
        // Hand the worker a full-capacity buffer and leave one behind, so a
        // steady stream of chunks never regrows the shard buffer from zero.
        let ops = std::mem::replace(&mut self.bufs[shard], Vec::with_capacity(PIPELINE_CHUNK));
        self.buffered -= ops.len();
        self.txs[shard]
            .send(Input::Ops {
                ops,
                tx: self.comp_tx.clone(),
            })
            .map_err(|_| ClusterError::Disconnected)
    }

    /// Ship every buffered operation now, regardless of batch size.
    pub fn flush(&mut self) -> Result<(), ClusterError> {
        for shard in 0..self.bufs.len() {
            if !self.bufs[shard].is_empty() {
                self.ship(shard)?;
            }
        }
        Ok(())
    }

    /// Operations submitted whose completion has not been drained yet.
    pub fn outstanding(&self) -> usize {
        self.outstanding
    }

    /// Block for the next completion. If every outstanding operation is
    /// still buffered client-side, the buffers are shipped first — the wait
    /// never deadlocks on work this pipeline is holding, but neither does
    /// it break batching by force-flushing while shipped operations are
    /// already due to complete.
    pub fn recv(&mut self) -> Result<Completion, ClusterError> {
        if self.outstanding == 0 {
            return Err(ClusterError::Disconnected);
        }
        if self.buffered == self.outstanding {
            self.flush()?;
        }
        while self.ready.is_empty() {
            let batch = self
                .comp_rx
                .recv()
                .map_err(|_| ClusterError::Disconnected)?;
            self.ready.extend(batch);
        }
        self.outstanding -= 1;
        Ok(self.ready.pop_front().expect("non-empty ready queue"))
    }

    /// Drain one completion if one is ready.
    pub fn try_recv(&mut self) -> Option<Completion> {
        while self.ready.is_empty() {
            match self.comp_rx.try_recv() {
                Ok(batch) => self.ready.extend(batch),
                Err(TryRecvError::Empty | TryRecvError::Disconnected) => return None,
            }
        }
        self.outstanding -= 1;
        self.ready.pop_front()
    }
}
