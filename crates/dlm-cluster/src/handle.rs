//! Blocking application-side handles.

use crate::runtime::Input;
use crossbeam::channel::{bounded, Sender};
use dlm_core::{AcquireError, LockId, Mode, NodeId, ReleaseError, UpgradeError};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Application-visible failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClusterError {
    /// Acquire misuse (double acquire, NoLock request, …).
    Acquire(AcquireError),
    /// Upgrade misuse (not holding U, …).
    Upgrade(UpgradeError),
    /// Release misuse (not holding).
    Release(ReleaseError),
    /// The lock already has an outstanding `acquire`/`upgrade` on this node
    /// (the protocol's single-pending model); retry after it completes.
    Busy,
    /// The node thread is gone (cluster shut down).
    Disconnected,
}

impl std::fmt::Display for ClusterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClusterError::Acquire(e) => write!(f, "acquire: {e}"),
            ClusterError::Upgrade(e) => write!(f, "upgrade: {e}"),
            ClusterError::Release(e) => write!(f, "release: {e}"),
            ClusterError::Busy => {
                write!(f, "lock already has an outstanding operation on this node")
            }
            ClusterError::Disconnected => write!(f, "cluster is shut down"),
        }
    }
}

impl std::error::Error for ClusterError {}

/// One-shot completion channel used by the node thread to answer a blocking
/// application call.
pub(crate) struct Reply {
    tx: Sender<Result<(), ClusterError>>,
    dropped: Arc<AtomicU64>,
}

impl Reply {
    pub(crate) fn complete(self, result: Result<(), ClusterError>) {
        // The application side may have given up; an answer nobody hears is
        // not an error, but it must not vanish silently either.
        if self.tx.send(result).is_err() {
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// One-shot boolean answer for `try_acquire`.
pub(crate) struct TryReply {
    tx: Sender<bool>,
    dropped: Arc<AtomicU64>,
}

impl TryReply {
    pub(crate) fn complete(self, granted: bool) {
        if self.tx.send(granted).is_err() {
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// A cloneable, blocking handle to one cluster node.
///
/// All operations are forwarded to the node's thread; `acquire` and
/// `upgrade` block until the protocol grants. A node supports one
/// outstanding operation per lock (the protocol's single-pending model);
/// concurrent misuse surfaces as [`ClusterError`].
#[derive(Clone)]
pub struct NodeHandle {
    node: NodeId,
    tx: Sender<Input>,
    replies_dropped: Arc<AtomicU64>,
}

impl NodeHandle {
    pub(crate) fn new(node: NodeId, tx: Sender<Input>, replies_dropped: Arc<AtomicU64>) -> Self {
        NodeHandle {
            node,
            tx,
            replies_dropped,
        }
    }

    /// The node this handle drives.
    pub fn node(&self) -> NodeId {
        self.node
    }

    fn call(&self, make: impl FnOnce(Reply) -> Input) -> Result<(), ClusterError> {
        let (tx, rx) = bounded(1);
        let reply = Reply {
            tx,
            dropped: Arc::clone(&self.replies_dropped),
        };
        self.tx
            .send(make(reply))
            .map_err(|_| ClusterError::Disconnected)?;
        rx.recv().map_err(|_| ClusterError::Disconnected)?
    }

    /// Acquire `lock` in `mode`; blocks until granted.
    pub fn acquire(&self, lock: LockId, mode: Mode) -> Result<(), ClusterError> {
        self.call(|reply| Input::Acquire { lock, mode, reply })
    }

    /// Acquire `lock` in `mode` only if this node can admit it locally with
    /// zero messages (the conservative CosConcurrency `try_lock` semantic);
    /// returns whether the lock was taken.
    pub fn try_acquire(&self, lock: LockId, mode: Mode) -> Result<bool, ClusterError> {
        let (tx, rx) = bounded(1);
        self.tx
            .send(Input::TryAcquire {
                lock,
                mode,
                reply: TryReply {
                    tx,
                    dropped: Arc::clone(&self.replies_dropped),
                },
            })
            .map_err(|_| ClusterError::Disconnected)?;
        rx.recv().map_err(|_| ClusterError::Disconnected)
    }

    /// Atomically upgrade a held `U` lock to `W`; blocks until complete.
    pub fn upgrade(&self, lock: LockId) -> Result<(), ClusterError> {
        self.call(|reply| Input::Upgrade { lock, reply })
    }

    /// Release `lock`.
    pub fn release(&self, lock: LockId) -> Result<(), ClusterError> {
        self.call(|reply| Input::Release { lock, reply })
    }
}
