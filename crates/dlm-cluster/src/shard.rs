//! Lock-id → shard routing and per-shard admission control.
//!
//! A cluster node with `shards > 1` runs one worker thread per shard, each
//! owning the protocol instances of the locks that hash to it. Routing must
//! be a pure function of the lock id alone — every node (and every client
//! handle) computes it independently, and a frame for lock `L` sent from
//! node A must land on the worker of node B that owns `L` there. The hash
//! is *splittable*: shard counts are powers of two and the assignment for a
//! smaller count is a prefix (mask) of the assignment for a larger one, so
//! doubling the worker pool moves each lock either nowhere or to exactly
//! one new shard (`old + half`), never to an arbitrary slot.
//!
//! Admission is a per-shard counting gate ([`ShardGate`]): application
//! operations reserve a slot before they are queued to the worker and
//! release it when the worker dequeues them. Network frames bypass the gate
//! — protocol traffic must always drain, only *new* application load is
//! shed (with [`crate::ClusterError::Overloaded`]).

use dlm_core::LockId;
use std::hash::{BuildHasherDefault, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};

/// Round a requested shard count to the effective power-of-two count the
/// cluster will run (`0` is treated as `1`).
pub fn effective_shards(requested: usize) -> usize {
    requested.max(1).next_power_of_two()
}

/// The shard (in `0..shards`) owning `lock`. `shards` must be a power of
/// two ([`effective_shards`]).
///
/// SplitMix64's finalizer mixes the 32-bit lock id so that consecutive ids
/// spread across shards, then the shard is the low bits of the mix — which
/// is what makes the assignment splittable: for power-of-two counts
/// `s_small <= s_big`, `shard_of(l, s_small) == shard_of(l, s_big) & (s_small - 1)`.
#[inline]
pub fn shard_of(lock: LockId, shards: usize) -> usize {
    debug_assert!(shards.is_power_of_two());
    let mut z = (lock.0 as u64).wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z = z ^ (z >> 31);
    (z as usize) & (shards - 1)
}

/// A non-cryptographic hasher for the runtime's per-worker maps (lock
/// states, active requests, waiters), whose keys are trusted small integers
/// minted by the cluster itself. SipHash's DoS resistance buys nothing
/// there, and at millions of distinct locks its per-lookup cost is a
/// measurable slice of the service's op budget; SplitMix64's finalizer (the
/// same mix as [`shard_of`]) gives full-width avalanche for two multiplies.
#[derive(Default)]
pub struct Mix64Hasher {
    state: u64,
}

impl Mix64Hasher {
    #[inline]
    fn mix(&mut self, word: u64) {
        let mut z = (self.state ^ word).wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        self.state = z ^ (z >> 31);
    }
}

impl Hasher for Mix64Hasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut word = [0u8; 8];
            word[..chunk.len()].copy_from_slice(chunk);
            self.mix(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.mix(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.mix(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.mix(n as u64);
    }
}

/// A `HashMap` keyed by cluster-minted integers, hashed with
/// [`Mix64Hasher`].
pub type FastMap<K, V> = std::collections::HashMap<K, V, BuildHasherDefault<Mix64Hasher>>;

/// Counting admission gate for one shard's application-ingress queue.
///
/// The vendored channel shim has no bounded `try_send`, so the bound lives
/// here: an atomic depth incremented by clients *before* they enqueue and
/// decremented by the worker as it dequeues. Over-admission by a racing
/// client is impossible (`fetch_update` is exact); the queue depth a
/// metrics scrape reads is at most momentarily stale.
#[derive(Debug)]
pub struct ShardGate {
    depth: AtomicU64,
    limit: u64,
    rejections: AtomicU64,
}

impl ShardGate {
    /// A gate admitting at most `limit` queued application operations.
    pub fn new(limit: usize) -> Self {
        ShardGate {
            depth: AtomicU64::new(0),
            limit: limit as u64,
            rejections: AtomicU64::new(0),
        }
    }

    /// Reserve `n` queue slots; `false` (and a rejection tally) if that
    /// would push the queue past its limit.
    pub fn try_admit(&self, n: usize) -> bool {
        let n = n as u64;
        let admitted = self
            .depth
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |d| {
                (d + n <= self.limit).then_some(d + n)
            })
            .is_ok();
        if !admitted {
            self.rejections.fetch_add(1, Ordering::Relaxed);
        }
        admitted
    }

    /// Release `n` slots (the worker dequeued that many operations).
    pub fn leave(&self, n: usize) {
        self.depth.fetch_sub(n as u64, Ordering::Relaxed);
    }

    /// Application operations currently queued (admitted, not yet dequeued).
    pub fn depth(&self) -> u64 {
        self.depth.load(Ordering::Relaxed)
    }

    /// Operations refused because the queue was full.
    pub fn rejections(&self) -> u64 {
        self.rejections.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn effective_shards_rounds_up_to_powers_of_two() {
        assert_eq!(effective_shards(0), 1);
        assert_eq!(effective_shards(1), 1);
        assert_eq!(effective_shards(3), 4);
        assert_eq!(effective_shards(8), 8);
        assert_eq!(effective_shards(9), 16);
    }

    #[test]
    fn shard_of_is_in_range_and_spreads() {
        let shards = 8;
        let mut counts = [0u32; 8];
        for l in 0..8_000u32 {
            let s = shard_of(LockId(l), shards);
            assert!(s < shards);
            counts[s] += 1;
        }
        // A uniform spread puts ~1000 in each; allow wide slack.
        assert!(
            counts.iter().all(|&c| (600..1400).contains(&c)),
            "skewed shard spread: {counts:?}"
        );
    }

    #[test]
    fn shard_of_is_splittable_across_counts() {
        for l in (0..50_000u32).step_by(7) {
            let s2 = shard_of(LockId(l), 2);
            let s8 = shard_of(LockId(l), 8);
            let s64 = shard_of(LockId(l), 64);
            assert_eq!(s2, s8 & 1);
            assert_eq!(s8, s64 & 7);
        }
    }

    #[test]
    fn mix64_hasher_agrees_across_write_paths_and_avalanches() {
        let hash_u32 = |n: u32| {
            let mut h = Mix64Hasher::default();
            h.write_u32(n);
            h.finish()
        };
        // The byte-slice fallback must agree with the fixed-width fast path
        // (a key hashed via `Hash` derive vs. raw bytes lands identically).
        let mut h = Mix64Hasher::default();
        h.write(&7u32.to_le_bytes());
        let mut padded = Mix64Hasher::default();
        padded.write_u64(7);
        assert_eq!(h.finish(), hash_u32(7));
        assert_eq!(h.finish(), padded.finish());
        // Sequential lock ids — the service's common key shape — must not
        // collide in the low bits the hash table actually indexes with.
        // A random function over 2^16 slots loses ~128 of 4096 values to
        // birthday collisions; demand no worse than 3× that.
        let mut low = std::collections::HashSet::new();
        for l in 0..4096u32 {
            low.insert(hash_u32(l) & 0xFFFF);
        }
        assert!(low.len() > 4096 - 384, "low-bit clustering: {}", low.len());
    }

    #[test]
    fn gate_admits_up_to_limit_and_counts_rejections() {
        let gate = ShardGate::new(3);
        assert!(gate.try_admit(2));
        assert!(gate.try_admit(1));
        assert!(!gate.try_admit(1), "queue is full");
        assert_eq!(gate.depth(), 3);
        assert_eq!(gate.rejections(), 1);
        gate.leave(2);
        assert!(gate.try_admit(2));
        assert!(!gate.try_admit(2));
        assert_eq!(gate.rejections(), 2);
    }

    #[test]
    fn zero_limit_gate_rejects_everything() {
        let gate = ShardGate::new(0);
        assert!(!gate.try_admit(1));
        assert_eq!(gate.depth(), 0);
    }
}
