//! Real-socket transports: the cluster over TCP or UDP on an actual wire.
//!
//! The paper's evaluation ran on a 16-machine Linux cluster over TCP; this
//! module closes that gap. A [`SocketTransport`] implements the same
//! [`Transport`] contract the in-process transports do, so the sans-IO
//! worker loop is untouched — only the medium changes:
//!
//! * **TCP** — one full-duplex connection per unordered peer pair (the
//!   higher-id node dials, the lower-id node accepts; a 4-byte hello names
//!   the dialer). `TCP_NODELAY` is on; batching is done by *us*, not Nagle:
//!   a worker's coalesced container frames are queued per peer and drained
//!   onto the wire in one write per event-loop cycle, so PR 8's per-link
//!   coalescing becomes real wire batching. Connections are sharded across
//!   a small pool of readiness-polled non-blocking event-loop threads
//!   (`forbid(unsafe_code)` rules out raw epoll; the poll loop spins with a
//!   short adaptive sleep). Each connection owns reusable read/write
//!   buffers: the read path accumulates raw bytes, freezes the filled
//!   region once, and hands out per-frame [`Bytes`] views zero-copy (see
//!   [`WireBuf`]); partial frames are reassembled across reads. A peer
//!   whose write queue exceeds its budget exerts backpressure: the sending
//!   worker blocks in `send` until the event loop drains the queue.
//! * **UDP** — one datagram per wire frame, with optional seeded
//!   sender-side loss so the reliability shim ([`crate::ReliableConfig`])
//!   can be exercised against genuinely lost datagrams. Dropped datagrams
//!   are tallied as [`LinkFaults`].
//!
//! ## Wire format
//!
//! TCP stream frames: `u32 len | u32 from_slot | u32 to_slot | payload`
//! (little-endian; `len` counts payload bytes only, capped at
//! [`MAX_WIRE_FRAME`]). UDP datagrams carry `u32 from_slot | u32 to_slot |
//! payload` — the datagram boundary is the length. Slots are worker-slot
//! addresses (`node * shards + shard`), exactly what [`Transport::send`]
//! sees, so the payload (a reliability-shim or protocol frame, possibly a
//! container) is forwarded byte-for-byte.
//!
//! ## Gauge discipline
//!
//! The in-process transports let the *receiving* worker retire a frame's
//! in-flight claim, which cannot work across processes. A socket transport
//! retires the claim itself once the frame is handed to the wire (local
//! destinations keep the in-process rule), and the receiving process
//! raises its own gauge before enqueuing the frame. A data frame in wire
//! transit is still covered by the *sender's* unacked gauge — which is why
//! socket clusters always run the reliability shim (see
//! [`crate::Node`](crate::Node)): quiescence stays sound without a shared
//! gauge.

use crate::runtime::Input;
use crate::transport::{LinkFaults, SocketLinkStat, Transport, TransportReport};
use bytes::{BufMut, Bytes, BytesMut};
use crossbeam::channel::{unbounded, Receiver, Sender};
use dlm_core::NodeId;
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, UdpSocket};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// TCP frame header: `len | from_slot | to_slot`, all `u32` little-endian.
const WIRE_HEADER: usize = 12;
/// UDP datagram header: `from_slot | to_slot`.
const DGRAM_HEADER: usize = 8;
/// Sanity cap on a single wire frame's payload. A worker's largest frame is
/// a container of one drain batch (~256 small frames), far below this; a
/// length beyond the cap means a corrupt or hostile stream.
pub const MAX_WIRE_FRAME: usize = 1 << 24;
/// Idle sleep of the readiness poll loops: short enough to keep loopback
/// round trips in the tens of microseconds, long enough not to burn a core
/// per connection when idle.
const POLL_IDLE: Duration = Duration::from_micros(20);

/// Which wire a [`SocketTransport`] speaks.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SocketMode {
    /// Length-prefixed frames over per-pair TCP connections.
    Tcp,
    /// One datagram per frame, with seeded sender-side loss injection
    /// (`loss` in `[0, 1)`) to exercise the reliability shim on a lossy
    /// medium. `loss: 0.0` is a faithful loopback UDP wire.
    Udp {
        /// Probability of dropping each outgoing datagram.
        loss: f64,
        /// Seed of the deterministic drop sequence.
        seed: u64,
    },
}

/// Addresses and tuning for one cluster member's socket transport.
#[derive(Debug, Clone)]
pub struct SocketConfig {
    /// This process's node id (index into [`Self::addrs`]).
    pub me: u32,
    /// One socket address per node, cluster-wide (index = node id).
    pub addrs: Vec<SocketAddr>,
    /// TCP or UDP.
    pub mode: SocketMode,
    /// TCP event-loop threads; connections are sharded across them by peer
    /// id. Clamped to at least 1.
    pub io_threads: usize,
    /// How long to keep re-dialing a peer that is not accepting yet (peers
    /// of a multi-process cluster start in arbitrary order).
    pub connect_timeout: Duration,
    /// Per-peer write-queue budget in bytes; a sender blocks
    /// (backpressure) while a peer's queue is over budget.
    pub write_buffer: usize,
}

impl SocketConfig {
    /// A TCP config with default tuning.
    pub fn tcp(me: u32, addrs: Vec<SocketAddr>) -> Self {
        SocketConfig {
            me,
            addrs,
            mode: SocketMode::Tcp,
            io_threads: 2,
            connect_timeout: Duration::from_secs(15),
            write_buffer: 4 << 20,
        }
    }

    /// A UDP config with default tuning and the given loss injection.
    pub fn udp(me: u32, addrs: Vec<SocketAddr>, loss: f64, seed: u64) -> Self {
        SocketConfig {
            mode: SocketMode::Udp { loss, seed },
            ..Self::tcp(me, addrs)
        }
    }
}

/// Stream reassembly error: the peer sent something that cannot be a frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum WireError {
    /// Frame length beyond [`MAX_WIRE_FRAME`].
    Oversized,
    /// The buffered byte stream contradicts its own framing (a header or
    /// payload slice falls outside the bytes actually present). A healthy
    /// TCP stream cannot produce this; a corrupted or adversarial one can,
    /// and it must kill the connection, not the process.
    Corrupt,
}

/// Per-connection receive buffer with partial-frame reassembly.
///
/// Raw reads append via [`WireBuf::extend`]; [`WireBuf::drain`] parses out
/// every *complete* frame. The complete region is frozen into one shared
/// [`Bytes`] snapshot (a single bulk copy, reusing the buffer's capacity)
/// and each frame's payload is a zero-copy slice of that snapshot; a
/// trailing partial frame is carried forward for the next read.
pub(crate) struct WireBuf {
    buf: BytesMut,
}

impl WireBuf {
    pub(crate) fn new() -> Self {
        WireBuf {
            buf: BytesMut::with_capacity(16 * 1024),
        }
    }

    /// Append raw bytes read from the stream.
    pub(crate) fn extend(&mut self, chunk: &[u8]) {
        self.buf.put_slice(chunk);
    }

    /// Bytes buffered but not yet parsed into a complete frame.
    #[cfg(test)]
    pub(crate) fn pending(&self) -> usize {
        self.buf.len()
    }

    /// Parse out every complete frame, invoking `deliver(from_slot,
    /// to_slot, payload)` per frame in arrival order.
    pub(crate) fn drain(
        &mut self,
        deliver: &mut dyn FnMut(u32, u32, Bytes),
    ) -> Result<(), WireError> {
        // Every header word is read through this bounds-checked helper:
        // bytes arriving off a real wire are attacker-controlled input, and
        // a short or lying buffer must surface as [`WireError::Corrupt`]
        // (killing the connection), never as a slice panic killing the
        // process.
        fn word(data: &[u8], pos: usize) -> Result<u32, WireError> {
            match data.get(pos..pos + 4) {
                Some(b) => Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]])),
                None => Err(WireError::Corrupt),
            }
        }
        let data = self.buf.as_ref();
        let mut consumed = 0usize;
        while data.len() - consumed >= WIRE_HEADER {
            let len = word(data, consumed)? as usize;
            if len > MAX_WIRE_FRAME {
                return Err(WireError::Oversized);
            }
            if data.len() - consumed < WIRE_HEADER + len {
                break;
            }
            consumed += WIRE_HEADER + len;
        }
        if consumed == 0 {
            return Ok(());
        }
        // One bulk copy into a shared snapshot (capacity retained), then
        // zero-copy per-frame views; the partial tail is re-buffered.
        let snapshot = self.buf.take_frame();
        if consumed < snapshot.len() {
            let tail = snapshot.slice(consumed..snapshot.len());
            self.buf.put_slice(tail.as_ref());
        }
        let data = snapshot.as_ref();
        let mut pos = 0usize;
        while pos < consumed {
            let len = word(data, pos)? as usize;
            let from = word(data, pos + 4)?;
            let to = word(data, pos + 8)?;
            let end = pos + WIRE_HEADER + len;
            if end > snapshot.len() {
                return Err(WireError::Corrupt);
            }
            let payload = snapshot.slice(pos + WIRE_HEADER..end);
            deliver(from, to, payload);
            pos = end;
        }
        Ok(())
    }
}

/// Encode one TCP wire frame onto a byte sink.
fn put_wire_frame(out: &mut Vec<u8>, from_slot: u32, to_slot: u32, payload: &[u8]) {
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&from_slot.to_le_bytes());
    out.extend_from_slice(&to_slot.to_le_bytes());
    out.extend_from_slice(payload);
}

/// One peer's outgoing byte queue, shared between the sending workers and
/// the event-loop thread that owns the connection. Backpressure lives
/// here: a push blocks while the queue is over budget, and the event loop
/// signals space as it drains bytes onto the wire.
pub(crate) struct WriteQueue {
    state: Mutex<WriteState>,
    space: Condvar,
    cap: usize,
}

struct WriteState {
    buf: Vec<u8>,
    closed: bool,
}

impl WriteQueue {
    pub(crate) fn new(cap: usize) -> Self {
        WriteQueue {
            state: Mutex::new(WriteState {
                buf: Vec::new(),
                closed: false,
            }),
            space: Condvar::new(),
            cap,
        }
    }

    /// Queue one wire frame, blocking while the queue is over budget.
    /// Returns false (frame dropped) if the queue closed — the connection
    /// died or the transport shut down — rather than blocking forever.
    pub(crate) fn push_frame(&self, from_slot: u32, to_slot: u32, payload: &[u8]) -> bool {
        let mut st = self.state.lock().expect("write queue lock");
        while !st.closed && st.buf.len() >= self.cap {
            let (guard, _) = self
                .space
                .wait_timeout(st, Duration::from_millis(5))
                .expect("write queue wait");
            st = guard;
        }
        if st.closed {
            return false;
        }
        put_wire_frame(&mut st.buf, from_slot, to_slot, payload);
        true
    }

    /// Move every queued byte into `out`; returns true if anything moved.
    /// Wakes blocked pushers.
    pub(crate) fn take_into(&self, out: &mut Vec<u8>) -> bool {
        let mut st = self.state.lock().expect("write queue lock");
        if st.buf.is_empty() {
            return false;
        }
        if out.is_empty() {
            std::mem::swap(out, &mut st.buf);
        } else {
            out.extend_from_slice(&st.buf);
            st.buf.clear();
        }
        self.space.notify_all();
        true
    }

    /// Bytes currently queued.
    pub(crate) fn queued(&self) -> usize {
        self.state.lock().expect("write queue lock").buf.len()
    }

    /// Reject all future pushes and wake blocked pushers.
    pub(crate) fn close(&self) {
        self.state.lock().expect("write queue lock").closed = true;
        self.space.notify_all();
    }
}

/// Per-peer wire counters (all updated with relaxed atomics).
#[derive(Default)]
struct PeerStat {
    frames_sent: AtomicU64,
    bytes_sent: AtomicU64,
    frames_recv: AtomicU64,
    bytes_recv: AtomicU64,
    resets: AtomicU64,
    udp_dropped: AtomicU64,
}

/// A live TCP connection owned by one event-loop thread.
struct Conn {
    peer: usize,
    stream: TcpStream,
    rbuf: WireBuf,
    wbuf: Vec<u8>,
    alive: bool,
}

struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn chance(&mut self, p: f64) -> bool {
        p > 0.0 && (self.next() >> 11) as f64 * (1.0 / (1u64 << 53) as f64) < p
    }
}

enum Wire {
    Tcp {
        /// Per-peer outgoing queues (index = node id; `me`'s entry unused).
        queues: Vec<Arc<WriteQueue>>,
        /// Post-shutdown escape hatch: a cloned handle per established
        /// connection, used for best-effort blocking writes after the
        /// event loops have exited (the `Transport` contract wants
        /// post-shutdown sends delivered when possible).
        streams: Vec<Mutex<Option<TcpStream>>>,
    },
    Udp {
        socket: UdpSocket,
        loss: f64,
        rng: Mutex<SplitMix64>,
    },
}

/// The real-socket [`Transport`]: one instance per cluster member process.
/// Built by [`crate::Node`](crate::Node); see the module docs for the wire
/// format and threading model.
pub struct SocketTransport {
    me: usize,
    nodes: usize,
    shards: usize,
    addrs: Vec<SocketAddr>,
    /// This process's worker input channels, one per shard.
    local: Vec<Sender<Input>>,
    in_flight: Arc<AtomicU64>,
    stats: Vec<PeerStat>,
    /// Connections killed because their byte stream failed to reassemble
    /// into frames ([`WireError`]); surfaced via
    /// [`TransportReport::wire_decode_errors`].
    decode_errors: AtomicU64,
    wire: Wire,
    shutting_down: Arc<AtomicBool>,
    threads: Mutex<Vec<JoinHandle<()>>>,
}

impl SocketTransport {
    /// Bind `addrs[me]` and start the wire threads. For TCP this dials
    /// every lower-id peer (retrying until [`SocketConfig::connect_timeout`])
    /// and accepts every higher-id peer; frames queued for a peer before
    /// its connection is up simply wait in its write queue.
    pub(crate) fn bind(
        config: SocketConfig,
        local: Vec<Sender<Input>>,
        in_flight: Arc<AtomicU64>,
        shards: usize,
    ) -> std::io::Result<Arc<SocketTransport>> {
        let me = config.me as usize;
        let nodes = config.addrs.len();
        assert!(me < nodes, "node id out of range");
        assert_eq!(local.len(), shards, "one input channel per shard");
        let stats: Vec<PeerStat> = (0..nodes).map(|_| PeerStat::default()).collect();
        let shutting_down = Arc::new(AtomicBool::new(false));

        match config.mode {
            SocketMode::Tcp => {
                let listener = TcpListener::bind(config.addrs[me])?;
                listener.set_nonblocking(true)?;
                let queues: Vec<Arc<WriteQueue>> = (0..nodes)
                    .map(|_| Arc::new(WriteQueue::new(config.write_buffer.max(WIRE_HEADER + 1))))
                    .collect();
                let streams: Vec<Mutex<Option<TcpStream>>> =
                    (0..nodes).map(|_| Mutex::new(None)).collect();
                let transport = Arc::new(SocketTransport {
                    me,
                    nodes,
                    shards,
                    addrs: config.addrs.clone(),
                    local,
                    in_flight,
                    stats,
                    decode_errors: AtomicU64::new(0),
                    wire: Wire::Tcp { queues, streams },
                    shutting_down,
                    threads: Mutex::new(Vec::new()),
                });

                let io_threads = config.io_threads.max(1);
                let (reg_txs, reg_rxs): (Vec<Sender<Conn>>, Vec<Receiver<Conn>>) =
                    (0..io_threads).map(|_| unbounded()).unzip();
                let mut joins = Vec::new();
                for (t, reg_rx) in reg_rxs.into_iter().enumerate() {
                    let tr = Arc::clone(&transport);
                    joins.push(
                        std::thread::Builder::new()
                            .name(format!("dlm-sock-io-{me}.{t}"))
                            .spawn(move || tr.event_loop(reg_rx))
                            .expect("spawn socket io thread"),
                    );
                }
                {
                    let tr = Arc::clone(&transport);
                    let timeout = config.connect_timeout;
                    joins.push(
                        std::thread::Builder::new()
                            .name(format!("dlm-sock-conn-{me}"))
                            .spawn(move || tr.establish(listener, reg_txs, timeout))
                            .expect("spawn socket connect thread"),
                    );
                }
                *transport.threads.lock().expect("threads lock") = joins;
                Ok(transport)
            }
            SocketMode::Udp { loss, seed } => {
                let socket = UdpSocket::bind(config.addrs[me])?;
                let rx_socket = socket.try_clone()?;
                rx_socket.set_read_timeout(Some(Duration::from_millis(10)))?;
                let transport = Arc::new(SocketTransport {
                    me,
                    nodes,
                    shards,
                    addrs: config.addrs,
                    local,
                    in_flight,
                    stats,
                    decode_errors: AtomicU64::new(0),
                    wire: Wire::Udp {
                        socket,
                        loss,
                        rng: Mutex::new(SplitMix64(seed)),
                    },
                    shutting_down,
                    threads: Mutex::new(Vec::new()),
                });
                let tr = Arc::clone(&transport);
                let join = std::thread::Builder::new()
                    .name(format!("dlm-sock-udp-{me}"))
                    .spawn(move || tr.udp_rx_loop(rx_socket))
                    .expect("spawn udp rx thread");
                transport.threads.lock().expect("threads lock").push(join);
                Ok(transport)
            }
        }
    }

    /// Hand a received wire frame to the local worker it addresses. The
    /// receiving process claims its own in-flight slot (the sender's was
    /// retired when the frame hit the wire), mirroring `inject_frame`.
    fn deliver_local(&self, from_slot: u32, to_slot: u32, frame: Bytes) {
        let to = to_slot as usize;
        if to / self.shards != self.me {
            return; // misaddressed frame; drop
        }
        self.in_flight.fetch_add(1, Ordering::Relaxed);
        if self.local[to % self.shards]
            .send(Input::Net {
                from: NodeId(from_slot),
                frame,
            })
            .is_err()
        {
            self.in_flight.fetch_sub(1, Ordering::Relaxed);
        }
    }

    // ---------------------------------------------------------------- TCP

    /// Connection-establishment thread: dial lower-id peers, accept
    /// higher-id peers, register each finished connection with its event
    /// loop, then exit.
    fn establish(
        self: Arc<Self>,
        listener: TcpListener,
        reg_txs: Vec<Sender<Conn>>,
        timeout: Duration,
    ) {
        let deadline = Instant::now() + timeout;
        let mut to_dial: Vec<usize> = (0..self.me).collect();
        let mut to_accept = self.nodes - self.me - 1;
        while (!to_dial.is_empty() || to_accept > 0)
            && !self.shutting_down.load(Ordering::Relaxed)
            && Instant::now() < deadline
        {
            let mut progress = false;
            if to_accept > 0 {
                match listener.accept() {
                    Ok((stream, _)) => {
                        progress = true;
                        match self.handshake_accept(stream) {
                            Some((peer, stream)) => {
                                to_accept -= 1;
                                self.register(peer, stream, &reg_txs);
                            }
                            None => {
                                // Bad hello or duplicate: count it against
                                // no specific link and keep listening.
                            }
                        }
                    }
                    Err(e) if e.kind() == ErrorKind::WouldBlock => {}
                    Err(_) => {}
                }
            }
            to_dial.retain(|&peer| {
                match TcpStream::connect_timeout(&self.addrs[peer], Duration::from_millis(250)) {
                    Ok(mut stream) => {
                        // Hello: who is dialing.
                        let ok = stream.write_all(&(self.me as u32).to_le_bytes()).is_ok();
                        if ok {
                            progress = true;
                            self.register(peer, stream, &reg_txs);
                            false
                        } else {
                            true
                        }
                    }
                    // Peer not up yet (refused) or unreachable: retry.
                    Err(_) => true,
                }
            });
            if !progress {
                std::thread::sleep(Duration::from_millis(2));
            }
        }
    }

    /// Read and validate the 4-byte hello of an accepted connection.
    fn handshake_accept(&self, stream: TcpStream) -> Option<(usize, TcpStream)> {
        let mut stream = stream;
        stream.set_read_timeout(Some(Duration::from_secs(2))).ok()?;
        let mut hello = [0u8; 4];
        stream.read_exact(&mut hello).ok()?;
        let peer = u32::from_le_bytes(hello) as usize;
        if peer <= self.me || peer >= self.nodes {
            return None;
        }
        stream.set_read_timeout(None).ok()?;
        Some((peer, stream))
    }

    /// Finish setting up an established connection and hand it to its
    /// event-loop thread (sharded by peer id).
    fn register(&self, peer: usize, stream: TcpStream, reg_txs: &[Sender<Conn>]) {
        let _ = stream.set_nodelay(true);
        let _ = stream.set_nonblocking(true);
        if let Wire::Tcp { streams, .. } = &self.wire {
            *streams[peer].lock().expect("stream slot lock") = stream.try_clone().ok();
        }
        let conn = Conn {
            peer,
            stream,
            rbuf: WireBuf::new(),
            wbuf: Vec::new(),
            alive: true,
        };
        let _ = reg_txs[peer % reg_txs.len()].send(conn);
    }

    /// Live per-peer connection-loss counts, indexed by node id. The
    /// socket-path failure detector ([`crate::Node::suspects`]) reads
    /// this: a peer whose process died shows a reset on its link.
    pub(crate) fn peer_resets(&self) -> Vec<u64> {
        self.stats
            .iter()
            .map(|s| s.resets.load(Ordering::Relaxed))
            .collect()
    }

    /// Mark a connection dead: bump the pair's reset counters and close its
    /// write queue so senders drop instead of blocking on a peer that is
    /// gone. The node itself keeps serving.
    fn kill_conn(&self, conn: &mut Conn) {
        if !conn.alive {
            return;
        }
        conn.alive = false;
        self.stats[conn.peer].resets.fetch_add(1, Ordering::Relaxed);
        if let Wire::Tcp { queues, streams } = &self.wire {
            queues[conn.peer].close();
            *streams[conn.peer].lock().expect("stream slot lock") = None;
        }
    }

    /// One readiness-polled event-loop thread: owns a subset of the
    /// connections, moving queued bytes onto the wire and wire bytes into
    /// the local workers, with a short adaptive sleep when idle.
    fn event_loop(self: Arc<Self>, reg_rx: Receiver<Conn>) {
        let Wire::Tcp { queues, .. } = &self.wire else {
            unreachable!("event_loop is TCP-only");
        };
        let mut conns: Vec<Conn> = Vec::new();
        let mut scratch = vec![0u8; 64 * 1024];
        loop {
            let mut progress = false;
            while let Ok(conn) = reg_rx.try_recv() {
                conns.push(conn);
                progress = true;
            }
            let draining = self.shutting_down.load(Ordering::Relaxed);
            for conn in conns.iter_mut() {
                if !conn.alive {
                    continue;
                }
                // Writes: adopt freshly queued bytes, then push as much as
                // the kernel will take without blocking.
                if queues[conn.peer].take_into(&mut conn.wbuf) {
                    progress = true;
                }
                let mut written = 0usize;
                while written < conn.wbuf.len() {
                    match conn.stream.write(&conn.wbuf[written..]) {
                        Ok(0) => {
                            self.kill_conn(conn);
                            break;
                        }
                        Ok(n) => {
                            written += n;
                            progress = true;
                        }
                        Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                        Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                        Err(_) => {
                            self.kill_conn(conn);
                            break;
                        }
                    }
                }
                conn.wbuf.drain(..written);
                if !conn.alive {
                    continue;
                }
                // Reads: pull everything available, reassemble, deliver.
                loop {
                    match conn.stream.read(&mut scratch) {
                        Ok(0) => {
                            self.kill_conn(conn);
                            break;
                        }
                        Ok(n) => {
                            progress = true;
                            conn.rbuf.extend(&scratch[..n]);
                        }
                        Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                        Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                        Err(_) => {
                            self.kill_conn(conn);
                            break;
                        }
                    }
                }
                let stat = &self.stats[conn.peer];
                let drained = conn.rbuf.drain(&mut |from_slot, to_slot, payload| {
                    stat.frames_recv.fetch_add(1, Ordering::Relaxed);
                    stat.bytes_recv
                        .fetch_add(payload.len() as u64, Ordering::Relaxed);
                    self.deliver_local(from_slot, to_slot, payload);
                });
                if drained.is_err() {
                    self.decode_errors.fetch_add(1, Ordering::Relaxed);
                    self.kill_conn(conn);
                }
            }
            // Drop killed connections: holding the dead stream open would
            // leak its descriptor for the node's lifetime and hide the
            // close from the remote peer's failure detector.
            conns.retain(|c| c.alive);
            if draining {
                // Final flush: leave only once every live connection's
                // queue and write buffer are empty (bounded by the caller's
                // drain phase having already quiesced the cluster).
                let flushed = conns
                    .iter()
                    .all(|c| !c.alive || (c.wbuf.is_empty() && queues[c.peer].queued() == 0));
                if flushed {
                    break;
                }
            }
            if !progress {
                std::thread::sleep(POLL_IDLE);
            }
        }
    }

    // ---------------------------------------------------------------- UDP

    /// Blocking receive loop (10 ms read timeout to notice shutdown).
    fn udp_rx_loop(self: Arc<Self>, socket: UdpSocket) {
        let mut scratch = vec![0u8; 64 * 1024];
        while !self.shutting_down.load(Ordering::Relaxed) {
            match socket.recv_from(&mut scratch) {
                Ok((n, _)) if n >= DGRAM_HEADER => {
                    let from_slot = u32::from_le_bytes(scratch[0..4].try_into().expect("4 bytes"));
                    let to_slot = u32::from_le_bytes(scratch[4..8].try_into().expect("4 bytes"));
                    let payload = Bytes::from(scratch[DGRAM_HEADER..n].to_vec());
                    let peer = from_slot as usize / self.shards;
                    if peer < self.nodes {
                        let stat = &self.stats[peer];
                        stat.frames_recv.fetch_add(1, Ordering::Relaxed);
                        stat.bytes_recv
                            .fetch_add(payload.len() as u64, Ordering::Relaxed);
                    }
                    self.deliver_local(from_slot, to_slot, payload);
                }
                Ok(_) => {} // runt datagram; drop
                Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {}
                Err(_) => {}
            }
        }
    }

    /// Send one frame to a remote peer over whichever wire is configured.
    fn send_remote(&self, to_node: usize, from_slot: u32, to_slot: u32, frame: &Bytes) {
        let stat = &self.stats[to_node];
        match &self.wire {
            Wire::Tcp { queues, streams } => {
                if self.shutting_down.load(Ordering::Relaxed) {
                    // Event loops are gone; best-effort direct blocking
                    // write so post-shutdown sends still reach the peer.
                    let mut slot = streams[to_node].lock().expect("stream slot lock");
                    if let Some(stream) = slot.as_mut() {
                        let _ = stream.set_nonblocking(false);
                        let mut buf = Vec::with_capacity(WIRE_HEADER + frame.len());
                        put_wire_frame(&mut buf, from_slot, to_slot, frame.as_ref());
                        if stream.write_all(&buf).is_ok() {
                            stat.frames_sent.fetch_add(1, Ordering::Relaxed);
                            stat.bytes_sent
                                .fetch_add(frame.len() as u64, Ordering::Relaxed);
                        }
                    }
                    return;
                }
                if queues[to_node].push_frame(from_slot, to_slot, frame.as_ref()) {
                    stat.frames_sent.fetch_add(1, Ordering::Relaxed);
                    stat.bytes_sent
                        .fetch_add(frame.len() as u64, Ordering::Relaxed);
                }
            }
            Wire::Udp { socket, loss, rng } => {
                if rng.lock().expect("udp rng lock").chance(*loss) {
                    stat.udp_dropped.fetch_add(1, Ordering::Relaxed);
                    return;
                }
                let mut dgram = Vec::with_capacity(DGRAM_HEADER + frame.len());
                dgram.extend_from_slice(&from_slot.to_le_bytes());
                dgram.extend_from_slice(&to_slot.to_le_bytes());
                dgram.extend_from_slice(frame.as_ref());
                match socket.send_to(&dgram, self.addrs[to_node]) {
                    Ok(_) => {
                        stat.frames_sent.fetch_add(1, Ordering::Relaxed);
                        stat.bytes_sent
                            .fetch_add(frame.len() as u64, Ordering::Relaxed);
                    }
                    // A refused/unreachable datagram is loss like any
                    // other; the reliability shim repairs it.
                    Err(_) => {
                        stat.udp_dropped.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
        }
    }
}

impl Transport for SocketTransport {
    fn send(&self, from: NodeId, to: NodeId, frame: Bytes) {
        let to_node = to.0 as usize / self.shards;
        if to_node == self.me {
            // Local shard: the in-process rule applies — the receiving
            // worker retires the in-flight claim.
            if self.local[to.0 as usize % self.shards]
                .send(Input::Net { from, frame })
                .is_err()
            {
                self.in_flight.fetch_sub(1, Ordering::Relaxed);
            }
            return;
        }
        self.send_remote(to_node, from.0, to.0, &frame);
        // The wire has the frame now (or dropped it); either way this
        // process's in-flight claim is over. Data frames in transit stay
        // covered by the sender's unacked gauge.
        self.in_flight.fetch_sub(1, Ordering::Relaxed);
    }

    fn shutdown(&self) -> TransportReport {
        self.shutting_down.store(true, Ordering::Relaxed);
        let joins = std::mem::take(&mut *self.threads.lock().expect("threads lock"));
        for join in joins {
            let _ = join.join();
        }
        if let Wire::Tcp { queues, .. } = &self.wire {
            for q in queues {
                q.close();
            }
        }
        let mut report = TransportReport {
            wire_decode_errors: self.decode_errors.load(Ordering::Relaxed),
            ..TransportReport::default()
        };
        for (peer, stat) in self.stats.iter().enumerate() {
            if peer == self.me {
                continue;
            }
            let resets = stat.resets.load(Ordering::Relaxed);
            let sent = SocketLinkStat {
                from: self.me as u32,
                to: peer as u32,
                frames: stat.frames_sent.load(Ordering::Relaxed),
                bytes: stat.bytes_sent.load(Ordering::Relaxed),
                resets,
            };
            let recv = SocketLinkStat {
                from: peer as u32,
                to: self.me as u32,
                frames: stat.frames_recv.load(Ordering::Relaxed),
                bytes: stat.bytes_recv.load(Ordering::Relaxed),
                resets,
            };
            for s in [sent, recv] {
                if s.frames + s.bytes + s.resets > 0 {
                    report.socket.push(s);
                }
            }
            let dropped = stat.udp_dropped.load(Ordering::Relaxed);
            if dropped > 0 {
                report.faults.push(LinkFaults {
                    from: self.me as u32,
                    to: peer as u32,
                    dropped,
                    duplicated: 0,
                    reordered: 0,
                });
            }
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame(from: u32, to: u32, payload: &[u8]) -> Vec<u8> {
        let mut out = Vec::new();
        put_wire_frame(&mut out, from, to, payload);
        out
    }

    #[test]
    fn partial_frames_reassemble_across_reads() {
        // Feed one frame a single byte at a time: nothing is delivered
        // until the last byte arrives, then exactly one frame comes out.
        let wire = frame(3, 1, b"hello-wire");
        let mut buf = WireBuf::new();
        let mut got = Vec::new();
        for (i, byte) in wire.iter().enumerate() {
            buf.extend(&[*byte]);
            buf.drain(&mut |from, to, payload| {
                got.push((from, to, payload.as_ref().to_vec()));
            })
            .expect("clean stream");
            if i + 1 < wire.len() {
                assert!(got.is_empty(), "no delivery before byte {}", i + 1);
            }
        }
        assert_eq!(got, vec![(3, 1, b"hello-wire".to_vec())]);
        assert_eq!(buf.pending(), 0);
    }

    #[test]
    fn frames_split_and_batched_arbitrarily() {
        // Three frames, concatenated, then split at every possible cut
        // point into two "TCP segments": delivery is identical regardless
        // of segmentation.
        let mut stream = Vec::new();
        stream.extend_from_slice(&frame(0, 4, b"a"));
        stream.extend_from_slice(&frame(1, 4, &[0u8; 300]));
        stream.extend_from_slice(&frame(2, 4, b""));
        for cut in 0..=stream.len() {
            let mut buf = WireBuf::new();
            let mut got = Vec::new();
            buf.extend(&stream[..cut]);
            buf.drain(&mut |f, t, p| got.push((f, t, p.len())))
                .expect("clean stream");
            buf.extend(&stream[cut..]);
            buf.drain(&mut |f, t, p| got.push((f, t, p.len())))
                .expect("clean stream");
            assert_eq!(got, vec![(0, 4, 1), (1, 4, 300), (2, 4, 0)], "cut at {cut}");
            assert_eq!(buf.pending(), 0, "cut at {cut}");
        }
    }

    #[test]
    fn oversized_length_is_rejected() {
        let mut buf = WireBuf::new();
        let mut wire = Vec::new();
        wire.extend_from_slice(&(MAX_WIRE_FRAME as u32 + 1).to_le_bytes());
        wire.extend_from_slice(&[0u8; 8]);
        buf.extend(&wire);
        assert_eq!(
            buf.drain(&mut |_, _, _| panic!("no delivery")),
            Err(WireError::Oversized)
        );
    }

    #[test]
    fn write_queue_backpressure_blocks_then_drains() {
        let q = Arc::new(WriteQueue::new(64));
        // Fill past the budget (the cap check is pre-push, so one frame
        // may overshoot).
        assert!(q.push_frame(0, 1, &[7u8; 60]));
        assert!(q.queued() >= 64);
        let q2 = Arc::clone(&q);
        let pusher = std::thread::spawn(move || q2.push_frame(0, 1, &[8u8; 8]));
        // The pusher must be blocked: give it a moment, then drain.
        std::thread::sleep(Duration::from_millis(20));
        assert!(!pusher.is_finished(), "push blocks while over budget");
        let mut out = Vec::new();
        assert!(q.take_into(&mut out));
        assert!(pusher.join().expect("pusher"), "push succeeds after drain");
        assert_eq!(out.len(), WIRE_HEADER + 60);
        let mut rest = Vec::new();
        assert!(q.take_into(&mut rest));
        assert_eq!(rest.len(), WIRE_HEADER + 8);
    }

    #[test]
    fn closed_queue_rejects_instead_of_blocking() {
        let q = WriteQueue::new(16);
        assert!(q.push_frame(0, 1, &[1u8; 40]), "first frame overshoots");
        q.close();
        assert!(!q.push_frame(0, 1, b"x"), "closed queue drops frames");
    }
}
