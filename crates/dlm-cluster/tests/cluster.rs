//! Integration tests for the threaded cluster runtime: the protocol under
//! true parallelism, with wire-codec round-trips on every message.

use dlm_cluster::{Cluster, ClusterConfig, ClusterError, LockId, Mode, TransportKind};
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;
use std::time::Duration;

fn cluster(nodes: usize, locks: usize) -> Cluster {
    Cluster::new(ClusterConfig {
        nodes,
        locks,
        ..Default::default()
    })
}

#[test]
fn single_node_local_grants() {
    let c = cluster(1, 1);
    let h = c.handle(0);
    h.acquire(LockId::TABLE, Mode::Write).unwrap();
    h.release(LockId::TABLE).unwrap();
    let report = c.shutdown();
    assert_eq!(report.messages_sent, 0);
    assert!(report.audit_errors.is_empty(), "{:?}", report.audit_errors);
}

#[test]
fn two_nodes_exclusive_handoff() {
    let c = cluster(2, 1);
    let a = c.handle(0);
    let b = c.handle(1);
    a.acquire(LockId::TABLE, Mode::Write).unwrap();
    // b's acquire must block until a releases: drive it from a thread.
    let b2 = b.clone();
    let t = std::thread::spawn(move || b2.acquire(LockId::TABLE, Mode::Write));
    std::thread::sleep(Duration::from_millis(20));
    assert!(!t.is_finished(), "W must wait for W");
    a.release(LockId::TABLE).unwrap();
    t.join().unwrap().unwrap();
    b.release(LockId::TABLE).unwrap();
    c.quiesce(Duration::from_millis(10));
    let report = c.shutdown();
    assert!(report.audit_errors.is_empty(), "{:?}", report.audit_errors);
    assert!(report.messages_sent >= 2);
}

#[test]
fn readers_share_writers_exclude() {
    let c = cluster(4, 1);
    let mut handles = Vec::new();
    for i in 0..4 {
        handles.push(c.handle(i));
    }
    // All four take R concurrently — all must succeed while held.
    let in_cs = Arc::new(AtomicU32::new(0));
    let peak = Arc::new(AtomicU32::new(0));
    let threads: Vec<_> = handles
        .iter()
        .cloned()
        .map(|h| {
            let in_cs = Arc::clone(&in_cs);
            let peak = Arc::clone(&peak);
            std::thread::spawn(move || {
                h.acquire(LockId::TABLE, Mode::Read).unwrap();
                let now = in_cs.fetch_add(1, Ordering::SeqCst) + 1;
                peak.fetch_max(now, Ordering::SeqCst);
                std::thread::sleep(Duration::from_millis(30));
                in_cs.fetch_sub(1, Ordering::SeqCst);
                h.release(LockId::TABLE).unwrap();
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }
    assert!(
        peak.load(Ordering::SeqCst) >= 2,
        "read locks should overlap (peak {})",
        peak.load(Ordering::SeqCst)
    );
    c.quiesce(Duration::from_millis(10));
    let report = c.shutdown();
    assert!(report.audit_errors.is_empty(), "{:?}", report.audit_errors);
}

#[test]
fn writers_never_overlap_under_contention() {
    let c = cluster(6, 1);
    let in_cs = Arc::new(AtomicU32::new(0));
    let violations = Arc::new(AtomicU32::new(0));
    let threads: Vec<_> = (0..6)
        .map(|i| {
            let h = c.handle(i);
            let in_cs = Arc::clone(&in_cs);
            let violations = Arc::clone(&violations);
            std::thread::spawn(move || {
                for _ in 0..5 {
                    h.acquire(LockId::TABLE, Mode::Write).unwrap();
                    if in_cs.fetch_add(1, Ordering::SeqCst) != 0 {
                        violations.fetch_add(1, Ordering::SeqCst);
                    }
                    std::thread::sleep(Duration::from_millis(1));
                    in_cs.fetch_sub(1, Ordering::SeqCst);
                    h.release(LockId::TABLE).unwrap();
                }
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }
    assert_eq!(violations.load(Ordering::SeqCst), 0, "mutual exclusion");
    c.quiesce(Duration::from_millis(10));
    let report = c.shutdown();
    assert!(report.audit_errors.is_empty(), "{:?}", report.audit_errors);
}

#[test]
fn hierarchical_intent_plus_entry_across_locks() {
    let c = cluster(3, 4); // table + 3 entries
    let threads: Vec<_> = (0..3)
        .map(|i| {
            let h = c.handle(i);
            std::thread::spawn(move || {
                for round in 0..10u32 {
                    let entry = LockId::entry((round + i) % 3);
                    h.acquire(LockId::TABLE, Mode::IntentWrite).unwrap();
                    h.acquire(entry, Mode::Write).unwrap();
                    std::thread::sleep(Duration::from_micros(200));
                    h.release(entry).unwrap();
                    h.release(LockId::TABLE).unwrap();
                }
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }
    c.quiesce(Duration::from_millis(10));
    let report = c.shutdown();
    assert!(report.audit_errors.is_empty(), "{:?}", report.audit_errors);
}

#[test]
fn upgrade_is_atomic_under_contention() {
    let c = cluster(3, 1);
    let h0 = c.handle(0);
    let h1 = c.handle(1);
    h1.acquire(LockId::TABLE, Mode::Upgrade).unwrap();
    // A competing reader takes IR concurrently (compatible with U).
    h0.acquire(LockId::TABLE, Mode::IntentRead).unwrap();
    // The upgrade must wait for the IR holder.
    let h1b = h1.clone();
    let t = std::thread::spawn(move || h1b.upgrade(LockId::TABLE));
    std::thread::sleep(Duration::from_millis(20));
    assert!(!t.is_finished(), "upgrade waits for the IR holder");
    h0.release(LockId::TABLE).unwrap();
    t.join().unwrap().unwrap();
    h1.release(LockId::TABLE).unwrap();
    c.quiesce(Duration::from_millis(10));
    let report = c.shutdown();
    assert!(report.audit_errors.is_empty(), "{:?}", report.audit_errors);
}

#[test]
fn api_misuse_is_reported() {
    let c = cluster(2, 1);
    let h = c.handle(0);
    assert!(matches!(
        h.release(LockId::TABLE),
        Err(ClusterError::Release(_))
    ));
    h.acquire(LockId::TABLE, Mode::Read).unwrap();
    assert!(matches!(
        h.acquire(LockId::TABLE, Mode::Write),
        Err(ClusterError::Acquire(_))
    ));
    assert!(matches!(
        h.upgrade(LockId::TABLE),
        Err(ClusterError::Upgrade(_))
    ));
    h.release(LockId::TABLE).unwrap();
    c.shutdown();
}

#[test]
fn trace_capture_matches_message_count() {
    let c = Cluster::new(ClusterConfig {
        nodes: 3,
        locks: 2,
        trace_capacity: 1 << 16,
        ..Default::default()
    });
    let threads: Vec<_> = (0..3)
        .map(|i| {
            let h = c.handle(i);
            std::thread::spawn(move || {
                for _ in 0..4 {
                    h.acquire(LockId::TABLE, Mode::IntentWrite).unwrap();
                    h.acquire(LockId::entry(0), Mode::Write).unwrap();
                    h.release(LockId::entry(0)).unwrap();
                    h.release(LockId::TABLE).unwrap();
                }
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }
    c.quiesce(Duration::from_millis(10));
    let report = c.shutdown();
    assert!(report.audit_errors.is_empty(), "{:?}", report.audit_errors);
    assert_eq!(report.trace_dropped, 0, "capacity covers the whole run");
    assert_eq!(report.replies_dropped, 0, "every caller saw its outcome");
    assert!(!report.trace.is_empty());
    // The 1:1 contract: one send-class event per transmitted message.
    let sends = report
        .trace
        .iter()
        .filter(|r| r.event.send_class().is_some())
        .count() as u64;
    assert_eq!(sends, report.messages_sent);
    // Merged trace is one timeline: stamps non-decreasing, seq renumbered.
    assert!(report.trace.windows(2).all(|w| w[0].at <= w[1].at));
    assert!(report
        .trace
        .iter()
        .enumerate()
        .all(|(i, r)| r.seq == i as u64));
}

/// Regression for the router's cumulative-latency bug: the original router
/// slept `delay` *per message*, so N concurrent in-flight messages arrived
/// after ~N·delay. The deadline-sorted router must deliver them all after
/// ~delay.
#[test]
fn concurrent_delayed_messages_share_the_wire() {
    const DELAY_MS: u64 = 25;
    const REQUESTERS: u32 = 8;
    let c = Cluster::new(ClusterConfig {
        nodes: REQUESTERS as usize + 1,
        locks: REQUESTERS as usize + 1, // table + one entry per requester
        transport: TransportKind::Delayed(Duration::from_millis(DELAY_MS)),
        ..Default::default()
    });
    // Each requester grabs its own entry lock: disjoint queues, so every
    // acquire is an independent request/grant pair through the router.
    let start = std::time::Instant::now();
    let threads: Vec<_> = (1..=REQUESTERS)
        .map(|i| {
            let h = c.handle(i);
            std::thread::spawn(move || {
                h.acquire(LockId::entry(i - 1), Mode::Write).unwrap();
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }
    let elapsed = start.elapsed();
    // Two one-way hops (request, grant) of 25 ms each: ~50 ms concurrent.
    // The old serializing router needed ≥ 2·8·25 ms = 400 ms. Allow ample
    // scheduling slack while still catching any per-message serialization.
    assert!(
        elapsed >= Duration::from_millis(2 * DELAY_MS),
        "latency model must still apply: {elapsed:?}"
    );
    assert!(
        elapsed < Duration::from_millis(8 * DELAY_MS),
        "concurrent in-flight messages must not serialize the delay: {elapsed:?}"
    );
    for i in 1..=REQUESTERS {
        c.handle(i).release(LockId::entry(i - 1)).unwrap();
    }
    c.quiesce(Duration::from_millis(10));
    let report = c.shutdown();
    assert!(report.audit_errors.is_empty(), "{:?}", report.audit_errors);
}

/// A quiet cluster's quiesce returns promptly (one idle window, not a fixed
/// settle schedule), and it is bounded even under sustained traffic.
#[test]
fn quiesce_is_prompt_when_quiet_and_bounded_when_not() {
    let c = cluster(2, 1);
    let start = std::time::Instant::now();
    let count = c.quiesce_within(Duration::from_millis(5), Duration::from_secs(10));
    assert_eq!(count, 0);
    assert!(
        start.elapsed() < Duration::from_millis(500),
        "quiet cluster must settle in ~one idle window: {:?}",
        start.elapsed()
    );

    // Sustained traffic: the bound, not stability, ends the wait.
    let stop = Arc::new(AtomicU32::new(0));
    let h = c.handle(1);
    let churner = {
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            while stop.load(Ordering::SeqCst) == 0 {
                h.acquire(LockId::TABLE, Mode::Read).unwrap();
                h.release(LockId::TABLE).unwrap();
            }
        })
    };
    let start = std::time::Instant::now();
    c.quiesce_within(Duration::from_secs(5), Duration::from_millis(100));
    assert!(
        start.elapsed() < Duration::from_secs(2),
        "quiesce must respect its bound under load: {:?}",
        start.elapsed()
    );
    stop.store(1, Ordering::SeqCst);
    churner.join().unwrap();
    c.quiesce(Duration::from_millis(10));
    let report = c.shutdown();
    assert!(report.audit_errors.is_empty(), "{:?}", report.audit_errors);
}

/// An *active* cluster (delayed release waves still in the router) must
/// still quiesce fully before shutdown — no audit errors from cutting the
/// drain short.
#[test]
fn active_cluster_still_quiesces_fully() {
    let c = Cluster::new(ClusterConfig {
        nodes: 4,
        locks: 1,
        transport: TransportKind::Delayed(Duration::from_millis(5)),
        ..Default::default()
    });
    let threads: Vec<_> = (0..4)
        .map(|i| {
            let h = c.handle(i);
            std::thread::spawn(move || {
                for _ in 0..3 {
                    h.acquire(LockId::TABLE, Mode::Write).unwrap();
                    h.release(LockId::TABLE).unwrap();
                }
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }
    // Release traffic may still be parked in the 5 ms router; quiesce must
    // wait it out so the final audit sees a coherent global state.
    let settled = c.quiesce(Duration::from_millis(25));
    let report = c.shutdown();
    assert_eq!(settled, report.messages_sent, "quiesce saw the final count");
    assert!(report.audit_errors.is_empty(), "{:?}", report.audit_errors);
}

#[test]
fn router_delay_variant_works() {
    let c = Cluster::new(ClusterConfig {
        nodes: 3,
        locks: 1,
        transport: TransportKind::Delayed(Duration::from_micros(300)),
        ..Default::default()
    });
    let threads: Vec<_> = (0..3)
        .map(|i| {
            let h = c.handle(i);
            std::thread::spawn(move || {
                for _ in 0..3 {
                    h.acquire(LockId::TABLE, Mode::Write).unwrap();
                    h.release(LockId::TABLE).unwrap();
                }
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }
    c.quiesce(Duration::from_millis(20));
    let report = c.shutdown();
    assert!(report.audit_errors.is_empty(), "{:?}", report.audit_errors);
}

/// The tentpole observability contract: every completed acquire opens a
/// request span (`RequestStart`) that is closed by a `RequestGrant` carrying
/// the hop count, the per-node metrics land in the shutdown report's
/// histograms, and the live snapshot speaks Prometheus text format.
#[test]
fn request_spans_pair_up_and_feed_metrics() {
    use dlm_trace::ProtocolEvent;
    use std::collections::HashMap;

    let c = Cluster::new(ClusterConfig {
        nodes: 4,
        locks: 2,
        trace_capacity: 1 << 16,
        ..Default::default()
    });
    let threads: Vec<_> = (0..4)
        .map(|i| {
            let h = c.handle(i);
            std::thread::spawn(move || {
                for _ in 0..3 {
                    h.acquire(LockId::TABLE, Mode::IntentWrite).unwrap();
                    h.acquire(LockId::entry(0), Mode::Write).unwrap();
                    h.release(LockId::entry(0)).unwrap();
                    h.release(LockId::TABLE).unwrap();
                }
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }
    c.quiesce(Duration::from_millis(10));

    // Snapshot while the cluster is still alive: the exporter is a live
    // endpoint, not a post-mortem artifact.
    let snap = c.metrics_snapshot();
    for needle in [
        "dlm_messages_total",
        "dlm_frames_in_flight",
        "dlm_acquires_total{node=\"0\"}",
        "dlm_acquire_latency_us{quantile=\"0.99\"}",
        "dlm_acquire_hops_count",
    ] {
        assert!(snap.contains(needle), "snapshot missing {needle}:\n{snap}");
    }

    let report = c.shutdown();
    assert!(report.audit_errors.is_empty(), "{:?}", report.audit_errors);
    assert_eq!(report.trace_dropped, 0);

    // Pair every span open with exactly one close carrying the same id.
    let mut open: HashMap<u64, u64> = HashMap::new();
    let mut grants = 0u64;
    for r in &report.trace {
        match r.event {
            ProtocolEvent::RequestStart { req, .. } => {
                *open.entry(req).or_insert(0) += 1;
            }
            ProtocolEvent::RequestGrant { req, .. } => {
                grants += 1;
                let n = open.get_mut(&req).expect("grant without start");
                *n = n.checked_sub(1).expect("grant closed a span twice");
            }
            _ => {}
        }
    }
    // 4 nodes x 3 rounds x 2 acquires each, all of which complete.
    assert_eq!(grants, 24, "every completed acquire closes its span");
    assert!(open.values().all(|&n| n == 0), "unclosed spans: {open:?}");

    // The same completions feed the report histograms one-for-one, and hop
    // counts on remote grants are visible in the distribution.
    assert_eq!(report.acquire_latency.count(), grants);
    assert_eq!(report.acquire_hops.count(), grants);
    assert!(report.acquire_hops.max() >= 1, "remote grants took hops");
}
