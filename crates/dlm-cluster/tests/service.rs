//! Service-layer suite for the sharded runtime: per-shard workers, the
//! pipelined batch interface, admission control, per-link coalescing, and
//! the per-shard metrics surface.

use dlm_cluster::{
    Cluster, ClusterConfig, ClusterError, FaultConfig, LockId, Mode, ReliableConfig, TransportKind,
};
use std::time::Duration;

/// Operations on distinct locks from one node overlap: two blocking
/// acquires can be in flight concurrently and both complete once their
/// conflicts clear. (The single-pending rule is per lock, not per node.)
#[test]
fn distinct_locks_overlap_from_one_node() {
    let c = Cluster::new(ClusterConfig {
        nodes: 2,
        locks: 2,
        shards: 2,
        ..Default::default()
    });
    let h0 = c.handle(0);
    h0.acquire(LockId(0), Mode::Write).unwrap();
    h0.acquire(LockId(1), Mode::Write).unwrap();
    let h1 = c.handle(1);
    let waiters: Vec<_> = [LockId(0), LockId(1)]
        .into_iter()
        .map(|lock| {
            let h = h1.clone();
            std::thread::spawn(move || h.acquire(lock, Mode::Write))
        })
        .collect();
    std::thread::sleep(Duration::from_millis(50));
    for t in &waiters {
        assert!(!t.is_finished(), "waiter must block on the held conflict");
    }
    h0.release(LockId(0)).unwrap();
    h0.release(LockId(1)).unwrap();
    for t in waiters {
        t.join()
            .unwrap()
            .expect("both outstanding ops complete — no spurious Busy across locks");
    }
    h1.release(LockId(0)).unwrap();
    h1.release(LockId(1)).unwrap();
    c.quiesce(Duration::from_millis(10));
    let report = c.shutdown();
    assert!(report.audit_errors.is_empty(), "{:?}", report.audit_errors);
    assert_eq!(report.replies_dropped, 0);
}

/// The pipeline preserves the per-lock Busy semantic: a second submission
/// on a lock with an outstanding operation completes `Busy` without
/// harming the first, while submissions on other locks proceed.
#[test]
fn pipeline_reports_busy_per_lock_only() {
    let c = Cluster::new(ClusterConfig {
        nodes: 2,
        locks: 2,
        ..Default::default()
    });
    let h0 = c.handle(0);
    h0.acquire(LockId(0), Mode::Write).unwrap();
    let mut pipe = c.handle(1).pipeline();
    pipe.submit_acquire(LockId(0), Mode::Write, 1).unwrap();
    pipe.submit_acquire(LockId(0), Mode::Read, 2).unwrap();
    pipe.submit_acquire(LockId(1), Mode::Write, 3).unwrap();
    pipe.flush().unwrap();
    // The duplicate on lock 0 and the free lock 1 complete first; the
    // blocked original completes only after the conflict clears.
    let first = pipe.recv().unwrap();
    let second = pipe.recv().unwrap();
    let mut got = [first, second];
    got.sort_by_key(|comp| comp.tag);
    assert_eq!(got[0].tag, 2);
    assert_eq!(got[0].result, Err(ClusterError::Busy));
    assert_eq!(got[1].tag, 3);
    assert_eq!(got[1].result, Ok(()));
    h0.release(LockId(0)).unwrap();
    let granted = pipe.recv().unwrap();
    assert_eq!(granted.tag, 1);
    assert_eq!(granted.result, Ok(()));
    pipe.submit_release(LockId(0), 4).unwrap();
    pipe.submit_release(LockId(1), 5).unwrap();
    pipe.flush().unwrap();
    assert!(pipe.recv().unwrap().result.is_ok());
    assert!(pipe.recv().unwrap().result.is_ok());
    assert_eq!(pipe.outstanding(), 0);
    c.quiesce(Duration::from_millis(10));
    let report = c.shutdown();
    assert!(report.audit_errors.is_empty(), "{:?}", report.audit_errors);
    assert_eq!(report.replies_dropped, 0);
}

/// Bulk pipelined acquire/release across a sharded single node: every
/// completion is a grant, everything is local (zero messages), and the
/// audit over thousands of lazily-created locks is clean.
#[test]
fn pipeline_bulk_ops_across_shards() {
    const LOCKS: u32 = 2000;
    let c = Cluster::new(ClusterConfig {
        nodes: 1,
        locks: LOCKS as usize,
        shards: 4,
        ..Default::default()
    });
    assert_eq!(c.shards(), 4);
    let mut pipe = c.handle(0).pipeline();
    let mut pending = 0usize;
    for l in 0..LOCKS {
        pipe.submit_acquire(LockId(l), Mode::Write, l as u64)
            .unwrap();
        pending += 1;
        // Keep the submission window under the shard queue bound.
        while pending > 512 {
            assert!(pipe.recv().unwrap().result.is_ok());
            pending -= 1;
        }
    }
    while pending > 0 {
        assert!(pipe.recv().unwrap().result.is_ok());
        pending -= 1;
    }
    for l in 0..LOCKS {
        pipe.submit_release(LockId(l), l as u64).unwrap();
        pending += 1;
        while pending > 512 {
            assert!(pipe.recv().unwrap().result.is_ok());
            pending -= 1;
        }
    }
    while pending > 0 {
        assert!(pipe.recv().unwrap().result.is_ok());
        pending -= 1;
    }
    assert_eq!(c.messages_sent(), 0, "single-node ops are purely local");
    let report = c.shutdown();
    assert!(report.audit_errors.is_empty(), "{:?}", report.audit_errors);
    assert_eq!(report.acquire_latency.count(), LOCKS as u64);
    assert_eq!(report.replies_dropped, 0);
}

/// A zero-capacity shard queue sheds every application operation as
/// `Overloaded` — blocking and pipelined alike — and the rejections are
/// tallied in the per-shard metrics.
#[test]
fn zero_queue_sheds_load_as_overloaded() {
    let c = Cluster::new(ClusterConfig {
        nodes: 1,
        shard_queue: 0,
        ..Default::default()
    });
    let h = c.handle(0);
    assert_eq!(
        h.acquire(LockId::TABLE, Mode::Read),
        Err(ClusterError::Overloaded)
    );
    assert_eq!(
        h.try_acquire(LockId::TABLE, Mode::Read),
        Err(ClusterError::Overloaded)
    );
    let mut pipe = h.pipeline();
    assert_eq!(
        pipe.submit_acquire(LockId::TABLE, Mode::Read, 0),
        Err(ClusterError::Overloaded)
    );
    let snap = c.metrics_snapshot();
    assert!(
        snap.contains("dlm_shard_rejections_total{node=\"0\",shard=\"0\"} 3"),
        "rejections not tallied:\n{snap}"
    );
    let report = c.shutdown();
    assert!(report.audit_errors.is_empty(), "{:?}", report.audit_errors);
}

/// The live snapshot exposes per-shard series alongside the per-node
/// aggregates, and completed work is attributed to the shard that did it.
#[test]
fn per_shard_metrics_are_exported() {
    const LOCKS: u32 = 64;
    let c = Cluster::new(ClusterConfig {
        nodes: 1,
        locks: LOCKS as usize,
        shards: 4,
        ..Default::default()
    });
    let h = c.handle(0);
    for l in 0..LOCKS {
        h.acquire(LockId(l), Mode::Write).unwrap();
        h.release(LockId(l)).unwrap();
    }
    let snap = c.metrics_snapshot();
    for needle in [
        "dlm_shard_queue_depth{node=\"0\",shard=\"0\"}",
        "dlm_shard_queue_depth{node=\"0\",shard=\"3\"}",
        "dlm_shard_rejections_total{node=\"0\",shard=\"1\"} 0",
        "dlm_shard_ops_total{node=\"0\",shard=\"2\"}",
        // Per-node aggregates must survive sharding with their old names.
        "dlm_acquires_total{node=\"0\"} 64",
        "dlm_releases_total{node=\"0\"} 64",
        "dlm_acquire_latency_us{quantile=\"0.99\"}",
    ] {
        assert!(snap.contains(needle), "snapshot missing {needle}:\n{snap}");
    }
    // The shard ops series sums to the node's completed operations, and
    // with 64 locks over a splittable hash every shard did some of them.
    let ops: Vec<u64> = snap
        .lines()
        .filter(|l| l.starts_with("dlm_shard_ops_total{"))
        .map(|l| l.rsplit(' ').next().unwrap().parse().unwrap())
        .collect();
    assert_eq!(ops.len(), 4);
    assert_eq!(ops.iter().sum::<u64>(), 2 * LOCKS as u64);
    assert!(ops.iter().all(|&v| v > 0), "idle shard in {ops:?}");
    let report = c.shutdown();
    assert!(report.audit_errors.is_empty(), "{:?}", report.audit_errors);
}

/// Drive a hot link with pipelined batches and compare the coalescing
/// counters: many protocol frames per physical wire frame with coalescing
/// on, exactly one with it off — and the protocol work (message count,
/// grants) identical either way.
#[test]
fn coalescing_packs_protocol_frames_per_wire_frame() {
    const LOCKS: u32 = 400;
    let run = |coalesce: bool| {
        let c = Cluster::new(ClusterConfig {
            nodes: 2,
            locks: LOCKS as usize,
            coalesce,
            ..Default::default()
        });
        let mut pipe = c.handle(1).pipeline();
        for l in 0..LOCKS {
            pipe.submit_acquire(LockId(l), Mode::Write, l as u64)
                .unwrap();
        }
        for _ in 0..LOCKS {
            assert!(pipe.recv().unwrap().result.is_ok());
        }
        for l in 0..LOCKS {
            pipe.submit_release(LockId(l), l as u64).unwrap();
        }
        pipe.flush().unwrap();
        c.quiesce(Duration::from_millis(10));
        let report = c.shutdown();
        assert!(report.audit_errors.is_empty(), "{:?}", report.audit_errors);
        report
    };
    let packed = run(true);
    let unpacked = run(false);
    assert_eq!(
        packed.messages_sent, unpacked.messages_sent,
        "coalescing changes framing, not the protocol conversation"
    );
    let ratio = |links: &[dlm_cluster::LinkReport]| {
        let (proto, wire) = links
            .iter()
            .fold((0, 0), |(p, w), l| (p + l.proto_sent, w + l.wire_sent));
        assert_eq!(proto, packed.messages_sent, "every protocol frame counted");
        (proto, wire)
    };
    let (proto_on, wire_on) = ratio(&packed.links);
    let (_, wire_off) = ratio(&unpacked.links);
    assert_eq!(wire_off, proto_on, "coalescing off: one wire frame each");
    assert!(
        wire_on * 2 <= proto_on,
        "hot links must pack >2 protocol frames per wire frame on average \
         ({proto_on} proto / {wire_on} wire)"
    );
}

/// The chaos bar, sharded: multiple workers per node over 10% loss +
/// duplication + reordering, with coalesced containers flowing through the
/// reliability shim. Every operation completes and the audit is clean.
#[test]
fn sharded_cluster_survives_lossy_links() {
    let c = Cluster::new(ClusterConfig {
        nodes: 3,
        locks: 4,
        shards: 2,
        transport: TransportKind::Faulty(FaultConfig::lossy(0x5EED, 0.10)),
        reliable: Some(ReliableConfig::default()),
        ..Default::default()
    });
    let threads: Vec<_> = (0..3)
        .map(|i| {
            let h = c.handle(i);
            std::thread::spawn(move || {
                for round in 0..4u32 {
                    for lock in 0..4u32 {
                        let mode = [Mode::IntentWrite, Mode::Write, Mode::Read]
                            [((round + lock + i) % 3) as usize];
                        h.acquire(LockId(lock), mode).unwrap();
                        h.release(LockId(lock)).unwrap();
                    }
                }
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }
    c.quiesce(Duration::from_millis(5));
    let report = c.shutdown();
    assert!(report.audit_errors.is_empty(), "{:?}", report.audit_errors);
    assert_eq!(report.decode_errors, 0);
    assert_eq!(report.replies_dropped, 0);
    let dropped: u64 = report.links.iter().map(|l| l.dropped).sum();
    assert!(dropped > 0, "the fault stage was in the path");
}
