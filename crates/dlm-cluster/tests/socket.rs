//! Socket-transport integration suite: real loopback sockets under the
//! edge cases the wire introduces on top of the in-process runtime —
//! frames split across TCP segments, a container frame spanning two
//! writes, a peer connection dropping mid-stream, and UDP at a real 10%
//! loss rate (the socket twin of `tests/chaos.rs`).
//!
//! Several [`Node`]s run inside this one test process, but every frame
//! between them crosses a genuine kernel socket; the cross-process audit
//! path is exercised by round-tripping each member's final states through
//! the portable state codec before auditing, exactly as the multi-process
//! harness does.

use dlm_cluster::{
    audit_process_states, audit_surviving_states, codec, plan_recovery, ClusterConfig, Node,
    NodeConfig, ScanReport, SocketConfig,
};
use dlm_core::{HierNode, LockId, Message, Mode, NodeId, ProtocolConfig, QueuedRequest};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, UdpSocket};
use std::time::{Duration, Instant};

/// Reserve `n` distinct loopback TCP addresses by binding ephemeral
/// listeners and dropping them; the cluster rebinds them immediately after.
fn reserve_tcp_addrs(n: usize) -> Vec<SocketAddr> {
    let listeners: Vec<TcpListener> = (0..n)
        .map(|_| TcpListener::bind("127.0.0.1:0").expect("bind ephemeral"))
        .collect();
    listeners
        .iter()
        .map(|l| l.local_addr().expect("local addr"))
        .collect()
}

/// Same, for UDP.
fn reserve_udp_addrs(n: usize) -> Vec<SocketAddr> {
    let sockets: Vec<UdpSocket> = (0..n)
        .map(|_| UdpSocket::bind("127.0.0.1:0").expect("bind ephemeral"))
        .collect();
    sockets
        .iter()
        .map(|s| s.local_addr().expect("local addr"))
        .collect()
}

fn member_config(nodes: usize, locks: usize) -> ClusterConfig {
    ClusterConfig {
        nodes,
        locks,
        ..Default::default()
    }
}

/// Wait until every member is simultaneously idle with a stable global
/// message count — the cross-process quiescence criterion (each member's
/// own idleness is necessary but not sufficient).
fn quiesce_all(nodes: &[Node], timeout: Duration) {
    quiesce_refs(&nodes.iter().collect::<Vec<_>>(), timeout)
}

/// [`quiesce_all`] over borrowed members (a survivor subset).
fn quiesce_refs(nodes: &[&Node], timeout: Duration) {
    let start = Instant::now();
    let window = Duration::from_millis(30);
    let mut last: u64 = nodes.iter().map(|n| n.messages_sent()).sum();
    let mut stable_since = Instant::now();
    while start.elapsed() < timeout {
        std::thread::sleep(Duration::from_millis(2));
        let sum: u64 = nodes.iter().map(|n| n.messages_sent()).sum();
        let all_idle = nodes.iter().all(|n| n.is_idle());
        if sum != last || !all_idle {
            last = sum;
            stable_since = Instant::now();
        } else if stable_since.elapsed() >= window {
            return;
        }
    }
    panic!("cluster failed to quiesce within {timeout:?}");
}

/// Round-trip one member's states through the portable codec, as the
/// multi-process harness does over stdout, then hand back decoded states.
fn round_trip_states(states: &[(u32, HierNode)], protocol: ProtocolConfig) -> Vec<(u32, HierNode)> {
    states
        .iter()
        .map(|(lock, node)| {
            let mut buf = Vec::new();
            node.encode_state(&mut buf);
            let decoded =
                HierNode::decode_state(&buf, protocol).expect("portable state codec round-trip");
            (*lock, decoded)
        })
        .collect()
}

/// Three members over real TCP loopback run the chaos-suite op matrix;
/// the cluster quiesces, every member shuts down cleanly, and the audit
/// reassembled from codec-round-tripped states is clean.
#[test]
fn tcp_loopback_cluster_clean_audit() {
    let cluster = member_config(3, 2);
    let addrs = reserve_tcp_addrs(3);
    let nodes: Vec<Node> = (0..3)
        .map(|me| {
            Node::new(NodeConfig {
                cluster,
                socket: SocketConfig::tcp(me, addrs.clone()),
            })
            .expect("bind member")
        })
        .collect();

    std::thread::scope(|s| {
        for node in &nodes {
            let h = node.handle();
            s.spawn(move || {
                for lock in [LockId(0), LockId(1)] {
                    for mode in [Mode::IntentRead, Mode::Write, Mode::Read] {
                        h.acquire(lock, mode).unwrap();
                        h.release(lock).unwrap();
                    }
                }
            });
        }
    });

    quiesce_all(&nodes, Duration::from_secs(20));
    let reports: Vec<_> = nodes.into_iter().map(Node::shutdown).collect();

    let mut wire_bytes = 0;
    let mut all_states = Vec::new();
    for report in &reports {
        assert_eq!(report.decode_errors, 0, "malformed frames on a clean run");
        assert_eq!(report.replies_dropped, 0, "a caller never saw its outcome");
        wire_bytes += report.links.iter().map(|l| l.wire_bytes).sum::<u64>();
        all_states.push(round_trip_states(&report.states, cluster.protocol));
    }
    assert!(wire_bytes > 0, "no payload byte ever crossed the wire");
    let errors = audit_process_states(cluster.protocol, &all_states);
    assert!(errors.is_empty(), "{errors:?}");
}

// ---------------------------------------------------------------------------
// A hand-rolled peer speaking the wire format over a raw TcpStream, for
// tests that need byte-level control (segment splits, abrupt drops). The
// framing constants mirror DESIGN.md §16: `u32 len | u32 from | u32 to |
// payload`, reliability payloads `u8 kind | u64 seq | u64 ack | data`.
// ---------------------------------------------------------------------------

const KIND_DATA: u8 = 1;
const KIND_ACK: u8 = 2;

fn wire_frame(from_slot: u32, to_slot: u32, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(12 + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&from_slot.to_le_bytes());
    out.extend_from_slice(&to_slot.to_le_bytes());
    out.extend_from_slice(payload);
    out
}

fn reliable_data(seq: u64, ack: u64, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(17 + payload.len());
    out.push(KIND_DATA);
    out.extend_from_slice(&seq.to_le_bytes());
    out.extend_from_slice(&ack.to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Incremental wire-frame parser over a blocking stream with a short read
/// timeout: returns complete `(from, to, payload)` frames as they arrive.
struct FakePeer {
    stream: TcpStream,
    buf: Vec<u8>,
}

impl FakePeer {
    /// Dial `addr` and introduce ourselves as node `me` (the hello).
    fn dial(addr: SocketAddr, me: u32) -> FakePeer {
        let deadline = Instant::now() + Duration::from_secs(5);
        let stream = loop {
            match TcpStream::connect(addr) {
                Ok(s) => break s,
                Err(e) if Instant::now() < deadline => {
                    let _ = e;
                    std::thread::sleep(Duration::from_millis(10));
                }
                Err(e) => panic!("fake peer could not dial: {e}"),
            }
        };
        stream.set_nodelay(true).expect("nodelay");
        stream
            .set_read_timeout(Some(Duration::from_millis(50)))
            .expect("read timeout");
        let mut peer = FakePeer {
            stream,
            buf: Vec::new(),
        };
        peer.stream
            .write_all(&me.to_le_bytes())
            .expect("hello write");
        peer
    }

    /// Read until one full wire frame is buffered or the deadline passes.
    fn next_frame(&mut self, deadline: Instant) -> Option<(u32, u32, Vec<u8>)> {
        loop {
            if self.buf.len() >= 12 {
                let len = u32::from_le_bytes(self.buf[0..4].try_into().unwrap()) as usize;
                if self.buf.len() >= 12 + len {
                    let from = u32::from_le_bytes(self.buf[4..8].try_into().unwrap());
                    let to = u32::from_le_bytes(self.buf[8..12].try_into().unwrap());
                    let payload = self.buf[12..12 + len].to_vec();
                    self.buf.drain(..12 + len);
                    return Some((from, to, payload));
                }
            }
            if Instant::now() >= deadline {
                return None;
            }
            let mut scratch = [0u8; 4096];
            match self.stream.read(&mut scratch) {
                Ok(0) => return None,
                Ok(n) => self.buf.extend_from_slice(&scratch[..n]),
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut => {}
                Err(e) => panic!("fake peer read: {e}"),
            }
        }
    }
}

/// The byte-level gauntlet: a raw peer sends a **container frame split
/// across two TCP segments** (a flush and a pause between the halves),
/// the node reassembles and serves both requests, the peer acks the
/// grants — then vanishes mid-stream. The node must count the reset and
/// keep serving local operations.
#[test]
fn split_container_then_peer_drop_keeps_node_serving() {
    let cluster = member_config(2, 2);
    let addrs = reserve_tcp_addrs(2);
    let node = Node::new(NodeConfig {
        cluster,
        socket: SocketConfig::tcp(0, addrs.clone()),
    })
    .expect("bind member");
    let h = node.handle();

    // Own Read on both locks so the remote Read requests are answered with
    // copy-grants (a weaker-or-equal mode) rather than a token transfer —
    // the token must stay here for the node to keep serving after the drop.
    h.acquire(LockId(0), Mode::Read).unwrap();
    h.acquire(LockId(1), Mode::Read).unwrap();

    // Build one container carrying Read requests for both locks, exactly
    // as a coalescing peer would, and wrap it in one reliability sequence.
    let request = |lock: u32, req: u64| {
        codec::encode_corr(
            LockId(lock),
            req,
            0,
            0,
            &Message::Request(QueuedRequest {
                from: NodeId(1),
                mode: Mode::Read,
                upgrade: false,
                priority: 0,
            }),
        )
    };
    let frames = [request(0, 1), request(1, 2)];
    let mut scratch = bytes::BytesMut::new();
    let container = codec::encode_container_into(&frames, &mut scratch);
    let data = reliable_data(0, 0, container.as_ref());
    let wire = wire_frame(1, 0, &data);

    let mut peer = FakePeer::dial(addrs[0], 1);
    // Split inside the container payload: two real TCP segments.
    let cut = 12 + data.len() / 2;
    peer.stream.write_all(&wire[..cut]).expect("first segment");
    peer.stream.flush().expect("flush");
    std::thread::sleep(Duration::from_millis(40));
    peer.stream.write_all(&wire[cut..]).expect("second segment");
    peer.stream.flush().expect("flush");

    // Ack every data frame the node sends (grants, possibly retransmitted,
    // possibly coalesced) until the node has nothing outstanding.
    let deadline = Instant::now() + Duration::from_secs(10);
    let mut grants_seen = 0u64;
    loop {
        if grants_seen > 0 && node.is_idle() {
            break;
        }
        assert!(Instant::now() < deadline, "node never drained its grants");
        if let Some((_, _, payload)) = peer.next_frame(Instant::now() + Duration::from_millis(50)) {
            if payload.first() == Some(&KIND_DATA) {
                let seq = u64::from_le_bytes(payload[1..9].try_into().unwrap());
                grants_seen += 1;
                let mut ack = vec![KIND_ACK];
                ack.extend_from_slice(&(seq + 1).to_le_bytes());
                peer.stream
                    .write_all(&wire_frame(1, 0, &ack))
                    .expect("ack write");
            }
        }
    }
    assert!(
        grants_seen > 0,
        "both requests served, no grant on the wire"
    );

    // Vanish mid-stream: no goodbye, just a dead connection.
    drop(peer);
    std::thread::sleep(Duration::from_millis(200));

    // The node keeps serving: release and re-acquire compatibly with the
    // Read copies the dead peer still holds on the books.
    h.release(LockId(0)).unwrap();
    h.acquire(LockId(0), Mode::Read).unwrap();
    h.release(LockId(0)).unwrap();
    h.release(LockId(1)).unwrap();

    let report = node.shutdown();
    assert_eq!(report.decode_errors, 0, "split container must decode");
    assert_eq!(report.replies_dropped, 0);
    let resets: u64 = report.links.iter().map(|l| l.resets).sum();
    assert!(resets >= 1, "the mid-stream drop was never counted");
    let wire_bytes: u64 = report.links.iter().map(|l| l.wire_bytes).sum();
    assert!(wire_bytes > 0, "grants never crossed the wire");
}

/// The socket twin of the chaos matrix: three members over UDP loopback
/// with a real 10% send-side loss rate. The reliability shim must recover
/// every operation, the audit must be clean, and the loss must be visible
/// in the link counters (dropped datagrams and retransmissions both
/// non-zero).
#[test]
fn udp_chaos_survives_ten_percent_loss() {
    for seed in [11u64, 23] {
        let cluster = member_config(3, 2);
        let addrs = reserve_udp_addrs(3);
        let nodes: Vec<Node> = (0..3u32)
            .map(|me| {
                Node::new(NodeConfig {
                    cluster,
                    socket: SocketConfig::udp(
                        me,
                        addrs.clone(),
                        0.10,
                        seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ u64::from(me),
                    ),
                })
                .expect("bind member")
            })
            .collect();

        std::thread::scope(|s| {
            for node in &nodes {
                let h = node.handle();
                s.spawn(move || {
                    for lock in [LockId(0), LockId(1)] {
                        for mode in [Mode::IntentRead, Mode::Write, Mode::Read] {
                            h.acquire(lock, mode).unwrap();
                            h.release(lock).unwrap();
                        }
                    }
                });
            }
        });

        quiesce_all(&nodes, Duration::from_secs(30));
        let reports: Vec<_> = nodes.into_iter().map(Node::shutdown).collect();

        let (mut dropped, mut retransmits) = (0u64, 0u64);
        let mut all_states = Vec::new();
        for report in &reports {
            assert_eq!(report.decode_errors, 0, "seed {seed}: malformed frames");
            assert_eq!(report.replies_dropped, 0, "seed {seed}: lost a reply");
            for link in &report.links {
                dropped += link.dropped;
                retransmits += link.retransmits;
            }
            all_states.push(round_trip_states(&report.states, cluster.protocol));
        }
        let errors = audit_process_states(cluster.protocol, &all_states);
        assert!(errors.is_empty(), "seed {seed}: {errors:?}");
        // At 10% over this much traffic a loss-free run is implausible;
        // its absence would mean the loss stage was never in the path.
        assert!(dropped > 0, "seed {seed}: no datagram ever dropped");
        assert!(retransmits > 0, "seed {seed}: drops but no retransmissions");
    }
}

/// Byte-level corruption regression: a wire frame whose length word lies
/// (far beyond any legal frame) must kill only that connection — counted
/// as a wire decode error plus a link reset — and a well-framed frame
/// whose *payload* is garbage must be counted by the worker's codec
/// without killing anything. The original parser `expect`ed its way
/// through the header words and would panic the transport thread instead.
#[test]
fn malformed_frames_are_counted_not_fatal() {
    let cluster = member_config(2, 1);
    let addrs = reserve_tcp_addrs(2);
    let node = Node::new(NodeConfig {
        cluster,
        socket: SocketConfig::tcp(0, addrs.clone()),
    })
    .expect("bind member");
    let h = node.handle();
    h.acquire(LockId(0), Mode::Read).expect("local read");

    let mut peer = FakePeer::dial(addrs[0], 1);
    // Payload-level garbage first: well-framed, parseable reliability
    // header, unparseable protocol payload — it reaches the worker's
    // codec, is counted there, and the connection survives it.
    let frame = wire_frame(1, 0, &reliable_data(0, 0, &[0xFF; 9]));
    peer.stream
        .write_all(&frame)
        .expect("write garbage payload");
    std::thread::sleep(Duration::from_millis(100));

    // Then a wire-level lie: a header promising four gigabytes of frame.
    let mut lie = Vec::new();
    lie.extend_from_slice(&u32::MAX.to_le_bytes());
    lie.extend_from_slice(&1u32.to_le_bytes());
    lie.extend_from_slice(&0u32.to_le_bytes());
    lie.extend_from_slice(b"trailing noise");
    peer.stream.write_all(&lie).expect("write lying header");
    // The node's only legal answer is to drop the connection.
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let mut scratch = [0u8; 64];
        match peer.stream.read(&mut scratch) {
            Ok(0) => break,
            Ok(_) => {}
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut => {}
            Err(_) => break,
        }
        assert!(
            Instant::now() < deadline,
            "poisoned connection was never torn down"
        );
    }

    // The node keeps serving local operations throughout.
    h.release(LockId(0)).expect("local release");
    h.acquire(LockId(0), Mode::Write).expect("local write");
    h.release(LockId(0)).expect("local release");
    std::thread::sleep(Duration::from_millis(300));

    let report = node.shutdown();
    assert!(
        report.decode_errors >= 2,
        "wire lie + payload garbage must both be counted, saw {}",
        report.decode_errors
    );
    let resets: u64 = report.links.iter().map(|l| l.resets).sum();
    assert!(
        resets >= 1,
        "the poisoned connection never counted as a reset"
    );
    assert_eq!(report.workers_died, 0);
    assert_eq!(report.replies_dropped, 0);
}

/// The tentpole scenario over real TCP: the token holder of a four-member
/// loopback cluster is killed while another member's Write acquire is
/// parked at it. Every survivor's socket detector observes the dead
/// connection, an external coordinator scans the survivors, plans with
/// [`plan_recovery`], and broadcasts the repair wave; the parked acquire
/// then completes in the regenerated epoch, the survivor scan shows
/// exactly one token (in epoch 1), and the reassembled survivor audit is
/// clean.
#[test]
fn tcp_token_holder_crash_recovers_to_new_epoch() {
    let cluster = member_config(4, 1);
    let addrs = reserve_tcp_addrs(4);
    let mut nodes: Vec<Option<Node>> = (0..4u32)
        .map(|me| {
            Some(
                Node::new(NodeConfig {
                    cluster,
                    socket: SocketConfig::tcp(me, addrs.clone()),
                })
                .expect("bind member"),
            )
        })
        .collect();

    // Pull the token onto member 1 and hold Write there, then park
    // member 2's Write behind it.
    let h1 = nodes[1].as_ref().expect("member 1").handle();
    h1.acquire(LockId(0), Mode::Write).expect("pull token to 1");
    let h2 = nodes[2].as_ref().expect("member 2").handle();
    let parked = {
        let h2 = h2.clone();
        std::thread::spawn(move || h2.acquire(LockId(0), Mode::Write))
    };
    std::thread::sleep(Duration::from_millis(100));

    // Kill the holder mid-conversation; every survivor must suspect it.
    nodes[1].take().expect("member 1").crash();
    let survivors = [0u32, 2, 3];
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let all_saw = survivors.iter().all(|&n| {
            nodes[n as usize]
                .as_ref()
                .expect("survivor")
                .suspects()
                .contains(&1)
        });
        if all_saw {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "socket detectors never flagged the dead member"
        );
        std::thread::sleep(Duration::from_millis(20));
    }

    // Coordinator: scan the survivors, plan, broadcast the repair wave —
    // the same three steps the multi-process harness driver performs.
    let rows: Vec<ScanReport> = survivors
        .iter()
        .map(|&n| {
            (
                n,
                nodes[n as usize].as_ref().expect("survivor").scan_locks(),
            )
        })
        .collect();
    let plans = plan_recovery(&rows, 1, &survivors, cluster.locks);
    assert!(!plans.is_empty(), "the dead holder's lock must be planned");
    for &n in &survivors {
        nodes[n as usize]
            .as_ref()
            .expect("survivor")
            .repair(1, &survivors, &plans);
    }

    // The parked acquire is re-issued by its surviving originator and
    // completes against the regenerated token.
    parked
        .join()
        .expect("join parked thread")
        .expect("parked Write completes in the new epoch");
    h2.release(LockId(0)).expect("release recovered Write");
    // Every survivor still serializes Writes through the new tree.
    for &n in &survivors {
        let h = nodes[n as usize].as_ref().expect("survivor").handle();
        h.acquire(LockId(0), Mode::Write)
            .expect("post-recovery Write");
        h.release(LockId(0)).expect("post-recovery release");
    }
    let alive: Vec<&Node> = survivors
        .iter()
        .map(|&n| nodes[n as usize].as_ref().expect("survivor"))
        .collect();
    quiesce_refs(&alive, Duration::from_secs(30));

    // Exactly one token across the survivors, living in the new epoch.
    let tokens: Vec<(u32, u32, u32)> = survivors
        .iter()
        .flat_map(|&n| {
            nodes[n as usize]
                .as_ref()
                .expect("survivor")
                .scan_locks()
                .into_iter()
                .filter(|&(_, has, _)| has)
                .map(move |(lock, _, epoch)| (n, lock, epoch))
        })
        .collect();
    assert_eq!(
        tokens.len(),
        1,
        "exactly one token after recovery: {tokens:?}"
    );
    assert_eq!(tokens[0].2, 1, "the regenerated token lives in epoch 1");

    let mut all_states: Vec<Vec<(u32, HierNode)>> = vec![Vec::new(); 4];
    for &n in &survivors {
        let report = nodes[n as usize].take().expect("survivor").shutdown();
        assert_eq!(report.workers_died, 0, "member {n} lost a worker");
        assert_eq!(report.replies_dropped, 0, "member {n} dropped a reply");
        all_states[n as usize] = round_trip_states(&report.states, cluster.protocol);
    }
    let errors = audit_surviving_states(cluster.protocol, &all_states, &[1]);
    assert!(errors.is_empty(), "{errors:?}");
}
