//! Heavier concurrency stress for the threaded runtime: many nodes, many
//! locks, mixed modes, randomized interleaving from the OS scheduler.

use dlm_cluster::{Cluster, ClusterConfig, LockId, Mode};
use std::time::Duration;

#[test]
fn mixed_mode_stress_across_locks() {
    const NODES: usize = 8;
    const LOCKS: usize = 5; // table + 4 entries
    const ROUNDS: u32 = 12;

    let cluster = Cluster::new(ClusterConfig {
        nodes: NODES,
        locks: LOCKS,
        ..Default::default()
    });

    let threads: Vec<_> = (0..NODES as u32)
        .map(|i| {
            let h = cluster.handle(i);
            std::thread::spawn(move || {
                for round in 0..ROUNDS {
                    match (i + round) % 5 {
                        0 => {
                            // Whole-table read.
                            h.acquire(LockId::TABLE, Mode::Read).unwrap();
                            h.release(LockId::TABLE).unwrap();
                        }
                        1 => {
                            // Entry write under table IW.
                            let entry = LockId::entry((i + round) % 4);
                            h.acquire(LockId::TABLE, Mode::IntentWrite).unwrap();
                            h.acquire(entry, Mode::Write).unwrap();
                            h.release(entry).unwrap();
                            h.release(LockId::TABLE).unwrap();
                        }
                        2 => {
                            // Entry read under table IR.
                            let entry = LockId::entry((i + round) % 4);
                            h.acquire(LockId::TABLE, Mode::IntentRead).unwrap();
                            h.acquire(entry, Mode::Read).unwrap();
                            h.release(entry).unwrap();
                            h.release(LockId::TABLE).unwrap();
                        }
                        3 => {
                            // Upgrade cycle.
                            h.acquire(LockId::TABLE, Mode::Upgrade).unwrap();
                            h.upgrade(LockId::TABLE).unwrap();
                            h.release(LockId::TABLE).unwrap();
                        }
                        _ => {
                            // Try-lock probes never deadlock and never leak.
                            if h.try_acquire(LockId::TABLE, Mode::IntentRead).unwrap() {
                                h.release(LockId::TABLE).unwrap();
                            }
                        }
                    }
                }
            })
        })
        .collect();

    for t in threads {
        t.join().expect("worker");
    }
    cluster.quiesce(Duration::from_millis(15));
    let report = cluster.shutdown();
    assert!(report.audit_errors.is_empty(), "{:?}", report.audit_errors);
    assert!(report.messages_sent > 0);
}
