//! Chaos suite: the cluster under adversarial links, plus regression tests
//! for the runtime's failure-handling fixes (malformed frames, double
//! waiters, shutdown draining, try_acquire's zero-message promise).
//!
//! The fault matrix follows the acceptance bar of the transport work: at
//! 10% drop + duplicate + reorder over 4 nodes / 2 locks, every operation
//! must complete, the final audit must be clean, and no frame may be
//! unaccounted for (`decode_errors == 0`, `replies_dropped == 0`).

use dlm_cluster::{
    Cluster, ClusterConfig, ClusterError, ClusterReport, FaultConfig, LockId, Mode, ReliableConfig,
    TransportKind,
};
use proptest::prelude::*;
use std::time::{Duration, Instant};

fn lossy_cluster(seed: u64, rate: f64, nodes: usize, locks: usize) -> Cluster {
    Cluster::new(ClusterConfig {
        nodes,
        locks,
        transport: TransportKind::Faulty(FaultConfig::lossy(seed, rate)),
        reliable: Some(ReliableConfig::default()),
        ..Default::default()
    })
}

fn assert_clean(report: &ClusterReport) {
    assert!(report.audit_errors.is_empty(), "{:?}", report.audit_errors);
    assert_eq!(report.decode_errors, 0, "malformed frames on a clean run");
    assert_eq!(report.replies_dropped, 0, "a caller never saw its outcome");
}

/// The headline matrix: 10% loss + duplication + reordering on every link,
/// 4 nodes contending over 2 locks, several seeds. The reliability shim
/// must make every blocking acquire complete and leave a clean audit.
#[test]
fn chaos_matrix_survives_ten_percent_loss_dup_reorder() {
    for seed in [11, 23, 47] {
        let c = lossy_cluster(seed, 0.10, 4, 2);
        let threads: Vec<_> = (0..4)
            .map(|i| {
                let h = c.handle(i);
                std::thread::spawn(move || {
                    for lock in [LockId(0), LockId(1)] {
                        for mode in [Mode::IntentRead, Mode::Write, Mode::Read] {
                            h.acquire(lock, mode).unwrap();
                            h.release(lock).unwrap();
                        }
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        c.quiesce(Duration::from_millis(5));
        let report = c.shutdown();
        assert_clean(&report);
        let (dropped, retransmits): (u64, u64) = report
            .links
            .iter()
            .fold((0, 0), |(d, r), l| (d + l.dropped, r + l.retransmits));
        // At 10% over hundreds of frames, a fault-free run is implausible;
        // its absence would mean the fault stage was never in the path.
        assert!(dropped > 0, "seed {seed}: no frame ever dropped");
        assert!(retransmits > 0, "seed {seed}: drops but no retransmissions");
    }
}

/// An injected garbage frame must be counted and traced, not crash the
/// receiving node: the node keeps serving and the final audit stays clean.
#[test]
fn garbage_frame_is_counted_not_fatal() {
    let c = Cluster::new(ClusterConfig {
        nodes: 2,
        ..Default::default()
    });
    c.inject_frame(1, 0, b"\xde\xad\xbe\xef\xff\xff".to_vec());
    c.inject_frame(1, 0, vec![]); // truncated to nothing
    let h = c.handle(0);
    h.acquire(LockId::TABLE, Mode::Write).unwrap();
    h.release(LockId::TABLE).unwrap();
    let report = c.shutdown();
    assert_eq!(report.decode_errors, 2, "both garbage frames counted");
    assert!(report.audit_errors.is_empty(), "{:?}", report.audit_errors);
    assert_eq!(report.replies_dropped, 0);
}

/// Same, through the reliability shim: a frame with a nonsense reliability
/// header is rejected at the link layer without corrupting link state.
#[test]
fn garbage_frame_is_rejected_by_reliability_shim() {
    let c = Cluster::new(ClusterConfig {
        nodes: 2,
        reliable: Some(ReliableConfig::default()),
        ..Default::default()
    });
    c.inject_frame(1, 0, b"\x7fnot a link frame".to_vec());
    let h = c.handle(0);
    h.acquire(LockId::TABLE, Mode::Read).unwrap();
    h.release(LockId::TABLE).unwrap();
    let report = c.shutdown();
    assert_eq!(report.decode_errors, 1);
    assert_clean_except_decode(&report);
}

fn assert_clean_except_decode(report: &ClusterReport) {
    assert!(report.audit_errors.is_empty(), "{:?}", report.audit_errors);
    assert_eq!(report.replies_dropped, 0);
}

/// A second blocking operation on a lock that already has a waiter on the
/// same node must fail with `Busy` — the runtime used to overwrite the
/// first waiter's reply channel, so the first caller would block forever
/// when its grant arrived with nobody registered to receive it.
#[test]
fn second_outstanding_op_is_busy_not_clobbered() {
    let c = Cluster::new(ClusterConfig {
        nodes: 2,
        ..Default::default()
    });
    let h0 = c.handle(0);
    // Node 0 (token) holds W, so node 1's W must queue remotely.
    h0.acquire(LockId::TABLE, Mode::Write).unwrap();
    let h1 = c.handle(1);
    let waiter = {
        let h1 = h1.clone();
        std::thread::spawn(move || h1.acquire(LockId::TABLE, Mode::Write))
    };
    // Let the waiter's request reach node 1's thread and go pending.
    std::thread::sleep(Duration::from_millis(50));
    assert_eq!(
        h1.acquire(LockId::TABLE, Mode::Read),
        Err(ClusterError::Busy),
        "second op on a lock with an outstanding waiter"
    );
    assert_eq!(h1.upgrade(LockId::TABLE), Err(ClusterError::Busy));
    // The original waiter is unharmed: release the conflict and it completes.
    h0.release(LockId::TABLE).unwrap();
    waiter
        .join()
        .unwrap()
        .expect("first waiter still completes after the Busy probe");
    h1.release(LockId::TABLE).unwrap();
    let report = c.shutdown();
    assert_clean(&report);
}

/// `try_acquire` documents a zero-message fast path; a local admit must
/// transmit nothing (the token node's freeze-set refresh must not leak
/// `SetFrozen` frames out of a "local" grant).
#[test]
fn try_acquire_local_admit_transmits_nothing() {
    let c = Cluster::new(ClusterConfig {
        nodes: 3,
        ..Default::default()
    });
    let h0 = c.handle(0);
    let before = c.messages_sent();
    assert!(h0.try_acquire(LockId::TABLE, Mode::Write).unwrap());
    assert_eq!(
        c.messages_sent(),
        before,
        "token-node local admit sent frames"
    );
    h0.release(LockId::TABLE).unwrap();
    // A non-token node with no owned mode cannot admit locally — and saying
    // "no" must also be silent.
    let h1 = c.handle(1);
    let before = c.messages_sent();
    assert!(!h1.try_acquire(LockId::TABLE, Mode::Read).unwrap());
    assert_eq!(c.messages_sent(), before, "refused try_acquire sent frames");
    let report = c.shutdown();
    assert_clean(&report);
}

/// Shutdown must drain the transport before stopping node threads: frames
/// parked in the latency router at the moment of shutdown used to be
/// flushed into channels no thread would ever read again, and the audit saw
/// a cluster missing messages it was owed.
#[test]
fn shutdown_drains_parked_frames() {
    let c = Cluster::new(ClusterConfig {
        nodes: 3,
        transport: TransportKind::Delayed(Duration::from_millis(20)),
        ..Default::default()
    });
    let threads: Vec<_> = (0..3)
        .map(|i| {
            let h = c.handle(i);
            std::thread::spawn(move || {
                h.acquire(LockId::TABLE, Mode::Write).unwrap();
                h.release(LockId::TABLE).unwrap();
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }
    // No quiesce: the last release waves are still parked in the router.
    let report = c.shutdown();
    assert_clean(&report);
}

/// `quiesce` must consult the in-flight gauge: with link delay longer than
/// the idle window, counter stability alone declares quiescence while a
/// frame is still parked in the router.
#[test]
fn quiesce_waits_out_parked_frames() {
    let c = Cluster::new(ClusterConfig {
        nodes: 2,
        transport: TransportKind::Delayed(Duration::from_millis(40)),
        ..Default::default()
    });
    let h1 = c.handle(1);
    // Read is copy-granted, so the token stays at node 0 and the release
    // below must notify the parent with a frame.
    h1.acquire(LockId::TABLE, Mode::Read).unwrap();
    // Release returns immediately; the Release frame sits in the router for
    // 40 ms during which no send happens anywhere.
    h1.release(LockId::TABLE).unwrap();
    let start = Instant::now();
    c.quiesce(Duration::from_millis(5));
    assert!(
        start.elapsed() >= Duration::from_millis(25),
        "quiesce declared idle while a frame was parked ({:?})",
        start.elapsed()
    );
    let report = c.shutdown();
    assert_clean(&report);
}

/// Wait until the heartbeat failure detector flags `node`, bounded.
fn await_suspect(c: &Cluster, node: u32) {
    let deadline = Instant::now() + Duration::from_secs(5);
    while !c.suspects(Duration::from_millis(300)).contains(&node) {
        assert!(
            Instant::now() < deadline,
            "detector never flagged node {node}"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// The tentpole scenario on the in-process faulty transport: a seeded
/// crash of the token holder in a 4-node lossy cluster, with a survivor's
/// write acquire parked at the dead node. The heartbeat detector flags the
/// crash, recovery regenerates the token in a new epoch (DESIGN.md §17),
/// the parked acquire completes via the R1 re-issue, every survivor keeps
/// serving, and the final audit is clean.
#[test]
fn token_holder_crash_recovers_with_epoch_fencing() {
    for seed in [5, 17] {
        let c = lossy_cluster(seed, 0.05, 4, 1);
        let h1 = c.handle(1);
        // Pull the token (and a held W) onto node 1, the victim.
        h1.acquire(LockId::TABLE, Mode::Write).unwrap();
        // Node 2's W must queue remotely at the holder — a caller whose
        // outcome is owed by the node about to die.
        let h2 = c.handle(2);
        let parked = {
            let h2 = h2.clone();
            std::thread::spawn(move || h2.acquire(LockId::TABLE, Mode::Write))
        };
        std::thread::sleep(Duration::from_millis(60));
        c.crash_node(1);
        await_suspect(&c, 1);
        let repaired = c.recover(1);
        assert!(
            repaired >= 1,
            "seed {seed}: the crashed holder's lock must be repaired"
        );
        parked
            .join()
            .unwrap()
            .expect("parked acquire completes after recovery (R1 re-issue)");
        h2.release(LockId::TABLE).unwrap();
        for n in [0, 2, 3] {
            let h = c.handle(n);
            h.acquire(LockId::TABLE, Mode::Write).unwrap();
            h.release(LockId::TABLE).unwrap();
        }
        c.quiesce(Duration::from_millis(5));
        let report = c.shutdown();
        assert!(
            report.audit_errors.is_empty(),
            "seed {seed}: {:?}",
            report.audit_errors
        );
        assert_eq!(report.replies_dropped, 0, "seed {seed}");
        assert_eq!(report.decode_errors, 0, "seed {seed}");
    }
}

/// A panicking worker thread must not take the cluster down: the failure
/// detector flags its node (a finished thread is the strongest heartbeat
/// silence), the other nodes keep serving, and shutdown reports the death
/// in `workers_died` instead of propagating the panic.
#[test]
fn worker_panic_is_reported_not_propagated() {
    let c = Cluster::new(ClusterConfig {
        nodes: 3,
        ..Default::default()
    });
    let h0 = c.handle(0);
    h0.acquire(LockId::TABLE, Mode::Write).unwrap();
    h0.release(LockId::TABLE).unwrap();
    c.inject_worker_panic(2);
    await_suspect(&c, 2);
    let h1 = c.handle(1);
    h1.acquire(LockId::TABLE, Mode::Read).unwrap();
    h1.release(LockId::TABLE).unwrap();
    let report = c.shutdown();
    assert_eq!(report.workers_died, 1, "the panicked worker is counted");
    assert!(report.audit_errors.is_empty(), "{:?}", report.audit_errors);
    assert_eq!(report.replies_dropped, 0);
}

/// A grant arriving for an operation whose application waiter is already
/// gone must be counted in `replies_dropped`, not panic the worker — the
/// runtime used to `expect` a registered waiter for every active op.
#[test]
fn orphaned_grant_is_counted_not_fatal() {
    let c = Cluster::new(ClusterConfig {
        nodes: 2,
        ..Default::default()
    });
    let h0 = c.handle(0);
    h0.acquire(LockId::TABLE, Mode::Write).unwrap();
    let h1 = c.handle(1);
    let parked = {
        let h1 = h1.clone();
        std::thread::spawn(move || h1.acquire(LockId::TABLE, Mode::Write))
    };
    // Let the request go pending at node 1, then tear down its waiter.
    std::thread::sleep(Duration::from_millis(50));
    c.orphan_waiter(1, LockId::TABLE);
    assert_eq!(
        parked.join().unwrap(),
        Err(ClusterError::Disconnected),
        "the orphaned caller sees its channel close"
    );
    // The release hands node 1 the token; the resulting grant has nobody
    // to answer. The worker must survive it and keep serving.
    h0.release(LockId::TABLE).unwrap();
    c.quiesce(Duration::from_millis(5));
    assert_eq!(c.replies_dropped(), 1, "the orphaned grant is accounted");
    h1.release(LockId::TABLE).unwrap();
    let report = c.shutdown();
    assert!(report.audit_errors.is_empty(), "{:?}", report.audit_errors);
    assert_eq!(report.workers_died, 0, "no worker panicked");
}

fn cases(default: u32) -> u32 {
    // Honor the workspace-wide knob, but chaos cases spin real clusters
    // with real timeouts — cap what CI's blanket setting can inflict.
    std::env::var("DLM_CHAOS_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .or_else(|| {
            std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|v| v.parse::<u32>().ok())
                .map(|v| v.min(12))
        })
        .unwrap_or(default)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(cases(6)))]

    /// Seeded chaos: a random operation schedule over random loss rates.
    /// Every blocking acquire completes (the threads join), the audit is
    /// clean, and no frame or reply goes unaccounted.
    #[test]
    fn random_schedules_survive_lossy_links(
        seed in any::<u64>(),
        schedule in proptest::collection::vec((0u8..3, 0u8..2, 0u8..8), 6..30),
    ) {
        let rate = [0.05, 0.10, 0.15][(seed % 3) as usize];
        let c = lossy_cluster(seed, rate, 3, 2);
        // Split the schedule by node; each node runs its slice in order.
        let mut per_node: Vec<Vec<(LockId, u8)>> = vec![Vec::new(); 3];
        for (node, lock, op) in schedule {
            per_node[node as usize].push((LockId(lock as u32), op));
        }
        let threads: Vec<_> = per_node
            .into_iter()
            .enumerate()
            .map(|(i, ops)| {
                let h = c.handle(i as u32);
                std::thread::spawn(move || {
                    for (lock, op) in ops {
                        let mode = [Mode::IntentRead, Mode::Read, Mode::Upgrade, Mode::Write]
                            [(op & 3) as usize];
                        h.acquire(lock, mode).unwrap();
                        if mode == Mode::Upgrade && op & 4 != 0 {
                            h.upgrade(lock).unwrap();
                        }
                        h.release(lock).unwrap();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        c.quiesce(Duration::from_millis(5));
        let report = c.shutdown();
        prop_assert!(report.audit_errors.is_empty(), "{:?}", report.audit_errors);
        prop_assert_eq!(report.decode_errors, 0);
        prop_assert_eq!(report.replies_dropped, 0);
    }
}
