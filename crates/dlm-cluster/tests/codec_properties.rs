//! Property tests for the wire codec: arbitrary messages of **every**
//! variant round-trip exactly, including when many frames are encoded back
//! to back through one reused scratch buffer — the cluster runtime's
//! per-node encode path. A frame must be a self-contained snapshot; reusing
//! the builder for the next frame must never corrupt an earlier one.

use bytes::BytesMut;
use dlm_cluster::codec::{decode, encode, encode_into};
use dlm_core::{LockId, Message, Mode, ModeSet, NodeId, QueuedRequest};
use proptest::prelude::*;
use std::collections::VecDeque;

fn arb_mode() -> impl Strategy<Value = Mode> {
    (0usize..6).prop_map(|i| Mode::from_index(i).expect("six modes"))
}

fn arb_modeset() -> impl Strategy<Value = ModeSet> {
    (0u8..64).prop_map(|bits| {
        let mut set = ModeSet::new();
        for i in 0..6 {
            if bits & (1 << i) != 0 {
                set.insert(Mode::from_index(i).expect("six modes"));
            }
        }
        set
    })
}

fn arb_queued() -> impl Strategy<Value = QueuedRequest> {
    (any::<u32>(), arb_mode(), any::<bool>(), any::<u8>()).prop_map(
        |(from, mode, upgrade, priority)| QueuedRequest {
            from: NodeId(from),
            mode,
            upgrade,
            priority,
        },
    )
}

fn arb_message() -> impl Strategy<Value = Message> {
    prop_oneof![
        arb_queued().prop_map(Message::Request),
        arb_mode().prop_map(|mode| Message::Grant { mode }),
        (
            arb_mode(),
            arb_mode(),
            arb_modeset(),
            proptest::collection::vec(arb_queued(), 0..12),
        )
            .prop_map(|(mode, granter_owned, frozen, queue)| {
                Message::Token {
                    mode,
                    granter_owned,
                    queue: VecDeque::from(queue),
                    frozen,
                }
            }),
        (arb_mode(), any::<u64>()).prop_map(|(new_owned, ack)| Message::Release { new_owned, ack }),
        arb_modeset().prop_map(|modes| Message::SetFrozen { modes }),
    ]
}

proptest! {
    /// Every message round-trips through a frame built in a shared,
    /// repeatedly reused scratch buffer, and the frames stay valid after
    /// later encodes overwrite the builder.
    #[test]
    fn every_variant_round_trips_through_a_reused_buffer(
        batch in proptest::collection::vec((any::<u32>(), arb_message()), 1..24),
    ) {
        let mut scratch = BytesMut::with_capacity(16);
        let frames: Vec<_> = batch
            .iter()
            .map(|(lock, msg)| encode_into(LockId(*lock), msg, &mut scratch))
            .collect();
        prop_assert!(scratch.is_empty(), "encode_into leaves the scratch cleared");
        for ((lock, msg), frame) in batch.iter().zip(frames) {
            let (l2, m2) = decode(frame).expect("valid frame decodes");
            prop_assert_eq!(l2, LockId(*lock));
            prop_assert_eq!(&m2, msg);
        }
    }

    /// The reused-buffer path emits byte-identical frames to the allocating
    /// convenience path.
    #[test]
    fn encode_into_matches_encode(lock in any::<u32>(), msg in arb_message()) {
        let mut scratch = BytesMut::new();
        let reused = encode_into(LockId(lock), &msg, &mut scratch);
        let fresh = encode(LockId(lock), &msg);
        prop_assert_eq!(reused.as_ref(), fresh.as_ref());
    }

    /// No prefix of a valid frame decodes (no silent truncation), for every
    /// variant shape.
    #[test]
    fn truncated_prefixes_never_decode(lock in any::<u32>(), msg in arb_message()) {
        let frame = encode(LockId(lock), &msg);
        for cut in 0..frame.len() {
            prop_assert!(
                decode(frame.slice(0..cut)).is_err(),
                "a {}-byte prefix of a {}-byte frame must not decode",
                cut,
                frame.len()
            );
        }
    }
}
