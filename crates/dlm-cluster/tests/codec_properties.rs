//! Property tests for the wire codec: arbitrary messages of **every**
//! variant round-trip exactly, including when many frames are encoded back
//! to back through one reused scratch buffer — the cluster runtime's
//! per-node encode path. A frame must be a self-contained snapshot; reusing
//! the builder for the next frame must never corrupt an earlier one.
//!
//! Also covers the coalescing container format (arbitrary packings
//! round-trip sub-frame-exact) and the shard-routing hash (deterministic,
//! in range, and prefix-stable across power-of-two worker counts).

use bytes::BytesMut;
use dlm_cluster::codec::{
    decode, decode_container_into, decode_corr, encode, encode_container_into, encode_corr_into,
    encode_into, is_container,
};
use dlm_cluster::shard::{effective_shards, shard_of};
use dlm_core::{LockId, Message, Mode, ModeSet, NodeId, QueuedRequest};
use proptest::prelude::*;
use std::collections::VecDeque;

fn arb_mode() -> impl Strategy<Value = Mode> {
    (0usize..6).prop_map(|i| Mode::from_index(i).expect("six modes"))
}

fn arb_modeset() -> impl Strategy<Value = ModeSet> {
    (0u8..64).prop_map(|bits| {
        let mut set = ModeSet::new();
        for i in 0..6 {
            if bits & (1 << i) != 0 {
                set.insert(Mode::from_index(i).expect("six modes"));
            }
        }
        set
    })
}

fn arb_queued() -> impl Strategy<Value = QueuedRequest> {
    (any::<u32>(), arb_mode(), any::<bool>(), any::<u8>()).prop_map(
        |(from, mode, upgrade, priority)| QueuedRequest {
            from: NodeId(from),
            mode,
            upgrade,
            priority,
        },
    )
}

fn arb_message() -> impl Strategy<Value = Message> {
    prop_oneof![
        arb_queued().prop_map(Message::Request),
        arb_mode().prop_map(|mode| Message::Grant { mode }),
        (
            arb_mode(),
            arb_mode(),
            arb_modeset(),
            proptest::collection::vec(arb_queued(), 0..12),
        )
            .prop_map(|(mode, granter_owned, frozen, queue)| {
                Message::Token {
                    mode,
                    granter_owned,
                    queue: VecDeque::from(queue),
                    frozen,
                }
            }),
        (arb_mode(), any::<u64>()).prop_map(|(new_owned, ack)| Message::Release { new_owned, ack }),
        arb_modeset().prop_map(|modes| Message::SetFrozen { modes }),
        (
            any::<u32>(),
            any::<u32>(),
            any::<u32>(),
            proptest::collection::vec(any::<u32>(), 0..8),
        )
            .prop_map(|(dead, new_root, epoch, survivors)| Message::Recover {
                dead: NodeId(dead),
                new_root: NodeId(new_root),
                epoch,
                survivors: survivors.into_iter().map(NodeId).collect(),
            }),
    ]
}

proptest! {
    /// Every message round-trips through a frame built in a shared,
    /// repeatedly reused scratch buffer, and the frames stay valid after
    /// later encodes overwrite the builder.
    #[test]
    fn every_variant_round_trips_through_a_reused_buffer(
        batch in proptest::collection::vec((any::<u32>(), arb_message()), 1..24),
    ) {
        let mut scratch = BytesMut::with_capacity(16);
        let frames: Vec<_> = batch
            .iter()
            .map(|(lock, msg)| encode_into(LockId(*lock), msg, &mut scratch))
            .collect();
        prop_assert!(scratch.is_empty(), "encode_into leaves the scratch cleared");
        for ((lock, msg), frame) in batch.iter().zip(frames) {
            let (l2, m2) = decode(frame).expect("valid frame decodes");
            prop_assert_eq!(l2, LockId(*lock));
            prop_assert_eq!(&m2, msg);
        }
    }

    /// The reused-buffer path emits byte-identical frames to the allocating
    /// convenience path.
    #[test]
    fn encode_into_matches_encode(lock in any::<u32>(), msg in arb_message()) {
        let mut scratch = BytesMut::new();
        let reused = encode_into(LockId(lock), &msg, &mut scratch);
        let fresh = encode(LockId(lock), &msg);
        prop_assert_eq!(reused.as_ref(), fresh.as_ref());
    }

    /// No prefix of a valid frame decodes (no silent truncation), for every
    /// variant shape.
    #[test]
    fn truncated_prefixes_never_decode(lock in any::<u32>(), msg in arb_message()) {
        let frame = encode(LockId(lock), &msg);
        for cut in 0..frame.len() {
            prop_assert!(
                decode(frame.slice(0..cut)).is_err(),
                "a {}-byte prefix of a {}-byte frame must not decode",
                cut,
                frame.len()
            );
        }
    }

    /// Arbitrary packings of correlated frames round-trip through a
    /// container: the unpacked sub-frames are byte-identical, in order, and
    /// each still decodes to its original span, epoch stamp and message.
    /// Bare frames are never mistaken for containers.
    #[test]
    fn containers_round_trip_arbitrary_packings(
        batch in proptest::collection::vec(
            ((any::<u32>(), any::<u64>()), (any::<u16>(), any::<u32>()), arb_message()),
            1..40,
        ),
    ) {
        let mut scratch = BytesMut::new();
        let frames: Vec<_> = batch
            .iter()
            .map(|((lock, req), (hops, epoch), msg)| {
                encode_corr_into(LockId(*lock), *req, *hops, *epoch, msg, &mut scratch)
            })
            .collect();
        for frame in &frames {
            prop_assert!(!is_container(frame), "bare frame misdetected");
        }
        let container = encode_container_into(&frames, &mut scratch);
        prop_assert!(is_container(&container));
        let mut out = Vec::new();
        decode_container_into(container, &mut out).expect("valid container");
        prop_assert_eq!(out.len(), batch.len());
        for (sub, ((lock, req), (hops, epoch), msg)) in out.into_iter().zip(&batch) {
            let (l2, r2, h2, e2, m2) = decode_corr(sub).expect("sub-frame decodes");
            prop_assert_eq!(l2, LockId(*lock));
            prop_assert_eq!(r2, *req);
            prop_assert_eq!(h2, *hops);
            prop_assert_eq!(e2, *epoch);
            prop_assert_eq!(&m2, msg);
        }
    }

    /// Shard routing is a pure function of the lock id, lands in range for
    /// every power-of-two worker count, and is splittable: the assignment
    /// under a smaller count is the masked assignment under any larger one
    /// (so growing the pool never reshuffles locks arbitrarily).
    #[test]
    fn shard_routing_is_stable_and_splittable(lock in any::<u32>(), shift in 0u32..7) {
        let small = 1usize << shift;
        let big = small * 8;
        let s = shard_of(LockId(lock), small);
        prop_assert!(s < small);
        prop_assert_eq!(s, shard_of(LockId(lock), small), "deterministic");
        prop_assert_eq!(s, shard_of(LockId(lock), big) & (small - 1), "splittable");
        prop_assert_eq!(effective_shards(small), small, "powers of two are kept");
    }
}
