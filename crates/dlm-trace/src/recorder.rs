//! The storage side: time-stamped record sinks and statistics.

use crate::event::{ProtocolEvent, TraceRecord};
use dlm_metrics::{CounterSet, Histogram};
use std::cell::RefCell;
use std::collections::{BTreeMap, VecDeque};
use std::rc::Rc;

/// A sink for fully-stamped trace records. Unlike [`crate::Observer`] (which
/// sees one operation at one node), a recorder spans locks and time; it
/// assigns each record its monotone per-recorder sequence number.
pub trait Recorder {
    /// Store one record (implementations self-assign `seq`).
    fn record(&mut self, at: u64, lock: u32, node: u32, event: ProtocolEvent);
}

impl<R: Recorder + ?Sized> Recorder for &mut R {
    fn record(&mut self, at: u64, lock: u32, node: u32, event: ProtocolEvent) {
        (**self).record(at, lock, node, event);
    }
}

/// Shared-recorder convenience for the single-threaded runtimes (testkit,
/// simulator): many actors emit into one `Rc<RefCell<…>>`.
impl<R: Recorder + ?Sized> Recorder for Rc<RefCell<R>> {
    fn record(&mut self, at: u64, lock: u32, node: u32, event: ProtocolEvent) {
        self.borrow_mut().record(at, lock, node, event);
    }
}

/// Unbounded in-memory recorder.
#[derive(Debug, Clone, Default)]
pub struct VecRecorder {
    /// Everything recorded, in emission order.
    pub records: Vec<TraceRecord>,
    next_seq: u64,
}

impl VecRecorder {
    /// An empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Consume into the recorded stream.
    pub fn into_records(self) -> Vec<TraceRecord> {
        self.records
    }
}

impl Recorder for VecRecorder {
    fn record(&mut self, at: u64, lock: u32, node: u32, event: ProtocolEvent) {
        self.records.push(TraceRecord {
            seq: self.next_seq,
            at,
            node,
            lock,
            event,
        });
        self.next_seq += 1;
    }
}

/// Bounded recorder keeping the most recent `capacity` records (a flight
/// recorder: old entries fall off the front). Sequence numbers keep counting
/// so drops are visible as gaps.
#[derive(Debug, Clone)]
pub struct RingRecorder {
    buf: VecDeque<TraceRecord>,
    capacity: usize,
    next_seq: u64,
    dropped: u64,
}

impl RingRecorder {
    /// A ring holding at most `capacity` records (min 1).
    pub fn new(capacity: usize) -> Self {
        RingRecorder {
            buf: VecDeque::with_capacity(capacity.clamp(1, 1 << 20)),
            capacity: capacity.max(1),
            next_seq: 0,
            dropped: 0,
        }
    }

    /// Records currently retained, oldest first.
    pub fn records(&self) -> impl Iterator<Item = &TraceRecord> {
        self.buf.iter()
    }

    /// Number of records evicted so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Total records ever recorded (retained + dropped).
    pub fn recorded(&self) -> u64 {
        self.next_seq
    }

    /// Consume into the retained records, oldest first.
    pub fn into_records(self) -> Vec<TraceRecord> {
        self.buf.into_iter().collect()
    }
}

impl Recorder for RingRecorder {
    fn record(&mut self, at: u64, lock: u32, node: u32, event: ProtocolEvent) {
        if self.buf.len() == self.capacity {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back(TraceRecord {
            seq: self.next_seq,
            at,
            node,
            lock,
            event,
        });
        self.next_seq += 1;
    }
}

/// Statistics-only sink: per-rule and per-kind counters, queue-depth and
/// freeze-duration histograms. Costs O(1) per event and stores nothing, so
/// it can stay on for whole workload runs.
#[derive(Debug, Clone, Default)]
pub struct TraceStats {
    /// Events per paper rule (`rule3.1-child-grant`, …).
    pub rules: CounterSet,
    /// Events per kind (`child_grant`, `token_sent`, …).
    pub kinds: CounterSet,
    /// Send-class events per wire kind (`request`, `grant`, …). Summing
    /// this set reproduces the runtime's total message count exactly.
    pub sends: CounterSet,
    /// Local queue depth observed after every push.
    pub queue_depth: Histogram,
    /// Time (in the producing runtime's clock units) each node spent frozen.
    pub freeze_spans: Histogram,
    /// End-to-end request latency (`RequestStart` → `RequestGrant`, clock
    /// units of the producing runtime).
    pub span_latency: Histogram,
    /// Network legs on each completed request's granting chain (the
    /// `RequestGrant` `hops` field).
    pub span_hops: Histogram,
    /// Open freeze intervals: `(lock, node) → at` of the `Frozen` event.
    freeze_since: BTreeMap<(u32, u32), u64>,
    /// Open request spans: `req → at` of the `RequestStart` event.
    span_since: BTreeMap<u64, u64>,
}

impl TraceStats {
    /// Empty statistics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total send-class events (equals messages sent by the runtime).
    pub fn total_sends(&self) -> u64 {
        self.sends.total()
    }

    /// Fold another node's/run's statistics into this one.
    pub fn merge(&mut self, other: &TraceStats) {
        self.rules.merge(&other.rules);
        self.kinds.merge(&other.kinds);
        self.sends.merge(&other.sends);
        self.queue_depth.merge(&other.queue_depth);
        self.freeze_spans.merge(&other.freeze_spans);
        self.span_latency.merge(&other.span_latency);
        self.span_hops.merge(&other.span_hops);
    }

    /// Absorb one already-stamped record (used when replaying stored
    /// traces; live recording goes through [`Recorder::record`]).
    pub fn absorb(&mut self, r: &TraceRecord) {
        self.observe(r.at, r.lock, r.node, &r.event);
    }

    fn observe(&mut self, at: u64, lock: u32, node: u32, event: &ProtocolEvent) {
        // Request-span markers are observability metadata, not protocol
        // actions: they feed the span histograms but deliberately stay out
        // of the per-rule counters so differential fingerprints (golden
        // reports, model-check gates) are identical with tracing on or off.
        match event {
            ProtocolEvent::RequestStart { req, .. } => {
                self.kinds.add(event.kind(), 1);
                self.span_since.insert(*req, at);
                return;
            }
            ProtocolEvent::RequestHop { .. } => {
                self.kinds.add(event.kind(), 1);
                return;
            }
            ProtocolEvent::RequestGrant { req, hops } => {
                self.kinds.add(event.kind(), 1);
                if let Some(start) = self.span_since.remove(req) {
                    self.span_latency.record(at.saturating_sub(start));
                    self.span_hops.record(*hops as u64);
                }
                return;
            }
            _ => {}
        }
        self.rules.add(event.rule(), 1);
        self.kinds.add(event.kind(), 1);
        if let Some(class) = event.send_class() {
            self.sends.add(class.label(), 1);
        }
        match event {
            ProtocolEvent::RequestQueued { depth, .. } => {
                self.queue_depth.record(*depth as u64);
            }
            ProtocolEvent::Frozen { .. } => {
                self.freeze_since.insert((lock, node), at);
            }
            ProtocolEvent::Unfrozen => {
                if let Some(start) = self.freeze_since.remove(&(lock, node)) {
                    self.freeze_spans.record(at.saturating_sub(start));
                }
            }
            _ => {}
        }
    }
}

impl Recorder for TraceStats {
    fn record(&mut self, at: u64, lock: u32, node: u32, event: ProtocolEvent) {
        self.observe(at, lock, node, &event);
    }
}

/// Fan one event stream into two sinks (e.g. full records + statistics).
#[derive(Debug, Default)]
pub struct Tee<A, B>(pub A, pub B);

impl<A: Recorder, B: Recorder> Recorder for Tee<A, B> {
    fn record(&mut self, at: u64, lock: u32, node: u32, event: ProtocolEvent) {
        self.0.record(at, lock, node, event.clone());
        self.1.record(at, lock, node, event);
    }
}

/// Merge per-thread record streams into one trace ordered by `(at, node,
/// seq)` and renumbered with a global sequence. Used by the cluster runtime
/// at shutdown.
pub fn merge_records(streams: Vec<Vec<TraceRecord>>) -> Vec<TraceRecord> {
    let mut all: Vec<TraceRecord> = streams.into_iter().flatten().collect();
    all.sort_by_key(|r| (r.at, r.node, r.seq));
    for (i, r) in all.iter_mut().enumerate() {
        r.seq = i as u64;
    }
    all
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlm_modes::{Mode, ModeSet};

    fn ev_queue(depth: usize) -> ProtocolEvent {
        ProtocolEvent::RequestQueued {
            requester: 1,
            mode: Mode::Read,
            depth,
        }
    }

    #[test]
    fn ring_keeps_most_recent_and_counts_drops() {
        let mut ring = RingRecorder::new(2);
        for i in 0..5 {
            ring.record(i, 0, 0, ev_queue(i as usize));
        }
        assert_eq!(ring.dropped(), 3);
        assert_eq!(ring.recorded(), 5);
        let kept: Vec<u64> = ring.records().map(|r| r.seq).collect();
        assert_eq!(kept, vec![3, 4], "oldest evicted, seq keeps counting");
    }

    #[test]
    fn stats_count_rules_sends_and_depths() {
        let mut stats = TraceStats::new();
        stats.record(
            0,
            0,
            1,
            ProtocolEvent::ChildGrant {
                to: 2,
                mode: Mode::Read,
            },
        );
        stats.record(1, 0, 1, ev_queue(3));
        stats.record(2, 0, 1, ProtocolEvent::Upgraded);
        assert_eq!(stats.rules.get("rule3.1-child-grant"), 1);
        assert_eq!(stats.rules.get("rule7-upgrade"), 1);
        assert_eq!(stats.sends.get("grant"), 1);
        assert_eq!(stats.total_sends(), 1);
        assert_eq!(stats.queue_depth.count(), 1);
    }

    #[test]
    fn freeze_spans_pair_frozen_with_unfrozen() {
        let mut stats = TraceStats::new();
        let mut set = ModeSet::new();
        set.insert(Mode::Write);
        stats.record(100, 0, 4, ProtocolEvent::Frozen { modes: set });
        stats.record(160, 0, 4, ProtocolEvent::Unfrozen);
        assert_eq!(stats.freeze_spans.count(), 1);
        assert!(stats.freeze_spans.mean() >= 59.0);
    }

    #[test]
    fn request_spans_pair_start_with_grant_and_skip_rule_counters() {
        let mut stats = TraceStats::new();
        let req = (2u64 << 32) | 5;
        stats.record(
            100,
            0,
            2,
            ProtocolEvent::RequestStart {
                req,
                mode: Mode::Read,
                upgrade: false,
            },
        );
        stats.record(120, 0, 1, ProtocolEvent::RequestHop { req, hop: 1 });
        stats.record(150, 0, 2, ProtocolEvent::RequestGrant { req, hops: 2 });
        assert_eq!(stats.span_latency.count(), 1);
        assert_eq!(stats.span_latency.max(), 50);
        assert_eq!(stats.span_hops.max(), 2);
        assert_eq!(stats.kinds.get("request_start"), 1);
        assert_eq!(stats.kinds.get("request_hop"), 1);
        assert_eq!(stats.kinds.get("request_grant"), 1);
        // Span markers never touch the per-rule or send-class counters.
        assert_eq!(stats.rules.total(), 0);
        assert_eq!(stats.total_sends(), 0);
        // A grant without a matching start is ignored, not a panic.
        stats.record(160, 0, 3, ProtocolEvent::RequestGrant { req: 999, hops: 1 });
        assert_eq!(stats.span_latency.count(), 1);
    }

    #[test]
    fn tee_and_shared_recorders_compose() {
        let shared = Rc::new(RefCell::new(Tee(VecRecorder::new(), TraceStats::new())));
        let mut handle = Rc::clone(&shared);
        handle.record(5, 1, 2, ev_queue(1));
        let inner = shared.borrow();
        assert_eq!(inner.0.records.len(), 1);
        assert_eq!(inner.1.kinds.get("request_queued"), 1);
    }

    #[test]
    fn merge_orders_by_time_and_renumbers() {
        let a = {
            let mut r = VecRecorder::new();
            r.record(10, 0, 0, ev_queue(1));
            r.record(30, 0, 0, ProtocolEvent::Unfrozen);
            r.into_records()
        };
        let b = {
            let mut r = VecRecorder::new();
            r.record(20, 0, 1, ProtocolEvent::Upgraded);
            r.into_records()
        };
        let merged = merge_records(vec![a, b]);
        let ats: Vec<u64> = merged.iter().map(|r| r.at).collect();
        assert_eq!(ats, vec![10, 20, 30]);
        let seqs: Vec<u64> = merged.iter().map(|r| r.seq).collect();
        assert_eq!(seqs, vec![0, 1, 2]);
    }
}
