//! Structured protocol event tracing.
//!
//! The paper's evaluation is entirely about *why* messages happen — which of
//! the seven rules fired, when the token froze modes, when a request was
//! queued instead of forwarded. This crate defines the machine-readable
//! event stream that explains those decisions:
//!
//! * [`ProtocolEvent`] — one enum variant per interesting protocol action
//!   (rule firings, token transfer, path compression, queue churn), each
//!   classified by [`ProtocolEvent::rule`] and, for events that correspond
//!   1:1 to an outgoing message, [`ProtocolEvent::send_class`].
//! * [`Observer`] — the sink the `dlm-core` state machine emits into. The
//!   no-op [`NullObserver`] reports `enabled() == false`, so the hot path
//!   pays a single branch and never constructs an event.
//! * [`Recorder`] — a time-stamped, lock-scoped store of [`TraceRecord`]s:
//!   unbounded [`VecRecorder`], bounded [`RingRecorder`], statistics-only
//!   [`TraceStats`], and combinators ([`Tee`], `Rc<RefCell<_>>` sharing).
//! * [`jsonl`] — a line-oriented trace file format (one flat JSON object per
//!   record) with a reader, writer, and round-trip guarantees.
//!
//! The three runtimes stamp time differently: the lock-step testkit counts
//! delivery steps, the simulator uses virtual microseconds, and the cluster
//! uses wall-clock microseconds since runtime start. Everything downstream
//! (per-rule counters, causal-chain reconstruction, the `events` analysis
//! bin) is agnostic to which clock produced `at`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod event;
pub mod jsonl;
mod observer;
mod recorder;

pub use event::{ProtocolEvent, SendClass, TraceRecord};
pub use observer::{NullObserver, Observer, Stamp};
pub use recorder::{merge_records, Recorder, RingRecorder, Tee, TraceStats, VecRecorder};
