//! The protocol event vocabulary.

use dlm_modes::{Mode, ModeSet};
use serde::Serialize;

/// Which wire-message kind a send-class event corresponds to. The labels
/// match `dlm_core::MessageKind::label` so per-rule counters line up with
/// per-kind message counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize)]
pub enum SendClass {
    /// A `Request` frame (fresh, re-issued, or forwarded).
    Request,
    /// A `Grant` frame (Rule 3.1 child grant).
    Grant,
    /// A `Token` frame (ownership transfer).
    Token,
    /// A `Release` frame (Rule 5 weakening propagation).
    Release,
    /// A `SetFrozen` frame (Rule 6 freeze distribution).
    Freeze,
    /// A `Recover` frame (Rule R1 crash-recovery view change gossip).
    Recover,
}

impl SendClass {
    /// Stable label, matching `MessageKind::label`.
    pub fn label(self) -> &'static str {
        match self {
            SendClass::Request => "request",
            SendClass::Grant => "grant",
            SendClass::Token => "token",
            SendClass::Release => "release",
            SendClass::Freeze => "freeze",
            SendClass::Recover => "recover",
        }
    }
}

/// One structured protocol action, as observed at the emitting node.
///
/// Send-class variants (those with a [`ProtocolEvent::send_class`]) are
/// emitted exactly once per `Effect::Send` the state machine produces, so
/// counting them reproduces the runtime's message counter exactly.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub enum ProtocolEvent {
    /// Rule 1: this node sent its own (or its re-issued) request to its
    /// probable owner `to`.
    RequestSent {
        /// Receiver (current parent / probable owner).
        to: u32,
        /// Requested mode.
        mode: Mode,
        /// True when this request asks for the Rule 7 U→W upgrade.
        upgrade: bool,
    },
    /// Rule 4.1 decided *forward*: a child's request was passed up toward
    /// the token.
    RequestForwarded {
        /// Receiver (this node's parent).
        to: u32,
        /// The node whose request is being forwarded.
        requester: u32,
        /// Requested mode.
        mode: Mode,
    },
    /// Rule 4.1 decided *queue* (or the token node queued an incompatible
    /// request): the request joined this node's local queue.
    RequestQueued {
        /// The waiting node.
        requester: u32,
        /// Requested mode.
        mode: Mode,
        /// Queue length *after* insertion.
        depth: usize,
    },
    /// A queued request left this node's local queue to be served.
    QueueServed {
        /// The node whose request is now being served.
        requester: u32,
        /// Requested mode.
        mode: Mode,
        /// Queue length *after* removal.
        depth: usize,
    },
    /// Rule 3.1: this node granted a compatible copy to child `to` without
    /// surrendering the token.
    ChildGrant {
        /// The grantee child.
        to: u32,
        /// Granted mode.
        mode: Mode,
    },
    /// A request completed locally with zero or more messages: the node now
    /// holds `mode` (self-admit under Rule 2/3.2, or the final application
    /// of a remote grant/token).
    LocalGrant {
        /// The mode now held.
        mode: Mode,
    },
    /// A `Grant` frame arrived from `from` (triggers path compression:
    /// the granter becomes the new probable owner).
    GrantReceived {
        /// The granter.
        from: u32,
        /// Granted mode.
        mode: Mode,
    },
    /// Token transfer sent: ownership (queue + frozen set included) moved to
    /// `to`.
    TokenSent {
        /// The new token node.
        to: u32,
        /// Mode granted alongside the token.
        mode: Mode,
        /// Queued requests travelling with the token.
        queued: usize,
    },
    /// Token transfer received from `from`; this node is now the root.
    TokenReceived {
        /// The previous token node.
        from: u32,
        /// Queued requests that arrived with the token.
        queued: usize,
    },
    /// Rule 5: this node propagated a release/weakening to its parent.
    ReleaseSent {
        /// Receiver (parent).
        to: u32,
        /// The sender's new owned mode.
        new_owned: Mode,
        /// Release acknowledgement counter (stale-detection).
        ack: u64,
    },
    /// Rule 5: a child's release/weakening was applied (or detected stale
    /// and dropped).
    ReleaseApplied {
        /// The releasing child.
        from: u32,
        /// The child's new owned mode.
        new_owned: Mode,
        /// True when the release was stale and ignored.
        stale: bool,
    },
    /// Rule 6: this node's mode set froze (`modes` may no longer be granted
    /// locally until the token returns/unfreezes).
    Frozen {
        /// The frozen set.
        modes: ModeSet,
    },
    /// Rule 6: this node's frozen set cleared.
    Unfrozen,
    /// Rule 6: this node sent a `SetFrozen` frame to `to`.
    FreezeSent {
        /// Receiver.
        to: u32,
        /// The set being distributed (empty = unfreeze).
        modes: ModeSet,
    },
    /// Rule 7: this node began an in-place U→W upgrade.
    UpgradeStarted,
    /// Rule 7: the upgrade completed; the node now holds `W`.
    Upgraded,
    /// Path compression / probable-owner update: this node's parent pointer
    /// changed.
    ParentChanged {
        /// Previous parent (`None` = was root).
        old: Option<u32>,
        /// New parent (`None` = became root).
        new: Option<u32>,
    },
    /// Transport fault injection dropped a frame in flight (observed at the
    /// sending side; the lock id may be unknown to the transport).
    FrameDropped {
        /// Intended receiver.
        to: u32,
    },
    /// Reliability shim: an unacked frame's retransmission timer fired and
    /// the frame was sent again.
    Retransmit {
        /// Receiver.
        to: u32,
        /// Link-level sequence number of the retransmitted frame.
        seq: u64,
        /// Retransmission attempt (1 = first retransmit).
        attempt: u32,
    },
    /// Reliability shim: the receiver suppressed a duplicate of a frame it
    /// had already accepted.
    DupSuppressed {
        /// Sender of the duplicate.
        from: u32,
        /// The duplicate's link-level sequence number.
        seq: u64,
    },
    /// An incoming frame failed to decode and was dropped — counted, never
    /// fatal (a malformed peer must not take the node down).
    DecodeError {
        /// Claimed sender of the malformed frame.
        from: u32,
    },
    /// Request span opened: a client operation (acquire or upgrade) was
    /// issued and assigned a request id. Span events are observability
    /// markers, not protocol actions — they carry no rule counter and no
    /// send class, so differential fingerprints ignore them.
    RequestStart {
        /// Request id: `node << 32 | per-node counter`, unique per runtime.
        req: u64,
        /// Requested mode.
        mode: Mode,
        /// True for a Rule 7 U→W upgrade operation.
        upgrade: bool,
    },
    /// A correlated frame arrived at this node while request `req` was in
    /// flight: one network leg of the request's causal chain. `hop` is the
    /// frame's causal depth (1 = the requester's own first send).
    RequestHop {
        /// The request whose chain this frame belongs to.
        req: u64,
        /// Causal depth of the delivering frame.
        hop: u32,
    },
    /// Request span closed: the operation was granted. `hops` is the causal
    /// depth of the frame that delivered the grant (0 = local admit, no
    /// messages, or unknown — the simulator does not correlate frames).
    RequestGrant {
        /// The completed request.
        req: u64,
        /// Network legs on the granting chain.
        hops: u32,
    },
    /// Failure detection: the detector (heartbeat timeout, worker death or
    /// connection loss) declared `node` crashed and recovery is about to
    /// start.
    NodeSuspected {
        /// The node suspected of having crashed.
        node: u32,
    },
    /// Crash recovery (Rule R1): this node adopted a new generation number —
    /// every frame stamped with an older epoch is fenced from here on.
    EpochBump {
        /// The newly adopted epoch.
        epoch: u32,
    },
    /// Crash recovery (Rule R2): this node manufactured a replacement token
    /// for a lock whose token died with the crashed owner.
    TokenRegenerated {
        /// The epoch the regenerated token belongs to.
        epoch: u32,
    },
    /// Crash recovery (Rule R3): an incoming frame carried a stale (or
    /// future) epoch and was dropped instead of delivered.
    StaleEpochFenced {
        /// The frame's sender.
        from: u32,
        /// The epoch stamped on the fenced frame.
        epoch: u32,
    },
    /// Crash recovery (Rule R1): this node gossiped the view change to `to`.
    RecoverSent {
        /// Receiver of the gossip frame.
        to: u32,
        /// The epoch being announced.
        epoch: u32,
    },
}

impl ProtocolEvent {
    /// Stable snake_case discriminator (the JSONL `event` field).
    pub fn kind(&self) -> &'static str {
        match self {
            ProtocolEvent::RequestSent { .. } => "request_sent",
            ProtocolEvent::RequestForwarded { .. } => "request_forwarded",
            ProtocolEvent::RequestQueued { .. } => "request_queued",
            ProtocolEvent::QueueServed { .. } => "queue_served",
            ProtocolEvent::ChildGrant { .. } => "child_grant",
            ProtocolEvent::LocalGrant { .. } => "local_grant",
            ProtocolEvent::GrantReceived { .. } => "grant_received",
            ProtocolEvent::TokenSent { .. } => "token_sent",
            ProtocolEvent::TokenReceived { .. } => "token_received",
            ProtocolEvent::ReleaseSent { .. } => "release_sent",
            ProtocolEvent::ReleaseApplied { .. } => "release_applied",
            ProtocolEvent::Frozen { .. } => "frozen",
            ProtocolEvent::Unfrozen => "unfrozen",
            ProtocolEvent::FreezeSent { .. } => "freeze_sent",
            ProtocolEvent::UpgradeStarted => "upgrade_started",
            ProtocolEvent::Upgraded => "upgraded",
            ProtocolEvent::ParentChanged { .. } => "parent_changed",
            ProtocolEvent::FrameDropped { .. } => "frame_dropped",
            ProtocolEvent::Retransmit { .. } => "retransmit",
            ProtocolEvent::DupSuppressed { .. } => "dup_suppressed",
            ProtocolEvent::DecodeError { .. } => "decode_error",
            ProtocolEvent::RequestStart { .. } => "request_start",
            ProtocolEvent::RequestHop { .. } => "request_hop",
            ProtocolEvent::RequestGrant { .. } => "request_grant",
            ProtocolEvent::NodeSuspected { .. } => "node_suspected",
            ProtocolEvent::EpochBump { .. } => "epoch_bump",
            ProtocolEvent::TokenRegenerated { .. } => "token_regenerated",
            ProtocolEvent::StaleEpochFenced { .. } => "stale_epoch_fenced",
            ProtocolEvent::RecoverSent { .. } => "recover_sent",
        }
    }

    /// The paper rule (or protocol mechanism) this event belongs to.
    pub fn rule(&self) -> &'static str {
        match self {
            ProtocolEvent::RequestSent { .. } => "rule1-request",
            ProtocolEvent::RequestForwarded { .. } | ProtocolEvent::RequestQueued { .. } => {
                "rule4.1-queue-or-forward"
            }
            ProtocolEvent::QueueServed { .. } => "rule4.2-serve",
            ProtocolEvent::ChildGrant { .. } => "rule3.1-child-grant",
            ProtocolEvent::LocalGrant { .. } | ProtocolEvent::GrantReceived { .. } => {
                "rule2-local-admit"
            }
            ProtocolEvent::TokenSent { .. } | ProtocolEvent::TokenReceived { .. } => {
                "token-transfer"
            }
            ProtocolEvent::ReleaseSent { .. } | ProtocolEvent::ReleaseApplied { .. } => {
                "rule5-release"
            }
            ProtocolEvent::Frozen { .. }
            | ProtocolEvent::Unfrozen
            | ProtocolEvent::FreezeSent { .. } => "rule6-freeze",
            ProtocolEvent::UpgradeStarted | ProtocolEvent::Upgraded => "rule7-upgrade",
            ProtocolEvent::ParentChanged { .. } => "path-compression",
            ProtocolEvent::FrameDropped { .. }
            | ProtocolEvent::Retransmit { .. }
            | ProtocolEvent::DupSuppressed { .. }
            | ProtocolEvent::DecodeError { .. } => "transport-reliability",
            ProtocolEvent::RequestStart { .. }
            | ProtocolEvent::RequestHop { .. }
            | ProtocolEvent::RequestGrant { .. } => "request-span",
            ProtocolEvent::NodeSuspected { .. } => "recovery-detect",
            ProtocolEvent::EpochBump { .. }
            | ProtocolEvent::TokenRegenerated { .. }
            | ProtocolEvent::StaleEpochFenced { .. }
            | ProtocolEvent::RecoverSent { .. } => "recovery-epoch",
        }
    }

    /// `Some(class)` iff this event corresponds 1:1 to an outgoing message.
    pub fn send_class(&self) -> Option<SendClass> {
        match self {
            ProtocolEvent::RequestSent { .. } | ProtocolEvent::RequestForwarded { .. } => {
                Some(SendClass::Request)
            }
            ProtocolEvent::ChildGrant { .. } => Some(SendClass::Grant),
            ProtocolEvent::TokenSent { .. } => Some(SendClass::Token),
            ProtocolEvent::ReleaseSent { .. } => Some(SendClass::Release),
            ProtocolEvent::FreezeSent { .. } => Some(SendClass::Freeze),
            ProtocolEvent::RecoverSent { .. } => Some(SendClass::Recover),
            _ => None,
        }
    }

    /// The peer this event names, if any (receiver for sends, sender for
    /// receives, requester for queue events).
    pub fn peer(&self) -> Option<u32> {
        match self {
            ProtocolEvent::RequestSent { to, .. }
            | ProtocolEvent::RequestForwarded { to, .. }
            | ProtocolEvent::ChildGrant { to, .. }
            | ProtocolEvent::TokenSent { to, .. }
            | ProtocolEvent::ReleaseSent { to, .. }
            | ProtocolEvent::FreezeSent { to, .. } => Some(*to),
            ProtocolEvent::GrantReceived { from, .. }
            | ProtocolEvent::TokenReceived { from, .. }
            | ProtocolEvent::ReleaseApplied { from, .. } => Some(*from),
            ProtocolEvent::RequestQueued { requester, .. }
            | ProtocolEvent::QueueServed { requester, .. } => Some(*requester),
            ProtocolEvent::FrameDropped { to } | ProtocolEvent::Retransmit { to, .. } => Some(*to),
            ProtocolEvent::DupSuppressed { from, .. } | ProtocolEvent::DecodeError { from } => {
                Some(*from)
            }
            ProtocolEvent::NodeSuspected { node } => Some(*node),
            ProtocolEvent::StaleEpochFenced { from, .. } => Some(*from),
            ProtocolEvent::RecoverSent { to, .. } => Some(*to),
            _ => None,
        }
    }
}

/// One fully-stamped trace entry.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct TraceRecord {
    /// Monotone per-recorder sequence number (total order within a node
    /// thread; merge order across threads).
    pub seq: u64,
    /// Timestamp: delivery steps (testkit), virtual µs (sim), or wall-clock
    /// µs since runtime start (cluster).
    pub at: u64,
    /// The node that observed the event.
    pub node: u32,
    /// The lock the event belongs to.
    pub lock: u32,
    /// What happened.
    pub event: ProtocolEvent,
}

/// One of every variant — test fixture shared with the JSONL round-trip
/// tests.
#[cfg(test)]
pub(crate) fn one_of_each() -> Vec<ProtocolEvent> {
    let mut frozen = ModeSet::new();
    frozen.insert(Mode::Read);
    frozen.insert(Mode::Upgrade);
    vec![
        ProtocolEvent::RequestSent {
            to: 0,
            mode: Mode::Read,
            upgrade: false,
        },
        ProtocolEvent::RequestForwarded {
            to: 1,
            requester: 3,
            mode: Mode::Write,
        },
        ProtocolEvent::RequestQueued {
            requester: 2,
            mode: Mode::IntentWrite,
            depth: 2,
        },
        ProtocolEvent::QueueServed {
            requester: 2,
            mode: Mode::IntentWrite,
            depth: 1,
        },
        ProtocolEvent::ChildGrant {
            to: 4,
            mode: Mode::IntentRead,
        },
        ProtocolEvent::LocalGrant {
            mode: Mode::Upgrade,
        },
        ProtocolEvent::GrantReceived {
            from: 0,
            mode: Mode::Read,
        },
        ProtocolEvent::TokenSent {
            to: 5,
            mode: Mode::Write,
            queued: 3,
        },
        ProtocolEvent::TokenReceived { from: 0, queued: 3 },
        ProtocolEvent::ReleaseSent {
            to: 0,
            new_owned: Mode::NoLock,
            ack: 7,
        },
        ProtocolEvent::ReleaseApplied {
            from: 2,
            new_owned: Mode::IntentRead,
            stale: true,
        },
        ProtocolEvent::Frozen { modes: frozen },
        ProtocolEvent::Unfrozen,
        ProtocolEvent::FreezeSent {
            to: 1,
            modes: ModeSet::new(),
        },
        ProtocolEvent::UpgradeStarted,
        ProtocolEvent::Upgraded,
        ProtocolEvent::ParentChanged {
            old: Some(0),
            new: None,
        },
        ProtocolEvent::FrameDropped { to: 2 },
        ProtocolEvent::Retransmit {
            to: 2,
            seq: 41,
            attempt: 3,
        },
        ProtocolEvent::DupSuppressed { from: 1, seq: 40 },
        ProtocolEvent::DecodeError { from: 6 },
        ProtocolEvent::RequestStart {
            req: (3u64 << 32) | 17,
            mode: Mode::Write,
            upgrade: false,
        },
        ProtocolEvent::RequestHop {
            req: (3u64 << 32) | 17,
            hop: 2,
        },
        ProtocolEvent::RequestGrant {
            req: (3u64 << 32) | 17,
            hops: 3,
        },
        ProtocolEvent::NodeSuspected { node: 4 },
        ProtocolEvent::EpochBump { epoch: 2 },
        ProtocolEvent::TokenRegenerated { epoch: 2 },
        ProtocolEvent::StaleEpochFenced { from: 4, epoch: 1 },
        ProtocolEvent::RecoverSent { to: 1, epoch: 2 },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_are_unique() {
        let events = one_of_each();
        let kinds: std::collections::BTreeSet<_> = events.iter().map(|e| e.kind()).collect();
        assert_eq!(kinds.len(), events.len());
    }

    #[test]
    fn send_classes_cover_every_message_kind() {
        let classes: std::collections::BTreeSet<_> = one_of_each()
            .iter()
            .filter_map(|e| e.send_class())
            .collect();
        assert_eq!(
            classes.len(),
            6,
            "request/grant/token/release/freeze/recover"
        );
    }

    #[test]
    fn every_event_has_a_rule() {
        for e in one_of_each() {
            assert!(!e.rule().is_empty(), "{:?}", e);
        }
    }
}
