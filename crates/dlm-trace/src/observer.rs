//! The emission side: what the protocol state machine talks to.

use crate::event::ProtocolEvent;
use crate::recorder::Recorder;

/// Sink for protocol events, threaded through the `dlm-core` entry points.
///
/// The contract that keeps tracing off the hot path: emitters must guard
/// event *construction* behind [`Observer::enabled`], so a disabled observer
/// costs exactly one branch per potential event:
///
/// ```ignore
/// if obs.enabled() {
///     obs.emit(node, ProtocolEvent::ChildGrant { to, mode });
/// }
/// ```
pub trait Observer {
    /// False for sinks that discard everything — callers skip event
    /// construction entirely.
    fn enabled(&self) -> bool {
        true
    }

    /// Record `event`, observed at `node`. Only called when
    /// [`Observer::enabled`] is true.
    fn emit(&mut self, node: u32, event: ProtocolEvent);
}

/// The disabled observer: `enabled()` is false and `emit` unreachable in
/// practice (a no-op if called anyway).
#[derive(Debug, Clone, Copy, Default)]
pub struct NullObserver;

impl Observer for NullObserver {
    fn enabled(&self) -> bool {
        false
    }

    fn emit(&mut self, _node: u32, _event: ProtocolEvent) {}
}

/// Binds a clock reading and a lock id to a [`Recorder`], yielding the
/// [`Observer`] a single protocol operation emits into.
///
/// Runtimes build one per entry-point call (it is two words), reading their
/// clock once: the testkit stamps delivery steps, the simulator virtual
/// time, the cluster wall-clock micros.
pub struct Stamp<'a> {
    /// Timestamp every event of this operation carries.
    pub at: u64,
    /// The lock the driven `HierNode` instance belongs to.
    pub lock: u32,
    /// Where records go.
    pub sink: &'a mut dyn Recorder,
}

impl Observer for Stamp<'_> {
    fn emit(&mut self, node: u32, event: ProtocolEvent) {
        self.sink.record(self.at, self.lock, node, event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::VecRecorder;
    use dlm_modes::Mode;

    #[test]
    fn null_observer_is_disabled() {
        let mut obs = NullObserver;
        assert!(!obs.enabled());
        obs.emit(0, ProtocolEvent::Upgraded); // must be harmless
    }

    #[test]
    fn stamp_binds_time_and_lock() {
        let mut rec = VecRecorder::new();
        {
            let mut obs = Stamp {
                at: 42,
                lock: 3,
                sink: &mut rec,
            };
            assert!(obs.enabled());
            obs.emit(7, ProtocolEvent::LocalGrant { mode: Mode::Read });
        }
        assert_eq!(rec.records.len(), 1);
        let r = &rec.records[0];
        assert_eq!((r.at, r.lock, r.node, r.seq), (42, 3, 7, 0));
    }
}
