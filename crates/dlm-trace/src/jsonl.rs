//! JSONL trace format: one flat JSON object per record, hand-rolled.
//!
//! The build environment is offline, so no `serde_json`; the format is
//! deliberately flat (string/integer/bool/null values only, no nesting) and
//! both directions live here, covered by round-trip tests over every
//! [`ProtocolEvent`] variant.
//!
//! Example line:
//!
//! ```text
//! {"seq":12,"at":4500,"node":3,"lock":0,"event":"token_sent","to":1,"mode":"W","queued":2}
//! ```
//!
//! Modes use the paper's short names (`IR`, `W`, …); mode sets join them
//! with `|` (`"R|U"`, empty string for the empty set); absent optional
//! parents are `null`.

use crate::event::{ProtocolEvent, TraceRecord};
use dlm_modes::{Mode, ModeSet};
use std::collections::BTreeMap;
use std::io::{self, BufRead, Write};

/// Errors raised while parsing a JSONL trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// Malformed JSON on `line` (1-based).
    Json {
        /// 1-based line number of the offending input line.
        line: usize,
        /// What the tokenizer rejected.
        reason: String,
    },
    /// Structurally valid JSON that is not a valid trace record.
    Record {
        /// 1-based line number of the offending input line.
        line: usize,
        /// Which field was missing or malformed.
        reason: String,
    },
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::Json { line, reason } => write!(f, "line {line}: bad JSON: {reason}"),
            ParseError::Record { line, reason } => write!(f, "line {line}: bad record: {reason}"),
        }
    }
}

impl std::error::Error for ParseError {}

// ---------------------------------------------------------------- writing

fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

/// Incremental flat-object builder.
struct Obj(String);

impl Obj {
    fn new() -> Self {
        Obj(String::from("{"))
    }

    fn sep(&mut self) {
        if self.0.len() > 1 {
            self.0.push(',');
        }
    }

    fn num(&mut self, key: &str, v: u64) -> &mut Self {
        self.sep();
        self.0.push_str(&format!("\"{key}\":{v}"));
        self
    }

    fn boolean(&mut self, key: &str, v: bool) -> &mut Self {
        self.sep();
        self.0.push_str(&format!("\"{key}\":{v}"));
        self
    }

    fn str(&mut self, key: &str, v: &str) -> &mut Self {
        self.sep();
        self.0.push_str(&format!("\"{key}\":\""));
        escape_into(&mut self.0, v);
        self.0.push('"');
        self
    }

    fn opt_num(&mut self, key: &str, v: Option<u32>) -> &mut Self {
        match v {
            Some(n) => self.num(key, n as u64),
            None => {
                self.sep();
                self.0.push_str(&format!("\"{key}\":null"));
                self
            }
        }
    }

    fn finish(mut self) -> String {
        self.0.push('}');
        self.0
    }
}

fn modeset_to_string(set: ModeSet) -> String {
    set.iter()
        .map(Mode::short_name)
        .collect::<Vec<_>>()
        .join("|")
}

/// Render one record as a single JSON line (no trailing newline).
pub fn record_to_json(r: &TraceRecord) -> String {
    let mut o = Obj::new();
    o.num("seq", r.seq)
        .num("at", r.at)
        .num("node", r.node as u64)
        .num("lock", r.lock as u64)
        .str("event", r.event.kind());
    match &r.event {
        ProtocolEvent::RequestSent { to, mode, upgrade } => {
            o.num("to", *to as u64)
                .str("mode", mode.short_name())
                .boolean("upgrade", *upgrade);
        }
        ProtocolEvent::RequestForwarded {
            to,
            requester,
            mode,
        } => {
            o.num("to", *to as u64)
                .num("requester", *requester as u64)
                .str("mode", mode.short_name());
        }
        ProtocolEvent::RequestQueued {
            requester,
            mode,
            depth,
        }
        | ProtocolEvent::QueueServed {
            requester,
            mode,
            depth,
        } => {
            o.num("requester", *requester as u64)
                .str("mode", mode.short_name())
                .num("depth", *depth as u64);
        }
        ProtocolEvent::ChildGrant { to, mode } => {
            o.num("to", *to as u64).str("mode", mode.short_name());
        }
        ProtocolEvent::LocalGrant { mode } => {
            o.str("mode", mode.short_name());
        }
        ProtocolEvent::GrantReceived { from, mode } => {
            o.num("from", *from as u64).str("mode", mode.short_name());
        }
        ProtocolEvent::TokenSent { to, mode, queued } => {
            o.num("to", *to as u64)
                .str("mode", mode.short_name())
                .num("queued", *queued as u64);
        }
        ProtocolEvent::TokenReceived { from, queued } => {
            o.num("from", *from as u64).num("queued", *queued as u64);
        }
        ProtocolEvent::ReleaseSent { to, new_owned, ack } => {
            o.num("to", *to as u64)
                .str("new_owned", new_owned.short_name())
                .num("ack", *ack);
        }
        ProtocolEvent::ReleaseApplied {
            from,
            new_owned,
            stale,
        } => {
            o.num("from", *from as u64)
                .str("new_owned", new_owned.short_name())
                .boolean("stale", *stale);
        }
        ProtocolEvent::Frozen { modes } => {
            o.str("modes", &modeset_to_string(*modes));
        }
        ProtocolEvent::Unfrozen | ProtocolEvent::UpgradeStarted | ProtocolEvent::Upgraded => {}
        ProtocolEvent::FreezeSent { to, modes } => {
            o.num("to", *to as u64)
                .str("modes", &modeset_to_string(*modes));
        }
        ProtocolEvent::ParentChanged { old, new } => {
            o.opt_num("old", *old).opt_num("new", *new);
        }
        ProtocolEvent::FrameDropped { to } => {
            o.num("to", *to as u64);
        }
        ProtocolEvent::Retransmit { to, seq, attempt } => {
            o.num("to", *to as u64)
                .num("link_seq", *seq)
                .num("attempt", *attempt as u64);
        }
        ProtocolEvent::DupSuppressed { from, seq } => {
            o.num("from", *from as u64).num("link_seq", *seq);
        }
        ProtocolEvent::DecodeError { from } => {
            o.num("from", *from as u64);
        }
        ProtocolEvent::RequestStart { req, mode, upgrade } => {
            o.num("req", *req)
                .str("mode", mode.short_name())
                .boolean("upgrade", *upgrade);
        }
        ProtocolEvent::RequestHop { req, hop } => {
            o.num("req", *req).num("hop", *hop as u64);
        }
        ProtocolEvent::RequestGrant { req, hops } => {
            o.num("req", *req).num("hops", *hops as u64);
        }
        ProtocolEvent::NodeSuspected { node } => {
            o.num("suspect", *node as u64);
        }
        ProtocolEvent::EpochBump { epoch } | ProtocolEvent::TokenRegenerated { epoch } => {
            o.num("epoch", *epoch as u64);
        }
        ProtocolEvent::StaleEpochFenced { from, epoch } => {
            o.num("from", *from as u64).num("epoch", *epoch as u64);
        }
        ProtocolEvent::RecoverSent { to, epoch } => {
            o.num("to", *to as u64).num("epoch", *epoch as u64);
        }
    }
    o.finish()
}

/// Write `records` as JSONL.
pub fn write_jsonl<W: Write>(mut w: W, records: &[TraceRecord]) -> io::Result<()> {
    for r in records {
        writeln!(w, "{}", record_to_json(r))?;
    }
    Ok(())
}

// ---------------------------------------------------------------- parsing

/// A parsed flat JSON value.
#[derive(Debug, Clone, PartialEq)]
enum Val {
    Num(u64),
    Str(String),
    Bool(bool),
    Null,
}

/// Parse a flat JSON object (string/unsigned-integer/bool/null values only).
fn parse_flat_object(s: &str) -> Result<BTreeMap<String, Val>, String> {
    let mut out = BTreeMap::new();
    let mut chars = s.trim().chars().peekable();
    let expect =
        |chars: &mut std::iter::Peekable<std::str::Chars>, want: char| -> Result<(), String> {
            match chars.next() {
                Some(c) if c == want => Ok(()),
                other => Err(format!("expected {want:?}, got {other:?}")),
            }
        };
    let skip_ws = |chars: &mut std::iter::Peekable<std::str::Chars>| {
        while matches!(chars.peek(), Some(c) if c.is_whitespace()) {
            chars.next();
        }
    };
    fn parse_string(chars: &mut std::iter::Peekable<std::str::Chars>) -> Result<String, String> {
        let mut s = String::new();
        loop {
            match chars.next() {
                Some('"') => return Ok(s),
                Some('\\') => match chars.next() {
                    Some('"') => s.push('"'),
                    Some('\\') => s.push('\\'),
                    Some('n') => s.push('\n'),
                    Some('t') => s.push('\t'),
                    Some('r') => s.push('\r'),
                    Some('u') => {
                        let hex: String = (0..4).filter_map(|_| chars.next()).collect();
                        let code = u32::from_str_radix(&hex, 16)
                            .map_err(|_| format!("bad \\u escape {hex:?}"))?;
                        s.push(char::from_u32(code).ok_or("bad codepoint")?);
                    }
                    other => return Err(format!("bad escape {other:?}")),
                },
                Some(c) => s.push(c),
                None => return Err("unterminated string".into()),
            }
        }
    }
    skip_ws(&mut chars);
    expect(&mut chars, '{')?;
    skip_ws(&mut chars);
    if chars.peek() == Some(&'}') {
        chars.next();
        return Ok(out);
    }
    loop {
        skip_ws(&mut chars);
        expect(&mut chars, '"')?;
        let key = parse_string(&mut chars)?;
        skip_ws(&mut chars);
        expect(&mut chars, ':')?;
        skip_ws(&mut chars);
        let val = match chars.peek() {
            Some('"') => {
                chars.next();
                Val::Str(parse_string(&mut chars)?)
            }
            Some('t') => {
                for want in "true".chars() {
                    expect(&mut chars, want)?;
                }
                Val::Bool(true)
            }
            Some('f') => {
                for want in "false".chars() {
                    expect(&mut chars, want)?;
                }
                Val::Bool(false)
            }
            Some('n') => {
                for want in "null".chars() {
                    expect(&mut chars, want)?;
                }
                Val::Null
            }
            Some(c) if c.is_ascii_digit() => {
                let mut digits = String::new();
                while matches!(chars.peek(), Some(c) if c.is_ascii_digit()) {
                    digits.push(chars.next().expect("peeked"));
                }
                Val::Num(
                    digits
                        .parse()
                        .map_err(|_| format!("bad number {digits:?}"))?,
                )
            }
            other => return Err(format!("unexpected value start {other:?}")),
        };
        out.insert(key, val);
        skip_ws(&mut chars);
        match chars.next() {
            Some(',') => continue,
            Some('}') => break,
            other => return Err(format!("expected ',' or '}}', got {other:?}")),
        }
    }
    skip_ws(&mut chars);
    if let Some(extra) = chars.next() {
        return Err(format!("trailing content starting at {extra:?}"));
    }
    Ok(out)
}

struct Fields<'a> {
    map: &'a BTreeMap<String, Val>,
}

impl Fields<'_> {
    fn num(&self, key: &str) -> Result<u64, String> {
        match self.map.get(key) {
            Some(Val::Num(n)) => Ok(*n),
            other => Err(format!("field {key:?}: expected number, got {other:?}")),
        }
    }

    fn u32(&self, key: &str) -> Result<u32, String> {
        u32::try_from(self.num(key)?).map_err(|_| format!("field {key:?}: out of u32 range"))
    }

    fn usize(&self, key: &str) -> Result<usize, String> {
        usize::try_from(self.num(key)?).map_err(|_| format!("field {key:?}: out of range"))
    }

    fn boolean(&self, key: &str) -> Result<bool, String> {
        match self.map.get(key) {
            Some(Val::Bool(b)) => Ok(*b),
            other => Err(format!("field {key:?}: expected bool, got {other:?}")),
        }
    }

    fn str(&self, key: &str) -> Result<&str, String> {
        match self.map.get(key) {
            Some(Val::Str(s)) => Ok(s),
            other => Err(format!("field {key:?}: expected string, got {other:?}")),
        }
    }

    fn mode(&self, key: &str) -> Result<Mode, String> {
        let s = self.str(key)?;
        Mode::from_short_name(s).ok_or_else(|| format!("field {key:?}: unknown mode {s:?}"))
    }

    fn modeset(&self, key: &str) -> Result<ModeSet, String> {
        let s = self.str(key)?;
        let mut set = ModeSet::new();
        for part in s.split('|').filter(|p| !p.is_empty()) {
            set.insert(
                Mode::from_short_name(part)
                    .ok_or_else(|| format!("field {key:?}: unknown mode {part:?}"))?,
            );
        }
        Ok(set)
    }

    fn opt_u32(&self, key: &str) -> Result<Option<u32>, String> {
        match self.map.get(key) {
            Some(Val::Null) | None => Ok(None),
            Some(Val::Num(n)) => u32::try_from(*n)
                .map(Some)
                .map_err(|_| format!("field {key:?}: out of u32 range")),
            other => Err(format!(
                "field {key:?}: expected number|null, got {other:?}"
            )),
        }
    }
}

/// Parse one JSONL line into a record.
pub fn parse_record(line: &str) -> Result<TraceRecord, String> {
    let map = parse_flat_object(line)?;
    let f = Fields { map: &map };
    let kind = f.str("event")?.to_string();
    let event = match kind.as_str() {
        "request_sent" => ProtocolEvent::RequestSent {
            to: f.u32("to")?,
            mode: f.mode("mode")?,
            upgrade: f.boolean("upgrade")?,
        },
        "request_forwarded" => ProtocolEvent::RequestForwarded {
            to: f.u32("to")?,
            requester: f.u32("requester")?,
            mode: f.mode("mode")?,
        },
        "request_queued" => ProtocolEvent::RequestQueued {
            requester: f.u32("requester")?,
            mode: f.mode("mode")?,
            depth: f.usize("depth")?,
        },
        "queue_served" => ProtocolEvent::QueueServed {
            requester: f.u32("requester")?,
            mode: f.mode("mode")?,
            depth: f.usize("depth")?,
        },
        "child_grant" => ProtocolEvent::ChildGrant {
            to: f.u32("to")?,
            mode: f.mode("mode")?,
        },
        "local_grant" => ProtocolEvent::LocalGrant {
            mode: f.mode("mode")?,
        },
        "grant_received" => ProtocolEvent::GrantReceived {
            from: f.u32("from")?,
            mode: f.mode("mode")?,
        },
        "token_sent" => ProtocolEvent::TokenSent {
            to: f.u32("to")?,
            mode: f.mode("mode")?,
            queued: f.usize("queued")?,
        },
        "token_received" => ProtocolEvent::TokenReceived {
            from: f.u32("from")?,
            queued: f.usize("queued")?,
        },
        "release_sent" => ProtocolEvent::ReleaseSent {
            to: f.u32("to")?,
            new_owned: f.mode("new_owned")?,
            ack: f.num("ack")?,
        },
        "release_applied" => ProtocolEvent::ReleaseApplied {
            from: f.u32("from")?,
            new_owned: f.mode("new_owned")?,
            stale: f.boolean("stale")?,
        },
        "frozen" => ProtocolEvent::Frozen {
            modes: f.modeset("modes")?,
        },
        "unfrozen" => ProtocolEvent::Unfrozen,
        "freeze_sent" => ProtocolEvent::FreezeSent {
            to: f.u32("to")?,
            modes: f.modeset("modes")?,
        },
        "upgrade_started" => ProtocolEvent::UpgradeStarted,
        "upgraded" => ProtocolEvent::Upgraded,
        "parent_changed" => ProtocolEvent::ParentChanged {
            old: f.opt_u32("old")?,
            new: f.opt_u32("new")?,
        },
        "frame_dropped" => ProtocolEvent::FrameDropped { to: f.u32("to")? },
        "retransmit" => ProtocolEvent::Retransmit {
            to: f.u32("to")?,
            seq: f.num("link_seq")?,
            attempt: f.u32("attempt")?,
        },
        "dup_suppressed" => ProtocolEvent::DupSuppressed {
            from: f.u32("from")?,
            seq: f.num("link_seq")?,
        },
        "decode_error" => ProtocolEvent::DecodeError {
            from: f.u32("from")?,
        },
        "request_start" => ProtocolEvent::RequestStart {
            req: f.num("req")?,
            mode: f.mode("mode")?,
            upgrade: f.boolean("upgrade")?,
        },
        "request_hop" => ProtocolEvent::RequestHop {
            req: f.num("req")?,
            hop: f.u32("hop")?,
        },
        "request_grant" => ProtocolEvent::RequestGrant {
            req: f.num("req")?,
            hops: f.u32("hops")?,
        },
        "node_suspected" => ProtocolEvent::NodeSuspected {
            node: f.u32("suspect")?,
        },
        "epoch_bump" => ProtocolEvent::EpochBump {
            epoch: f.u32("epoch")?,
        },
        "token_regenerated" => ProtocolEvent::TokenRegenerated {
            epoch: f.u32("epoch")?,
        },
        "stale_epoch_fenced" => ProtocolEvent::StaleEpochFenced {
            from: f.u32("from")?,
            epoch: f.u32("epoch")?,
        },
        "recover_sent" => ProtocolEvent::RecoverSent {
            to: f.u32("to")?,
            epoch: f.u32("epoch")?,
        },
        other => return Err(format!("unknown event kind {other:?}")),
    };
    Ok(TraceRecord {
        seq: f.num("seq")?,
        at: f.num("at")?,
        node: f.u32("node")?,
        lock: f.u32("lock")?,
        event,
    })
}

/// Read a whole JSONL trace (blank lines ignored).
pub fn read_jsonl<R: BufRead>(r: R) -> Result<Vec<TraceRecord>, ParseError> {
    let mut out = Vec::new();
    for (i, line) in r.lines().enumerate() {
        let line = line.map_err(|e| ParseError::Json {
            line: i + 1,
            reason: e.to_string(),
        })?;
        if line.trim().is_empty() {
            continue;
        }
        out.push(parse_record(&line).map_err(|reason| ParseError::Record {
            line: i + 1,
            reason,
        })?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::one_of_each;

    #[test]
    fn round_trip_every_variant() {
        let records: Vec<TraceRecord> = one_of_each()
            .into_iter()
            .enumerate()
            .map(|(i, event)| TraceRecord {
                seq: i as u64,
                at: 1000 + i as u64,
                node: i as u32 % 5,
                lock: i as u32 % 3,
                event,
            })
            .collect();
        let mut buf = Vec::new();
        write_jsonl(&mut buf, &records).expect("write to vec");
        let text = String::from_utf8(buf).expect("utf8");
        let back = read_jsonl(text.as_bytes()).expect("parse back");
        assert_eq!(back, records);
    }

    #[test]
    fn lines_are_flat_single_objects() {
        let records: Vec<TraceRecord> = one_of_each()
            .into_iter()
            .map(|event| TraceRecord {
                seq: 0,
                at: 0,
                node: 0,
                lock: 0,
                event,
            })
            .collect();
        for r in &records {
            let line = record_to_json(r);
            assert!(line.starts_with('{') && line.ends_with('}'));
            assert!(!line.contains('\n'));
            // Flat: no nested objects or arrays.
            assert_eq!(line.matches('{').count(), 1, "{line}");
            assert!(!line.contains('['), "{line}");
        }
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse_record("not json").is_err());
        assert!(parse_record("{}").is_err());
        assert!(parse_record(r#"{"seq":0,"at":0,"node":0,"lock":0,"event":"nope"}"#).is_err());
        assert!(parse_record(
            r#"{"seq":0,"at":0,"node":0,"lock":0,"event":"local_grant","mode":"XX"}"#
        )
        .is_err());
        let err = read_jsonl("{\"seq\":0}\n".as_bytes());
        assert!(matches!(err, Err(ParseError::Record { line: 1, .. })));
    }

    #[test]
    fn blank_lines_are_skipped() {
        let rec = TraceRecord {
            seq: 9,
            at: 8,
            node: 7,
            lock: 6,
            event: ProtocolEvent::Unfrozen,
        };
        let text = format!("\n{}\n\n", record_to_json(&rec));
        let back = read_jsonl(text.as_bytes()).expect("parse");
        assert_eq!(back, vec![rec]);
    }

    #[test]
    fn string_escaping_round_trips() {
        // The format never emits exotic strings today, but the writer/parser
        // pair must still agree on escapes.
        let mut s = String::new();
        super::escape_into(&mut s, "a\"b\\c\nd\te\u{1}");
        assert_eq!(s, "a\\\"b\\\\c\\nd\\te\\u0001");
        let parsed = super::parse_flat_object(&format!("{{\"k\":\"{s}\"}}")).expect("parse");
        assert_eq!(
            parsed.get("k"),
            Some(&Val::Str("a\"b\\c\nd\te\u{1}".into()))
        );
    }
}
