//! Persisted benchmark baseline: measures the hot paths the Criterion
//! benches cover, but as a small fixed suite whose results are written to
//! `BENCH_sim.json` at the repo root — the machine-readable perf trajectory
//! successive PRs are judged against.
//!
//! Usage: `cargo run --release -p bench --bin bench [-- <out-path>]`
//! `BENCH_SMOKE=1` shrinks every budget for CI smoke runs.

use bench::{
    churn, cluster_roundtrips, copyset_churn, effectbuf_alloc_run, effectbuf_reuse_run, flood_run,
    freeze_lut_run, freeze_scan_run, recovery_latency_run, sample_messages, socket_roundtrips,
    socket_workload_run,
};
use dlm_cluster::codec::{decode, encode_into};
use dlm_cluster::{ClusterConfig, FaultConfig, ReliableConfig, TransportKind};
use dlm_core::Mode;
use dlm_workload::{run_workload, ProtocolKind, WorkloadParams};
use std::fmt::Write as _;
use std::time::Instant;

/// Best-of-`reps` wall-clock of `f`, in nanoseconds.
fn best_ns(reps: u32, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let start = Instant::now();
        f();
        best = best.min(start.elapsed().as_nanos() as f64);
    }
    best
}

fn figure_point(nodes: usize, protocol: ProtocolKind, ops: u32) -> WorkloadParams {
    let mut p = WorkloadParams::linux_cluster(nodes, protocol);
    p.ops_per_node = ops;
    p
}

fn main() {
    let out = std::env::args()
        .nth(1)
        .unwrap_or_else(|| format!("{}/../../BENCH_sim.json", env!("CARGO_MANIFEST_DIR")));
    let smoke = std::env::var("BENCH_SMOKE").is_ok_and(|v| v != "0");
    let (flood_budget, reps, ops) = if smoke {
        (100_000u64, 2u32, 5u32)
    } else {
        (1_000_000, 3, 15)
    };

    let mut results: Vec<(String, f64)> = Vec::new();

    // 1. Raw event-loop throughput: a message flood where per-event work is
    //    a counter bump and a re-send, so the engine dominates.
    for n in [8usize, 64] {
        let ns = best_ns(reps, || {
            let stats = flood_run(n, 4, flood_budget);
            assert_eq!(stats.messages_delivered + stats.timers_fired, flood_budget);
        });
        let events_per_sec = flood_budget as f64 / (ns / 1e9);
        results.push((format!("sim_flood_n{n}_events_per_sec"), events_per_sec));
    }

    // 2. Wire codec: ns per frame over one frame of every message shape,
    //    with the runtime's reusable encode buffer.
    {
        let msgs = sample_messages();
        let frames: Vec<_> = {
            let mut scratch = bytes::BytesMut::with_capacity(64);
            msgs.iter()
                .map(|(l, m)| encode_into(*l, m, &mut scratch))
                .collect()
        };
        let iters = if smoke { 20_000 } else { 200_000 };
        let ns = best_ns(reps, || {
            let mut scratch = bytes::BytesMut::with_capacity(64);
            for _ in 0..iters {
                for (l, m) in &msgs {
                    std::hint::black_box(encode_into(*l, m, &mut scratch));
                }
            }
        });
        results.push((
            "codec_encode_ns_per_frame".into(),
            ns / (iters as f64 * msgs.len() as f64),
        ));
        let ns = best_ns(reps, || {
            for _ in 0..iters {
                for f in &frames {
                    std::hint::black_box(decode(f.clone()).unwrap());
                }
            }
        });
        results.push((
            "codec_decode_ns_per_frame".into(),
            ns / (iters as f64 * frames.len() as f64),
        ));
    }

    // 3. Per-mode protocol churn on the lock-step runtime (state machine +
    //    table lookups, no simulator). These are the numbers the CI perf
    //    gate compares against the committed baseline, so they keep their
    //    full budget even under BENCH_SMOKE (a few ms total — short runs
    //    never warm up and would not be comparable) and use a larger rep
    //    count: best-of-N is a tighter estimator of the achievable minimum
    //    under scheduler noise.
    for (label, mode) in [
        ("ir", Mode::IntentRead),
        ("r", Mode::Read),
        ("w", Mode::Write),
    ] {
        let rounds = 2_000;
        let ns = best_ns(7, || {
            std::hint::black_box(churn(rounds, mode));
        });
        results.push((format!("churn_{label}_ns_per_op"), ns / rounds as f64));
    }

    // 3b. Core-level microbenches: what the zero-allocation plumbing buys.
    {
        let rounds = if smoke { 5_000 } else { 50_000 };
        let ns = best_ns(reps, || {
            std::hint::black_box(effectbuf_reuse_run(rounds, Mode::Read));
        });
        results.push(("core_effectbuf_reuse_ns_per_op".into(), ns / rounds as f64));
        let ns = best_ns(reps, || {
            std::hint::black_box(effectbuf_alloc_run(rounds, Mode::Read));
        });
        results.push(("core_effectbuf_alloc_ns_per_op".into(), ns / rounds as f64));

        // Flat-copyset churn at resident sizes spanning inline (2), small
        // spill (8), and wide fan-out (64).
        for size in [2u32, 8, 64] {
            let rounds = if smoke { 2_000 } else { 20_000 };
            let ns = best_ns(reps, || {
                std::hint::black_box(copyset_churn(size, rounds));
            });
            results.push((
                format!("core_copyset_n{size}_ns_per_op"),
                ns / rounds as f64,
            ));
        }

        // Table 1(d) lookup: compiled bitmask LUT vs. the pre-LUT
        // compatibility-scan derivation. Reported per (owned, req) pair.
        let rounds = if smoke { 20_000 } else { 200_000 };
        let pairs = (6 * 5) as f64; // ALL_MODES x REQUEST_MODES
        let ns = best_ns(reps, || {
            std::hint::black_box(freeze_lut_run(rounds));
        });
        results.push((
            "core_table_freeze_lut_ns_per_lookup".into(),
            ns / (rounds as f64 * pairs),
        ));
        let ns = best_ns(reps, || {
            std::hint::black_box(freeze_scan_run(rounds));
        });
        results.push((
            "core_table_freeze_scan_ns_per_lookup".into(),
            ns / (rounds as f64 * pairs),
        ));
    }

    // 3c. Cluster transport round trips (request → grant → release through
    //     real threads, channels, and the wire codec): the Direct baseline,
    //     the reliability shim's framing overhead on a perfect link, and a
    //     10%-lossy link where the retransmission timeout sets the floor.
    {
        // Full budget even under BENCH_SMOKE: these are gated by
        // scripts/bench_gate.sh against the committed full-budget baseline,
        // and a shrunk lossy run is not comparable — the seeded drop
        // pattern over the first N rounds can be consistently unluckier
        // than the long-run average. A few ms per metric either way.
        let rounds = 400;
        let lossy_rounds = 100;
        let configs: [(&str, u32, ClusterConfig); 4] = [
            (
                "cluster_direct_roundtrip_ns",
                rounds,
                ClusterConfig {
                    nodes: 2,
                    ..Default::default()
                },
            ),
            (
                "cluster_reliable_roundtrip_ns",
                rounds,
                ClusterConfig {
                    nodes: 2,
                    reliable: Some(ReliableConfig::default()),
                    ..Default::default()
                },
            ),
            (
                "cluster_lossy10_roundtrip_ns",
                lossy_rounds,
                ClusterConfig {
                    nodes: 2,
                    transport: TransportKind::Faulty(FaultConfig::lossy(0xC1A0, 0.10)),
                    reliable: Some(ReliableConfig::default()),
                    ..Default::default()
                },
            ),
            // The same lossy link under the old wire-latency RTO floor
            // (2 ms vs. the in-process 400 µs default above): the recorded
            // before/after of making the retransmission floor configurable.
            (
                "cluster_lossy10_wan_rto_roundtrip_ns",
                lossy_rounds,
                ClusterConfig {
                    nodes: 2,
                    transport: TransportKind::Faulty(FaultConfig::lossy(0xC1A0, 0.10)),
                    reliable: Some(ReliableConfig::wan()),
                    ..Default::default()
                },
            ),
        ];
        for (label, n, cfg) in configs {
            let ns = best_ns(reps, || {
                std::hint::black_box(cluster_roundtrips(cfg, n));
            });
            results.push((label.into(), ns / n as f64));
        }
    }

    // 3c3. Crash recovery: wall-clock from killing the token holder of a
    //      4-member in-process cluster to a survivor's first Write grant
    //      in the regenerated epoch (scan → plan → repair wave → R1
    //      re-reports → token regeneration). Gated by
    //      scripts/bench_gate.sh; full budget under BENCH_SMOKE.
    {
        let ms = best_ns(5, || {
            std::hint::black_box(recovery_latency_run(4));
        }) / 1e6;
        results.push(("recovery_latency_ms".into(), ms));
    }

    // 3c2. The same exchange over a **real kernel socket**: write-lock
    //      ping-pong between two socket-backed members on loopback. TCP
    //      prices the full wire stack (framing, nonblocking event loop,
    //      syscalls, loopback scheduling); lossy UDP adds the 2 ms WAN
    //      retransmission floor whenever a datagram actually vanishes.
    {
        // Gated metrics: full budget under BENCH_SMOKE (see 3c).
        let rounds = 100;
        let mut best = f64::INFINITY;
        for _ in 0..reps {
            let (messages, ns) = socket_roundtrips(None, rounds);
            std::hint::black_box(messages);
            best = best.min(ns);
        }
        // Each round is two cross-wire token handoffs.
        results.push((
            "socket_tcp_roundtrip_ns".into(),
            best / (rounds as f64 * 2.0),
        ));
        let lossy_rounds = 30;
        let mut best = f64::INFINITY;
        for _ in 0..reps {
            let (messages, ns) = socket_roundtrips(Some((0.10, 0xC1A0)), lossy_rounds);
            std::hint::black_box(messages);
            best = best.min(ns);
        }
        results.push((
            "socket_udp_lossy_roundtrip_ns".into(),
            best / (lossy_rounds as f64 * 2.0),
        ));
    }

    // 3d. Model-checker exploration throughput: distinct states per second
    //     on a fixed 5-node / 2-lock symmetric scenario, serial vs a
    //     2-worker frontier (both under the canonical quotient, so the
    //     state count — and therefore the work — is identical). On a
    //     single-core host the parallel number mostly prices the frontier
    //     machinery; on real cores it shows the speedup.
    {
        use dlm_check::{explore_with, Op, Options, Scenario};
        let leaf = || {
            vec![
                Op::Acquire(Mode::Write),
                Op::Release,
                Op::AcquireOn(1, Mode::Write),
                Op::ReleaseOn(1),
            ]
        };
        let scenario = Scenario::star(
            5,
            vec![vec![], leaf(), leaf(), leaf(), leaf()],
            dlm_core::ProtocolConfig::paper(),
        );
        let check_reps = if smoke { 1 } else { 3 };
        for (label, workers) in [("serial", 1usize), ("w2", 2)] {
            let mut states = 0usize;
            let ns = best_ns(check_reps, || {
                let r = explore_with(
                    &scenario,
                    Options::exhaustive(1_000_000)
                        .with_symmetry(true)
                        .with_workers(workers),
                );
                assert!(r.verified() && !r.truncated);
                states = r.states;
            });
            results.push((
                format!("check_states_per_sec_{label}"),
                states as f64 / (ns / 1e9),
            ));
        }
    }

    // 3e. The sharded lock-manager service at scale: a single node with 8
    //     shard workers churning acquire/release over ~1.5 million distinct
    //     locks through the pipelined client, 4096 operations in flight.
    //     Reported as sustained ops/sec plus client-observed acquire
    //     latency percentiles (submit → completion, including shard-queue
    //     time), for uniform and zipfian (YCSB theta 0.99) key popularity.
    //     One measured run per distribution: at millions of operations the
    //     run is its own steady state, and best-of-N would triple a
    //     double-digit-seconds bench for little tightening.
    //
    //     `shard_ops_per_sec` is gated by scripts/bench_gate.sh, so like the
    //     churn section it keeps its full budget even under BENCH_SMOKE — a
    //     shrunk key space runs entirely in cache and would read ~2x hotter
    //     than the committed full-budget baseline, hiding real regressions.
    {
        let (churn_locks, churn_ops) = (1_500_000u32, 4_000_000u64);
        let uniform = bench::shard_churn_run(churn_locks, churn_ops, 8, 4096, None, 0xBEEF);
        assert_eq!(uniform.messages, 0, "single-node churn is purely local");
        let p = uniform.acquire_latency.percentiles();
        results.push(("shard_ops_per_sec".into(), uniform.ops_per_sec));
        results.push(("shard_acquire_p50_us".into(), p.p50 as f64));
        results.push(("shard_acquire_p95_us".into(), p.p95 as f64));
        results.push(("shard_acquire_p99_us".into(), p.p99 as f64));
        let zipf = bench::shard_churn_run(churn_locks, churn_ops, 8, 4096, Some(0.99), 0xBEEF);
        results.push(("shard_zipf_ops_per_sec".into(), zipf.ops_per_sec));
    }

    // 4. One end-to-end workload point per paper figure.
    let points: Vec<(&str, WorkloadParams)> = vec![
        (
            "fig7_linux_n16_hier",
            figure_point(16, ProtocolKind::Hier, ops),
        ),
        (
            "fig8_linux_n16_naimi",
            figure_point(16, ProtocolKind::NaimiPure, ops),
        ),
        ("fig9_sp_n64_ratio25", {
            let mut p = WorkloadParams::ibm_sp(64, 25);
            p.ops_per_node = ops;
            p
        }),
        ("fig10_sp_n64_ratio1", {
            let mut p = WorkloadParams::ibm_sp(64, 1);
            p.ops_per_node = ops;
            p
        }),
    ];
    for (label, params) in points {
        let ns = best_ns(reps, || {
            let report = run_workload(&params);
            assert!(report.complete());
        });
        results.push((format!("{label}_ms"), ns / 1e6));
    }

    // 4b. The Figure 7 workload point measured over a **real socket
    //     cluster**: four in-process members, every frame over loopback
    //     TCP, think times compressed 1000x so the wire and protocol —
    //     not the sleeps — dominate. End-to-end workload phase only
    //     (member spawn, quiescence, and audit excluded).
    {
        let mut params = figure_point(4, ProtocolKind::Hier, ops);
        params.seed = 0x50CC;
        let mut best = f64::INFINITY;
        for _ in 0..reps {
            let (messages, ns) = socket_workload_run(&params, 1000);
            std::hint::black_box(messages);
            best = best.min(ns);
        }
        results.push(("socket_fig7_linux_n4_ms".into(), best / 1e6));
    }

    let mut json = String::from("{\n  \"schema\": \"dlm-bench/v1\",\n");
    let _ = writeln!(json, "  \"smoke\": {smoke},");
    json.push_str("  \"benches\": {\n");
    for (i, (name, value)) in results.iter().enumerate() {
        let comma = if i + 1 == results.len() { "" } else { "," };
        let _ = writeln!(json, "    \"{name}\": {value:.1}{comma}");
    }
    json.push_str("  }\n}\n");

    std::fs::write(&out, &json).expect("write BENCH_sim.json");
    print!("{json}");
    eprintln!("wrote {out}");

    append_history(smoke, &results);
}

/// Append this run as one JSONL line to `results/bench_history.jsonl`: the
/// per-commit perf trajectory, where `BENCH_sim.json` only keeps the latest
/// point. Best-effort — a read-only checkout must not fail the bench run.
fn append_history(smoke: bool, results: &[(String, f64)]) {
    use std::io::Write as _;

    let unix_secs = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let commit = std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .map(|o| String::from_utf8_lossy(&o.stdout).trim().to_string())
        .unwrap_or_else(|| "unknown".into());

    let mut line = format!(
        "{{\"schema\":\"dlm-bench-history/v1\",\"unix_secs\":{unix_secs},\"commit\":\"{commit}\",\"smoke\":{smoke},\"benches\":{{"
    );
    for (i, (name, value)) in results.iter().enumerate() {
        if i > 0 {
            line.push(',');
        }
        let _ = write!(line, "\"{name}\":{value:.1}");
    }
    line.push_str("}}");

    let dir = format!("{}/../../results", env!("CARGO_MANIFEST_DIR"));
    let path = format!("{dir}/bench_history.jsonl");
    let appended = std::fs::create_dir_all(&dir).is_ok()
        && std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .and_then(|mut f| writeln!(f, "{line}"))
            .is_ok();
    if appended {
        eprintln!("appended run to {path}");
    } else {
        eprintln!("warning: could not append bench history to {path}");
    }
}
