//! CLI driver for the millions-of-locks service benchmark
//! ([`bench::shard_churn_run`]): one sharded node, a pipelined client, and
//! acquire/release churn over a large key space.
//!
//! Usage: `cargo run --release -p bench --bin shard_churn [-- <locks> <ops> <shards> <window>]`
//!
//! Defaults to 1.5 M locks / 4 M ops / 8 shards / a 4096-op window — the
//! same configuration the persisted baseline (`bench` bin) records — and
//! runs both uniform and zipfian (YCSB theta 0.99) key popularity.
//! `BENCH_SMOKE=1` shrinks the run to 10 k locks / 50 k ops for CI.

fn main() {
    let smoke = std::env::var("BENCH_SMOKE").is_ok_and(|v| v != "0");
    let (mut locks, mut ops): (u32, u64) = if smoke {
        (10_000, 50_000)
    } else {
        (1_500_000, 4_000_000)
    };
    let mut shards = 8usize;
    let mut window = 4096usize;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let parsed: Result<(), Box<dyn std::error::Error>> = (|| {
        if let Some(v) = args.first() {
            locks = v.parse()?;
        }
        if let Some(v) = args.get(1) {
            ops = v.parse()?;
        }
        if let Some(v) = args.get(2) {
            shards = v.parse()?;
        }
        if let Some(v) = args.get(3) {
            window = v.parse()?;
        }
        Ok(())
    })();
    if let Err(e) = parsed {
        eprintln!("usage: shard_churn [<locks> <ops> <shards> <window>] ({e})");
        std::process::exit(2);
    }

    println!("shard_churn: {locks} locks, {ops} ops, {shards} shards, window {window}");
    for (label, theta) in [("uniform", None), ("zipf(0.99)", Some(0.99))] {
        let r = bench::shard_churn_run(locks, ops, shards, window, theta, 0xBEEF);
        let p = r.acquire_latency.percentiles();
        println!(
            "  {label:<10} {:>9.0} ops/sec  {:>8} distinct locks  acquire p50/p95/p99 = {}/{}/{} us",
            r.ops_per_sec, r.distinct_locks, p.p50, p.p95, p.p99
        );
    }
}
