//! Proves the headline claim of the zero-allocation protocol core: after
//! warm-up, a steady-state acquire/release churn step performs **no heap
//! allocations** — effects live in the reused [`EffectBuf`], copysets and
//! grant counters in inline flat maps, and the testkit's inbox/log vectors
//! retain their capacity.
//!
//! This is an integration-test target so it may host the (unsafe)
//! counting `GlobalAlloc`; the library crates all `forbid(unsafe_code)`.

use bench::effectbuf_reuse_run;
use dlm_core::testkit::LockStepNet;
use dlm_core::Mode;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// System allocator wrapper counting every allocation entry point.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn alloc_count() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

/// Run `rounds` churn cycles, returning how many heap allocations happened.
/// The grant/upgrade logs are cleared (capacity retained) each round so the
/// net models a long-running service, not an ever-growing history.
fn churn_allocs(net: &mut LockStepNet, mode: Mode, rounds: u32) -> u64 {
    let before = alloc_count();
    for _ in 0..rounds {
        net.try_acquire(1, mode).expect("idle node can acquire");
        net.deliver_all();
        net.try_release(1).expect("holder can release");
        net.deliver_all();
        net.granted.clear();
        net.upgraded.clear();
    }
    alloc_count() - before
}

// A single test function: the counter is process-global, so concurrent test
// threads would attribute each other's allocations.
#[test]
fn steady_state_protocol_step_is_allocation_free() {
    // Two-node star churn through the full testkit runtime, per mode class:
    // copy-grant traffic (IR, R) and the token-transfer-then-local path (W).
    for mode in [Mode::IntentRead, Mode::Read, Mode::Write] {
        let mut net = LockStepNet::star(2);
        net.audit_each_step = false;
        // Warm-up: grows inbox/log capacities and reaches the steady state.
        let warm = churn_allocs(&mut net, mode, 50);
        let steady = churn_allocs(&mut net, mode, 100);
        assert_eq!(
            steady, 0,
            "{mode:?} churn allocated {steady} times over 100 steady rounds \
             (warm-up allocated {warm})"
        );
    }

    // Single token node through the `*_into` API with a reused EffectBuf:
    // allocation-free from the very first operation (all state is inline).
    let before = alloc_count();
    let effects = effectbuf_reuse_run(100, Mode::Read);
    let delta = alloc_count() - before;
    assert_eq!(effects, 100, "one grant per acquire, none per release");
    assert_eq!(delta, 0, "reused-buffer run allocated {delta} times");
}
