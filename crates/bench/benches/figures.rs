//! One representative simulation point per paper figure, as wall-clock
//! benchmarks of the end-to-end experiment pipeline (workload generation,
//! protocol execution, metric folding). The actual figure *data* comes from
//! `dlm-harness`; these benches track the cost of producing it and catch
//! performance regressions in the simulator and the protocol hot paths.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use dlm_workload::{run_workload, ProtocolKind, WorkloadParams};

fn point(nodes: usize, protocol: ProtocolKind) -> WorkloadParams {
    let mut p = WorkloadParams::linux_cluster(nodes, protocol);
    p.ops_per_node = 15;
    p
}

fn bench_fig7_8(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig7_fig8_points");
    g.sample_size(10);
    for protocol in [
        ProtocolKind::Hier,
        ProtocolKind::NaimiPure,
        ProtocolKind::NaimiSameWork,
    ] {
        g.bench_function(format!("linux_cluster_n16_{}", protocol.label()), |b| {
            b.iter(|| {
                let report = run_workload(black_box(&point(16, protocol)));
                assert!(report.complete());
                report.messages
            })
        });
    }
    g.finish();
}

fn bench_fig9_10(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig9_fig10_points");
    g.sample_size(10);
    for ratio in [1u32, 25] {
        g.bench_function(format!("ibm_sp_n64_ratio{ratio}"), |b| {
            b.iter(|| {
                let mut p = WorkloadParams::ibm_sp(64, ratio);
                p.ops_per_node = 15;
                let report = run_workload(black_box(&p));
                assert!(report.complete());
                report.messages
            })
        });
    }
    g.finish();
}

fn bench_ablation_point(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_points");
    g.sample_size(10);
    for (label, config) in [
        ("paper", dlm_core::ProtocolConfig::paper()),
        (
            "literal_rule_3_2",
            dlm_core::ProtocolConfig::paper().literal_rule_3_2(),
        ),
    ] {
        g.bench_function(format!("linux_cluster_n16_{label}"), |b| {
            b.iter(|| {
                let mut p = point(16, ProtocolKind::Hier);
                p.hier_config = config;
                let report = run_workload(black_box(&p));
                assert!(report.complete());
                report.messages
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_fig7_8, bench_fig9_10, bench_ablation_point);
criterion_main!(benches);
