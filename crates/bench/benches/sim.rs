//! Simulator event-loop throughput: a message flood over a ring of actors
//! whose per-event work is a counter bump and a re-send, so the measurement
//! isolates the engine itself — the inline-payload event queue, timer
//! dispatch, and outgoing-message drain — from protocol logic.

use bench::flood_run;
use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};

fn bench_event_loop(c: &mut Criterion) {
    const BUDGET: u64 = 100_000;
    let mut g = c.benchmark_group("sim_event_loop");
    g.sample_size(20);
    g.throughput(Throughput::Elements(BUDGET));
    for (n, fan_out) in [(8usize, 4u32), (64, 4), (64, 32)] {
        g.bench_function(format!("flood_n{n}_fanout{fan_out}"), |b| {
            b.iter(|| {
                let stats = flood_run(black_box(n), fan_out, BUDGET);
                assert_eq!(stats.messages_delivered + stats.timers_fired, BUDGET);
                stats
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_event_loop);
criterion_main!(benches);
