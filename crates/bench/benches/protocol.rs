//! Protocol hot-path microbenchmarks: rule-table lookups, state-machine
//! event handling, and end-to-end lock churn on the lock-step runtime,
//! including the Naimi baseline for comparison.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use dlm_core::testkit::LockStepNet;
use dlm_core::{HierNode, Message, Mode, NodeId, ProtocolConfig, QueuedRequest};
use dlm_modes::{child_can_grant, compatible, freeze_set, queue_or_forward, REQUEST_MODES};
use dlm_naimi::testkit::NaimiNet;

fn bench_tables(c: &mut Criterion) {
    let mut g = c.benchmark_group("tables");
    g.bench_function("compatible_all_pairs", |b| {
        b.iter(|| {
            let mut acc = 0u32;
            for &a in &REQUEST_MODES {
                for &m in &REQUEST_MODES {
                    acc += compatible(black_box(a), black_box(m)) as u32;
                }
            }
            acc
        })
    });
    g.bench_function("child_can_grant_all_pairs", |b| {
        b.iter(|| {
            let mut acc = 0u32;
            for &a in &REQUEST_MODES {
                for &m in &REQUEST_MODES {
                    acc += child_can_grant(black_box(a), black_box(m)) as u32;
                }
            }
            acc
        })
    });
    g.bench_function("queue_or_forward_all_pairs", |b| {
        b.iter(|| {
            let mut acc = 0u32;
            for &a in &REQUEST_MODES {
                for &m in &REQUEST_MODES {
                    acc += (queue_or_forward(black_box(a), black_box(m))
                        == dlm_modes::QueueOrForward::Queue) as u32;
                }
            }
            acc
        })
    });
    g.bench_function("freeze_set_all_pairs", |b| {
        b.iter(|| {
            let mut acc = 0usize;
            for &a in &REQUEST_MODES {
                for &m in &REQUEST_MODES {
                    acc += freeze_set(black_box(a), black_box(m)).len();
                }
            }
            acc
        })
    });
    g.finish();
}

fn bench_state_machine(c: &mut Criterion) {
    let mut g = c.benchmark_group("state_machine");
    // A token node fielding a grantable remote request end to end.
    g.bench_function("token_handles_compatible_request", |b| {
        b.iter_batched(
            || {
                let mut node = HierNode::with_token(NodeId(0), ProtocolConfig::paper());
                let _ = node.on_acquire(Mode::IntentRead).unwrap();
                node
            },
            |mut node| {
                node.on_message(
                    NodeId(1),
                    Message::Request(QueuedRequest::plain(NodeId(1), Mode::IntentRead)),
                )
            },
            criterion::BatchSize::SmallInput,
        )
    });
    // The Rule 2 message-free local admit.
    g.bench_function("local_admit_fast_path", |b| {
        b.iter_batched(
            || HierNode::with_token(NodeId(0), ProtocolConfig::paper()),
            |mut node| {
                let eff = node.on_acquire(black_box(Mode::Read)).unwrap();
                black_box(eff)
            },
            criterion::BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_churn(c: &mut Criterion) {
    let mut g = c.benchmark_group("lockstep_churn");
    g.sample_size(20);
    for mode in [Mode::IntentRead, Mode::Read, Mode::Write] {
        g.bench_function(format!("acquire_release_x100_{mode}"), |b| {
            b.iter(|| bench::churn(black_box(100), mode))
        });
    }
    // Naimi equivalent for comparison.
    g.bench_function("naimi_acquire_release_x100", |b| {
        b.iter(|| {
            let mut net = NaimiNet::star(2);
            for _ in 0..100 {
                net.acquire(1).unwrap();
                net.deliver_all();
                net.release(1).unwrap();
                net.deliver_all();
            }
            net.messages_sent
        })
    });
    // Fan-in: 8 nodes hammering one write lock through the full protocol.
    g.bench_function("eight_writers_contending_x25", |b| {
        b.iter(|| {
            let mut net = LockStepNet::star(8);
            net.audit_each_step = false;
            for _ in 0..25 {
                for n in 1..8 {
                    if net.node(n).held() == Mode::NoLock && net.node(n).pending().is_none() {
                        net.acquire(n, Mode::Write);
                    }
                }
                net.deliver_all();
                for n in 0..8 {
                    if net.node(n).held() != Mode::NoLock {
                        net.release(n);
                    }
                }
                net.deliver_all();
            }
            net.messages_sent
        })
    });
    g.finish();
}

criterion_group!(benches, bench_tables, bench_state_machine, bench_churn);
criterion_main!(benches);
