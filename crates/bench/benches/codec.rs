//! Wire-codec benchmarks: encode/decode throughput of the frames the
//! cluster runtime puts on its links, plus the metrics primitives that run
//! on the simulator's hot path.

use bench::sample_messages;
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use dlm_cluster::codec::{decode, encode, encode_into};
use dlm_metrics::{Histogram, Summary};

fn bench_codec(c: &mut Criterion) {
    let msgs = sample_messages();
    let frames: Vec<_> = msgs.iter().map(|(l, m)| encode(*l, m)).collect();

    let mut g = c.benchmark_group("codec");
    g.bench_function("encode_4_frames", |b| {
        b.iter(|| {
            for (l, m) in &msgs {
                black_box(encode(black_box(*l), black_box(m)));
            }
        })
    });
    // The runtime's hot path: one long-lived scratch buffer across frames.
    g.bench_function("encode_into_4_frames_reused_buffer", |b| {
        let mut scratch = bytes::BytesMut::with_capacity(64);
        b.iter(|| {
            for (l, m) in &msgs {
                black_box(encode_into(black_box(*l), black_box(m), &mut scratch));
            }
        })
    });
    g.bench_function("decode_4_frames", |b| {
        b.iter(|| {
            for f in &frames {
                black_box(decode(black_box(f.clone())).unwrap());
            }
        })
    });
    g.finish();
}

fn bench_metrics(c: &mut Criterion) {
    let mut g = c.benchmark_group("metrics");
    g.bench_function("histogram_record_x1000", |b| {
        b.iter(|| {
            let mut h = Histogram::new();
            for i in 0..1000u64 {
                h.record(black_box(i * 37 % 100_000));
            }
            h.count()
        })
    });
    g.bench_function("histogram_quantile", |b| {
        let mut h = Histogram::new();
        for i in 0..100_000u64 {
            h.record(i * 37 % 1_000_000);
        }
        b.iter(|| h.quantile(black_box(0.99)))
    });
    g.bench_function("summary_record_x1000", |b| {
        b.iter(|| {
            let mut s = Summary::new();
            for i in 0..1000 {
                s.record(black_box(i as f64 * 0.37));
            }
            s.mean()
        })
    });
    g.finish();
}

criterion_group!(benches, bench_codec, bench_metrics);
criterion_main!(benches);
