//! Wire-codec benchmarks: encode/decode throughput of the frames the
//! cluster runtime puts on its links, plus the metrics primitives that run
//! on the simulator's hot path.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use dlm_cluster::codec::{decode, encode};
use dlm_core::{LockId, Message, Mode, NodeId, QueuedRequest};
use dlm_metrics::{Histogram, Summary};
use std::collections::VecDeque;

fn sample_messages() -> Vec<(LockId, Message)> {
    vec![
        (
            LockId::entry(3),
            Message::Request(QueuedRequest {
                from: NodeId(17),
                mode: Mode::Read,
                upgrade: false,
                priority: 0,
            }),
        ),
        (
            LockId::TABLE,
            Message::Grant {
                mode: Mode::IntentRead,
            },
        ),
        (
            LockId::TABLE,
            Message::Token {
                mode: Mode::Write,
                granter_owned: Mode::IntentRead,
                queue: VecDeque::from(vec![
                    QueuedRequest {
                        from: NodeId(2),
                        mode: Mode::Read,
                        upgrade: false,
                        priority: 0,
                    };
                    4
                ]),
                frozen: dlm_core::ModeSet::from_modes([Mode::IntentRead, Mode::Read]),
            },
        ),
        (
            LockId::entry(1),
            Message::Release {
                new_owned: Mode::NoLock,
                ack: 42,
            },
        ),
    ]
}

fn bench_codec(c: &mut Criterion) {
    let msgs = sample_messages();
    let frames: Vec<_> = msgs.iter().map(|(l, m)| encode(*l, m)).collect();

    let mut g = c.benchmark_group("codec");
    g.bench_function("encode_4_frames", |b| {
        b.iter(|| {
            for (l, m) in &msgs {
                black_box(encode(black_box(*l), black_box(m)));
            }
        })
    });
    g.bench_function("decode_4_frames", |b| {
        b.iter(|| {
            for f in &frames {
                black_box(decode(black_box(f.clone())).unwrap());
            }
        })
    });
    g.finish();
}

fn bench_metrics(c: &mut Criterion) {
    let mut g = c.benchmark_group("metrics");
    g.bench_function("histogram_record_x1000", |b| {
        b.iter(|| {
            let mut h = Histogram::new();
            for i in 0..1000u64 {
                h.record(black_box(i * 37 % 100_000));
            }
            h.count()
        })
    });
    g.bench_function("histogram_quantile", |b| {
        let mut h = Histogram::new();
        for i in 0..100_000u64 {
            h.record(i * 37 % 1_000_000);
        }
        b.iter(|| h.quantile(black_box(0.99)))
    });
    g.bench_function("summary_record_x1000", |b| {
        b.iter(|| {
            let mut s = Summary::new();
            for i in 0..1000 {
                s.record(black_box(i as f64 * 0.37));
            }
            s.mean()
        })
    });
    g.finish();
}

criterion_group!(benches, bench_codec, bench_metrics);
criterion_main!(benches);
