//! Property-driven model checking: proptest generates small random
//! scenarios (topology, scripts, config) and each one is *exhaustively*
//! explored — every reachable interleaving safety-checked, every terminal
//! state liveness-checked. This composes the two strongest tools in the
//! suite: random scenario discovery and exhaustive schedule coverage.

use dlm_check::{explore, explore_with, Op, Options, Scenario};
use dlm_core::{Mode, ProtocolConfig};
use proptest::prelude::*;

fn mode_strategy() -> impl Strategy<Value = Mode> {
    prop_oneof![
        Just(Mode::IntentRead),
        Just(Mode::Read),
        Just(Mode::Upgrade),
        Just(Mode::IntentWrite),
        Just(Mode::Write),
    ]
}

/// A per-node script: 0–2 acquire/release pairs; U acquisitions sometimes
/// upgrade in between.
fn script_strategy() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec((mode_strategy(), any::<bool>()), 0..2).prop_map(|ops| {
        let mut script = Vec::new();
        for (mode, upgrade) in ops {
            script.push(Op::Acquire(mode));
            if mode == Mode::Upgrade && upgrade {
                script.push(Op::Upgrade);
            }
            script.push(Op::Release);
        }
        script
    })
}

fn cases(default_cases: u32) -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default_cases)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(cases(48)))]

    /// Every interleaving of every random 3-node star scenario is safe and
    /// live under the paper configuration.
    #[test]
    fn random_star_scenarios_fully_verified(
        scripts in proptest::collection::vec(script_strategy(), 3..4),
    ) {
        let s = Scenario::star(3, scripts, ProtocolConfig::paper());
        let r = explore(&s, 3_000_000);
        prop_assert!(r.verified(), "{r:?}");
    }

    /// Same on chains (deep forwarding paths) with the literal Rule 3.2
    /// policy, which moves the token most aggressively.
    #[test]
    fn random_chain_scenarios_fully_verified_literal_policy(
        scripts in proptest::collection::vec(script_strategy(), 3..4),
    ) {
        let s = Scenario::chain(3, scripts, ProtocolConfig::paper().literal_rule_3_2());
        let r = explore(&s, 3_000_000);
        prop_assert!(r.verified(), "{r:?}");
    }

    /// Satellite: the partial-order reduction is an *equivalence* — on
    /// random scenarios the reduced and exhaustive searches reach the same
    /// verdict and the same set of terminal states (compared by structural
    /// fingerprint). Chains maximize message interleaving depth, so run
    /// them too.
    #[test]
    fn reduction_preserves_verdicts_and_terminals(
        scripts in proptest::collection::vec(script_strategy(), 3..4),
        chain in any::<bool>(),
    ) {
        let s = if chain {
            Scenario::chain(3, scripts, ProtocolConfig::paper())
        } else {
            Scenario::star(3, scripts, ProtocolConfig::paper())
        };
        let off = explore_with(&s, Options::exhaustive(3_000_000));
        let on = explore_with(&s, Options::reduced(3_000_000));
        prop_assert!(!off.truncated && !on.truncated);
        prop_assert_eq!(off.verified(), on.verified(),
            "verdicts differ: off={:?} on={:?}", off, on);
        prop_assert_eq!(&off.terminal_fingerprints, &on.terminal_fingerprints,
            "terminal state sets differ");
        prop_assert_eq!(off.terminals, on.terminals);
        prop_assert_eq!(off.deadlocks.is_empty(), on.deadlocks.is_empty());
    }
}
