//! Crash-schedule verification (DESIGN.md §17): the
//! exactly-one-token-per-epoch invariant under every interleaving of a
//! node crash with in-flight protocol traffic, Rule R3 fencing of the
//! dead generation's frames, and recovery liveness (every schedule still
//! terminates with clean quiescence among the survivors).

use dlm_check::{explore, explore_with, Action, Op, Options, Reduction, Scenario, State};
use dlm_core::{Mode, ProtocolConfig};

fn paper() -> ProtocolConfig {
    ProtocolConfig::paper()
}

/// The tentpole property: the initial token holder crashes while a write
/// acquisition races it — the request, or the answering token transfer,
/// may be in flight at the instant of the crash. Every interleaving must
/// keep at most one token per epoch in every reachable state, regenerate
/// exactly one token in the new epoch, and still drain every surviving
/// script (no deadlock, clean quiescent audit).
#[test]
fn token_holder_crash_verifies_exactly_one_token_per_epoch() {
    let s = Scenario::star(
        3,
        vec![
            vec![Op::Crash],
            vec![Op::Acquire(Mode::Write), Op::Release],
            vec![Op::Acquire(Mode::Read), Op::Release],
        ],
        paper(),
    );
    let r = explore(&s, 2_000_000);
    assert!(
        r.verified(),
        "violation: {:?}; deadlock: {:?}; truncated: {}",
        r.violations.first(),
        r.deadlocks.first(),
        r.truncated
    );
    assert!(r.terminals > 0);
    assert!(
        r.states > 100,
        "crash schedules branch: {} states",
        r.states
    );
}

/// A non-owner crash: the surviving holder keeps its token (no
/// regeneration needed), the epoch still advances, and every schedule
/// quiesces cleanly.
#[test]
fn non_owner_crash_verifies() {
    let s = Scenario::star(
        3,
        vec![
            vec![Op::Acquire(Mode::Read), Op::Release],
            vec![Op::Acquire(Mode::Write), Op::Release],
            vec![Op::Crash],
        ],
        paper(),
    );
    let r = explore(&s, 2_000_000);
    assert!(
        r.verified(),
        "violation: {:?}; deadlock: {:?}",
        r.violations.first(),
        r.deadlocks.first()
    );
}

/// The satellite regression scenario: the crashed owner's token transfer
/// is still in flight when the view change regenerates a replacement.
/// Delivering the stale frame afterwards must fence it (Rule R3), leaving
/// exactly one token — in the new epoch — and a clean quiescent audit.
#[test]
fn stale_token_from_crashed_owner_is_fenced() {
    let s = Scenario::star(
        2,
        vec![vec![Op::Crash], vec![Op::Acquire(Mode::Write)]],
        paper(),
    );
    let s0 = State::initial(&s);
    // n1 requests W from the token holder n0…
    let s1 = s0.apply(&s, Action::Script { node: 1 }).state;
    // …n0 answers with a token transfer (now in flight, stamped epoch 0)…
    let s2 = s1
        .apply(
            &s,
            Action::Deliver {
                lock: 0,
                from: 1,
                to: 0,
            },
        )
        .state;
    assert!(
        s2.channels.contains_key(&(0, 0, 1)),
        "token transfer in flight"
    );
    // …and crashes before it arrives. The lone survivor regenerates.
    let s3 = s2.apply(&s, Action::Script { node: 0 }).state;
    let survivor = &s3.nodes[0][1];
    assert!(survivor.has_token(), "survivor regenerated the token");
    assert_eq!(survivor.epoch(), 1);
    assert_eq!(
        survivor.held(),
        Mode::Write,
        "the re-queued pending W self-grants on the regenerated token"
    );
    // The dead owner's stale token frame finally arrives: fenced.
    let step = s3.apply(
        &s,
        Action::Deliver {
            lock: 0,
            from: 0,
            to: 1,
        },
    );
    assert!(step.fenced, "stale epoch-0 token frame must be fenced");
    assert!(step.effects.is_empty());
    let end = &step.state;
    assert!(
        end.nodes[0][1].has_token() && end.nodes[0][1].epoch() == 1,
        "exactly one token, in the new epoch"
    );
    assert!(end.quiet());
    assert_eq!(end.audit_lock(0, false), vec![]);
}

/// Crash scenarios force the exhaustive search: a crash transition
/// executes at every survivor, so it commutes with nothing and the
/// node-keyed DPOR dependence relation does not cover it. Requesting the
/// reduction must still verify — via the documented BFS fallback.
#[test]
fn reduced_exploration_falls_back_to_exhaustive_for_crash_scenarios() {
    let s = Scenario::star(
        3,
        vec![
            vec![Op::Crash],
            vec![Op::Acquire(Mode::Write), Op::Release],
            vec![],
        ],
        paper(),
    );
    let r = explore_with(&s, Options::reduced(2_000_000));
    assert!(r.verified(), "{:?}", r.violations.first());
    assert_eq!(
        r.reduction,
        Reduction::Off,
        "crash scenarios run the exhaustive search"
    );
}

/// A crash spans every lock object: with two independent locks, both are
/// repaired into the new epoch and both stay safe under every schedule.
#[test]
fn crash_repairs_every_lock_object() {
    let s = Scenario::star(
        3,
        vec![
            vec![Op::Crash],
            vec![
                Op::AcquireOn(0, Mode::Write),
                Op::ReleaseOn(0),
                Op::AcquireOn(1, Mode::Read),
                Op::ReleaseOn(1),
            ],
            vec![],
        ],
        paper(),
    );
    let r = explore(&s, 2_000_000);
    assert!(
        r.verified(),
        "violation: {:?}; deadlock: {:?}",
        r.violations.first(),
        r.deadlocks.first()
    );
}

/// Symmetry reduction composes with crash schedules: the two surviving,
/// identically-scripted contenders are interchangeable, so the quotient
/// search visits fewer states and reaches the same verdict.
#[test]
fn symmetry_composes_with_crash_schedules() {
    let s = Scenario::star(
        3,
        vec![
            vec![Op::Crash],
            vec![Op::Acquire(Mode::Write), Op::Release],
            vec![Op::Acquire(Mode::Write), Op::Release],
        ],
        paper(),
    );
    let plain = explore(&s, 2_000_000);
    let reduced = explore_with(&s, Options::exhaustive(2_000_000).with_symmetry(true));
    assert!(plain.verified(), "{:?}", plain.violations.first());
    assert!(reduced.verified(), "{:?}", reduced.violations.first());
    assert_eq!(reduced.group_order, 2, "survivors are interchangeable");
    assert!(
        reduced.states < plain.states,
        "quotient must shrink the space: {} vs {}",
        reduced.states,
        plain.states
    );
}

/// Liveness across recovery: a request whose answer dies with the crashed
/// owner is re-issued by its surviving originator (Rule R1), so every
/// schedule still grants it — there is no terminal state with a waiting
/// survivor.
#[test]
fn in_flight_request_survives_the_crash_via_reissue() {
    // A chain 0←1←2 puts an intermediate node on the request path; the
    // tail's request can be mid-forward at either hop when node 0 dies.
    let s = Scenario::chain(
        3,
        vec![
            vec![Op::Crash],
            vec![],
            vec![Op::Acquire(Mode::Write), Op::Release],
        ],
        paper(),
    );
    let r = explore(&s, 2_000_000);
    assert!(
        r.verified(),
        "violation: {:?}; deadlock: {:?}",
        r.violations.first(),
        r.deadlocks.first()
    );
}
