//! Differential and symmetry-soundness tests for the parallel,
//! symmetry-reduced exploration engine.
//!
//! Three pillars:
//!
//! 1. **Canonicalization soundness** (proptest): for random reachable
//!    states `s` and random automorphisms σ of the scenario,
//!    `canon(σ(s)) == canon(s)`, relabeling commutes with the transition
//!    function (`σ(apply(s, a)) == apply(σ(s), σ(a))`), and invariant
//!    verdicts are permutation-invariant.
//! 2. **Serial vs parallel differential**: at 2, 4 and 8 workers — with and
//!    without symmetry — the BFS frontier reports the same state count, the
//!    same verdict, the same terminal fingerprint set and the same minimal
//!    counterexample schedule length as the single-threaded search. The
//!    DPOR engine must agree on verdicts and terminal sets (its visited
//!    state count legitimately varies with the fork frontier).
//! 3. **Acceptance**: the 5-node / 2-lock symmetric scenario exceeds the
//!    serial state budget but its canonical quotient (automorphism group of
//!    order 4! = 24) verifies clean under parallel workers.

use dlm_check::{
    explore_with, permute_state, replay, Action, Canonicalize, Op, Options, Scenario, State,
    SymmetryGroup,
};
use dlm_core::{audit, Mode, ProtocolConfig};
use proptest::prelude::*;

fn mode_strategy() -> impl Strategy<Value = Mode> {
    prop_oneof![
        Just(Mode::IntentRead),
        Just(Mode::Read),
        Just(Mode::Upgrade),
        Just(Mode::IntentWrite),
        Just(Mode::Write),
    ]
}

/// A symmetric star scenario: every leaf runs the same script, so the
/// automorphism group is the full symmetric group on the leaves.
fn symmetric_star_strategy() -> impl Strategy<Value = Scenario> {
    (
        3usize..=5,
        proptest::collection::vec((mode_strategy(), any::<bool>(), 0u32..2), 1..3),
    )
        .prop_map(|(n, ops)| {
            let mut script = Vec::new();
            for (mode, upgrade, lock) in ops {
                script.push(Op::AcquireOn(lock, mode));
                if mode == Mode::Upgrade && upgrade {
                    script.push(Op::UpgradeOn(lock));
                }
                script.push(Op::ReleaseOn(lock));
            }
            let mut scripts = vec![Vec::new()];
            for _ in 1..n {
                scripts.push(script.clone());
            }
            Scenario::star(n, scripts, ProtocolConfig::paper())
        })
}

/// Walk a pseudo-random path from the initial state, picking each step by
/// indexing the (deterministically ordered) enabled-action list.
fn random_walk(scenario: &Scenario, picks: &[usize]) -> State {
    let mut state = State::initial(scenario);
    for &p in picks {
        let actions = state.enabled_actions(scenario);
        if actions.is_empty() {
            break;
        }
        state = state.apply(scenario, actions[p % actions.len()]).state;
    }
    state
}

fn permute_action(action: Action, perm: &[u32]) -> Action {
    match action {
        Action::Deliver { lock, from, to } => Action::Deliver {
            lock,
            from: perm[from as usize],
            to: perm[to as usize],
        },
        Action::Script { node } => Action::Script {
            node: perm[node as usize],
        },
    }
}

/// True when the state violates any safety invariant on any lock object
/// (the property canonicalization must preserve).
fn unsafe_state(state: &State) -> bool {
    (0..state.locks())
        .any(|lock| !audit(&state.nodes[lock], &state.in_flight(lock as u32), false).is_empty())
}

fn cases(default_cases: u32) -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default_cases)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(cases(32)))]

    /// `canon(σ(s)) == canon(s)` for every automorphism σ: the canonical
    /// fingerprint is constant on orbits, which is exactly the property
    /// that makes the symmetry-quotient seen-set sound.
    #[test]
    fn canonical_fingerprint_is_orbit_invariant(
        scenario in symmetric_star_strategy(),
        picks in proptest::collection::vec(0usize..64, 0..12),
    ) {
        let group = SymmetryGroup::of(&scenario);
        prop_assert!(!group.is_trivial(), "symmetric star must have symmetry");
        let s = random_walk(&scenario, &picks);
        let canon = s.canonical_fingerprint(&group);
        for perm in group.members() {
            let permuted = permute_state(&s, perm);
            prop_assert_eq!(
                permuted.canonical_fingerprint(&group),
                canon,
                "canon not orbit-invariant under {:?}",
                perm
            );
        }
    }

    /// Relabeling commutes with the transition function: the protocol never
    /// looks at the *value* of a node id, so σ(apply(s, a)) == apply(σ(s),
    /// σ(a)), and the FIFO audit emitted by the step is label-independent.
    #[test]
    fn relabeling_commutes_with_apply(
        scenario in symmetric_star_strategy(),
        picks in proptest::collection::vec(0usize..64, 0..10),
        which in 0usize..64,
    ) {
        let group = SymmetryGroup::of(&scenario);
        let s = random_walk(&scenario, &picks);
        let actions = s.enabled_actions(&scenario);
        // Terminal states have nothing to commute; the property holds vacuously.
        if !actions.is_empty() {
            let action = actions[which % actions.len()];
            let step = s.apply(&scenario, action);
            for perm in group.members() {
                let permuted_then_step =
                    permute_state(&s, perm).apply(&scenario, permute_action(action, perm));
                let step_then_permuted = permute_state(&step.state, perm);
                prop_assert_eq!(
                    permuted_then_step.state.fingerprint(),
                    step_then_permuted.fingerprint(),
                    "apply does not commute with {:?}",
                    perm
                );
                prop_assert_eq!(
                    permuted_then_step.fifo_errors.len(),
                    step.fifo_errors.len(),
                    "fifo verdicts differ under {:?}",
                    perm
                );
            }
        }
    }

    /// Safety verdicts are permutation-invariant: a relabeled state is
    /// unsafe iff the original is. Together with orbit-invariant
    /// canonicalization this means exploring one representative per orbit
    /// misses no violation.
    #[test]
    fn safety_verdict_is_permutation_invariant(
        scenario in symmetric_star_strategy(),
        picks in proptest::collection::vec(0usize..64, 0..12),
    ) {
        let group = SymmetryGroup::of(&scenario);
        let s = random_walk(&scenario, &picks);
        let verdict = unsafe_state(&s);
        for perm in group.members() {
            prop_assert_eq!(
                unsafe_state(&permute_state(&s, perm)),
                verdict,
                "safety verdict changed under {:?}",
                perm
            );
        }
    }
}

fn acquire_release(mode: Mode) -> Vec<Op> {
    vec![Op::Acquire(mode), Op::Release]
}

/// The differential corpus: small scenarios covering a verified race, a
/// multi-mode race, a liveness failure and a seeded safety violation.
fn corpus() -> Vec<(&'static str, Scenario)> {
    vec![
        (
            "two_writers",
            Scenario::star(
                3,
                vec![
                    vec![],
                    acquire_release(Mode::Write),
                    acquire_release(Mode::Write),
                ],
                ProtocolConfig::paper(),
            ),
        ),
        (
            "grant_release_race",
            Scenario::star(
                3,
                vec![
                    acquire_release(Mode::IntentRead),
                    vec![Op::Acquire(Mode::Upgrade), Op::Upgrade, Op::Release],
                    acquire_release(Mode::Read),
                ],
                ProtocolConfig::paper(),
            ),
        ),
        (
            "deadlock",
            Scenario::star(
                3,
                vec![
                    vec![],
                    vec![Op::Acquire(Mode::Read)],
                    acquire_release(Mode::Write),
                ],
                ProtocolConfig::paper(),
            ),
        ),
        (
            "seeded_bug",
            Scenario::star(
                3,
                vec![
                    acquire_release(Mode::Read),
                    acquire_release(Mode::IntentRead),
                    vec![Op::Acquire(Mode::Upgrade), Op::Upgrade, Op::Release],
                ],
                ProtocolConfig::paper().with_seeded_stale_release_bug(),
            ),
        ),
    ]
}

fn schedule_len(r: &dlm_check::CheckReport) -> Option<usize> {
    r.violations
        .first()
        .map(|v| v.schedule.0.len())
        .or_else(|| r.deadlocks.first().map(|d| d.schedule.0.len()))
}

/// The parallel BFS frontier is a pure implementation change: identical
/// state count, verdicts, terminal set and minimal schedule length at
/// every worker count, with and without the symmetry quotient.
#[test]
fn parallel_bfs_matches_serial_exactly() {
    for (name, s) in corpus() {
        for symmetry in [false, true] {
            let base = explore_with(&s, Options::exhaustive(1_000_000).with_symmetry(symmetry));
            assert!(!base.truncated, "{name}: serial truncated");
            for workers in [2, 4, 8] {
                let par = explore_with(
                    &s,
                    Options::exhaustive(1_000_000)
                        .with_symmetry(symmetry)
                        .with_workers(workers),
                );
                assert!(!par.truncated, "{name} w={workers}: truncated");
                assert_eq!(
                    par.states, base.states,
                    "{name} sym={symmetry} w={workers}: state count"
                );
                assert_eq!(
                    par.verified(),
                    base.verified(),
                    "{name} sym={symmetry} w={workers}: verdict"
                );
                assert_eq!(
                    par.violations.len(),
                    base.violations.len(),
                    "{name} sym={symmetry} w={workers}: violation count"
                );
                assert_eq!(
                    par.deadlocks.len(),
                    base.deadlocks.len(),
                    "{name} sym={symmetry} w={workers}: deadlock count"
                );
                assert_eq!(
                    par.terminal_fingerprints, base.terminal_fingerprints,
                    "{name} sym={symmetry} w={workers}: terminal sets"
                );
                assert_eq!(
                    schedule_len(&par),
                    schedule_len(&base),
                    "{name} sym={symmetry} w={workers}: minimal schedule length"
                );
            }
        }
    }
}

/// The DPOR engine under fork-frontier parallelism must reach the same
/// verdicts and terminal states; its *visited* count may exceed the
/// sequential run because prefix frames use the universal persistent set.
#[test]
fn parallel_dpor_matches_serial_verdicts() {
    for (name, s) in corpus() {
        for symmetry in [false, true] {
            let base = explore_with(&s, Options::reduced(1_000_000).with_symmetry(symmetry));
            assert!(!base.truncated, "{name}: serial truncated");
            for workers in [2, 4] {
                let par = explore_with(
                    &s,
                    Options::reduced(1_000_000)
                        .with_symmetry(symmetry)
                        .with_workers(workers),
                );
                assert!(!par.truncated, "{name} w={workers}: truncated");
                assert_eq!(
                    par.verified(),
                    base.verified(),
                    "{name} sym={symmetry} w={workers}: verdict"
                );
                assert_eq!(
                    par.violations.is_empty(),
                    base.violations.is_empty(),
                    "{name} sym={symmetry} w={workers}: violations"
                );
                assert_eq!(
                    par.deadlocks.is_empty(),
                    base.deadlocks.is_empty(),
                    "{name} sym={symmetry} w={workers}: deadlocks"
                );
                assert_eq!(
                    par.terminal_fingerprints, base.terminal_fingerprints,
                    "{name} sym={symmetry} w={workers}: terminal sets"
                );
                assert!(
                    par.states >= base.states,
                    "{name} sym={symmetry} w={workers}: parallel DPOR explored fewer states"
                );
            }
        }
    }
}

/// The seeded stale-release bug found through the parallel, symmetry-
/// reduced path replays to the same genuine safety violation at the same
/// minimal depth the serial exhaustive search reports.
#[test]
fn seeded_bug_counterexample_survives_parallel_symmetry() {
    let s = corpus().remove(3).1;
    let serial = explore_with(&s, Options::exhaustive(1_000_000));
    let serial_len = schedule_len(&serial).expect("serial search finds the seeded bug");
    for (symmetry, workers) in [(false, 4), (true, 1), (true, 4), (true, 8)] {
        let r = explore_with(
            &s,
            Options::exhaustive(1_000_000)
                .with_symmetry(symmetry)
                .with_workers(workers),
        );
        let v = r
            .violations
            .first()
            .unwrap_or_else(|| panic!("sym={symmetry} w={workers}: no violation"));
        assert_eq!(
            v.schedule.0.len(),
            serial_len,
            "sym={symmetry} w={workers}: minimal counterexample length"
        );
        let replayed = replay(&s, &v.schedule);
        assert!(
            !replayed.errors().is_empty(),
            "sym={symmetry} w={workers}: schedule does not replay to a real violation"
        );
    }
}

/// A 2-lock scenario with no lock-ordering discipline *in the safe order*
/// verifies clean; reversing the acquisition order on one node produces a
/// genuine cross-lock hold-and-wait deadlock, visible to every engine and
/// worker count.
#[test]
fn cross_lock_hold_and_wait_deadlock_is_detected() {
    let safe = Scenario::star(
        3,
        vec![
            vec![],
            vec![
                Op::Acquire(Mode::Write),
                Op::AcquireOn(1, Mode::Write),
                Op::ReleaseOn(1),
                Op::Release,
            ],
            vec![
                Op::Acquire(Mode::Write),
                Op::AcquireOn(1, Mode::Write),
                Op::ReleaseOn(1),
                Op::Release,
            ],
        ],
        ProtocolConfig::paper(),
    );
    assert_eq!(safe.locks, 2);
    let r = explore_with(&safe, Options::exhaustive(1_000_000));
    assert!(!r.truncated);
    assert!(
        r.verified(),
        "consistent lock order must verify: {:?}",
        r.deadlocks.first()
    );

    let unsafe_order = Scenario::star(
        3,
        vec![
            vec![],
            vec![
                Op::Acquire(Mode::Write),
                Op::AcquireOn(1, Mode::Write),
                Op::ReleaseOn(1),
                Op::Release,
            ],
            vec![
                Op::AcquireOn(1, Mode::Write),
                Op::Acquire(Mode::Write),
                Op::Release,
                Op::ReleaseOn(1),
            ],
        ],
        ProtocolConfig::paper(),
    );
    for workers in [1, 4] {
        for reduced in [false, true] {
            let opts = if reduced {
                Options::reduced(1_000_000)
            } else {
                Options::exhaustive(1_000_000)
            };
            let r = explore_with(&unsafe_order, opts.with_workers(workers));
            assert!(!r.truncated);
            assert!(
                !r.deadlocks.is_empty(),
                "w={workers} reduced={reduced}: cross-lock deadlock missed"
            );
            assert!(
                r.violations.is_empty(),
                "w={workers} reduced={reduced}: hold-and-wait is a liveness bug, not safety"
            );
        }
    }
}

/// Acceptance: the 5-node / 2-lock symmetric scenario truncates the plain
/// serial search at the budget, while the canonical quotient (group order
/// 24) completes under parallel workers with every invariant passing.
#[test]
fn symmetric_two_lock_scenario_needs_the_quotient() {
    let leaf = || {
        vec![
            Op::Acquire(Mode::Write),
            Op::Release,
            Op::AcquireOn(1, Mode::Write),
            Op::ReleaseOn(1),
        ]
    };
    let s = Scenario::star(
        5,
        vec![vec![], leaf(), leaf(), leaf(), leaf()],
        ProtocolConfig::paper(),
    );
    assert_eq!(s.locks, 2);
    assert_eq!(SymmetryGroup::of(&s).order(), 24);

    let budget = 60_000;
    let plain = explore_with(&s, Options::exhaustive(budget));
    assert!(
        plain.truncated,
        "plain search must exceed the budget (finished at {})",
        plain.states
    );

    let sym = explore_with(
        &s,
        Options::exhaustive(budget)
            .with_symmetry(true)
            .with_workers(2),
    );
    assert!(!sym.truncated, "quotient must fit: {} states", sym.states);
    assert!(sym.verified(), "all invariants must pass");
    assert_eq!(sym.group_order, 24);
    assert!(
        sym.states * 10 < budget,
        "quotient ({}) should be far below the budget",
        sym.states
    );

    // The quotient agrees with itself across worker counts.
    let sym8 = explore_with(
        &s,
        Options::exhaustive(budget)
            .with_symmetry(true)
            .with_workers(8),
    );
    assert_eq!(sym8.states, sym.states);
    assert_eq!(sym8.terminal_fingerprints, sym.terminal_fingerprints);
}

/// The wall-clock budget reports truncation rather than hanging: a
/// zero-second budget stops almost immediately and marks the report.
#[test]
fn time_budget_truncates_cleanly() {
    let s = corpus().remove(0).1;
    let r = explore_with(
        &s,
        Options::exhaustive(1_000_000)
            .with_workers(2)
            .with_max_seconds(0.0),
    );
    assert!(r.truncated, "zero time budget must truncate");
}
