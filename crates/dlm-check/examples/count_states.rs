//! Print exploration statistics quoted in `EXPERIMENTS.md`: the
//! partial-order-reduction counts for the readers/writer star, and the
//! symmetry-reduction before/after table (nodes × locks × states ×
//! wall-clock × workers) for symmetric star scenarios.
use dlm_check::{explore_with, Op, Options, Scenario};
use dlm_core::{Mode, ProtocolConfig};

/// A star with `n - 1` identical leaves, each write-locking `locks` lock
/// objects in sequence — maximal symmetry (automorphism group (n-1)!).
fn symmetric_star(n: usize, locks: u32) -> Scenario {
    let mut leaf = Vec::new();
    for lock in 0..locks {
        leaf.push(Op::AcquireOn(lock, Mode::Write));
        leaf.push(Op::ReleaseOn(lock));
    }
    let mut scripts = vec![Vec::new()];
    for _ in 1..n {
        scripts.push(leaf.clone());
    }
    Scenario::star(n, scripts, ProtocolConfig::paper())
}

fn row(label: &str, s: &Scenario, budget: usize, symmetry: bool, workers: usize) {
    let r = explore_with(
        s,
        Options::exhaustive(budget)
            .with_symmetry(symmetry)
            .with_workers(workers),
    );
    let states = if r.truncated {
        format!(">{} (truncated)", r.states)
    } else {
        r.states.to_string()
    };
    println!(
        "{label:28} sym={} w={workers} group={:3} states={states:20} verified={} {:.2}s",
        if symmetry { "on " } else { "off" },
        r.group_order,
        r.verified() && !r.truncated,
        r.elapsed_secs
    );
}

fn main() {
    let s = Scenario::star(
        3,
        vec![
            vec![Op::Acquire(Mode::Read), Op::Release],
            vec![Op::Acquire(Mode::Read), Op::Release],
            vec![Op::Acquire(Mode::Write), Op::Release],
        ],
        ProtocolConfig::paper(),
    );
    let off = explore_with(&s, Options::exhaustive(5_000_000));
    let on = explore_with(&s, Options::reduced(5_000_000));
    println!(
        "exhaustive: states={} transitions={} terminals={} verified={}",
        off.states,
        off.transitions,
        off.terminals,
        off.verified()
    );
    println!(
        "reduced:    states={} transitions={} terminals={} verified={}",
        on.states,
        on.transitions,
        on.terminals,
        on.verified()
    );
    println!(
        "reduction:  {:.2}x fewer distinct states, terminal sets identical: {}",
        off.states as f64 / on.states.max(1) as f64,
        off.terminal_fingerprints == on.terminal_fingerprints
    );

    println!("\nsymmetry reduction (plain BFS vs canonical quotient):");
    let budget = 4_000_000;
    for (nodes, locks) in [(4usize, 1u32), (5, 1), (5, 2), (6, 2)] {
        let s = symmetric_star(nodes, locks);
        let label = format!("star n={nodes} locks={locks}");
        row(&label, &s, budget, false, 1);
        row(&label, &s, budget, true, 1);
        row(&label, &s, budget, true, 2);
    }
}
