use dlm_check::{explore, Op, Scenario};
use dlm_core::{Mode, ProtocolConfig};
fn main() {
    let s = Scenario::star(
        3,
        vec![
            vec![Op::Acquire(Mode::Read), Op::Release],
            vec![Op::Acquire(Mode::Read), Op::Release],
            vec![Op::Acquire(Mode::Write), Op::Release],
        ],
        ProtocolConfig::paper(),
    );
    let r = explore(&s, 5_000_000);
    println!(
        "states={} terminals={} verified={}",
        r.states,
        r.terminals,
        r.verified()
    );
}
