//! Print exploration statistics for the readers/writer star, with and
//! without partial-order reduction (the source of the counts quoted in
//! `EXPERIMENTS.md`).
use dlm_check::{explore_with, Op, Options, Scenario};
use dlm_core::{Mode, ProtocolConfig};

fn main() {
    let s = Scenario::star(
        3,
        vec![
            vec![Op::Acquire(Mode::Read), Op::Release],
            vec![Op::Acquire(Mode::Read), Op::Release],
            vec![Op::Acquire(Mode::Write), Op::Release],
        ],
        ProtocolConfig::paper(),
    );
    let off = explore_with(&s, Options::exhaustive(5_000_000));
    let on = explore_with(&s, Options::reduced(5_000_000));
    println!(
        "exhaustive: states={} transitions={} terminals={} verified={}",
        off.states,
        off.transitions,
        off.terminals,
        off.verified()
    );
    println!(
        "reduced:    states={} transitions={} terminals={} verified={}",
        on.states,
        on.transitions,
        on.terminals,
        on.verified()
    );
    println!(
        "reduction:  {:.2}x fewer distinct states, terminal sets identical: {}",
        off.states as f64 / on.states.max(1) as f64,
        off.terminal_fingerprints == on.terminal_fingerprints
    );
}
