//! Scenario descriptions: an initial tree plus one script per node.

use dlm_core::{HierNode, NodeId, ProtocolConfig};
use dlm_modes::Mode;

/// One scripted application action at a node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Op {
    /// Acquire the lock in a mode (enabled when idle).
    Acquire(Mode),
    /// Release the held lock (enabled while holding, not mid-upgrade).
    Release,
    /// Rule 7 upgrade (enabled while holding `U`).
    Upgrade,
}

impl std::fmt::Display for Op {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Op::Acquire(m) => write!(f, "acquire({m})"),
            Op::Release => write!(f, "release"),
            Op::Upgrade => write!(f, "upgrade"),
        }
    }
}

/// A scenario: an initial tree plus one script per node.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// `parents[i]` is node `i`'s initial parent; exactly one `None` (root).
    pub parents: Vec<Option<u32>>,
    /// Per-node operation scripts, executed in order as they become enabled.
    pub scripts: Vec<Vec<Op>>,
    /// Protocol configuration.
    pub config: ProtocolConfig,
}

impl Scenario {
    /// A star of `n` nodes rooted at node 0 with the given scripts.
    pub fn star(n: usize, scripts: Vec<Vec<Op>>, config: ProtocolConfig) -> Self {
        assert_eq!(scripts.len(), n);
        let mut parents = vec![None];
        parents.extend((1..n).map(|_| Some(0)));
        Scenario {
            parents,
            scripts,
            config,
        }
    }

    /// A chain `0 ← 1 ← 2 ← …` (node 0 is the root); requests from the tail
    /// traverse every intermediate node, exercising forwarding, queueing and
    /// transitive freezing.
    pub fn chain(n: usize, scripts: Vec<Vec<Op>>, config: ProtocolConfig) -> Self {
        assert_eq!(scripts.len(), n);
        let mut parents = vec![None];
        parents.extend((1..n).map(|i| Some(i as u32 - 1)));
        Scenario {
            parents,
            scripts,
            config,
        }
    }

    /// A complete binary tree rooted at node 0 (`parents[i] = (i-1)/2`):
    /// the balanced log(n) topology the paper's message-count argument
    /// assumes.
    pub fn binary_tree(n: usize, scripts: Vec<Vec<Op>>, config: ProtocolConfig) -> Self {
        assert_eq!(scripts.len(), n);
        let parents = (0..n)
            .map(|i| {
                if i == 0 {
                    None
                } else {
                    Some((i as u32 - 1) / 2)
                }
            })
            .collect();
        Scenario {
            parents,
            scripts,
            config,
        }
    }

    /// The initial node states (the root holds the token).
    pub fn initial_nodes(&self) -> Vec<HierNode> {
        self.parents
            .iter()
            .enumerate()
            .map(|(i, p)| match p {
                None => HierNode::with_token(NodeId(i as u32), self.config),
                Some(parent) => HierNode::new(NodeId(i as u32), NodeId(*parent), self.config),
            })
            .collect()
    }
}
