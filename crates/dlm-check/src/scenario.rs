//! Scenario descriptions: an initial tree plus one script per node.

use dlm_core::{HierNode, NodeId, ProtocolConfig};
use dlm_modes::Mode;

/// One scripted application action at a node.
///
/// The short variants (`Acquire`/`Release`/`Upgrade`) act on lock 0 — the
/// common single-lock case reads exactly as before. The `*On` variants name
/// an explicit lock object, letting one node's script interleave operations
/// on several locks (hold-and-wait orderings, multi-lock transactions).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Op {
    /// Acquire lock 0 in a mode (enabled when idle on lock 0).
    Acquire(Mode),
    /// Release the held lock 0 (enabled while holding, not mid-upgrade).
    Release,
    /// Rule 7 upgrade on lock 0 (enabled while holding `U`).
    Upgrade,
    /// Acquire the named lock in a mode.
    AcquireOn(u32, Mode),
    /// Release the named lock.
    ReleaseOn(u32),
    /// Rule 7 upgrade on the named lock.
    UpgradeOn(u32),
    /// This node crashes: its inbound frames are dropped, its outbound
    /// frames stay in flight (stamped with the old epoch, to be fenced),
    /// and the surviving nodes atomically run the DESIGN.md §17 view change
    /// on **every** lock object — epoch bump, tree flatten, token
    /// regeneration when the token died with this node. Enabled while at
    /// least one other node is still alive. Ops after `Crash` in the same
    /// script never run.
    Crash,
}

/// The lock-independent body of an [`Op`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum OpKind {
    Acquire(Mode),
    Release,
    Upgrade,
    Crash,
}

impl Op {
    /// The lock object this op acts on.
    pub fn lock(&self) -> u32 {
        match *self {
            Op::Acquire(_) | Op::Release | Op::Upgrade | Op::Crash => 0,
            Op::AcquireOn(l, _) | Op::ReleaseOn(l) | Op::UpgradeOn(l) => l,
        }
    }

    /// Split into (lock, kind). A `Crash` spans every lock; its nominal
    /// lock is 0.
    pub(crate) fn parts(&self) -> (u32, OpKind) {
        match *self {
            Op::Acquire(m) => (0, OpKind::Acquire(m)),
            Op::Release => (0, OpKind::Release),
            Op::Upgrade => (0, OpKind::Upgrade),
            Op::Crash => (0, OpKind::Crash),
            Op::AcquireOn(l, m) => (l, OpKind::Acquire(m)),
            Op::ReleaseOn(l) => (l, OpKind::Release),
            Op::UpgradeOn(l) => (l, OpKind::Upgrade),
        }
    }
}

impl std::fmt::Display for Op {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let (lock, kind) = self.parts();
        match kind {
            OpKind::Acquire(m) => write!(f, "acquire({m})")?,
            OpKind::Release => write!(f, "release")?,
            OpKind::Upgrade => write!(f, "upgrade")?,
            OpKind::Crash => return write!(f, "crash"),
        }
        if lock != 0 {
            write!(f, "@L{lock}")?;
        }
        Ok(())
    }
}

/// A scenario: an initial tree, one script per node, and the number of
/// independent lock objects the scripts act on.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// `parents[i]` is node `i`'s initial parent; exactly one `None` (root).
    /// Every lock object starts with the same probable-owner tree.
    pub parents: Vec<Option<u32>>,
    /// Per-node operation scripts, executed in order as they become enabled.
    pub scripts: Vec<Vec<Op>>,
    /// Protocol configuration.
    pub config: ProtocolConfig,
    /// Number of independent lock objects (each is a full protocol instance
    /// over the same initial tree; messages of different locks travel on
    /// independent per-lock channels).
    pub locks: u32,
}

impl Scenario {
    /// A star of `n` nodes rooted at node 0 with the given scripts.
    pub fn star(n: usize, scripts: Vec<Vec<Op>>, config: ProtocolConfig) -> Self {
        assert_eq!(scripts.len(), n);
        let mut parents = vec![None];
        parents.extend((1..n).map(|_| Some(0)));
        Scenario {
            parents,
            scripts,
            config,
            locks: 1,
        }
        .fit_locks()
    }

    /// A chain `0 ← 1 ← 2 ← …` (node 0 is the root); requests from the tail
    /// traverse every intermediate node, exercising forwarding, queueing and
    /// transitive freezing.
    pub fn chain(n: usize, scripts: Vec<Vec<Op>>, config: ProtocolConfig) -> Self {
        assert_eq!(scripts.len(), n);
        let mut parents = vec![None];
        parents.extend((1..n).map(|i| Some(i as u32 - 1)));
        Scenario {
            parents,
            scripts,
            config,
            locks: 1,
        }
        .fit_locks()
    }

    /// A complete binary tree rooted at node 0 (`parents[i] = (i-1)/2`):
    /// the balanced log(n) topology the paper's message-count argument
    /// assumes.
    pub fn binary_tree(n: usize, scripts: Vec<Vec<Op>>, config: ProtocolConfig) -> Self {
        assert_eq!(scripts.len(), n);
        let parents = (0..n)
            .map(|i| {
                if i == 0 {
                    None
                } else {
                    Some((i as u32 - 1) / 2)
                }
            })
            .collect();
        Scenario {
            parents,
            scripts,
            config,
            locks: 1,
        }
        .fit_locks()
    }

    /// Widen `locks` to cover every lock the scripts mention (so `AcquireOn`
    /// ops never index out of bounds).
    fn fit_locks(mut self) -> Self {
        let needed = self
            .scripts
            .iter()
            .flatten()
            .map(|op| op.lock() + 1)
            .max()
            .unwrap_or(1);
        self.locks = self.locks.max(needed);
        self
    }

    /// True when any script contains a [`Op::Crash`]. Crash transitions
    /// execute at every survivor at once, so they commute with nothing;
    /// the DPOR search falls back to the exhaustive search for such
    /// scenarios (see [`crate::explore_with`]).
    pub fn has_crash(&self) -> bool {
        self.scripts
            .iter()
            .flatten()
            .any(|op| matches!(op, Op::Crash))
    }

    /// This scenario with (at least) `locks` lock objects.
    pub fn with_locks(mut self, locks: u32) -> Self {
        self.locks = self.locks.max(locks.max(1));
        self
    }

    /// The initial node states of one lock object (the root holds the
    /// token). Every lock starts from an identical tree.
    pub fn initial_nodes(&self) -> Vec<HierNode> {
        self.parents
            .iter()
            .enumerate()
            .map(|(i, p)| match p {
                None => HierNode::with_token(NodeId(i as u32), self.config),
                Some(parent) => HierNode::new(NodeId(i as u32), NodeId(*parent), self.config),
            })
            .collect()
    }
}
