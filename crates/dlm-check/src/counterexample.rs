//! Replayable counterexample schedules: deterministic re-execution,
//! `dlm-trace` event-stream export, and human-readable walkthroughs.

use crate::scenario::Scenario;
use crate::state::{Action, State};
use dlm_core::{AuditError, Message, Mode};
use dlm_trace::{Stamp, TraceRecord, VecRecorder};

/// A replayable schedule: the exact sequence of actions (deliveries and
/// script steps) leading from a scenario's initial state to the reported
/// state. Schedules found by the exhaustive (BFS) search are minimal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schedule(pub Vec<Action>);

impl std::fmt::Display for Schedule {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for (i, a) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, "; ")?;
            }
            write!(f, "{a}")?;
        }
        Ok(())
    }
}

/// The deterministic re-execution of a [`Schedule`].
pub struct Replay {
    /// Every intermediate state: `states[0]` is the initial state,
    /// `states[k]` the state after `schedule.0[..k]`.
    pub states: Vec<State>,
    /// FIFO grant-order violations committed along the way, tagged with
    /// the (1-based) step that committed them.
    pub fifo_errors: Vec<(usize, AuditError)>,
    /// Audit errors in the final state (in-flight–aware safety audit, plus
    /// the quiescent audit when the final state is quiet), across every
    /// lock object.
    pub final_errors: Vec<AuditError>,
}

impl Replay {
    /// All errors the schedule reproduces, in discovery order.
    pub fn errors(&self) -> Vec<AuditError> {
        self.fifo_errors
            .iter()
            .map(|(_, e)| e.clone())
            .chain(self.final_errors.iter().cloned())
            .collect()
    }

    /// The state the schedule ends in.
    pub fn final_state(&self) -> &State {
        self.states.last().expect("at least the initial state")
    }
}

/// Re-execute `schedule` from `scenario`'s initial state. The state machine
/// is deterministic, so this reproduces exactly the states the exploration
/// saw — which is what makes reported schedules genuine counterexamples
/// rather than lossy diagnostics.
pub fn replay(scenario: &Scenario, schedule: &Schedule) -> Replay {
    let mut states = vec![State::initial(scenario)];
    let mut fifo_errors = Vec::new();
    for (k, &action) in schedule.0.iter().enumerate() {
        let step = states.last().unwrap().apply(scenario, action);
        for e in step.fifo_errors {
            fifo_errors.push((k + 1, e));
        }
        states.push(step.state);
    }
    let last = states.last().unwrap();
    let mut final_errors = Vec::new();
    for lock in 0..last.locks() {
        final_errors.extend(last.audit_lock(lock as u32, false));
    }
    if last.quiet() {
        for lock in 0..last.locks() {
            for e in last.audit_lock(lock as u32, true) {
                if !final_errors.contains(&e) {
                    final_errors.push(e);
                }
            }
        }
    }
    Replay {
        states,
        fifo_errors,
        final_errors,
    }
}

/// Replay `schedule` with `dlm-trace` observers attached, producing the
/// protocol event stream of the counterexample execution. Each record's
/// `at` is the 1-based schedule step that emitted it and `lock` the lock
/// object the step executed on, so the stream lines up with the
/// [`walkthrough`] and round-trips through `dlm_trace::jsonl`.
pub fn schedule_trace(scenario: &Scenario, schedule: &Schedule) -> Vec<TraceRecord> {
    let mut recorder = VecRecorder::new();
    let mut state = State::initial(scenario);
    for (k, &action) in schedule.0.iter().enumerate() {
        let lock = match action {
            Action::Deliver { lock, .. } => lock,
            Action::Script { node } => scenario.scripts[node as usize]
                .get(state.pos[node as usize])
                .map(|op| op.lock())
                .unwrap_or(0),
        };
        let mut stamp = Stamp {
            at: (k + 1) as u64,
            lock,
            sink: &mut recorder,
        };
        state = state.apply_observed(scenario, action, &mut stamp).state;
    }
    recorder.into_records()
}

fn mode_str(m: Mode) -> &'static str {
    m.short_name()
}

fn describe_message(m: &Message) -> String {
    match m {
        Message::Request(q) => {
            if q.upgrade {
                format!("request({}, upgrade, from {})", mode_str(q.mode), q.from)
            } else {
                format!("request({}, from {})", mode_str(q.mode), q.from)
            }
        }
        Message::Grant { mode } => format!("grant({})", mode_str(*mode)),
        Message::Token { mode, queue, .. } => {
            format!("token({}, {} queued)", mode_str(*mode), queue.len())
        }
        Message::Release { new_owned, ack } => {
            format!("release(owned→{}, ack {ack})", mode_str(*new_owned))
        }
        Message::SetFrozen { modes } => format!("set-frozen({modes:?})"),
        Message::Recover {
            dead,
            new_root,
            epoch,
            ..
        } => format!("recover(dead {dead}, root {new_root}, epoch {epoch})"),
    }
}

/// An in-flight frame with its epoch stamp (the stamp is shown only when it
/// differs from the pre-crash generation 0, keeping crash-free walkthroughs
/// unchanged).
fn describe_frame(frame: &(u32, Message)) -> String {
    let (epoch, message) = frame;
    if *epoch == 0 {
        describe_message(message)
    } else {
        format!("{}@e{epoch}", describe_message(message))
    }
}

fn describe_action(state: &State, scenario: &Scenario, action: Action) -> String {
    match action {
        Action::Deliver { lock, from, to } => {
            let head = state
                .channels
                .get(&(lock, from, to))
                .and_then(|q| q.front())
                .map(describe_frame)
                .unwrap_or_else(|| "<empty channel>".into());
            if lock == 0 {
                format!("deliver n{from}→n{to}: {head}")
            } else {
                format!("deliver n{from}→n{to}@L{lock}: {head}")
            }
        }
        Action::Script { node } => {
            let op = scenario.scripts[node as usize]
                .get(state.pos[node as usize])
                .map(|op| op.to_string())
                .unwrap_or_else(|| "<script exhausted>".into());
            format!("n{node} runs {op}")
        }
    }
}

fn render_node(state: &State, lock: usize, i: usize) -> String {
    if state.crashed[i] {
        return format!("n{i} ✗dead");
    }
    let n = &state.nodes[lock][i];
    let mut s = format!("n{i}");
    if n.has_token() {
        s.push_str("[T]");
    }
    if n.epoch() != 0 {
        s.push_str(&format!("@e{}", n.epoch()));
    }
    s.push_str(&format!(" held={}", mode_str(n.held())));
    if n.owned() != n.held() {
        s.push_str(&format!(" owned={}", mode_str(n.owned())));
    }
    if let Some(p) = n.pending() {
        if n.pending_is_upgrade() {
            s.push_str(&format!(" pending={}⇑", mode_str(p)));
        } else {
            s.push_str(&format!(" pending={}", mode_str(p)));
        }
    }
    if n.queue_len() > 0 {
        let q: Vec<String> = n
            .queued()
            .map(|r| format!("{}:{}", r.from, mode_str(r.mode)))
            .collect();
        s.push_str(&format!(" queue=[{}]", q.join(",")));
    }
    if !n.frozen().is_empty() {
        s.push_str(&format!(" frozen={:?}", n.frozen()));
    }
    s
}

fn render_state(state: &State) -> String {
    let mut lines = Vec::new();
    for lock in 0..state.locks() {
        let nodes: Vec<String> = (0..state.node_count())
            .map(|i| render_node(state, lock, i))
            .collect();
        if state.locks() == 1 {
            lines.push(nodes.join(" | "));
        } else {
            lines.push(format!("L{lock}: {}", nodes.join(" | ")));
        }
    }
    let mut s = lines.join("\n    ");
    if !state.channels.is_empty() {
        let chans: Vec<String> = state
            .channels
            .iter()
            .map(|(&(l, f, t), q)| {
                let msgs: Vec<String> = q.iter().map(describe_frame).collect();
                if l == 0 {
                    format!("n{f}→n{t}: {}", msgs.join(", "))
                } else {
                    format!("n{f}→n{t}@L{l}: {}", msgs.join(", "))
                }
            })
            .collect();
        s.push_str(&format!("\n    in flight: {}", chans.join(" ⋮ ")));
    }
    s
}

/// Render a schedule as a per-step human-readable walkthrough: each step
/// shows the action taken (with the delivered message or script op spelled
/// out) and the resulting system state, ending with the errors the replay
/// reproduces.
pub fn walkthrough(scenario: &Scenario, schedule: &Schedule) -> String {
    let replayed = replay(scenario, schedule);
    let mut out = String::new();
    out.push_str(&format!("initial: {}\n", render_state(&replayed.states[0])));
    for (k, &action) in schedule.0.iter().enumerate() {
        let pre = &replayed.states[k];
        let post = &replayed.states[k + 1];
        out.push_str(&format!(
            "step {}: {}\n    {}\n",
            k + 1,
            describe_action(pre, scenario, action),
            render_state(post)
        ));
        for (step, e) in &replayed.fifo_errors {
            if *step == k + 1 {
                out.push_str(&format!("    !! {e}\n"));
            }
        }
    }
    if replayed.final_errors.is_empty() && replayed.fifo_errors.is_empty() {
        out.push_str("result: no errors reproduced\n");
    } else {
        for e in &replayed.final_errors {
            out.push_str(&format!("result: {e}\n"));
        }
        for (step, e) in &replayed.fifo_errors {
            out.push_str(&format!("result: step {step}: {e}\n"));
        }
    }
    out
}
