//! `check` — the model-checking CLI.
//!
//! ```text
//! check list                         # named scenarios and their expected outcomes
//! check scenario <name> [options]    # run one named scenario
//! check family [options]             # sweep an auto-enumerated scenario family
//! check gate                         # fast CI gate (seconds, not minutes)
//!
//! options:
//!   --reduction on|off|both   search mode (default both: run and compare)
//!   --budget N                max distinct states (default 4000000)
//!   --max-states N            alias for --budget
//!   --max-seconds S           wall-clock budget (float seconds)
//!   --workers N               parallel exploration workers (default 1)
//!   --symmetry on|off         canonicalize states under node relabeling
//!   --stats                   per-run statistics (steals, dedup, sym hits)
//!   --progress                live states-per-second reporting on stderr
//!   --jsonl PATH              write the first counterexample as dlm-trace JSONL
//!   --topology star|chain|btree   (family) initial tree shape
//!   --nodes N                 (family) node count
//!   --pairs N                 (family) max acquire/release pairs
//!   --modes IR,R,U,IW,W       (family) acquire-mode alphabet
//! ```
//!
//! Exit status: 0 when every run matches its expected outcome (named
//! scenarios carry one; families and ad-hoc runs expect full verification),
//! 1 when a violation / unexpected outcome was found, 2 on usage errors,
//! and 3 when a state or time budget ran out before the search finished —
//! so callers can tell "provably broken" from "not proven within budget".

use dlm_check::enumerate::{Family, Topology};
use dlm_check::{
    explore_with, replay, schedule_trace, walkthrough, CheckReport, Op, Options, Reduction,
    Scenario, Schedule,
};
use dlm_core::{Mode, ProtocolConfig};

const EXIT_OK: i32 = 0;
const EXIT_FAIL: i32 = 1;
const EXIT_USAGE: i32 = 2;
const EXIT_BUDGET: i32 = 3;

/// What a named scenario is supposed to produce.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Expected {
    Verified,
    Deadlock,
    Violation,
}

impl std::fmt::Display for Expected {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Expected::Verified => write!(f, "verified"),
            Expected::Deadlock => write!(f, "deadlock"),
            Expected::Violation => write!(f, "violation"),
        }
    }
}

struct Named {
    name: &'static str,
    about: &'static str,
    expected: Expected,
    /// Heavy scenarios are skipped by the plain gate loop (they need
    /// symmetry reduction to finish in gate time) and exercised by the
    /// dedicated acceptance section instead.
    heavy: bool,
    build: fn() -> Scenario,
}

fn acquire_release(mode: Mode) -> Vec<Op> {
    vec![Op::Acquire(mode), Op::Release]
}

/// The symmetry-acceptance scenario: a 5-node star whose four leaves run the
/// same script against two lock objects. The full state space is far beyond
/// the gate budget, but the scenario's automorphism group has order 4! = 24,
/// so the canonical quotient is gate-sized.
fn two_locks() -> Scenario {
    let leaf = || {
        vec![
            Op::Acquire(Mode::Write),
            Op::Release,
            Op::AcquireOn(1, Mode::Write),
            Op::ReleaseOn(1),
        ]
    };
    Scenario::star(
        5,
        vec![vec![], leaf(), leaf(), leaf(), leaf()],
        ProtocolConfig::paper(),
    )
}

const NAMED: &[Named] = &[
    Named {
        name: "two_writers",
        about: "two W requests race through a shared parent",
        expected: Expected::Verified,
        heavy: false,
        build: || {
            Scenario::star(
                3,
                vec![
                    vec![],
                    acquire_release(Mode::Write),
                    acquire_release(Mode::Write),
                ],
                ProtocolConfig::paper(),
            )
        },
    },
    Named {
        name: "readers_writer",
        about: "two readers and a writer on a star",
        expected: Expected::Verified,
        heavy: false,
        build: || {
            Scenario::star(
                3,
                vec![
                    acquire_release(Mode::Read),
                    acquire_release(Mode::Read),
                    acquire_release(Mode::Write),
                ],
                ProtocolConfig::paper(),
            )
        },
    },
    Named {
        name: "upgrade_race",
        about: "a U→W upgrade racing a reader",
        expected: Expected::Verified,
        heavy: false,
        build: || {
            Scenario::star(
                3,
                vec![
                    vec![],
                    vec![Op::Acquire(Mode::Upgrade), Op::Upgrade, Op::Release],
                    acquire_release(Mode::Read),
                ],
                ProtocolConfig::paper(),
            )
        },
    },
    Named {
        name: "chain_freeze",
        about: "4-node chain: forwarding, freezing, token movement",
        expected: Expected::Verified,
        heavy: false,
        build: || {
            Scenario::chain(
                4,
                vec![
                    acquire_release(Mode::IntentRead),
                    acquire_release(Mode::IntentRead),
                    acquire_release(Mode::Write),
                    acquire_release(Mode::IntentRead),
                ],
                ProtocolConfig::paper(),
            )
        },
    },
    Named {
        name: "grant_release_race",
        about: "release racing a grant from the moved token (ack counters)",
        expected: Expected::Verified,
        heavy: false,
        build: || {
            Scenario::star(
                3,
                vec![
                    acquire_release(Mode::IntentRead),
                    vec![Op::Acquire(Mode::Upgrade), Op::Upgrade, Op::Release],
                    acquire_release(Mode::Read),
                ],
                ProtocolConfig::paper(),
            )
        },
    },
    Named {
        name: "deadlock",
        about: "a reader that never releases strands a writer (liveness)",
        expected: Expected::Deadlock,
        heavy: false,
        build: || {
            Scenario::star(
                3,
                vec![
                    vec![],
                    vec![Op::Acquire(Mode::Read)],
                    acquire_release(Mode::Write),
                ],
                ProtocolConfig::paper(),
            )
        },
    },
    Named {
        name: "seeded_bug",
        about: "test-only stale-release bug: mutual exclusion breaks",
        expected: Expected::Violation,
        heavy: false,
        build: || {
            Scenario::star(
                3,
                vec![
                    acquire_release(Mode::Read),
                    acquire_release(Mode::IntentRead),
                    vec![Op::Acquire(Mode::Upgrade), Op::Upgrade, Op::Release],
                ],
                ProtocolConfig::paper().with_seeded_stale_release_bug(),
            )
        },
    },
    Named {
        name: "two_locks",
        about: "5-node star, 4 symmetric leaves on two lock objects (try --symmetry on)",
        expected: Expected::Verified,
        heavy: true,
        build: two_locks,
    },
];

struct Cli {
    reduction: Option<Reduction>, // None = both
    budget: usize,
    max_seconds: Option<f64>,
    workers: usize,
    symmetry: bool,
    stats: bool,
    progress: bool,
    jsonl: Option<String>,
    topology: Topology,
    nodes: usize,
    pairs: usize,
    modes: Vec<Mode>,
    rest: Vec<String>,
}

impl Default for Cli {
    fn default() -> Self {
        Cli {
            reduction: None,
            budget: 4_000_000,
            max_seconds: None,
            workers: 1,
            symmetry: false,
            stats: false,
            progress: false,
            jsonl: None,
            topology: Topology::Star,
            nodes: 3,
            pairs: 2,
            modes: vec![
                Mode::IntentRead,
                Mode::Read,
                Mode::Upgrade,
                Mode::IntentWrite,
                Mode::Write,
            ],
            rest: Vec::new(),
        }
    }
}

fn usage() -> ! {
    eprintln!("{}", include_usage());
    std::process::exit(EXIT_USAGE);
}

fn include_usage() -> &'static str {
    "usage: check list
       check scenario <name> [--reduction on|off|both] [--budget N] [--max-seconds S]
                      [--workers N] [--symmetry on|off] [--stats] [--progress] [--jsonl PATH]
       check family [--topology star|chain|btree] [--nodes N] [--pairs N] \
[--modes IR,R,..] [--reduction ..] [--budget N] [--workers N] [--symmetry on|off]
       check gate
exit codes: 0 ok, 1 violation/unexpected outcome, 2 usage, 3 budget exhausted"
}

fn parse_on_off(flag: &str, v: &str) -> bool {
    match v {
        "on" => true,
        "off" => false,
        other => {
            eprintln!("{flag} takes on|off, got {other:?}");
            usage()
        }
    }
}

fn parse_cli(args: &[String]) -> Cli {
    let mut cli = Cli::default();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut value = |flag: &str| -> String {
            it.next().cloned().unwrap_or_else(|| {
                eprintln!("missing value for {flag}");
                usage()
            })
        };
        match a.as_str() {
            "--reduction" => {
                cli.reduction = match value("--reduction").as_str() {
                    "on" => Some(Reduction::On),
                    "off" => Some(Reduction::Off),
                    "both" => None,
                    other => {
                        eprintln!("unknown reduction mode {other:?}");
                        usage()
                    }
                }
            }
            "--budget" | "--max-states" => {
                cli.budget = value(a).parse().unwrap_or_else(|_| {
                    eprintln!("{a} takes a number");
                    usage()
                })
            }
            "--max-seconds" => {
                cli.max_seconds = Some(value("--max-seconds").parse().unwrap_or_else(|_| {
                    eprintln!("--max-seconds takes a number of seconds");
                    usage()
                }))
            }
            "--workers" => {
                cli.workers = value("--workers").parse().unwrap_or_else(|_| {
                    eprintln!("--workers takes a number");
                    usage()
                });
                if cli.workers == 0 {
                    eprintln!("--workers must be at least 1");
                    usage()
                }
            }
            "--symmetry" => cli.symmetry = parse_on_off("--symmetry", &value("--symmetry")),
            "--stats" => cli.stats = true,
            "--progress" => cli.progress = true,
            "--jsonl" => cli.jsonl = Some(value("--jsonl")),
            "--topology" => {
                let v = value("--topology");
                cli.topology = Topology::parse(&v).unwrap_or_else(|| {
                    eprintln!("unknown topology {v:?}");
                    usage()
                })
            }
            "--nodes" => {
                cli.nodes = value("--nodes").parse().unwrap_or_else(|_| {
                    eprintln!("--nodes takes a number");
                    usage()
                })
            }
            "--pairs" => {
                cli.pairs = value("--pairs").parse().unwrap_or_else(|_| {
                    eprintln!("--pairs takes a number");
                    usage()
                })
            }
            "--modes" => {
                let v = value("--modes");
                cli.modes = v
                    .split(',')
                    .map(|m| {
                        Mode::from_short_name(m.trim()).unwrap_or_else(|| {
                            eprintln!("unknown mode {m:?}");
                            usage()
                        })
                    })
                    .collect();
            }
            _ if a.starts_with("--") => {
                eprintln!("unknown flag {a:?}");
                usage()
            }
            _ => cli.rest.push(a.clone()),
        }
    }
    cli
}

fn options(cli: &Cli, reduction: Reduction) -> Options {
    let base = match reduction {
        Reduction::Off => Options::exhaustive(cli.budget),
        Reduction::On => Options::reduced(cli.budget),
    };
    let mut opts = base
        .with_workers(cli.workers)
        .with_symmetry(cli.symmetry)
        .with_progress(cli.progress);
    if let Some(s) = cli.max_seconds {
        opts = opts.with_max_seconds(s);
    }
    opts
}

fn print_stats(label: &str, r: &CheckReport, detailed: bool) {
    println!(
        "  [{label}] states={} transitions={} terminals={} violations={} deadlocks={}{}",
        r.states,
        r.transitions,
        r.terminals,
        r.violations.len(),
        r.deadlocks.len(),
        if r.truncated { " (TRUNCATED)" } else { "" },
    );
    if detailed {
        let rate = if r.elapsed_secs > 0.0 {
            r.states as f64 / r.elapsed_secs
        } else {
            0.0
        };
        println!(
            "  [{label}] workers={} group_order={} sym_hits={} dedup_hits={} steals={} \
             dedup_ratio={:.3} elapsed={:.3}s ({:.0} states/s)",
            r.workers,
            r.group_order,
            r.sym_hits,
            r.dedup_hits,
            r.steals,
            r.dedup_ratio(),
            r.elapsed_secs,
            rate,
        );
    }
}

fn outcome(r: &CheckReport) -> Expected {
    if !r.violations.is_empty() {
        Expected::Violation
    } else if !r.deadlocks.is_empty() {
        Expected::Deadlock
    } else {
        Expected::Verified
    }
}

/// The first counterexample schedule a report carries, if any.
fn first_schedule(r: &CheckReport) -> Option<(&'static str, &Schedule)> {
    if let Some(v) = r.violations.first() {
        Some(("violation", &v.schedule))
    } else {
        r.deadlocks.first().map(|d| ("deadlock", &d.schedule))
    }
}

fn show_counterexample(s: &Scenario, r: &CheckReport, jsonl: Option<&str>) -> bool {
    let Some((kind, schedule)) = first_schedule(r) else {
        return true;
    };
    println!(
        "  minimal replayable {kind} schedule ({} steps):",
        schedule.0.len()
    );
    println!("    {schedule}");
    println!("  walkthrough:");
    for line in walkthrough(s, schedule).lines() {
        println!("    {line}");
    }
    let replayed = replay(s, schedule);
    for e in replayed.errors() {
        println!("  reproduced: {e}");
    }
    if let Some(path) = jsonl {
        let records = schedule_trace(s, schedule);
        match std::fs::File::create(path) {
            Ok(f) => match dlm_trace::jsonl::write_jsonl(f, &records) {
                Ok(()) => println!("  wrote {} trace records to {path}", records.len()),
                Err(e) => {
                    eprintln!("  failed to write {path}: {e}");
                    return false;
                }
            },
            Err(e) => {
                eprintln!("  failed to create {path}: {e}");
                return false;
            }
        }
    }
    true
}

/// Run one scenario under the requested mode(s). Returns the reports in
/// the order run, and whether cross-mode agreement held.
fn run_modes(s: &Scenario, cli: &Cli) -> (Vec<(Reduction, CheckReport)>, bool) {
    let modes: &[Reduction] = match cli.reduction {
        Some(Reduction::On) => &[Reduction::On],
        Some(Reduction::Off) => &[Reduction::Off],
        None => &[Reduction::Off, Reduction::On],
    };
    let reports: Vec<(Reduction, CheckReport)> = modes
        .iter()
        .map(|&m| (m, explore_with(s, options(cli, m))))
        .collect();
    let mut agree = true;
    if let [(_, off), (_, on)] = &reports[..] {
        if !off.truncated && !on.truncated {
            if outcome(off) != outcome(on) {
                println!(
                    "  !! modes disagree: off={} on={}",
                    outcome(off),
                    outcome(on)
                );
                agree = false;
            }
            if off.terminal_fingerprints != on.terminal_fingerprints {
                println!("  !! terminal state sets differ between modes");
                agree = false;
            }
            let saved = off.states.saturating_sub(on.states);
            println!(
                "  reduction: {} -> {} distinct states ({:.2}x, {} fewer)",
                off.states,
                on.states,
                off.states as f64 / on.states.max(1) as f64,
                saved
            );
        }
    }
    (reports, agree)
}

fn cmd_list() -> i32 {
    println!("named scenarios (check scenario <name>):");
    for n in NAMED {
        println!(
            "  {:20} expect {:9} — {}",
            n.name,
            n.expected.to_string(),
            n.about
        );
    }
    EXIT_OK
}

fn cmd_scenario(cli: &Cli) -> i32 {
    let Some(name) = cli.rest.first() else {
        eprintln!("check scenario: which one? (see `check list`)");
        return EXIT_USAGE;
    };
    let Some(named) = NAMED.iter().find(|n| n.name == *name) else {
        eprintln!("unknown scenario {name:?} (see `check list`)");
        return EXIT_USAGE;
    };
    let s = (named.build)();
    println!(
        "scenario {} — {} (expect {})",
        named.name, named.about, named.expected
    );
    let (reports, agree) = run_modes(&s, cli);
    let mut ok = agree;
    let mut exhausted = false;
    for (mode, r) in &reports {
        print_stats(&mode.to_string(), r, cli.stats);
        if r.truncated {
            println!(
                "  budget exhausted at {} states ({:.1}s); raise --budget / --max-seconds",
                r.states, r.elapsed_secs
            );
            exhausted = true;
        } else if outcome(r) != named.expected {
            println!("  !! expected {}, got {}", named.expected, outcome(r));
            ok = false;
        }
    }
    if let Some((_, r)) = reports.iter().find(|(_, r)| first_schedule(r).is_some()) {
        if !show_counterexample(&s, r, cli.jsonl.as_deref()) {
            ok = false;
        }
    }
    if !ok {
        println!("FAILED");
        EXIT_FAIL
    } else if exhausted {
        println!("BUDGET EXHAUSTED");
        EXIT_BUDGET
    } else {
        println!("OK");
        EXIT_OK
    }
}

fn cmd_family(cli: &Cli) -> i32 {
    let fam = Family {
        topology: cli.topology,
        nodes: cli.nodes,
        modes: cli.modes.clone(),
        pairs: cli.pairs,
        config: ProtocolConfig::paper(),
    };
    let scenarios = fam.scenarios();
    println!(
        "family {} n={} pairs<={} modes=[{}]: {} scenarios after symmetry dedup",
        fam.topology,
        fam.nodes,
        fam.pairs,
        fam.modes
            .iter()
            .map(|m| m.short_name())
            .collect::<Vec<_>>()
            .join(","),
        scenarios.len()
    );
    let reduction = cli.reduction.unwrap_or(Reduction::Off);
    let mut states = 0usize;
    let mut transitions = 0usize;
    let mut terminals = 0usize;
    let mut truncated = 0usize;
    let mut failed = 0usize;
    for (i, s) in scenarios.iter().enumerate() {
        let r = explore_with(s, options(cli, reduction));
        states += r.states;
        transitions += r.transitions;
        terminals += r.terminals;
        if r.truncated {
            truncated += 1;
            continue;
        }
        if outcome(&r) != Expected::Verified {
            failed += 1;
            println!("scenario #{i}: {}", outcome(&r));
            for (node, script) in s.scripts.iter().enumerate() {
                let ops: Vec<String> = script.iter().map(|o| o.to_string()).collect();
                println!("  n{node}: [{}]", ops.join(", "));
            }
            show_counterexample(s, &r, None);
        }
    }
    println!(
        "swept {} scenarios [{reduction}]: {} states, {} transitions, {} terminals; \
         {} truncated, {} failed",
        scenarios.len(),
        states,
        transitions,
        terminals,
        truncated,
        failed
    );
    if failed > 0 {
        println!("FAILED");
        EXIT_FAIL
    } else if truncated > 0 {
        println!("BUDGET EXHAUSTED");
        EXIT_BUDGET
    } else {
        println!("OK");
        EXIT_OK
    }
}

/// Differential gate: the parallel BFS frontier must agree with the serial
/// one — same canonical state count, same verdict, same minimal schedule
/// length, same terminal fingerprints — at every worker count, with and
/// without symmetry reduction.
fn gate_differential() -> i32 {
    let mut status = EXIT_OK;
    let cases = [
        "two_writers",
        "grant_release_race",
        "deadlock",
        "seeded_bug",
    ];
    for name in cases {
        let n = NAMED.iter().find(|n| n.name == name).unwrap();
        let s = (n.build)();
        for symmetry in [false, true] {
            let base = explore_with(&s, Options::exhaustive(1_000_000).with_symmetry(symmetry));
            let base_len = first_schedule(&base).map(|(_, sch)| sch.0.len());
            for workers in [2, 4, 8] {
                let par = explore_with(
                    &s,
                    Options::exhaustive(1_000_000)
                        .with_symmetry(symmetry)
                        .with_workers(workers),
                );
                let par_len = first_schedule(&par).map(|(_, sch)| sch.0.len());
                let mut ok = true;
                if par.states != base.states {
                    println!(
                        "gate: {name} sym={symmetry} w={workers}: states {} != serial {}",
                        par.states, base.states
                    );
                    ok = false;
                }
                if outcome(&par) != outcome(&base) {
                    println!(
                        "gate: {name} sym={symmetry} w={workers}: outcome {} != serial {}",
                        outcome(&par),
                        outcome(&base)
                    );
                    ok = false;
                }
                if par.terminal_fingerprints != base.terminal_fingerprints {
                    println!("gate: {name} sym={symmetry} w={workers}: terminal sets differ");
                    ok = false;
                }
                if par_len != base_len {
                    println!(
                        "gate: {name} sym={symmetry} w={workers}: schedule length {par_len:?} \
                         != serial {base_len:?}"
                    );
                    ok = false;
                }
                if !ok {
                    status = EXIT_FAIL;
                }
            }
        }
        println!(
            "gate: differential {name:20} {}",
            if status == EXIT_OK { "ok" } else { "FAILED" }
        );
    }
    status
}

/// Acceptance gate: the 5-node / 2-lock symmetric scenario is out of reach
/// for the plain serial search at the gate budget, but the canonical
/// quotient (group order 24) checks clean under parallel workers.
fn gate_acceptance() -> i32 {
    let s = two_locks();
    let budget = 60_000;
    let plain = explore_with(&s, Options::exhaustive(budget));
    if !plain.truncated {
        println!(
            "gate: two_locks: plain search finished in {} states — scenario too small \
             to demonstrate reduction",
            plain.states
        );
        return EXIT_FAIL;
    }
    let sym = explore_with(
        &s,
        Options::exhaustive(budget)
            .with_symmetry(true)
            .with_workers(2),
    );
    if sym.truncated {
        println!(
            "gate: two_locks: symmetric search still truncated at {} states",
            sym.states
        );
        return EXIT_FAIL;
    }
    if !sym.verified() {
        println!("gate: two_locks: expected verified, got {}", outcome(&sym));
        return EXIT_FAIL;
    }
    println!(
        "gate: acceptance two_locks    ok (plain truncated at {}, canonical quotient {} states, \
         group order {}, {:.1}s)",
        plain.states, sym.states, sym.group_order, sym.elapsed_secs
    );
    EXIT_OK
}

/// The CI gate: every named scenario in both modes (cross-checked), a small
/// star family sweep, the serial-vs-parallel differential, and the symmetry
/// acceptance scenario. Budgets are sized to finish in seconds.
fn cmd_gate() -> i32 {
    let mut status = EXIT_OK;
    for n in NAMED.iter().filter(|n| !n.heavy) {
        let cli = Cli {
            budget: 1_000_000,
            modes: Vec::new(),
            rest: vec![n.name.to_string()],
            ..Cli::default()
        };
        let s = (n.build)();
        let (reports, agree) = run_modes(&s, &cli);
        let mut ok = agree;
        for (mode, r) in &reports {
            if r.truncated || outcome(r) != n.expected {
                println!(
                    "gate: {} [{mode}]: expected {}, got {}",
                    n.name,
                    n.expected,
                    outcome(r)
                );
                ok = false;
            }
        }
        println!("gate: {:20} {}", n.name, if ok { "ok" } else { "FAILED" });
        if !ok {
            status = EXIT_FAIL;
        }
    }
    let fam_cli = Cli {
        reduction: Some(Reduction::Off),
        budget: 200_000,
        ..Cli::default()
    };
    if cmd_family(&fam_cli) != EXIT_OK {
        status = EXIT_FAIL;
    }
    if gate_differential() != EXIT_OK {
        status = EXIT_FAIL;
    }
    if gate_acceptance() != EXIT_OK {
        status = EXIT_FAIL;
    }
    if status == EXIT_OK {
        println!("gate: OK");
    } else {
        println!("gate: FAILED");
    }
    status
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else { usage() };
    let cli = parse_cli(&args[1..]);
    let status = match cmd.as_str() {
        "list" => cmd_list(),
        "scenario" => cmd_scenario(&cli),
        "family" => cmd_family(&cli),
        "gate" => cmd_gate(),
        _ => {
            eprintln!("unknown command {cmd:?}");
            usage()
        }
    };
    std::process::exit(status);
}
