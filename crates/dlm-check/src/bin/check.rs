//! `check` — the model-checking CLI.
//!
//! ```text
//! check list                         # named scenarios and their expected outcomes
//! check scenario <name> [options]    # run one named scenario
//! check family [options]             # sweep an auto-enumerated scenario family
//! check gate                         # fast CI gate (seconds, not minutes)
//!
//! options:
//!   --reduction on|off|both   search mode (default both: run and compare)
//!   --budget N                max distinct states (default 4000000)
//!   --jsonl PATH              write the first counterexample as dlm-trace JSONL
//!   --topology star|chain|btree   (family) initial tree shape
//!   --nodes N                 (family) node count
//!   --pairs N                 (family) max acquire/release pairs
//!   --modes IR,R,U,IW,W       (family) acquire-mode alphabet
//! ```
//!
//! Exit status is 0 when every run matches its expected outcome (named
//! scenarios carry one; families and ad-hoc runs expect full verification)
//! and 1 otherwise, so the bin doubles as a CI gate.

use dlm_check::enumerate::{Family, Topology};
use dlm_check::{
    explore_with, replay, schedule_trace, walkthrough, CheckReport, Op, Options, Reduction,
    Scenario, Schedule,
};
use dlm_core::{Mode, ProtocolConfig};

/// What a named scenario is supposed to produce.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Expected {
    Verified,
    Deadlock,
    Violation,
}

impl std::fmt::Display for Expected {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Expected::Verified => write!(f, "verified"),
            Expected::Deadlock => write!(f, "deadlock"),
            Expected::Violation => write!(f, "violation"),
        }
    }
}

struct Named {
    name: &'static str,
    about: &'static str,
    expected: Expected,
    build: fn() -> Scenario,
}

fn acquire_release(mode: Mode) -> Vec<Op> {
    vec![Op::Acquire(mode), Op::Release]
}

const NAMED: &[Named] = &[
    Named {
        name: "two_writers",
        about: "two W requests race through a shared parent",
        expected: Expected::Verified,
        build: || {
            Scenario::star(
                3,
                vec![
                    vec![],
                    acquire_release(Mode::Write),
                    acquire_release(Mode::Write),
                ],
                ProtocolConfig::paper(),
            )
        },
    },
    Named {
        name: "readers_writer",
        about: "two readers and a writer on a star",
        expected: Expected::Verified,
        build: || {
            Scenario::star(
                3,
                vec![
                    acquire_release(Mode::Read),
                    acquire_release(Mode::Read),
                    acquire_release(Mode::Write),
                ],
                ProtocolConfig::paper(),
            )
        },
    },
    Named {
        name: "upgrade_race",
        about: "a U→W upgrade racing a reader",
        expected: Expected::Verified,
        build: || {
            Scenario::star(
                3,
                vec![
                    vec![],
                    vec![Op::Acquire(Mode::Upgrade), Op::Upgrade, Op::Release],
                    acquire_release(Mode::Read),
                ],
                ProtocolConfig::paper(),
            )
        },
    },
    Named {
        name: "chain_freeze",
        about: "4-node chain: forwarding, freezing, token movement",
        expected: Expected::Verified,
        build: || {
            Scenario::chain(
                4,
                vec![
                    acquire_release(Mode::IntentRead),
                    acquire_release(Mode::IntentRead),
                    acquire_release(Mode::Write),
                    acquire_release(Mode::IntentRead),
                ],
                ProtocolConfig::paper(),
            )
        },
    },
    Named {
        name: "grant_release_race",
        about: "release racing a grant from the moved token (ack counters)",
        expected: Expected::Verified,
        build: || {
            Scenario::star(
                3,
                vec![
                    acquire_release(Mode::IntentRead),
                    vec![Op::Acquire(Mode::Upgrade), Op::Upgrade, Op::Release],
                    acquire_release(Mode::Read),
                ],
                ProtocolConfig::paper(),
            )
        },
    },
    Named {
        name: "deadlock",
        about: "a reader that never releases strands a writer (liveness)",
        expected: Expected::Deadlock,
        build: || {
            Scenario::star(
                3,
                vec![
                    vec![],
                    vec![Op::Acquire(Mode::Read)],
                    acquire_release(Mode::Write),
                ],
                ProtocolConfig::paper(),
            )
        },
    },
    Named {
        name: "seeded_bug",
        about: "test-only stale-release bug: mutual exclusion breaks",
        expected: Expected::Violation,
        build: || {
            Scenario::star(
                3,
                vec![
                    acquire_release(Mode::Read),
                    acquire_release(Mode::IntentRead),
                    vec![Op::Acquire(Mode::Upgrade), Op::Upgrade, Op::Release],
                ],
                ProtocolConfig::paper().with_seeded_stale_release_bug(),
            )
        },
    },
];

struct Cli {
    reduction: Option<Reduction>, // None = both
    budget: usize,
    jsonl: Option<String>,
    topology: Topology,
    nodes: usize,
    pairs: usize,
    modes: Vec<Mode>,
    rest: Vec<String>,
}

fn usage() -> ! {
    eprintln!("{}", include_usage());
    std::process::exit(2);
}

fn include_usage() -> &'static str {
    "usage: check list
       check scenario <name> [--reduction on|off|both] [--budget N] [--jsonl PATH]
       check family [--topology star|chain|btree] [--nodes N] [--pairs N] \
[--modes IR,R,..] [--reduction ..] [--budget N]
       check gate"
}

fn parse_cli(args: &[String]) -> Cli {
    let mut cli = Cli {
        reduction: None,
        budget: 4_000_000,
        jsonl: None,
        topology: Topology::Star,
        nodes: 3,
        pairs: 2,
        modes: vec![
            Mode::IntentRead,
            Mode::Read,
            Mode::Upgrade,
            Mode::IntentWrite,
            Mode::Write,
        ],
        rest: Vec::new(),
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut value = |flag: &str| -> String {
            it.next().cloned().unwrap_or_else(|| {
                eprintln!("missing value for {flag}");
                usage()
            })
        };
        match a.as_str() {
            "--reduction" => {
                cli.reduction = match value("--reduction").as_str() {
                    "on" => Some(Reduction::On),
                    "off" => Some(Reduction::Off),
                    "both" => None,
                    other => {
                        eprintln!("unknown reduction mode {other:?}");
                        usage()
                    }
                }
            }
            "--budget" => {
                cli.budget = value("--budget").parse().unwrap_or_else(|_| {
                    eprintln!("--budget takes a number");
                    usage()
                })
            }
            "--jsonl" => cli.jsonl = Some(value("--jsonl")),
            "--topology" => {
                let v = value("--topology");
                cli.topology = Topology::parse(&v).unwrap_or_else(|| {
                    eprintln!("unknown topology {v:?}");
                    usage()
                })
            }
            "--nodes" => {
                cli.nodes = value("--nodes").parse().unwrap_or_else(|_| {
                    eprintln!("--nodes takes a number");
                    usage()
                })
            }
            "--pairs" => {
                cli.pairs = value("--pairs").parse().unwrap_or_else(|_| {
                    eprintln!("--pairs takes a number");
                    usage()
                })
            }
            "--modes" => {
                let v = value("--modes");
                cli.modes = v
                    .split(',')
                    .map(|m| {
                        Mode::from_short_name(m.trim()).unwrap_or_else(|| {
                            eprintln!("unknown mode {m:?}");
                            usage()
                        })
                    })
                    .collect();
            }
            _ if a.starts_with("--") => {
                eprintln!("unknown flag {a:?}");
                usage()
            }
            _ => cli.rest.push(a.clone()),
        }
    }
    cli
}

fn options(reduction: Reduction, budget: usize) -> Options {
    match reduction {
        Reduction::Off => Options::exhaustive(budget),
        Reduction::On => Options::reduced(budget),
    }
}

fn print_stats(label: &str, r: &CheckReport) {
    println!(
        "  [{label}] states={} transitions={} terminals={} violations={} deadlocks={}{}",
        r.states,
        r.transitions,
        r.terminals,
        r.violations.len(),
        r.deadlocks.len(),
        if r.truncated { " (TRUNCATED)" } else { "" },
    );
}

fn outcome(r: &CheckReport) -> Expected {
    if !r.violations.is_empty() {
        Expected::Violation
    } else if !r.deadlocks.is_empty() {
        Expected::Deadlock
    } else {
        Expected::Verified
    }
}

/// The first counterexample schedule a report carries, if any.
fn first_schedule(r: &CheckReport) -> Option<(&'static str, &Schedule)> {
    if let Some(v) = r.violations.first() {
        Some(("violation", &v.schedule))
    } else {
        r.deadlocks.first().map(|d| ("deadlock", &d.schedule))
    }
}

fn show_counterexample(s: &Scenario, r: &CheckReport, jsonl: Option<&str>) -> bool {
    let Some((kind, schedule)) = first_schedule(r) else {
        return true;
    };
    println!(
        "  minimal replayable {kind} schedule ({} steps):",
        schedule.0.len()
    );
    println!("    {schedule}");
    println!("  walkthrough:");
    for line in walkthrough(s, schedule).lines() {
        println!("    {line}");
    }
    let replayed = replay(s, schedule);
    for e in replayed.errors() {
        println!("  reproduced: {e}");
    }
    if let Some(path) = jsonl {
        let records = schedule_trace(s, schedule);
        match std::fs::File::create(path) {
            Ok(f) => match dlm_trace::jsonl::write_jsonl(f, &records) {
                Ok(()) => println!("  wrote {} trace records to {path}", records.len()),
                Err(e) => {
                    eprintln!("  failed to write {path}: {e}");
                    return false;
                }
            },
            Err(e) => {
                eprintln!("  failed to create {path}: {e}");
                return false;
            }
        }
    }
    true
}

/// Run one scenario under the requested mode(s). Returns the reports in
/// the order run, and whether cross-mode agreement held.
fn run_modes(s: &Scenario, cli: &Cli) -> (Vec<(Reduction, CheckReport)>, bool) {
    let modes: &[Reduction] = match cli.reduction {
        Some(Reduction::On) => &[Reduction::On],
        Some(Reduction::Off) => &[Reduction::Off],
        None => &[Reduction::Off, Reduction::On],
    };
    let reports: Vec<(Reduction, CheckReport)> = modes
        .iter()
        .map(|&m| (m, explore_with(s, options(m, cli.budget))))
        .collect();
    let mut agree = true;
    if let [(_, off), (_, on)] = &reports[..] {
        if !off.truncated && !on.truncated {
            if outcome(off) != outcome(on) {
                println!(
                    "  !! modes disagree: off={} on={}",
                    outcome(off),
                    outcome(on)
                );
                agree = false;
            }
            if off.terminal_fingerprints != on.terminal_fingerprints {
                println!("  !! terminal state sets differ between modes");
                agree = false;
            }
            let saved = off.states.saturating_sub(on.states);
            println!(
                "  reduction: {} -> {} distinct states ({:.2}x, {} fewer)",
                off.states,
                on.states,
                off.states as f64 / on.states.max(1) as f64,
                saved
            );
        }
    }
    (reports, agree)
}

fn cmd_list() -> i32 {
    println!("named scenarios (check scenario <name>):");
    for n in NAMED {
        println!(
            "  {:20} expect {:9} — {}",
            n.name,
            n.expected.to_string(),
            n.about
        );
    }
    0
}

fn cmd_scenario(cli: &Cli) -> i32 {
    let Some(name) = cli.rest.first() else {
        eprintln!("check scenario: which one? (see `check list`)");
        return 2;
    };
    let Some(named) = NAMED.iter().find(|n| n.name == *name) else {
        eprintln!("unknown scenario {name:?} (see `check list`)");
        return 2;
    };
    let s = (named.build)();
    println!(
        "scenario {} — {} (expect {})",
        named.name, named.about, named.expected
    );
    let (reports, agree) = run_modes(&s, cli);
    let mut ok = agree;
    for (mode, r) in &reports {
        print_stats(&mode.to_string(), r);
        if r.truncated {
            println!("  !! truncated at {} states; raise --budget", r.states);
            ok = false;
        } else if outcome(r) != named.expected {
            println!("  !! expected {}, got {}", named.expected, outcome(r));
            ok = false;
        }
    }
    if let Some((_, r)) = reports.iter().find(|(_, r)| first_schedule(r).is_some()) {
        if !show_counterexample(&s, r, cli.jsonl.as_deref()) {
            ok = false;
        }
    }
    println!("{}", if ok { "OK" } else { "FAILED" });
    if ok {
        0
    } else {
        1
    }
}

fn cmd_family(cli: &Cli) -> i32 {
    let fam = Family {
        topology: cli.topology,
        nodes: cli.nodes,
        modes: cli.modes.clone(),
        pairs: cli.pairs,
        config: ProtocolConfig::paper(),
    };
    let scenarios = fam.scenarios();
    println!(
        "family {} n={} pairs<={} modes=[{}]: {} scenarios after symmetry dedup",
        fam.topology,
        fam.nodes,
        fam.pairs,
        fam.modes
            .iter()
            .map(|m| m.short_name())
            .collect::<Vec<_>>()
            .join(","),
        scenarios.len()
    );
    let reduction = cli.reduction.unwrap_or(Reduction::Off);
    let mut states = 0usize;
    let mut transitions = 0usize;
    let mut terminals = 0usize;
    let mut truncated = 0usize;
    let mut failed = 0usize;
    for (i, s) in scenarios.iter().enumerate() {
        let r = explore_with(s, options(reduction, cli.budget));
        states += r.states;
        transitions += r.transitions;
        terminals += r.terminals;
        if r.truncated {
            truncated += 1;
            continue;
        }
        if outcome(&r) != Expected::Verified {
            failed += 1;
            println!("scenario #{i}: {}", outcome(&r));
            for (node, script) in s.scripts.iter().enumerate() {
                let ops: Vec<String> = script.iter().map(|o| o.to_string()).collect();
                println!("  n{node}: [{}]", ops.join(", "));
            }
            show_counterexample(s, &r, None);
        }
    }
    println!(
        "swept {} scenarios [{reduction}]: {} states, {} transitions, {} terminals; \
         {} truncated, {} failed",
        scenarios.len(),
        states,
        transitions,
        terminals,
        truncated,
        failed
    );
    if failed == 0 {
        println!("OK");
        0
    } else {
        println!("FAILED");
        1
    }
}

/// The CI gate: every named scenario in both modes (cross-checked), plus a
/// small star family sweep. Budgets are sized to finish in seconds.
fn cmd_gate() -> i32 {
    let mut status = 0;
    for n in NAMED {
        let cli = Cli {
            reduction: None,
            budget: 1_000_000,
            jsonl: None,
            topology: Topology::Star,
            nodes: 3,
            pairs: 2,
            modes: Vec::new(),
            rest: vec![n.name.to_string()],
        };
        let s = (n.build)();
        let (reports, agree) = run_modes(&s, &cli);
        let mut ok = agree;
        for (mode, r) in &reports {
            if r.truncated || outcome(r) != n.expected {
                println!(
                    "gate: {} [{mode}]: expected {}, got {}",
                    n.name,
                    n.expected,
                    outcome(r)
                );
                ok = false;
            }
        }
        println!("gate: {:20} {}", n.name, if ok { "ok" } else { "FAILED" });
        if !ok {
            status = 1;
        }
    }
    let fam_cli = Cli {
        reduction: Some(Reduction::Off),
        budget: 200_000,
        jsonl: None,
        topology: Topology::Star,
        nodes: 3,
        pairs: 2,
        modes: vec![
            Mode::IntentRead,
            Mode::Read,
            Mode::Upgrade,
            Mode::IntentWrite,
            Mode::Write,
        ],
        rest: Vec::new(),
    };
    if cmd_family(&fam_cli) != 0 {
        status = 1;
    }
    if status == 0 {
        println!("gate: OK");
    } else {
        println!("gate: FAILED");
    }
    status
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else { usage() };
    let cli = parse_cli(&args[1..]);
    let status = match cmd.as_str() {
        "list" => cmd_list(),
        "scenario" => cmd_scenario(&cli),
        "family" => cmd_family(&cli),
        "gate" => cmd_gate(),
        _ => {
            eprintln!("unknown command {cmd:?}");
            usage()
        }
    };
    std::process::exit(status);
}
