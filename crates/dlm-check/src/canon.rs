//! Symmetry reduction: canonical state fingerprints under node relabeling.
//!
//! Two system states that differ only by a permutation of *interchangeable*
//! nodes satisfy exactly the same invariants — mutual exclusion, copyset
//! consistency, FIFO grant order and deadlock-freedom are all preserved by a
//! bijective renaming of node identities, because `dlm-core` only ever
//! compares [`NodeId`]s for equality (never for order) and every per-node
//! `FlatMap`/copyset re-sorts under the new labels. Exploring one member of
//! each equivalence class therefore suffices (the stateright
//! `Representative` idiom); the class representative is the member with the
//! smallest structural fingerprint.
//!
//! Interchangeable means: swapping the nodes maps the *initial* state to
//! itself — same parent (probable-owner) tree and same scripts. The set of
//! such permutations forms a group (the automorphism group of the labelled
//! scenario), and the canonicalization map is constant on orbits precisely
//! because groups are closed under composition and inverse: for any group
//! member σ, `{π ∘ σ | π ∈ G} = G`, hence the min over the orbit of `σ(s)`
//! equals the min over the orbit of `s`.

use crate::scenario::Scenario;
use crate::state::State;
use dlm_core::{Fingerprint, NodeId};
use std::collections::BTreeMap;

/// Enumerating automorphisms is brute force over all `n!` candidate
/// permutations, so it is capped at a node count where that stays
/// instantaneous (8! = 40320 candidates, each checked in O(n + script
/// length)). Scenarios beyond the cap get the trivial group — sound, just
/// unreduced.
const MAX_BRUTE_NODES: usize = 8;

/// The automorphism group of a scenario's labelled initial state: every node
/// permutation that fixes the parent tree and the script assignment.
///
/// Computed once per scenario and shared (read-only) by all exploration
/// workers. The identity is stored implicitly; `perms` holds only the
/// non-identity members.
#[derive(Debug, Clone)]
pub struct SymmetryGroup {
    /// Non-identity automorphisms, each as `perm[i] = new label of node i`.
    perms: Vec<Vec<u32>>,
}

impl SymmetryGroup {
    /// The trivial group (no reduction; canonical fingerprint = raw
    /// fingerprint).
    pub fn trivial() -> Self {
        SymmetryGroup { perms: Vec::new() }
    }

    /// Compute the automorphism group of `scenario`: all permutations π with
    /// `scripts[π(i)] == scripts[i]` and `parents[π(i)] == π(parents[i])`
    /// (so the root maps to the root). Falls back to the trivial group above
    /// [`MAX_BRUTE_NODES`] nodes.
    pub fn of(scenario: &Scenario) -> Self {
        let n = scenario.parents.len();
        if n > MAX_BRUTE_NODES {
            return SymmetryGroup::trivial();
        }
        let mut perms = Vec::new();
        let mut perm: Vec<u32> = (0..n as u32).collect();
        // Heap's algorithm, checking each permutation against the scenario.
        let mut c = vec![0usize; n];
        if is_automorphism(scenario, &perm) && !is_identity(&perm) {
            perms.push(perm.clone());
        }
        let mut i = 0;
        while i < n {
            if c[i] < i {
                if i % 2 == 0 {
                    perm.swap(0, i);
                } else {
                    perm.swap(c[i], i);
                }
                if is_automorphism(scenario, &perm) && !is_identity(&perm) {
                    perms.push(perm.clone());
                }
                c[i] += 1;
                i = 0;
            } else {
                c[i] = 0;
                i += 1;
            }
        }
        perms.sort_unstable();
        SymmetryGroup { perms }
    }

    /// Group order, counting the identity.
    pub fn order(&self) -> usize {
        self.perms.len() + 1
    }

    /// True if only the identity is present (no reduction possible).
    pub fn is_trivial(&self) -> bool {
        self.perms.is_empty()
    }

    /// The non-identity members (for tests and diagnostics).
    pub fn members(&self) -> impl Iterator<Item = &[u32]> + '_ {
        self.perms.iter().map(|p| p.as_slice())
    }
}

fn is_identity(perm: &[u32]) -> bool {
    perm.iter().enumerate().all(|(i, &p)| p == i as u32)
}

/// Check that `perm` maps the scenario's labelled initial state to itself.
fn is_automorphism(scenario: &Scenario, perm: &[u32]) -> bool {
    scenario.parents.iter().enumerate().all(|(i, parent)| {
        let mapped = parent.map(|p| perm[p as usize]);
        scenario.parents[perm[i] as usize] == mapped
    }) && scenario
        .scripts
        .iter()
        .enumerate()
        .all(|(i, script)| scenario.scripts[perm[i] as usize] == *script)
}

/// Relabel every node identity in `state` through `perm` (node `i` becomes
/// node `perm[i]`). For an automorphism this yields a reachable, invariant-
/// equivalent state; the function itself is well-defined for any bijection.
pub fn permute_state(state: &State, perm: &[u32]) -> State {
    let map = |id: NodeId| NodeId(perm[id.0 as usize]);
    let nodes = state
        .nodes
        .iter()
        .map(|lock_nodes| {
            let mut out = lock_nodes.clone();
            for node in lock_nodes {
                out[perm[node.id().0 as usize] as usize] = node.relabeled(map);
            }
            out
        })
        .collect();
    let mut channels = BTreeMap::new();
    for (&(lock, from, to), q) in &state.channels {
        channels.insert(
            (lock, perm[from as usize], perm[to as usize]),
            q.iter()
                .map(|(epoch, m)| (*epoch, m.relabeled(map)))
                .collect(),
        );
    }
    let mut pos = state.pos.clone();
    for (i, &p) in state.pos.iter().enumerate() {
        pos[perm[i] as usize] = p;
    }
    let mut crashed = state.crashed.clone();
    for (i, &c) in state.crashed.iter().enumerate() {
        crashed[perm[i] as usize] = c;
    }
    State {
        nodes,
        channels,
        pos,
        crashed,
    }
}

/// Canonical (symmetry-quotient) fingerprinting.
pub trait Canonicalize {
    /// The minimum fingerprint over this state's orbit under `group`: equal
    /// for any two states that are node-permutations of each other, so the
    /// seen-set keyed by it explores one representative per orbit.
    fn canonical_fingerprint(&self, group: &SymmetryGroup) -> Fingerprint;
}

impl Canonicalize for State {
    fn canonical_fingerprint(&self, group: &SymmetryGroup) -> Fingerprint {
        let mut min = self.fingerprint();
        for perm in group.members() {
            let fp = permute_state(self, perm).fingerprint();
            if fp < min {
                min = fp;
            }
        }
        min
    }
}
