//! The exploration drivers: exhaustive BFS and the DPOR-reduced search.

use crate::counterexample::Schedule;
use crate::scenario::Scenario;
use crate::state::{Action, State};
use dlm_core::{audit, frozen_residue, AuditError, Fingerprint};
use std::collections::{BTreeSet, HashMap, VecDeque};

/// Which state-space reduction to apply.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Reduction {
    /// Explore every interleaving (breadth-first, so counterexample
    /// schedules are minimal).
    #[default]
    Off,
    /// Sleep-set–style dynamic partial-order reduction: explore one
    /// representative per Mazurkiewicz trace class, exploiting the
    /// commutativity of deliveries on disjoint channels (see
    /// [`crate::dpor`] for the dependence relation and soundness notes).
    On,
}

impl std::fmt::Display for Reduction {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Reduction::Off => write!(f, "off"),
            Reduction::On => write!(f, "on"),
        }
    }
}

/// Exploration options.
#[derive(Debug, Clone, Copy)]
pub struct Options {
    /// Budget on distinct states; exceeding it truncates the run (exactly:
    /// a truncated report never counts more than `max_states` states).
    pub max_states: usize,
    /// Reduction mode.
    pub reduction: Reduction,
    /// Optional budget on executed transitions (the reduced search can
    /// re-traverse states; this bounds total work). `None` = derived as
    /// `32 × max_states`.
    pub max_transitions: Option<usize>,
}

impl Options {
    /// Exhaustive exploration with the given state budget.
    pub fn exhaustive(max_states: usize) -> Self {
        Options {
            max_states,
            reduction: Reduction::Off,
            max_transitions: None,
        }
    }

    /// Reduced exploration with the given state budget.
    pub fn reduced(max_states: usize) -> Self {
        Options {
            max_states,
            reduction: Reduction::On,
            max_transitions: None,
        }
    }

    pub(crate) fn transition_budget(&self) -> usize {
        self.max_transitions
            .unwrap_or_else(|| self.max_states.saturating_mul(32))
    }
}

/// A safety violation with its replayable counterexample.
#[derive(Debug, Clone)]
pub struct Violation {
    /// The audit errors observed in (or on the transition into) the state.
    pub errors: Vec<AuditError>,
    /// Actions from the initial state into the violating state. Minimal
    /// (shortest possible) when found with [`Reduction::Off`]; a valid
    /// witness path when found with [`Reduction::On`].
    pub schedule: Schedule,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "unsafe after {} steps: ", self.schedule.0.len())?;
        for (i, e) in self.errors.iter().enumerate() {
            if i > 0 {
                write!(f, "; ")?;
            }
            write!(f, "{e}")?;
        }
        Ok(())
    }
}

/// A deadlock: a terminal state with unfinished scripts or waiting nodes.
#[derive(Debug, Clone)]
pub struct Deadlock {
    /// Nodes whose scripts did not run to completion.
    pub stuck_scripts: Vec<usize>,
    /// Nodes with a pending, never-granted request.
    pub waiting: Vec<u32>,
    /// Actions from the initial state into the deadlocked terminal state.
    pub schedule: Schedule,
}

impl std::fmt::Display for Deadlock {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "deadlock after {} steps: scripts stuck at {:?}, nodes waiting {:?}",
            self.schedule.0.len(),
            self.stuck_scripts,
            self.waiting
        )
    }
}

/// Result of an exploration.
#[derive(Debug, Clone)]
pub struct CheckReport {
    /// Distinct states visited.
    pub states: usize,
    /// Transitions executed (the reduced search may execute several
    /// transitions into one already-counted state).
    pub transitions: usize,
    /// Terminal (quiescent) states reached.
    pub terminals: usize,
    /// Safety violations (empty = every explored state is safe), each with
    /// a replayable counterexample schedule. Capped at
    /// [`CheckReport::MAX_RECORDED`] distinct violating states.
    pub violations: Vec<Violation>,
    /// Deadlocks, each with a replayable schedule. Same cap.
    pub deadlocks: Vec<Deadlock>,
    /// True if the exploration hit a budget before completing.
    pub truncated: bool,
    /// The reduction mode this report was produced under.
    pub reduction: Reduction,
    /// Fingerprints of all terminal states (the reduction-soundness
    /// property tests compare these across reduction modes).
    pub terminal_fingerprints: BTreeSet<Fingerprint>,
}

impl CheckReport {
    /// Cap on recorded violations/deadlocks (counting continues; only the
    /// stored schedules are bounded).
    pub const MAX_RECORDED: usize = 32;

    fn new(reduction: Reduction) -> Self {
        CheckReport {
            states: 0,
            transitions: 0,
            terminals: 0,
            violations: Vec::new(),
            deadlocks: Vec::new(),
            truncated: false,
            reduction,
            terminal_fingerprints: BTreeSet::new(),
        }
    }

    /// True when the scenario is fully verified: no violations, no
    /// deadlocks, and the exploration completed within budget.
    pub fn verified(&self) -> bool {
        self.violations.is_empty() && self.deadlocks.is_empty() && !self.truncated
    }
}

/// Exhaustively explore `scenario`; `max_states` bounds the search (a
/// generous budget for 3–4 node scenarios is 1–5 million).
///
/// Equivalent to [`explore_with`] under [`Options::exhaustive`].
pub fn explore(scenario: &Scenario, max_states: usize) -> CheckReport {
    explore_with(scenario, Options::exhaustive(max_states))
}

/// Explore `scenario` under explicit [`Options`].
pub fn explore_with(scenario: &Scenario, opts: Options) -> CheckReport {
    assert_eq!(scenario.scripts.len(), scenario.parents.len());
    match opts.reduction {
        Reduction::Off => bfs(scenario, opts),
        Reduction::On => crate::dpor::run(scenario, opts),
    }
}

/// Classify a terminal state, updating the report. Shared by both drivers.
pub(crate) fn record_terminal(
    report: &mut CheckReport,
    scenario: &Scenario,
    state: &State,
    fp: Fingerprint,
    schedule: impl FnOnce() -> Schedule,
) {
    if !report.terminal_fingerprints.insert(fp) {
        return;
    }
    report.terminals += 1;
    let stuck_scripts: Vec<usize> = (0..state.pos.len())
        .filter(|&i| state.pos[i] < scenario.scripts[i].len())
        .collect();
    let waiting: Vec<u32> = state
        .nodes
        .iter()
        .filter(|nd| nd.pending().is_some())
        .map(|nd| nd.id().0)
        .collect();
    if !stuck_scripts.is_empty() || !waiting.is_empty() {
        if report.deadlocks.len() < CheckReport::MAX_RECORDED {
            report.deadlocks.push(Deadlock {
                stuck_scripts,
                waiting,
                schedule: schedule(),
            });
        }
        return;
    }
    // A clean terminal: full quiescent audit, plus freeze convergence —
    // every path ends in a terminal, so a frozen node here is a frozen
    // node from which no thaw is reachable.
    let mut errors = audit(&state.nodes, &[], true);
    errors.extend(frozen_residue(&state.nodes));
    if !errors.is_empty() && report.violations.len() < CheckReport::MAX_RECORDED {
        report.violations.push(Violation {
            errors,
            schedule: schedule(),
        });
    }
}

/// Breadth-first exhaustive exploration. BFS (rather than the seed's DFS)
/// so that the parent-pointer chain to any violating or deadlocked state is
/// a *shortest* schedule — counterexamples come out minimal by construction.
fn bfs(scenario: &Scenario, opts: Options) -> CheckReport {
    let mut report = CheckReport::new(Reduction::Off);
    let initial = State::initial(scenario);
    let initial_fp = initial.fingerprint();

    // fp → (parent fp, action into this state); the root maps to None.
    let mut visited: HashMap<Fingerprint, Option<(Fingerprint, Action)>> = HashMap::new();
    let mut frontier: VecDeque<(State, Fingerprint)> = VecDeque::new();
    visited.insert(initial_fp, None);
    report.states = 1;
    if opts.max_states == 0 {
        report.truncated = true;
        return report;
    }
    frontier.push_back((initial, initial_fp));

    let path = |visited: &HashMap<Fingerprint, Option<(Fingerprint, Action)>>,
                mut fp: Fingerprint| {
        let mut actions = Vec::new();
        while let Some(&Some((parent, action))) = visited.get(&fp) {
            actions.push(action);
            fp = parent;
        }
        actions.reverse();
        Schedule(actions)
    };

    while let Some((state, fp)) = frontier.pop_front() {
        // Safety in every reachable state.
        let errors = audit(&state.nodes, &state.in_flight(), false);
        if !errors.is_empty() {
            if report.violations.len() < CheckReport::MAX_RECORDED {
                report.violations.push(Violation {
                    errors,
                    schedule: path(&visited, fp),
                });
            }
            continue; // do not expand an already-broken state
        }

        let enabled = state.enabled_actions(scenario);
        if enabled.is_empty() {
            record_terminal(&mut report, scenario, &state, fp, || path(&visited, fp));
            continue;
        }

        for action in enabled {
            let step = state.apply(scenario, action);
            report.transitions += 1;
            let next_fp = step.state.fingerprint();
            if !step.fifo_errors.is_empty() {
                // A FIFO overtake is a property of the transition, not the
                // successor state; report it with the path including the
                // offending action and do not continue past it.
                if report.violations.len() < CheckReport::MAX_RECORDED {
                    let mut schedule = path(&visited, fp);
                    schedule.0.push(action);
                    report.violations.push(Violation {
                        errors: step.fifo_errors,
                        schedule,
                    });
                }
                continue;
            }
            if visited.contains_key(&next_fp) {
                continue;
            }
            if report.states == opts.max_states {
                report.truncated = true;
                continue;
            }
            visited.insert(next_fp, Some((fp, action)));
            report.states += 1;
            frontier.push_back((step.state, next_fp));
        }
    }
    report
}
