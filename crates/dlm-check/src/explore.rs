//! The exploration drivers: parallel symmetry-reduced BFS and the
//! DPOR-reduced search.
//!
//! # Parallel frontier
//!
//! The exhaustive search is a **level-synchronous** breadth-first
//! exploration: all states at depth `d` are processed before any state at
//! depth `d+1`. Within a level, work is distributed over `Options::workers`
//! threads, each owning a deque of pending states; a worker that drains its
//! own deque steals the back half of a victim's (classic work stealing, so
//! load imbalance from uneven branching self-corrects). The seen set is
//! sharded by fingerprint prefix into independently locked maps, so
//! concurrent inserts rarely contend.
//!
//! Level synchrony is what keeps counterexamples **minimal and
//! deterministic** regardless of worker count or steal order:
//!
//! * a state's depth of first discovery is its true BFS depth (no cross-level
//!   races), so every reported schedule is shortest-possible;
//! * when two same-level parents generate the same successor, the recorded
//!   parent pointer is the lexicographic minimum of `(parent fingerprint,
//!   action)` — a commutative, associative choice, so the final parent tree
//!   is independent of arrival order;
//! * violations, deadlocks and terminals are collected per level and merged
//!   in sorted order at the level barrier, so the recorded set (and the cap)
//!   never depends on thread scheduling.
//!
//! # Symmetry reduction
//!
//! With `Options::symmetry`, the seen set is keyed by the **canonical**
//! fingerprint (minimum over the scenario's automorphism group, see
//! [`crate::canon`]): permutation-equivalent states collapse to one
//! representative, shrinking the explored space by up to the group order.
//! Counterexample schedules are reconstructed by forward replay: the stored
//! parent chain lives in representative space, so each step replays the
//! recorded action when it matches and otherwise scans the (deterministically
//! ordered) enabled actions for the first one whose successor canonicalizes
//! to the next fingerprint in the chain — one must exist, because the group
//! is closed under composition. The reconstructed schedule is a *concrete*
//! path of the same length as the quotient path, so minimality is preserved.

use crate::canon::{Canonicalize, SymmetryGroup};
use crate::counterexample::Schedule;
use crate::scenario::Scenario;
use crate::state::{Action, State};
use dlm_core::{frozen_residue, AuditError, Fingerprint};
use std::collections::{BTreeSet, HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Barrier, Mutex};
use std::time::Instant;

/// Which state-space reduction to apply.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Reduction {
    /// Explore every interleaving (breadth-first, so counterexample
    /// schedules are minimal).
    #[default]
    Off,
    /// Sleep-set–style dynamic partial-order reduction: explore one
    /// representative per Mazurkiewicz trace class, exploiting the
    /// commutativity of deliveries on disjoint channels (see
    /// [`crate::dpor`] for the dependence relation and soundness notes).
    On,
}

impl std::fmt::Display for Reduction {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Reduction::Off => write!(f, "off"),
            Reduction::On => write!(f, "on"),
        }
    }
}

/// Exploration options.
#[derive(Debug, Clone, Copy)]
pub struct Options {
    /// Budget on distinct states; exceeding it truncates the run (exactly:
    /// a truncated report never counts more than `max_states` states).
    pub max_states: usize,
    /// Reduction mode.
    pub reduction: Reduction,
    /// Optional budget on executed transitions (the reduced search can
    /// re-traverse states; this bounds total work). `None` = derived as
    /// `32 × max_states`.
    pub max_transitions: Option<usize>,
    /// Number of exploration worker threads (clamped to ≥ 1). `1` is the
    /// serial baseline the differential tests compare against.
    pub workers: usize,
    /// Key the seen set by canonical (symmetry-quotient) fingerprints,
    /// exploring one representative per node-permutation orbit.
    pub symmetry: bool,
    /// Optional wall-clock budget; exceeding it truncates the run.
    pub max_seconds: Option<f64>,
    /// Emit progress lines (states, states/sec) to stderr while exploring.
    pub progress: bool,
}

impl Options {
    /// Exhaustive exploration with the given state budget.
    pub fn exhaustive(max_states: usize) -> Self {
        Options {
            max_states,
            reduction: Reduction::Off,
            max_transitions: None,
            workers: 1,
            symmetry: false,
            max_seconds: None,
            progress: false,
        }
    }

    /// Reduced exploration with the given state budget.
    pub fn reduced(max_states: usize) -> Self {
        Options {
            reduction: Reduction::On,
            ..Options::exhaustive(max_states)
        }
    }

    /// This configuration with `workers` exploration threads.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// This configuration with symmetry reduction switched on/off.
    pub fn with_symmetry(mut self, symmetry: bool) -> Self {
        self.symmetry = symmetry;
        self
    }

    /// This configuration with a wall-clock budget.
    pub fn with_max_seconds(mut self, seconds: f64) -> Self {
        self.max_seconds = Some(seconds);
        self
    }

    /// This configuration with progress reporting on stderr.
    pub fn with_progress(mut self, progress: bool) -> Self {
        self.progress = progress;
        self
    }

    pub(crate) fn transition_budget(&self) -> usize {
        self.max_transitions
            .unwrap_or_else(|| self.max_states.saturating_mul(32))
    }
}

/// A safety violation with its replayable counterexample.
#[derive(Debug, Clone)]
pub struct Violation {
    /// The audit errors observed in (or on the transition into) the state.
    pub errors: Vec<AuditError>,
    /// Actions from the initial state into the violating state. Minimal
    /// (shortest possible) when found with [`Reduction::Off`]; a valid
    /// witness path when found with [`Reduction::On`].
    pub schedule: Schedule,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "unsafe after {} steps: ", self.schedule.0.len())?;
        for (i, e) in self.errors.iter().enumerate() {
            if i > 0 {
                write!(f, "; ")?;
            }
            write!(f, "{e}")?;
        }
        Ok(())
    }
}

/// A deadlock: a terminal state with unfinished scripts or waiting nodes.
#[derive(Debug, Clone)]
pub struct Deadlock {
    /// Nodes whose scripts did not run to completion.
    pub stuck_scripts: Vec<usize>,
    /// Nodes with a pending, never-granted request (on any lock).
    pub waiting: Vec<u32>,
    /// Actions from the initial state into the deadlocked terminal state.
    pub schedule: Schedule,
}

impl std::fmt::Display for Deadlock {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "deadlock after {} steps: scripts stuck at {:?}, nodes waiting {:?}",
            self.schedule.0.len(),
            self.stuck_scripts,
            self.waiting
        )
    }
}

/// Result of an exploration.
///
/// Marked `#[must_use]`: a dropped report silently discards the verdict of
/// an entire model-checking run.
#[must_use = "a CheckReport carries the verification verdict; inspect verified()/violations instead of dropping it"]
#[derive(Debug, Clone)]
pub struct CheckReport {
    /// Distinct states visited (canonical representatives when symmetry
    /// reduction is on).
    pub states: usize,
    /// Transitions executed (the reduced search may execute several
    /// transitions into one already-counted state).
    pub transitions: usize,
    /// Terminal (quiescent) states reached.
    pub terminals: usize,
    /// Safety violations (empty = every explored state is safe), each with
    /// a replayable counterexample schedule. Capped at
    /// [`CheckReport::MAX_RECORDED`] distinct violating states.
    pub violations: Vec<Violation>,
    /// Deadlocks, each with a replayable schedule. Same cap.
    pub deadlocks: Vec<Deadlock>,
    /// True if the exploration hit a budget (states, transitions or wall
    /// clock) before completing.
    pub truncated: bool,
    /// The reduction mode this report was produced under.
    pub reduction: Reduction,
    /// Fingerprints of all terminal states (canonical when symmetry is on;
    /// the reduction-soundness property tests compare these across
    /// reduction modes).
    pub terminal_fingerprints: BTreeSet<Fingerprint>,
    /// Worker threads used.
    pub workers: usize,
    /// Order of the symmetry group applied (1 = no reduction).
    pub group_order: usize,
    /// Work-stealing events between worker deques.
    pub steals: u64,
    /// Generated successors whose raw fingerprint differed from their
    /// canonical fingerprint (i.e. states the symmetry reduction actually
    /// relabeled).
    pub sym_hits: u64,
    /// Generated successors that were already in the seen set.
    pub dedup_hits: u64,
    /// Wall-clock exploration time.
    pub elapsed_secs: f64,
}

impl CheckReport {
    /// Cap on recorded violations/deadlocks (counting continues; only the
    /// stored schedules are bounded).
    pub const MAX_RECORDED: usize = 32;

    pub(crate) fn new(reduction: Reduction) -> Self {
        CheckReport {
            states: 0,
            transitions: 0,
            terminals: 0,
            violations: Vec::new(),
            deadlocks: Vec::new(),
            truncated: false,
            reduction,
            terminal_fingerprints: BTreeSet::new(),
            workers: 1,
            group_order: 1,
            steals: 0,
            sym_hits: 0,
            dedup_hits: 0,
            elapsed_secs: 0.0,
        }
    }

    /// True when the scenario is fully verified: no violations, no
    /// deadlocks, and the exploration completed within budget.
    #[must_use = "the verification verdict must be acted on, not dropped"]
    pub fn verified(&self) -> bool {
        self.violations.is_empty() && self.deadlocks.is_empty() && !self.truncated
    }

    /// Dedup ratio: fraction of generated successors that were already
    /// known (higher = denser state graph and/or more symmetry collapse).
    pub fn dedup_ratio(&self) -> f64 {
        if self.transitions == 0 {
            0.0
        } else {
            self.dedup_hits as f64 / self.transitions as f64
        }
    }
}

/// Exhaustively explore `scenario`; `max_states` bounds the search (a
/// generous budget for 3–4 node scenarios is 1–5 million).
///
/// Equivalent to [`explore_with`] under [`Options::exhaustive`].
pub fn explore(scenario: &Scenario, max_states: usize) -> CheckReport {
    explore_with(scenario, Options::exhaustive(max_states))
}

/// Explore `scenario` under explicit [`Options`].
///
/// Scenarios containing a crash op always use the exhaustive search: a
/// crash transition runs the view change at every survivor at once, so it
/// commutes with nothing and the partial-order reduction would be unsound
/// under its node-keyed dependence relation.
pub fn explore_with(scenario: &Scenario, opts: Options) -> CheckReport {
    assert_eq!(scenario.scripts.len(), scenario.parents.len());
    match opts.reduction {
        Reduction::Off => bfs(scenario, opts),
        Reduction::On if scenario.has_crash() => bfs(scenario, opts),
        Reduction::On => crate::dpor::run(scenario, opts),
    }
}

/// Audit every lock object of `state` (each is an independent protocol
/// instance with its own in-flight messages; crashed nodes are excluded).
pub(crate) fn audit_state(state: &State, quiescent: bool) -> Vec<AuditError> {
    let mut errors = Vec::new();
    for lock in 0..state.locks() {
        errors.extend(state.audit_lock(lock as u32, quiescent));
    }
    errors
}

/// Freeze-convergence residue across every lock object. A crashed node
/// frozen at the moment of death stays frozen forever — that is not a
/// convergence failure (survivors reset their freeze state in the R1
/// repair, so residue on a *survivor* is still a real violation).
pub(crate) fn frozen_residue_state(state: &State) -> Vec<AuditError> {
    let mut errors = Vec::new();
    for lock_nodes in &state.nodes {
        errors.extend(frozen_residue(lock_nodes).into_iter().filter(|e| {
            !matches!(e, AuditError::FrozenResidue { node, .. }
                if state.crashed[node.index()])
        }));
    }
    errors
}

/// Nodes with a pending, never-granted request on any lock (sorted,
/// deduped). A crashed node's pending request is not a wait — nobody is
/// waiting on the answer.
pub(crate) fn waiting_nodes(state: &State) -> Vec<u32> {
    let mut waiting: Vec<u32> = state
        .nodes
        .iter()
        .flat_map(|lock_nodes| {
            lock_nodes
                .iter()
                .enumerate()
                .filter(|(i, nd)| nd.pending().is_some() && !state.crashed[*i])
                .map(|(_, nd)| nd.id().0)
        })
        .collect();
    waiting.sort_unstable();
    waiting.dedup();
    waiting
}

/// Number of seen-set shards (fingerprint low bits select the shard); a
/// power of two well above any realistic worker count, so concurrent
/// inserts almost never contend on the same lock.
const SHARDS: usize = 64;

/// Seen-set entry: BFS depth plus the (lexicographically minimal) parent
/// link used for counterexample reconstruction.
struct Entry {
    parent: Option<(Fingerprint, Action)>,
    depth: u32,
}

/// The lock-striped seen set.
struct Seen {
    shards: Vec<Mutex<HashMap<Fingerprint, Entry>>>,
}

enum Admit {
    /// New state, admitted under budget: expand it.
    Inserted,
    /// Already known (possibly with an improved parent link).
    Known,
    /// New state, but the state budget is exhausted.
    OverBudget,
}

impl Seen {
    fn new() -> Self {
        Seen {
            shards: (0..SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
        }
    }

    fn shard(&self, fp: Fingerprint) -> &Mutex<HashMap<Fingerprint, Entry>> {
        &self.shards[(fp.0 as usize) & (SHARDS - 1)]
    }

    /// Record `fp` at `depth` with parent link `parent`, admitting at most
    /// `max` states overall (`count` is the shared admitted-state counter).
    ///
    /// If `fp` is already present at the same depth, the stored parent link
    /// is replaced iff the new one is lexicographically smaller — the
    /// arrival-order-independent tie-break that makes reconstruction
    /// deterministic under any worker interleaving.
    fn admit(
        &self,
        fp: Fingerprint,
        parent: Option<(Fingerprint, Action)>,
        depth: u32,
        count: &AtomicUsize,
        max: usize,
    ) -> Admit {
        let mut shard = self.shard(fp).lock().expect("seen shard poisoned");
        match shard.entry(fp) {
            std::collections::hash_map::Entry::Occupied(mut e) => {
                let cur = e.get_mut();
                if cur.depth == depth {
                    if let (Some(new), Some(old)) = (parent, cur.parent) {
                        if new < old {
                            cur.parent = Some(new);
                        }
                    }
                }
                Admit::Known
            }
            std::collections::hash_map::Entry::Vacant(v) => {
                if count
                    .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |c| {
                        (c < max).then_some(c + 1)
                    })
                    .is_err()
                {
                    return Admit::OverBudget;
                }
                v.insert(Entry { parent, depth });
                Admit::Inserted
            }
        }
    }

    fn entry_parent(&self, fp: Fingerprint) -> Option<Option<(Fingerprint, Action)>> {
        self.shard(fp)
            .lock()
            .expect("seen shard poisoned")
            .get(&fp)
            .map(|e| e.parent)
    }
}

/// A level-batch record: something report-worthy found while processing one
/// state, resolved into a full `Violation`/`Deadlock` (schedule included)
/// only after exploration ends, and only for the ≤ MAX_RECORDED survivors.
#[derive(Clone, Copy)]
enum Pending {
    /// Audit errors in the (reachable) state at `fp`; schedule length `len`.
    StateAudit { fp: Fingerprint, len: u32 },
    /// A FIFO overtake on the transition `hint` out of the state at `base`;
    /// schedule length `len` (= base depth + 1).
    Fifo {
        base: Fingerprint,
        hint: Action,
        len: u32,
    },
    /// A deadlocked terminal at `fp`.
    DeadEnd { fp: Fingerprint, len: u32 },
    /// A quiescent terminal at `fp` whose final audit failed.
    TerminalAudit { fp: Fingerprint, len: u32 },
    /// A clean terminal at `fp` (needs no schedule, only the fp set).
    Terminal { fp: Fingerprint },
}

impl Pending {
    /// Deterministic within-level merge order: schedule length first (so
    /// minimal counterexamples survive the cap), then kind, then identity.
    fn key(&self) -> (u32, u8, u128, Option<Action>) {
        match *self {
            Pending::StateAudit { fp, len } => (len, 0, fp.0, None),
            Pending::Fifo { base, hint, len } => (len, 1, base.0, Some(hint)),
            Pending::TerminalAudit { fp, len } => (len, 2, fp.0, None),
            Pending::DeadEnd { fp, len } => (len, 3, fp.0, None),
            Pending::Terminal { fp } => (u32::MAX, 4, fp.0, None),
        }
    }
}

/// Deterministically merged per-level records (owned by worker 0 at the
/// level barrier, resolved into the report after the join).
struct Records {
    terminal_fps: BTreeSet<Fingerprint>,
    terminals: usize,
    violations: Vec<Pending>,
    deadlocks: Vec<Pending>,
}

/// Shared exploration context (borrowed by every worker).
struct Ctx<'a> {
    scenario: &'a Scenario,
    group: &'a SymmetryGroup,
    opts: Options,
    seen: Seen,
    /// Current-level work deques, one per worker.
    deques: Vec<Mutex<VecDeque<Item>>>,
    /// Next-level hand-off buffers, one per worker.
    next: Vec<Mutex<Vec<Item>>>,
    /// Per-level record hand-off buffers, one per worker.
    pending: Vec<Mutex<Vec<Pending>>>,
    records: Mutex<Records>,
    states: AtomicUsize,
    transitions: AtomicU64,
    steals: AtomicU64,
    sym_hits: AtomicU64,
    dedup_hits: AtomicU64,
    truncated: AtomicBool,
    stop: AtomicBool,
    done: AtomicBool,
    barrier: Barrier,
    start: Instant,
}

struct Item {
    state: State,
    /// Canonical fingerprint (raw when symmetry is off).
    fp: Fingerprint,
    depth: u32,
}

impl Ctx<'_> {
    fn canon_fp(&self, state: &State) -> (Fingerprint, Fingerprint) {
        let raw = state.fingerprint();
        if self.opts.symmetry && !self.group.is_trivial() {
            (raw, state.canonical_fingerprint(self.group))
        } else {
            (raw, raw)
        }
    }

    /// Pop from worker `w`'s deque, stealing the back half of another
    /// worker's deque when empty. `None` = the level is drained (successors
    /// only ever land in next-level buffers, so no work can reappear).
    fn pop(&self, w: usize) -> Option<Item> {
        if let Some(item) = self.deques[w].lock().expect("deque poisoned").pop_front() {
            return Some(item);
        }
        let n = self.deques.len();
        for off in 1..n {
            let victim = (w + off) % n;
            let stolen = {
                let mut q = self.deques[victim].lock().expect("deque poisoned");
                let len = q.len();
                if len == 0 {
                    continue;
                }
                q.split_off(len / 2)
            };
            if !stolen.is_empty() {
                self.steals.fetch_add(1, Ordering::Relaxed);
                let mut mine = self.deques[w].lock().expect("deque poisoned");
                mine.extend(stolen);
                if let Some(item) = mine.pop_front() {
                    return Some(item);
                }
            }
        }
        None
    }

    /// Process one current-level state: audit it, classify terminals, and
    /// expand enabled actions into next-level items.
    fn process(&self, item: Item, my_next: &mut Vec<Item>, my_pending: &mut Vec<Pending>) {
        let Item { state, fp, depth } = item;
        // Safety in every reachable state.
        if !audit_state(&state, false).is_empty() {
            my_pending.push(Pending::StateAudit { fp, len: depth });
            return; // do not expand an already-broken state
        }
        let enabled = state.enabled_actions(self.scenario);
        if enabled.is_empty() {
            let stuck = (0..state.pos.len())
                .any(|i| state.pos[i] < self.scenario.scripts[i].len() && !state.crashed[i]);
            if stuck || !waiting_nodes(&state).is_empty() {
                my_pending.push(Pending::DeadEnd { fp, len: depth });
            } else {
                let mut errors = audit_state(&state, true);
                errors.extend(frozen_residue_state(&state));
                if errors.is_empty() {
                    my_pending.push(Pending::Terminal { fp });
                } else {
                    my_pending.push(Pending::TerminalAudit { fp, len: depth });
                }
            }
            return;
        }
        for action in enabled {
            if self.stop.load(Ordering::Relaxed) {
                return;
            }
            let step = state.apply(self.scenario, action);
            self.transitions.fetch_add(1, Ordering::Relaxed);
            if !step.fifo_errors.is_empty() {
                // A FIFO overtake is a property of the transition, not the
                // successor state; report it with the path including the
                // offending action and do not continue past it.
                my_pending.push(Pending::Fifo {
                    base: fp,
                    hint: action,
                    len: depth + 1,
                });
                continue;
            }
            let (raw, canon) = self.canon_fp(&step.state);
            if canon != raw {
                self.sym_hits.fetch_add(1, Ordering::Relaxed);
            }
            match self.seen.admit(
                canon,
                Some((fp, action)),
                depth + 1,
                &self.states,
                self.opts.max_states,
            ) {
                Admit::Inserted => my_next.push(Item {
                    state: step.state,
                    fp: canon,
                    depth: depth + 1,
                }),
                Admit::Known => {
                    self.dedup_hits.fetch_add(1, Ordering::Relaxed);
                }
                Admit::OverBudget => {
                    self.truncated.store(true, Ordering::Relaxed);
                }
            }
        }
    }

    /// Merge the level's records and redistribute the next frontier
    /// (executed by worker 0 alone, between the two level barriers).
    fn level_transition(&self) {
        let mut batch: Vec<Pending> = Vec::new();
        for slot in &self.pending {
            batch.append(&mut slot.lock().expect("pending poisoned"));
        }
        batch.sort_by_key(|p| p.key());
        let mut records = self.records.lock().expect("records poisoned");
        for p in batch {
            match p {
                Pending::StateAudit { .. } | Pending::Fifo { .. } => {
                    if records.violations.len() < CheckReport::MAX_RECORDED {
                        records.violations.push(p);
                    }
                }
                Pending::DeadEnd { fp, .. } => {
                    if records.terminal_fps.insert(fp) {
                        records.terminals += 1;
                        if records.deadlocks.len() < CheckReport::MAX_RECORDED {
                            records.deadlocks.push(p);
                        }
                    }
                }
                Pending::TerminalAudit { fp, .. } => {
                    if records.terminal_fps.insert(fp) {
                        records.terminals += 1;
                        if records.violations.len() < CheckReport::MAX_RECORDED {
                            records.violations.push(p);
                        }
                    }
                }
                Pending::Terminal { fp } => {
                    if records.terminal_fps.insert(fp) {
                        records.terminals += 1;
                    }
                }
            }
        }
        drop(records);
        let mut all: Vec<Item> = Vec::new();
        for slot in &self.next {
            all.append(&mut slot.lock().expect("next poisoned"));
        }
        if all.is_empty() || self.stop.load(Ordering::Relaxed) {
            self.done.store(true, Ordering::Relaxed);
            return;
        }
        let n = self.deques.len();
        let chunk = all.len().div_ceil(n);
        let mut all = all.into_iter();
        for deque in &self.deques {
            let mut q = deque.lock().expect("deque poisoned");
            debug_assert!(q.is_empty());
            q.extend(all.by_ref().take(chunk));
        }
    }

    fn over_time(&self) -> bool {
        match self.opts.max_seconds {
            Some(limit) => self.start.elapsed().as_secs_f64() >= limit,
            None => false,
        }
    }
}

/// One exploration worker: drain the level (stealing as needed), hand off
/// next-level items and records, and let worker 0 run the level transition.
fn worker(ctx: &Ctx<'_>, w: usize) {
    let mut my_next: Vec<Item> = Vec::new();
    let mut my_pending: Vec<Pending> = Vec::new();
    let mut last_report = Instant::now();
    let mut last_states = 0usize;
    loop {
        while let Some(item) = ctx.pop(w) {
            if ctx.stop.load(Ordering::Relaxed) {
                break;
            }
            ctx.process(item, &mut my_next, &mut my_pending);
            if ctx.over_time() {
                ctx.truncated.store(true, Ordering::Relaxed);
                ctx.stop.store(true, Ordering::Relaxed);
            }
        }
        *ctx.next[w].lock().expect("next poisoned") = std::mem::take(&mut my_next);
        *ctx.pending[w].lock().expect("pending poisoned") = std::mem::take(&mut my_pending);
        ctx.barrier.wait();
        if w == 0 {
            ctx.level_transition();
            if ctx.opts.progress && last_report.elapsed().as_secs_f64() >= 1.0 {
                let states = ctx.states.load(Ordering::Relaxed);
                let rate = (states - last_states) as f64 / last_report.elapsed().as_secs_f64();
                eprintln!(
                    "  … {} states, {} transitions, {:.0} states/s",
                    states,
                    ctx.transitions.load(Ordering::Relaxed),
                    rate
                );
                last_report = Instant::now();
                last_states = states;
            }
        }
        ctx.barrier.wait();
        if ctx.done.load(Ordering::Relaxed) {
            return;
        }
    }
}

/// Level-synchronous, work-stealing breadth-first exploration (see the
/// module docs for the determinism argument). BFS (rather than the seed's
/// DFS) so that the parent chain to any violating or deadlocked state is a
/// *shortest* schedule — counterexamples come out minimal by construction.
fn bfs(scenario: &Scenario, opts: Options) -> CheckReport {
    let start = Instant::now();
    let group = if opts.symmetry {
        SymmetryGroup::of(scenario)
    } else {
        SymmetryGroup::trivial()
    };
    let workers = opts.workers.max(1);

    let mut report = CheckReport::new(Reduction::Off);
    report.workers = workers;
    report.group_order = group.order();
    report.states = 1;
    if opts.max_states == 0 {
        report.truncated = true;
        report.elapsed_secs = start.elapsed().as_secs_f64();
        return report;
    }

    let initial = State::initial(scenario);
    let fp0 = if opts.symmetry && !group.is_trivial() {
        initial.canonical_fingerprint(&group)
    } else {
        initial.fingerprint()
    };

    let ctx = Ctx {
        scenario,
        group: &group,
        opts,
        seen: Seen::new(),
        deques: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
        next: (0..workers).map(|_| Mutex::new(Vec::new())).collect(),
        pending: (0..workers).map(|_| Mutex::new(Vec::new())).collect(),
        records: Mutex::new(Records {
            terminal_fps: BTreeSet::new(),
            terminals: 0,
            violations: Vec::new(),
            deadlocks: Vec::new(),
        }),
        states: AtomicUsize::new(0),
        transitions: AtomicU64::new(0),
        steals: AtomicU64::new(0),
        sym_hits: AtomicU64::new(0),
        dedup_hits: AtomicU64::new(0),
        truncated: AtomicBool::new(false),
        stop: AtomicBool::new(false),
        done: AtomicBool::new(false),
        barrier: Barrier::new(workers),
        start,
    };
    match ctx.seen.admit(fp0, None, 0, &ctx.states, opts.max_states) {
        Admit::Inserted => {}
        _ => unreachable!("initial admit into empty seen set with max_states >= 1"),
    }
    ctx.deques[0]
        .lock()
        .expect("deque poisoned")
        .push_back(Item {
            state: initial,
            fp: fp0,
            depth: 0,
        });

    if workers == 1 {
        worker(&ctx, 0);
    } else {
        std::thread::scope(|s| {
            for w in 0..workers {
                let ctx = &ctx;
                s.spawn(move || worker(ctx, w));
            }
        });
    }

    let records = ctx.records.into_inner().expect("records poisoned");
    report.states = ctx.states.load(Ordering::SeqCst);
    report.transitions = ctx.transitions.load(Ordering::SeqCst) as usize;
    report.terminals = records.terminals;
    report.terminal_fingerprints = records.terminal_fps;
    report.truncated = ctx.truncated.load(Ordering::SeqCst);
    report.steals = ctx.steals.load(Ordering::SeqCst);
    report.sym_hits = ctx.sym_hits.load(Ordering::SeqCst);
    report.dedup_hits = ctx.dedup_hits.load(Ordering::SeqCst);

    // Resolve the surviving records into concrete schedules by forward
    // replay through representative space.
    let resolve = Resolver {
        scenario,
        group: &group,
        symmetry: opts.symmetry && !group.is_trivial(),
        seen: &ctx.seen,
    };
    for p in records.violations {
        match p {
            Pending::StateAudit { fp, .. } => {
                let (schedule, end) = resolve.path_to(fp);
                report.violations.push(Violation {
                    errors: audit_state(&end, false),
                    schedule,
                });
            }
            Pending::Fifo { base, hint, .. } => {
                let (schedule, errors) = resolve.fifo_path(base, hint);
                report.violations.push(Violation { errors, schedule });
            }
            Pending::TerminalAudit { fp, .. } => {
                let (schedule, end) = resolve.path_to(fp);
                let mut errors = audit_state(&end, true);
                errors.extend(frozen_residue_state(&end));
                report.violations.push(Violation { errors, schedule });
            }
            Pending::DeadEnd { .. } | Pending::Terminal { .. } => unreachable!(),
        }
    }
    for p in records.deadlocks {
        if let Pending::DeadEnd { fp, .. } = p {
            let (schedule, end) = resolve.path_to(fp);
            let stuck_scripts: Vec<usize> = (0..end.pos.len())
                .filter(|&i| end.pos[i] < scenario.scripts[i].len() && !end.crashed[i])
                .collect();
            report.deadlocks.push(Deadlock {
                stuck_scripts,
                waiting: waiting_nodes(&end),
                schedule,
            });
        }
    }
    report.elapsed_secs = start.elapsed().as_secs_f64();
    report
}

/// Schedule reconstruction through the (possibly symmetry-quotiented) seen
/// set: walk parent fingerprints backwards, then replay forwards, taking
/// the recorded action when it reproduces the next canonical fingerprint
/// and otherwise the smallest enabled action that does (guaranteed to
/// exist by group closure — see the module docs).
struct Resolver<'a> {
    scenario: &'a Scenario,
    group: &'a SymmetryGroup,
    symmetry: bool,
    seen: &'a Seen,
}

impl Resolver<'_> {
    fn canon(&self, state: &State) -> Fingerprint {
        if self.symmetry {
            state.canonical_fingerprint(self.group)
        } else {
            state.fingerprint()
        }
    }

    /// The canonical-fingerprint chain from the root to `fp`, with each
    /// step's recorded (representative-space) action as a replay hint.
    fn chain_to(&self, mut fp: Fingerprint) -> Vec<(Fingerprint, Option<Action>)> {
        let mut chain = Vec::new();
        loop {
            let parent = self
                .seen
                .entry_parent(fp)
                .expect("recorded state is in the seen set");
            match parent {
                Some((pfp, action)) => {
                    chain.push((fp, Some(action)));
                    fp = pfp;
                }
                None => {
                    chain.push((fp, None));
                    break;
                }
            }
        }
        chain.reverse();
        chain
    }

    /// Advance `state` by one action whose successor canonicalizes to
    /// `target` without committing a FIFO violation; prefers `hint`.
    fn advance(&self, state: &State, target: Fingerprint, hint: Option<Action>) -> (Action, State) {
        let enabled = state.enabled_actions(self.scenario);
        let candidates = hint
            .filter(|h| enabled.contains(h))
            .into_iter()
            .chain(enabled.iter().copied());
        for action in candidates {
            let step = state.apply(self.scenario, action);
            if step.fifo_errors.is_empty() && self.canon(&step.state) == target {
                return (action, step.state);
            }
        }
        unreachable!("group closure guarantees a matching concrete action")
    }

    /// Concrete minimal path to the state recorded at canonical `fp`.
    fn path_to(&self, fp: Fingerprint) -> (Schedule, State) {
        let chain = self.chain_to(fp);
        let mut state = State::initial(self.scenario);
        let mut actions = Vec::with_capacity(chain.len() - 1);
        for &(target, hint) in &chain[1..] {
            let (action, next) = self.advance(&state, target, hint);
            actions.push(action);
            state = next;
        }
        (Schedule(actions), state)
    }

    /// Concrete path ending in a FIFO-violating transition out of the state
    /// at canonical `base`; returns the schedule (violating action included)
    /// and the recomputed FIFO errors.
    fn fifo_path(&self, base: Fingerprint, hint: Action) -> (Schedule, Vec<AuditError>) {
        let (mut schedule, state) = self.path_to(base);
        let enabled = state.enabled_actions(self.scenario);
        let candidates = Some(hint)
            .filter(|h| enabled.contains(h))
            .into_iter()
            .chain(enabled.iter().copied());
        for action in candidates {
            let step = state.apply(self.scenario, action);
            if !step.fifo_errors.is_empty() {
                schedule.0.push(action);
                return (schedule, step.fifo_errors);
            }
        }
        unreachable!("recorded FIFO violation must be reproducible from its base state")
    }
}
