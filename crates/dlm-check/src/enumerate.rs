//! Auto-enumerated scenario families with symmetry deduplication.
//!
//! A family is "every way to hand out up to `pairs` acquire/release pairs
//! over a mode alphabet to the nodes of a fixed topology". Scripts are
//! built from *atoms* — `[Acquire(m), Release]`, plus `[Acquire(U),
//! Upgrade, Release]` when `U` is in the alphabet — so every enumerated
//! scenario is deadlock-free by construction and any reported deadlock or
//! violation is a protocol bug, not a script artifact.
//!
//! Node permutations that fix the topology (leaf swaps in a star, subtree
//! swaps in a complete binary tree) map scenarios onto behaviourally
//! identical ones, so only one representative per orbit is kept.

use crate::scenario::{Op, Scenario};
use dlm_core::ProtocolConfig;
use dlm_modes::Mode;
use std::collections::HashSet;

/// Initial-tree shapes for enumerated families.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Topology {
    /// Node 0 is the root; everyone else is its direct child.
    Star,
    /// `0 ← 1 ← 2 ← …` (maximal forwarding depth).
    Chain,
    /// Complete binary tree (`parents[i] = (i-1)/2`).
    BinaryTree,
}

impl Topology {
    /// Parse a CLI name.
    pub fn parse(s: &str) -> Option<Topology> {
        match s {
            "star" => Some(Topology::Star),
            "chain" => Some(Topology::Chain),
            "btree" | "binary-tree" | "tree" => Some(Topology::BinaryTree),
            _ => None,
        }
    }
}

impl std::fmt::Display for Topology {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Topology::Star => write!(f, "star"),
            Topology::Chain => write!(f, "chain"),
            Topology::BinaryTree => write!(f, "btree"),
        }
    }
}

/// An auto-enumerated scenario family.
#[derive(Debug, Clone)]
pub struct Family {
    /// Initial tree shape.
    pub topology: Topology,
    /// Number of nodes.
    pub nodes: usize,
    /// Mode alphabet for acquire atoms.
    pub modes: Vec<Mode>,
    /// Maximum total acquire/release pairs across all nodes (each scenario
    /// uses between 1 and `pairs`).
    pub pairs: usize,
    /// Protocol configuration every scenario runs.
    pub config: ProtocolConfig,
}

impl Family {
    /// Enumerate all scenarios of the family, one representative per
    /// symmetry orbit, in deterministic order.
    pub fn scenarios(&self) -> Vec<Scenario> {
        assert!(self.nodes >= 1);
        let atoms = atoms(&self.modes);
        let mut scripts_per_count: Vec<Vec<Vec<Op>>> = vec![vec![Vec::new()]];
        for count in 1..=self.pairs {
            let mut level = Vec::new();
            for prefix in &scripts_per_count[count - 1] {
                for atom in &atoms {
                    let mut s = prefix.clone();
                    s.extend_from_slice(atom);
                    level.push(s);
                }
            }
            scripts_per_count.push(level);
        }

        let mut seen: HashSet<String> = HashSet::new();
        let mut out = Vec::new();
        let mut assignment: Vec<Vec<Op>> = vec![Vec::new(); self.nodes];
        self.assign(
            0,
            self.pairs,
            false,
            &scripts_per_count,
            &mut assignment,
            &mut seen,
            &mut out,
        );
        out
    }

    /// Recursively choose each node's script (by atom count, then by
    /// content), keeping only canonical representatives.
    #[allow(clippy::too_many_arguments)]
    fn assign(
        &self,
        node: usize,
        budget: usize,
        any_used: bool,
        scripts_per_count: &[Vec<Vec<Op>>],
        assignment: &mut Vec<Vec<Op>>,
        seen: &mut HashSet<String>,
        out: &mut Vec<Scenario>,
    ) {
        if node == self.nodes {
            if !any_used {
                return; // the all-empty scenario is trivial
            }
            let key = self.canonical_key(assignment);
            if seen.insert(key) {
                out.push(self.build(assignment.clone()));
            }
            return;
        }
        for count in 0..=budget {
            for script in &scripts_per_count[count] {
                assignment[node] = script.clone();
                self.assign(
                    node + 1,
                    budget - count,
                    any_used || count > 0,
                    scripts_per_count,
                    assignment,
                    seen,
                    out,
                );
            }
        }
        assignment[node] = Vec::new();
    }

    fn build(&self, scripts: Vec<Vec<Op>>) -> Scenario {
        match self.topology {
            Topology::Star => Scenario::star(self.nodes, scripts, self.config),
            Topology::Chain => Scenario::chain(self.nodes, scripts, self.config),
            Topology::BinaryTree => Scenario::binary_tree(self.nodes, scripts, self.config),
        }
    }

    /// A canonical encoding of the script assignment under the topology's
    /// automorphism group: star leaves are interchangeable (sort their
    /// scripts); complete-binary-tree siblings with equal subtree sizes are
    /// interchangeable (sort their subtree encodings); a chain has no
    /// non-trivial automorphisms.
    fn canonical_key(&self, scripts: &[Vec<Op>]) -> String {
        match self.topology {
            Topology::Chain => format!("{scripts:?}"),
            Topology::Star => {
                let mut leaves: Vec<&Vec<Op>> = scripts[1..].iter().collect();
                leaves.sort();
                format!("{:?}|{leaves:?}", scripts[0])
            }
            Topology::BinaryTree => btree_canon(scripts, 0),
        }
    }
}

/// Subtree size of node `i` in a complete binary tree over `n` nodes.
fn btree_size(n: usize, i: usize) -> usize {
    if i >= n {
        return 0;
    }
    1 + btree_size(n, 2 * i + 1) + btree_size(n, 2 * i + 2)
}

/// Canonical encoding of the subtree rooted at `i`: equal-sized sibling
/// subtrees (which, in a complete tree, have identical shapes) are sorted.
fn btree_canon(scripts: &[Vec<Op>], i: usize) -> String {
    let n = scripts.len();
    if i >= n {
        return String::new();
    }
    let (l, r) = (2 * i + 1, 2 * i + 2);
    let mut kids = [btree_canon(scripts, l), btree_canon(scripts, r)];
    if btree_size(n, l) == btree_size(n, r) {
        kids.sort();
    }
    format!("({:?}[{}][{}])", scripts[i], kids[0], kids[1])
}

/// The script atoms over a mode alphabet.
fn atoms(modes: &[Mode]) -> Vec<Vec<Op>> {
    let mut out = Vec::new();
    for &m in modes {
        out.push(vec![Op::Acquire(m), Op::Release]);
        if m == Mode::Upgrade {
            out.push(vec![Op::Acquire(m), Op::Upgrade, Op::Release]);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn family(topology: Topology, nodes: usize, pairs: usize) -> Family {
        Family {
            topology,
            nodes,
            modes: vec![Mode::Read, Mode::Write],
            pairs,
            config: ProtocolConfig::paper(),
        }
    }

    #[test]
    fn star_symmetry_dedup_collapses_leaf_permutations() {
        // 3-node star, one pair: the pair goes to the root (2 mode choices)
        // or to *a* leaf (2 mode choices — which leaf is symmetric).
        let f = family(Topology::Star, 3, 1);
        assert_eq!(f.scenarios().len(), 4);

        // Without symmetry the leaf placements would double: a chain of 3
        // distinguishes all positions.
        let f = family(Topology::Chain, 3, 1);
        assert_eq!(f.scenarios().len(), 6);
    }

    #[test]
    fn btree_sibling_subtrees_are_deduped() {
        // 3-node binary tree = root + two symmetric leaves: same counts as
        // the 3-node star.
        let star = family(Topology::Star, 3, 2).scenarios().len();
        let btree = family(Topology::BinaryTree, 3, 2).scenarios().len();
        assert_eq!(star, btree);
    }

    #[test]
    fn upgrade_mode_contributes_the_rule7_atom() {
        let f = Family {
            topology: Topology::Star,
            nodes: 2,
            modes: vec![Mode::Upgrade],
            pairs: 1,
            config: ProtocolConfig::paper(),
        };
        let scenarios = f.scenarios();
        // One pair on root or leaf, each with plain-U and U-then-upgrade
        // variants: 4 scenarios, one containing Op::Upgrade per placement.
        assert_eq!(scenarios.len(), 4);
        assert!(scenarios
            .iter()
            .any(|s| s.scripts.iter().any(|sc| sc.contains(&Op::Upgrade))));
    }

    #[test]
    fn scenarios_respect_the_pair_budget() {
        for s in family(Topology::Chain, 3, 2).scenarios() {
            let pairs: usize = s
                .scripts
                .iter()
                .map(|sc| sc.iter().filter(|op| matches!(op, Op::Release)).count())
                .sum();
            assert!((1..=2).contains(&pairs));
        }
    }
}
