//! Dynamic partial-order reduction (Flanagan–Godefroid backtrack sets plus
//! Godefroid sleep sets), with happens-before interval detection restoring
//! full mutual-exclusion soundness.
//!
//! # Why reduction is possible
//!
//! Every transition of the explored system executes at exactly one node: a
//! delivery pops one channel head and runs `on_message` at the receiver; a
//! script step runs one entry point at its node. Sends only *append* to
//! channel tails, and a FIFO pop-head commutes with an append-tail, so two
//! transitions at **distinct nodes commute** — executing them in either
//! order from any state where both are enabled reaches the same state.
//! Exploring both orders (as the exhaustive search does) is redundant.
//!
//! The *processes* of the reduction are the ordered per-lock channels
//! `Chan(ℓ, x→y)` (whose transitions are that channel's deliveries,
//! executing at `y`) and the per-node scripts `Scr(i)`; each process has at
//! most one enabled transition per state. Two transitions are **dependent**
//! iff they execute at the same node (conservative across locks: same-node
//! transitions on different locks touch disjoint protocol state, but
//! keeping the relation node-keyed is sound and keeps the script cursor —
//! which cross-lock script ops share — trivially ordered); send→delivery
//! causality is captured separately by stamping each message with the
//! vector clock of its sending transition.
//!
//! # What the reduction preserves, and how
//!
//! A Mazurkiewicz trace (an equivalence class of executions under swaps of
//! adjacent independent transitions) has a linearization-invariant final
//! state and linearization-invariant per-node projections. Exploring at
//! least one linearization per trace therefore preserves *exactly*:
//!
//! * the set of terminal states — so the quiescent audit, freeze
//!   convergence and deadlock detection are as strong as the exhaustive
//!   search (the equivalence property tests assert bit-identical terminal
//!   fingerprint sets);
//! * every node-local check — the FIFO grant-order shield is a function of
//!   the executing node's pre-state, which is trace-invariant.
//!
//! What a single linearization does **not** preserve is visibility of
//! *global intermediate* states: if node 1's release and node 2's grant are
//! causally unordered, one linearization shows the two critical sections
//! overlapping and another does not — and both are in the same trace class.
//! An interleaving-state audit alone would therefore miss mutual-exclusion
//! violations under reduction. The checker closes this gap structurally:
//! it tracks every critical section (a node's held-mode interval on one
//! lock) with the vector clocks of its opening and closing transitions, and
//! at the end of each explored path tests every incompatible same-lock pair
//! of sections at distinct nodes for happens-before order. If neither
//! section's close happens before the other's open, some linearization of
//! the trace puts both holders in one state — the standard predictive-race
//! argument — and the checker *synthesizes* that linearization (the causal
//! past of both opens, in stack order, then the two opens) as a replayable
//! witness schedule whose final state genuinely fails the safety audit.
//! Reduced runs thus detect every mutual-exclusion violation the exhaustive
//! search can, even on interleavings they never walk.
//!
//! # The algorithm
//!
//! Depth-first search over transition sequences. At each prefix, every
//! process's next transition `t` is compared (via vector clocks) against
//! the executed stack: the latest executed transition `S_i` that is
//! dependent with `t` but not happens-before it marks a state where the
//! exploration must also try `t`-first — a *backtrack point* (Flanagan–
//! Godefroid's `E`-rule picks which process to schedule there). Sleep sets
//! prune the redundant re-exploration of commuting siblings: after a
//! process is explored from a state, it is put to sleep for the sibling
//! branches and stays asleep in descendants until a dependent transition
//! executes. The search is stateless (no pruning on revisited states —
//! caching is unsound combined with backtrack sets), so it counts
//! *distinct* states and *transitions* separately.
//!
//! # Parallelism: fork-frontier
//!
//! With `Options::workers > 1` the search runs in two phases. A sequential
//! **builder** explores the first [`FORK_DEPTH`] levels with a *universal*
//! persistent set — every awake enabled transition is taken, not just the
//! backtrack set. Universality is what makes the cut sound: any backtrack
//! point a deeper exploration would insert into a frozen prefix frame is
//! already satisfied, because everything awake there is explored by some
//! job (and sleeping processes are covered by the sibling branch that put
//! them to sleep, exactly as in the sequential algorithm). Each depth-K
//! prefix becomes a **job**: the action sequence plus the entry sleep set,
//! carried as process *keys* (lock/channel/node tuples) rather than ids,
//! since each worker interns process ids in its own encounter order.
//! Workers draw jobs from a shared pool, replay the prefix with full
//! vector-clock and critical-section bookkeeping, and run the unmodified
//! sequential `visit` on the suffix. Distinct-state counts, violation
//! dedup and terminal sets live in lock-striped shared sets, so the
//! reported verdict and terminal fingerprints are identical to the
//! sequential run; with one worker the pool degenerates to the exact
//! sequential algorithm.
//!
//! # Symmetry
//!
//! With `Options::symmetry`, the distinct-state, violation-dedup and
//! terminal sets are keyed by canonical fingerprints ([`crate::canon`]).
//! The DFS itself is stateless, so canonical keying never prunes paths —
//! it only merges permutation-twin states in the *counts and verdict
//! sets*, making them comparable with the symmetry-reduced BFS.

use crate::canon::{Canonicalize, SymmetryGroup};
use crate::counterexample::Schedule;
use crate::explore::{
    audit_state, frozen_residue_state, waiting_nodes, CheckReport, Deadlock, Options, Reduction,
    Violation,
};
use crate::scenario::Scenario;
use crate::state::{Action, State};
use dlm_core::{Effect, Fingerprint, Mode};
use dlm_modes::compatible;
use std::collections::{BTreeMap, BTreeSet, HashSet, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Interned vector clocks (indexed by process id, values are 1-based
/// positions in the executed stack).
struct Clocks {
    arena: Vec<Vec<u32>>,
}

type ClockId = u32;
const ZERO: ClockId = 0;

impl Clocks {
    fn new() -> Self {
        Clocks {
            arena: vec![Vec::new()],
        }
    }

    fn get(&self, id: ClockId, proc_id: usize) -> u32 {
        self.arena[id as usize].get(proc_id).copied().unwrap_or(0)
    }

    fn join(&mut self, a: ClockId, b: ClockId) -> ClockId {
        if a == b || b == ZERO {
            return a;
        }
        if a == ZERO {
            return b;
        }
        let (va, vb) = (&self.arena[a as usize], &self.arena[b as usize]);
        let mut out = vec![0u32; va.len().max(vb.len())];
        for (i, slot) in out.iter_mut().enumerate() {
            *slot = va
                .get(i)
                .copied()
                .unwrap_or(0)
                .max(vb.get(i).copied().unwrap_or(0));
        }
        self.alloc(out)
    }

    /// `base` with `clock[proc_id] = index` (a transition's own clock).
    fn with(&mut self, base: ClockId, proc_id: usize, index: u32) -> ClockId {
        let mut v = self.arena[base as usize].clone();
        if v.len() <= proc_id {
            v.resize(proc_id + 1, 0);
        }
        v[proc_id] = v[proc_id].max(index);
        self.alloc(v)
    }

    fn alloc(&mut self, v: Vec<u32>) -> ClockId {
        self.arena.push(v);
        (self.arena.len() - 1) as ClockId
    }
}

/// Message clocks mirror `State::channels` exactly: one send-clock per
/// in-flight message, keyed `(lock, from, to)`.
type MsgClocks = BTreeMap<(u32, u32, u32), VecDeque<ClockId>>;

/// Worker-independent process identity: `(kind, lock, a, b)` with
/// `Scr(node) = (0, 0, node, 0)` and `Chan(lock, from→to) = (1, lock, from,
/// to)`. Jobs carry sleep sets as keys because interned ids depend on each
/// worker's encounter order.
type ProcKey = (u8, u32, u32, u32);

fn proc_key(action: Action) -> ProcKey {
    match action {
        Action::Script { node } => (0, 0, node, 0),
        Action::Deliver { lock, from, to } => (1, lock, from, to),
    }
}

fn key_node(key: ProcKey) -> u32 {
    match key.0 {
        0 => key.2,
        _ => key.3,
    }
}

/// One executed transition on the current DFS path.
struct Exec {
    action: Action,
    proc_id: usize,
}

/// A critical section on the current DFS path: one contiguous held-mode
/// interval at one node on one lock, bracketed by the vector clocks of the
/// transitions that opened and (if closed) closed it.
struct Section {
    lock: u32,
    node: u32,
    mode: Mode,
    /// 0-based stack position and clock of the opening transition.
    start: (usize, ClockId),
    /// Same for the closing transition; `None` while still held.
    end: Option<(usize, ClockId)>,
}

/// Per-prefix exploration frame.
struct Frame {
    enabled: Vec<Action>,
    procs: Vec<usize>,
    backtrack: BTreeSet<usize>,
    done: BTreeSet<usize>,
    /// Entry sleep set plus the procs already explored from this frame.
    sleep: BTreeSet<usize>,
}

/// A unit of parallel work: a depth-[`FORK_DEPTH`] prefix plus the sleep
/// set the sequential search would enter it with.
struct Job {
    prefix: Vec<Action>,
    sleep: Vec<ProcKey>,
}

/// Builder cut depth. Shallow enough that the universal prefix adds little
/// over the reduced search, deep enough to yield many more jobs than
/// workers (branching ≥ 2 per level in any contended scenario).
const FORK_DEPTH: usize = 3;

/// Number of stripes in the shared seen/flagged sets.
const STRIPES: usize = 16;

/// Verdict accumulators shared by every worker.
struct Results {
    violations: Vec<Violation>,
    deadlocks: Vec<Deadlock>,
    terminal_fps: BTreeSet<Fingerprint>,
    terminals: usize,
}

/// Exploration state shared across workers (and used single-threaded by the
/// sequential path, so both paths run literally the same code).
struct Shared<'a> {
    scenario: &'a Scenario,
    opts: Options,
    group: SymmetryGroup,
    symmetry: bool,
    seen: Vec<Mutex<HashSet<u128>>>,
    flagged: Vec<Mutex<HashSet<u128>>>,
    states: AtomicUsize,
    transitions: AtomicUsize,
    sym_hits: AtomicU64,
    dedup_hits: AtomicU64,
    truncated: AtomicBool,
    aborted: AtomicBool,
    results: Mutex<Results>,
    jobs: Mutex<VecDeque<Job>>,
}

enum Note {
    /// Newly counted distinct state.
    New,
    /// Already counted.
    Known,
    /// New, but over the state budget: abort.
    OverBudget,
}

impl Shared<'_> {
    /// The fingerprint key for the shared sets: canonical under symmetry.
    fn canon(&self, state: &State) -> Fingerprint {
        if self.symmetry {
            let raw = state.fingerprint();
            let canon = state.canonical_fingerprint(&self.group);
            if canon != raw {
                self.sym_hits.fetch_add(1, Ordering::Relaxed);
            }
            canon
        } else {
            state.fingerprint()
        }
    }

    fn stripe(set: &[Mutex<HashSet<u128>>], fp: Fingerprint) -> &Mutex<HashSet<u128>> {
        &set[(fp.0 as usize) & (STRIPES - 1)]
    }

    /// Count `fp` as a distinct state (idempotent), enforcing the budget.
    fn note_state(&self, fp: Fingerprint) -> Note {
        let newly = Shared::stripe(&self.seen, fp)
            .lock()
            .expect("seen stripe poisoned")
            .insert(fp.0);
        if !newly {
            self.dedup_hits.fetch_add(1, Ordering::Relaxed);
            return Note::Known;
        }
        if self
            .states
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |c| {
                (c < self.opts.max_states).then_some(c + 1)
            })
            .is_err()
        {
            self.truncated.store(true, Ordering::SeqCst);
            self.aborted.store(true, Ordering::SeqCst);
            return Note::OverBudget;
        }
        Note::New
    }

    /// Dedup violating states; true if `fp` was not yet flagged.
    fn flag(&self, fp: Fingerprint) -> bool {
        Shared::stripe(&self.flagged, fp)
            .lock()
            .expect("flagged stripe poisoned")
            .insert(fp.0)
    }

    fn violations_full(&self) -> bool {
        self.results
            .lock()
            .expect("results poisoned")
            .violations
            .len()
            >= CheckReport::MAX_RECORDED
    }

    fn record_violation(&self, errors: Vec<dlm_core::AuditError>, schedule: Schedule) {
        let mut results = self.results.lock().expect("results poisoned");
        if results.violations.len() < CheckReport::MAX_RECORDED {
            results.violations.push(Violation { errors, schedule });
        }
    }

    /// Classify a terminal state (dedup by fingerprint) — the DPOR analogue
    /// of the BFS level-barrier terminal handling.
    fn record_terminal(&self, state: &State, fp: Fingerprint, schedule: impl FnOnce() -> Schedule) {
        let mut results = self.results.lock().expect("results poisoned");
        if !results.terminal_fps.insert(fp) {
            return;
        }
        results.terminals += 1;
        let stuck_scripts: Vec<usize> = (0..state.pos.len())
            .filter(|&i| state.pos[i] < self.scenario.scripts[i].len() && !state.crashed[i])
            .collect();
        let waiting = waiting_nodes(state);
        if !stuck_scripts.is_empty() || !waiting.is_empty() {
            if results.deadlocks.len() < CheckReport::MAX_RECORDED {
                results.deadlocks.push(Deadlock {
                    stuck_scripts,
                    waiting,
                    schedule: schedule(),
                });
            }
            return;
        }
        // A clean terminal: full quiescent audit, plus freeze convergence —
        // every path ends in a terminal, so a frozen node here is a frozen
        // node from which no thaw is reachable.
        let mut errors = audit_state(state, true);
        errors.extend(frozen_residue_state(state));
        if !errors.is_empty() && results.violations.len() < CheckReport::MAX_RECORDED {
            results.violations.push(Violation {
                errors,
                schedule: schedule(),
            });
        }
    }

    fn transition_budget_left(&self) -> bool {
        self.transitions.load(Ordering::Relaxed) < self.opts.transition_budget()
    }

    fn over_time(&self, start: &Instant) -> bool {
        match self.opts.max_seconds {
            Some(limit) => start.elapsed().as_secs_f64() >= limit,
            None => false,
        }
    }
}

struct Explorer<'a, 'b> {
    shared: &'b Shared<'a>,
    clocks: Clocks,
    proc_ids: BTreeMap<ProcKey, usize>,
    proc_keys: Vec<ProcKey>,
    /// The (static) executing node of each process.
    proc_node: Vec<u32>,
    proc_clock: Vec<ClockId>,
    node_clock: Vec<ClockId>,
    stack: Vec<Exec>,
    frames: Vec<Frame>,
    sections: Vec<Section>,
    /// Index into `sections` of each `(lock, node)`'s currently open
    /// section, flattened as `lock * n + node`.
    open: Vec<Option<usize>>,
    /// `Some(k)`: builder mode — cut at depth `k`, emit jobs, branch
    /// universally above the cut.
    fork_depth: Option<usize>,
    jobs_out: Vec<Job>,
    start: Instant,
}

/// Run the reduced exploration.
pub(crate) fn run(scenario: &Scenario, opts: Options) -> CheckReport {
    let start = Instant::now();
    let workers = opts.workers.max(1);
    let group = if opts.symmetry {
        SymmetryGroup::of(scenario)
    } else {
        SymmetryGroup::trivial()
    };
    let symmetry = opts.symmetry && !group.is_trivial();

    let mut report = CheckReport::new(Reduction::On);
    report.workers = workers;
    report.group_order = group.order();
    if opts.max_states == 0 {
        report.truncated = true;
        report.elapsed_secs = start.elapsed().as_secs_f64();
        return report;
    }

    let shared = Shared {
        scenario,
        opts,
        group,
        symmetry,
        seen: (0..STRIPES).map(|_| Mutex::new(HashSet::new())).collect(),
        flagged: (0..STRIPES).map(|_| Mutex::new(HashSet::new())).collect(),
        states: AtomicUsize::new(0),
        transitions: AtomicUsize::new(0),
        sym_hits: AtomicU64::new(0),
        dedup_hits: AtomicU64::new(0),
        truncated: AtomicBool::new(false),
        aborted: AtomicBool::new(false),
        results: Mutex::new(Results {
            violations: Vec::new(),
            deadlocks: Vec::new(),
            terminal_fps: BTreeSet::new(),
            terminals: 0,
        }),
        jobs: Mutex::new(VecDeque::new()),
    };

    if workers == 1 {
        let mut explorer = Explorer::new(&shared, None, start);
        explorer.visit(State::initial(scenario), MsgClocks::new(), BTreeSet::new());
    } else {
        let mut builder = Explorer::new(&shared, Some(FORK_DEPTH), start);
        builder.visit(State::initial(scenario), MsgClocks::new(), BTreeSet::new());
        *shared.jobs.lock().expect("jobs poisoned") = builder.jobs_out.drain(..).collect();
        std::thread::scope(|s| {
            for _ in 0..workers {
                s.spawn(|| loop {
                    if shared.aborted.load(Ordering::Relaxed) {
                        return;
                    }
                    let job = shared.jobs.lock().expect("jobs poisoned").pop_front();
                    let Some(job) = job else { return };
                    let mut explorer = Explorer::new(&shared, None, start);
                    explorer.run_job(job);
                });
            }
        });
    }

    let results = shared.results.into_inner().expect("results poisoned");
    report.states = shared.states.load(Ordering::SeqCst);
    report.transitions = shared.transitions.load(Ordering::SeqCst);
    report.terminals = results.terminals;
    report.terminal_fingerprints = results.terminal_fps;
    report.violations = results.violations;
    report.deadlocks = results.deadlocks;
    report.truncated = shared.truncated.load(Ordering::SeqCst);
    report.sym_hits = shared.sym_hits.load(Ordering::SeqCst);
    report.dedup_hits = shared.dedup_hits.load(Ordering::SeqCst);
    report.elapsed_secs = start.elapsed().as_secs_f64();
    report
}

impl<'a, 'b> Explorer<'a, 'b> {
    fn new(shared: &'b Shared<'a>, fork_depth: Option<usize>, start: Instant) -> Self {
        let n = shared.scenario.parents.len();
        let locks = shared.scenario.locks as usize;
        Explorer {
            shared,
            clocks: Clocks::new(),
            proc_ids: BTreeMap::new(),
            proc_keys: Vec::new(),
            proc_node: Vec::new(),
            proc_clock: Vec::new(),
            node_clock: vec![ZERO; n],
            stack: Vec::new(),
            frames: Vec::new(),
            sections: Vec::new(),
            open: vec![None; locks * n],
            fork_depth,
            jobs_out: Vec::new(),
            start,
        }
    }

    fn intern(&mut self, key: ProcKey) -> usize {
        let next = self.proc_ids.len();
        let id = *self.proc_ids.entry(key).or_insert(next);
        if self.proc_clock.len() <= id {
            self.proc_clock.resize(id + 1, ZERO);
            self.proc_node.resize(id + 1, 0);
            self.proc_keys.resize(id + 1, (0, 0, 0, 0));
            self.proc_node[id] = key_node(key);
            self.proc_keys[id] = key;
        }
        id
    }

    fn current_schedule(&self) -> Schedule {
        Schedule(self.stack.iter().map(|e| e.action).collect())
    }

    fn aborted(&self) -> bool {
        self.shared.aborted.load(Ordering::Relaxed)
    }

    /// Replay a job's prefix with full clock/section bookkeeping (no
    /// save/restore — the prefix persists for the job's lifetime), then run
    /// the sequential search on the suffix.
    fn run_job(&mut self, job: Job) {
        let scenario = self.shared.scenario;
        let mut state = State::initial(scenario);
        let mut mclocks = MsgClocks::new();
        for &action in &job.prefix {
            let enabled = state.enabled_actions(scenario);
            debug_assert!(enabled.contains(&action), "job prefix action enabled");
            let procs: Vec<usize> = enabled.iter().map(|&a| self.intern(proc_key(a))).collect();
            let proc_id = self.intern(proc_key(action));
            let step = state.apply(scenario, action);
            self.shared.transitions.fetch_add(1, Ordering::Relaxed);
            debug_assert!(step.fifo_errors.is_empty(), "job prefixes are FIFO-clean");

            let index = (self.stack.len() + 1) as u32;
            let node = action.node() as usize;
            let mut c = self.node_clock[node];
            if let Action::Deliver { lock, from, to } = action {
                let q = mclocks
                    .get_mut(&(lock, from, to))
                    .expect("message clocks mirror channels");
                let send_clock = q.pop_front().expect("non-empty channel");
                if q.is_empty() {
                    mclocks.remove(&(lock, from, to));
                }
                c = self.clocks.join(c, send_clock);
            }
            let clock = self.clocks.with(c, proc_id, index);
            for effect in &step.effects {
                if let Effect::Send { to, .. } = effect {
                    mclocks
                        .entry((step.lock, action.node(), to.0))
                        .or_default()
                        .push_back(clock);
                }
            }
            self.proc_clock[proc_id] = clock;
            self.node_clock[node] = clock;

            let pos = self.stack.len();
            let slot = step.lock as usize * state.node_count() + node;
            let pre_held = state.nodes[step.lock as usize][node].held();
            let post_held = step.state.nodes[step.lock as usize][node].held();
            if pre_held != post_held {
                if let Some(si) = self.open[slot].take() {
                    self.sections[si].end = Some((pos, clock));
                }
                if post_held != Mode::NoLock {
                    self.open[slot] = Some(self.sections.len());
                    self.sections.push(Section {
                        lock: step.lock,
                        node: node as u32,
                        mode: post_held,
                        start: (pos, clock),
                        end: None,
                    });
                }
            }
            self.frames.push(Frame {
                enabled,
                procs,
                backtrack: BTreeSet::new(),
                done: BTreeSet::new(),
                sleep: BTreeSet::new(),
            });
            self.stack.push(Exec { action, proc_id });
            state = step.state;
        }
        let sleep: BTreeSet<usize> = job.sleep.iter().map(|&k| self.intern(k)).collect();
        self.visit(state, mclocks, sleep);
    }

    /// The Flanagan–Godefroid backtrack scan, run once per visited prefix:
    /// for every process's next transition `t`, find the latest executed
    /// transition dependent with `t` but not happens-before it, and add a
    /// backtrack point at the prefix preceding it.
    fn scan(&mut self, state: &State, mclocks: &MsgClocks) {
        if self.stack.is_empty() {
            return;
        }
        // Candidates: every *enabled* transition. Disabled script ops need
        // no candidacy: a node's script enabledness changes only through
        // transitions at that same node, which the node clock totally
        // orders, so a disabled op can never be the first same-node
        // transition of a reordered continuation — the race is always
        // mediated by its enabling delivery, which the scan sees as an
        // enabled candidate at the prefix where it exists.
        for t in state.enabled_actions(self.shared.scenario) {
            let p = self.intern(proc_key(t));
            let mut c = self.proc_clock[p];
            if let Action::Deliver { lock, from, to } = t {
                let head = mclocks
                    .get(&(lock, from, to))
                    .and_then(|q| q.front())
                    .copied()
                    .expect("message clocks mirror channels");
                c = self.clocks.join(c, head);
            }
            // The latest executed transition dependent with t that t could
            // have preceded. Dependent = same node. Co-enabledness matters
            // for script candidates: a script op's enabledness changes only
            // through transitions at its own node, so an op that was not
            // enabled at frame i cannot precede S_i in any trace — frames
            // where it was disabled are not races (this is FG's "may be
            // co-enabled" side condition). Deliveries stay unconditioned:
            // a message can always arrive earlier via its send chain, and
            // the E-rule proxy below schedules that chain.
            let is_script = matches!(t, Action::Script { .. });
            let Some(i) = (0..self.stack.len()).rev().find(|&i| {
                let e = &self.stack[i];
                e.action.node() == t.node() && (!is_script || self.frames[i].enabled.contains(&t))
            }) else {
                continue;
            };
            if self.clocks.get(c, self.stack[i].proc_id) >= (i + 1) as u32 {
                continue; // already happens-before ordered: not a race
            }
            // E-rule: prefer scheduling t's own process at frame i if it is
            // enabled there; else any process whose executed transition is
            // in t's causal past; else everything enabled at frame i.
            let frame_procs = self.frames[i].procs.clone();
            if let Some(idx) = frame_procs.iter().position(|&q| q == p) {
                self.frames[i].backtrack.insert(idx);
                continue;
            }
            let proxy = (i + 1..self.stack.len()).find_map(|j| {
                let pj = self.stack[j].proc_id;
                if self.clocks.get(c, pj) >= (j + 1) as u32 {
                    frame_procs.iter().position(|&q| q == pj)
                } else {
                    None
                }
            });
            match proxy {
                Some(idx) => {
                    self.frames[i].backtrack.insert(idx);
                }
                None => {
                    for idx in 0..frame_procs.len() {
                        self.frames[i].backtrack.insert(idx);
                    }
                }
            }
        }
    }

    /// Does section `x`'s close happen before section `y`'s open?
    /// An unclosed section happens-before nothing.
    fn closes_before(&self, x: &Section, y: &Section) -> bool {
        match x.end {
            None => false,
            Some((pos, _)) => {
                self.clocks.get(y.start.1, self.stack[pos].proc_id) >= (pos + 1) as u32
            }
        }
    }

    /// The synthesized linearization exposing an unordered overlap: the
    /// causal past of both opens (in stack order — a valid linearization of
    /// any happens-before–downward-closed subset of the path), then the two
    /// opens. In its final state both sections are open at once.
    fn witness(&self, a: &Section, b: &Section) -> Schedule {
        let mut acts = Vec::new();
        for (i, e) in self.stack.iter().enumerate() {
            if i == a.start.0 || i == b.start.0 {
                continue;
            }
            let idx = (i + 1) as u32;
            if self.clocks.get(a.start.1, e.proc_id) >= idx
                || self.clocks.get(b.start.1, e.proc_id) >= idx
            {
                acts.push(e.action);
            }
        }
        acts.push(self.stack[a.start.0].action);
        acts.push(self.stack[b.start.0].action);
        Schedule(acts)
    }

    /// At the end of an explored path: test every incompatible same-lock
    /// pair of critical sections at distinct nodes for happens-before
    /// order, and report each unordered pair with its synthesized witness
    /// schedule.
    fn check_overlaps(&mut self) {
        for i in 0..self.sections.len() {
            for j in i + 1..self.sections.len() {
                let (a, b) = (&self.sections[i], &self.sections[j]);
                if a.lock != b.lock || a.node == b.node || compatible(a.mode, b.mode) {
                    continue;
                }
                if self.closes_before(a, b) || self.closes_before(b, a) {
                    continue;
                }
                if self.shared.violations_full() {
                    return;
                }
                let schedule = self.witness(a, b);
                let mut st = State::initial(self.shared.scenario);
                for &act in &schedule.0 {
                    st = st.apply(self.shared.scenario, act).state;
                }
                if !self.shared.flag(self.shared.canon(&st)) {
                    continue;
                }
                let errors = audit_state(&st, false);
                debug_assert!(
                    !errors.is_empty(),
                    "witness for an unordered incompatible pair must fail the audit"
                );
                if !errors.is_empty() {
                    self.shared.record_violation(errors, schedule);
                }
            }
        }
    }

    fn visit(&mut self, state: State, mclocks: MsgClocks, sleep: BTreeSet<usize>) {
        if self.aborted() {
            return;
        }
        if let Some(cut) = self.fork_depth {
            if self.stack.len() >= cut {
                self.jobs_out.push(Job {
                    prefix: self.stack.iter().map(|e| e.action).collect(),
                    sleep: sleep.iter().map(|&p| self.proc_keys[p]).collect(),
                });
                return;
            }
        }
        let fp = self.shared.canon(&state);
        if matches!(self.shared.note_state(fp), Note::OverBudget) {
            return;
        }

        let errors = audit_state(&state, false);
        if !errors.is_empty() {
            if self.shared.flag(fp) {
                let schedule = self.current_schedule();
                self.shared.record_violation(errors, schedule);
            }
            return; // do not expand an already-broken state
        }

        let enabled = state.enabled_actions(self.shared.scenario);
        if enabled.is_empty() {
            let schedule = self.current_schedule();
            self.shared.record_terminal(&state, fp, || schedule);
            self.check_overlaps();
            return;
        }

        let procs: Vec<usize> = enabled.iter().map(|&a| self.intern(proc_key(a))).collect();
        // Sleep-set–blocked: every continuation from here is a sibling
        // branch's job; this prefix's trace classes are covered there.
        let Some(first_awake) = (0..procs.len()).find(|&i| !sleep.contains(&procs[i])) else {
            return;
        };

        let universal = self.fork_depth.is_some();
        if !universal {
            // Backtrack insertions above the fork cut are satisfied by
            // construction (everything awake is explored), so the builder
            // skips the scan.
            self.scan(&state, &mclocks);
        }

        let mut backtrack = BTreeSet::new();
        if universal {
            backtrack.extend(0..procs.len());
        } else {
            backtrack.insert(first_awake);
        }
        self.frames.push(Frame {
            enabled,
            procs,
            backtrack,
            done: BTreeSet::new(),
            sleep,
        });
        let depth = self.frames.len() - 1;

        loop {
            let pick = {
                let f = &self.frames[depth];
                f.backtrack.iter().copied().find(|i| !f.done.contains(i))
            };
            let Some(choice) = pick else { break };
            self.frames[depth].done.insert(choice);
            let action = self.frames[depth].enabled[choice];
            let proc_id = self.frames[depth].procs[choice];
            if self.frames[depth].sleep.contains(&proc_id) {
                continue; // already explored from here, or covered by a sibling
            }

            if !self.shared.transition_budget_left() || self.shared.over_time(&self.start) {
                self.shared.truncated.store(true, Ordering::SeqCst);
                self.shared.aborted.store(true, Ordering::SeqCst);
                break;
            }
            let step = state.apply(self.shared.scenario, action);
            self.shared.transitions.fetch_add(1, Ordering::Relaxed);

            // Vector-clock bookkeeping for the executed transition.
            let index = (self.stack.len() + 1) as u32;
            let node = action.node() as usize;
            let mut c = self.node_clock[node];
            let mut child_mclocks = mclocks.clone();
            if let Action::Deliver { lock, from, to } = action {
                let q = child_mclocks
                    .get_mut(&(lock, from, to))
                    .expect("message clocks mirror channels");
                let send_clock = q.pop_front().expect("non-empty channel");
                if q.is_empty() {
                    child_mclocks.remove(&(lock, from, to));
                }
                c = self.clocks.join(c, send_clock);
            }
            let clock = self.clocks.with(c, proc_id, index);
            for effect in &step.effects {
                if let Effect::Send { to, .. } = effect {
                    child_mclocks
                        .entry((step.lock, action.node(), to.0))
                        .or_default()
                        .push_back(clock);
                }
            }
            let saved_proc = self.proc_clock[proc_id];
            let saved_node = self.node_clock[node];
            self.proc_clock[proc_id] = clock;
            self.node_clock[node] = clock;

            // Critical-section bookkeeping: a held-mode change on the
            // executing lock closes the (lock, node) open section and/or
            // opens a new one.
            let pos = self.stack.len();
            let slot = step.lock as usize * state.node_count() + node;
            let pre_held = state.nodes[step.lock as usize][node].held();
            let post_held = step.state.nodes[step.lock as usize][node].held();
            let saved_open = self.open[slot];
            let mut closed = None;
            let mut opened = false;
            if pre_held != post_held {
                if let Some(si) = self.open[slot].take() {
                    self.sections[si].end = Some((pos, clock));
                    closed = Some(si);
                }
                if post_held != Mode::NoLock {
                    self.open[slot] = Some(self.sections.len());
                    self.sections.push(Section {
                        lock: step.lock,
                        node: node as u32,
                        mode: post_held,
                        start: (pos, clock),
                        end: None,
                    });
                    opened = true;
                }
            }
            self.stack.push(Exec { action, proc_id });

            if step.fifo_errors.is_empty() {
                let child_sleep: BTreeSet<usize> = self.frames[depth]
                    .sleep
                    .iter()
                    .copied()
                    .filter(|&q| self.proc_node[q] != action.node())
                    .collect();
                self.visit(step.state, child_mclocks, child_sleep);
            } else if self.shared.flag(self.shared.canon(&step.state)) {
                let schedule = self.current_schedule();
                self.shared.record_violation(step.fifo_errors, schedule);
            }

            self.stack.pop();
            if opened {
                self.sections.pop();
            }
            self.open[slot] = saved_open;
            if let Some(si) = closed {
                self.sections[si].end = None;
            }
            self.proc_clock[proc_id] = saved_proc;
            self.node_clock[node] = saved_node;
            if self.aborted() {
                break;
            }
            self.frames[depth].sleep.insert(proc_id);
        }
        self.frames.pop();
    }
}
