//! Dynamic partial-order reduction (Flanagan–Godefroid backtrack sets plus
//! Godefroid sleep sets), with happens-before interval detection restoring
//! full mutual-exclusion soundness.
//!
//! # Why reduction is possible
//!
//! Every transition of the explored system executes at exactly one node: a
//! delivery pops one channel head and runs `on_message` at the receiver; a
//! script step runs one entry point at its node. Sends only *append* to
//! channel tails, and a FIFO pop-head commutes with an append-tail, so two
//! transitions at **distinct nodes commute** — executing them in either
//! order from any state where both are enabled reaches the same state.
//! Exploring both orders (as the exhaustive search does) is redundant.
//!
//! The *processes* of the reduction are the ordered channels `Chan(x→y)`
//! (whose transitions are that channel's deliveries, executing at `y`) and
//! the per-node scripts `Scr(i)`; each process has at most one enabled
//! transition per state. Two transitions are **dependent** iff they execute
//! at the same node; send→delivery causality is captured separately by
//! stamping each message with the vector clock of its sending transition.
//!
//! # What the reduction preserves, and how
//!
//! A Mazurkiewicz trace (an equivalence class of executions under swaps of
//! adjacent independent transitions) has a linearization-invariant final
//! state and linearization-invariant per-node projections. Exploring at
//! least one linearization per trace therefore preserves *exactly*:
//!
//! * the set of terminal states — so the quiescent audit, freeze
//!   convergence and deadlock detection are as strong as the exhaustive
//!   search (the equivalence property tests assert bit-identical terminal
//!   fingerprint sets);
//! * every node-local check — the FIFO grant-order shield is a function of
//!   the executing node's pre-state, which is trace-invariant.
//!
//! What a single linearization does **not** preserve is visibility of
//! *global intermediate* states: if node 1's release and node 2's grant are
//! causally unordered, one linearization shows the two critical sections
//! overlapping and another does not — and both are in the same trace class.
//! An interleaving-state audit alone would therefore miss mutual-exclusion
//! violations under reduction. The checker closes this gap structurally:
//! it tracks every critical section (a node's held-mode interval) with the
//! vector clocks of its opening and closing transitions, and at the end of
//! each explored path tests every incompatible pair of sections at distinct
//! nodes for happens-before order. If neither section's close happens
//! before the other's open, some linearization of the trace puts both
//! holders in one state — the standard predictive-race argument — and the
//! checker *synthesizes* that linearization (the causal past of both opens,
//! in stack order, then the two opens) as a replayable witness schedule
//! whose final state genuinely fails the safety audit. Reduced runs thus
//! detect every mutual-exclusion violation the exhaustive search can, even
//! on interleavings they never walk.
//!
//! # The algorithm
//!
//! Depth-first search over transition sequences. At each prefix, every
//! process's next transition `t` is compared (via vector clocks) against
//! the executed stack: the latest executed transition `S_i` that is
//! dependent with `t` but not happens-before it marks a state where the
//! exploration must also try `t`-first — a *backtrack point* (Flanagan–
//! Godefroid's `E`-rule picks which process to schedule there). Sleep sets
//! prune the redundant re-exploration of commuting siblings: after a
//! process is explored from a state, it is put to sleep for the sibling
//! branches and stays asleep in descendants until a dependent transition
//! executes. The search is stateless (no pruning on revisited states —
//! caching is unsound combined with backtrack sets), so it counts
//! *distinct* states and *transitions* separately.

use crate::counterexample::Schedule;
use crate::explore::{record_terminal, CheckReport, Options, Reduction, Violation};
use crate::scenario::Scenario;
use crate::state::{Action, State};
use dlm_core::{audit, Effect, Mode};
use dlm_modes::compatible;
use std::collections::{BTreeMap, BTreeSet, HashSet, VecDeque};

/// Interned vector clocks (indexed by process id, values are 1-based
/// positions in the executed stack).
struct Clocks {
    arena: Vec<Vec<u32>>,
}

type ClockId = u32;
const ZERO: ClockId = 0;

impl Clocks {
    fn new() -> Self {
        Clocks {
            arena: vec![Vec::new()],
        }
    }

    fn get(&self, id: ClockId, proc_id: usize) -> u32 {
        self.arena[id as usize].get(proc_id).copied().unwrap_or(0)
    }

    fn join(&mut self, a: ClockId, b: ClockId) -> ClockId {
        if a == b || b == ZERO {
            return a;
        }
        if a == ZERO {
            return b;
        }
        let (va, vb) = (&self.arena[a as usize], &self.arena[b as usize]);
        let mut out = vec![0u32; va.len().max(vb.len())];
        for (i, slot) in out.iter_mut().enumerate() {
            *slot = va
                .get(i)
                .copied()
                .unwrap_or(0)
                .max(vb.get(i).copied().unwrap_or(0));
        }
        self.alloc(out)
    }

    /// `base` with `clock[proc_id] = index` (a transition's own clock).
    fn with(&mut self, base: ClockId, proc_id: usize, index: u32) -> ClockId {
        let mut v = self.arena[base as usize].clone();
        if v.len() <= proc_id {
            v.resize(proc_id + 1, 0);
        }
        v[proc_id] = v[proc_id].max(index);
        self.alloc(v)
    }

    fn alloc(&mut self, v: Vec<u32>) -> ClockId {
        self.arena.push(v);
        (self.arena.len() - 1) as ClockId
    }
}

/// Message clocks mirror `State::channels` exactly: one send-clock per
/// in-flight message.
type MsgClocks = BTreeMap<(u32, u32), VecDeque<ClockId>>;

/// One executed transition on the current DFS path.
struct Exec {
    action: Action,
    proc_id: usize,
}

/// A critical section on the current DFS path: one contiguous held-mode
/// interval at one node, bracketed by the vector clocks of the transitions
/// that opened and (if closed) closed it.
struct Section {
    node: u32,
    mode: Mode,
    /// 0-based stack position and clock of the opening transition.
    start: (usize, ClockId),
    /// Same for the closing transition; `None` while still held.
    end: Option<(usize, ClockId)>,
}

/// Per-prefix exploration frame.
struct Frame {
    enabled: Vec<Action>,
    procs: Vec<usize>,
    backtrack: BTreeSet<usize>,
    done: BTreeSet<usize>,
    /// Entry sleep set plus the procs already explored from this frame.
    sleep: BTreeSet<usize>,
}

struct Explorer<'a> {
    scenario: &'a Scenario,
    opts: Options,
    report: CheckReport,
    clocks: Clocks,
    proc_ids: BTreeMap<(u8, u32, u32), usize>,
    /// The (static) executing node of each process.
    proc_node: Vec<u32>,
    proc_clock: Vec<ClockId>,
    node_clock: Vec<ClockId>,
    stack: Vec<Exec>,
    frames: Vec<Frame>,
    sections: Vec<Section>,
    /// Index into `sections` of each node's currently open section.
    open: Vec<Option<usize>>,
    seen: HashSet<u128>,
    flagged: HashSet<u128>,
    aborted: bool,
}

/// Run the reduced exploration.
pub(crate) fn run(scenario: &Scenario, opts: Options) -> CheckReport {
    let mut report = CheckReport {
        states: 0,
        transitions: 0,
        terminals: 0,
        violations: Vec::new(),
        deadlocks: Vec::new(),
        truncated: false,
        reduction: Reduction::On,
        terminal_fingerprints: BTreeSet::new(),
    };
    if opts.max_states == 0 {
        report.truncated = true;
        return report;
    }
    let mut explorer = Explorer {
        scenario,
        opts,
        report,
        clocks: Clocks::new(),
        proc_ids: BTreeMap::new(),
        proc_node: Vec::new(),
        proc_clock: Vec::new(),
        node_clock: vec![ZERO; scenario.parents.len()],
        stack: Vec::new(),
        frames: Vec::new(),
        sections: Vec::new(),
        open: vec![None; scenario.parents.len()],
        seen: HashSet::new(),
        flagged: HashSet::new(),
        aborted: false,
    };
    explorer.visit(State::initial(scenario), MsgClocks::new(), BTreeSet::new());
    explorer.report
}

impl Explorer<'_> {
    fn intern(&mut self, action: Action) -> usize {
        let key = match action {
            Action::Script { node } => (0u8, node, 0u32),
            Action::Deliver { from, to } => (1u8, from, to),
        };
        let next = self.proc_ids.len();
        let id = *self.proc_ids.entry(key).or_insert(next);
        if self.proc_clock.len() <= id {
            self.proc_clock.resize(id + 1, ZERO);
            self.proc_node.resize(id + 1, 0);
            self.proc_node[id] = action.node();
        }
        id
    }

    fn current_schedule(&self) -> Schedule {
        Schedule(self.stack.iter().map(|e| e.action).collect())
    }

    /// The Flanagan–Godefroid backtrack scan, run once per visited prefix:
    /// for every process's next transition `t`, find the latest executed
    /// transition dependent with `t` but not happens-before it, and add a
    /// backtrack point at the prefix preceding it.
    fn scan(&mut self, state: &State, mclocks: &MsgClocks) {
        if self.stack.is_empty() {
            return;
        }
        // Candidates: every *enabled* transition. Disabled script ops need
        // no candidacy: a node's script enabledness changes only through
        // transitions at that same node, which the node clock totally
        // orders, so a disabled op can never be the first same-node
        // transition of a reordered continuation — the race is always
        // mediated by its enabling delivery, which the scan sees as an
        // enabled candidate at the prefix where it exists.
        for t in state.enabled_actions(self.scenario) {
            let p = self.intern(t);
            let mut c = self.proc_clock[p];
            if let Action::Deliver { from, to } = t {
                let head = mclocks
                    .get(&(from, to))
                    .and_then(|q| q.front())
                    .copied()
                    .expect("message clocks mirror channels");
                c = self.clocks.join(c, head);
            }
            // The latest executed transition dependent with t that t could
            // have preceded. Dependent = same node. Co-enabledness matters
            // for script candidates: a script op's enabledness changes only
            // through transitions at its own node, so an op that was not
            // enabled at frame i cannot precede S_i in any trace — frames
            // where it was disabled are not races (this is FG's "may be
            // co-enabled" side condition). Deliveries stay unconditioned:
            // a message can always arrive earlier via its send chain, and
            // the E-rule proxy below schedules that chain.
            let is_script = matches!(t, Action::Script { .. });
            let Some(i) = (0..self.stack.len()).rev().find(|&i| {
                let e = &self.stack[i];
                e.action.node() == t.node() && (!is_script || self.frames[i].enabled.contains(&t))
            }) else {
                continue;
            };
            if self.clocks.get(c, self.stack[i].proc_id) >= (i + 1) as u32 {
                continue; // already happens-before ordered: not a race
            }
            // E-rule: prefer scheduling t's own process at frame i if it is
            // enabled there; else any process whose executed transition is
            // in t's causal past; else everything enabled at frame i.
            let frame_procs = self.frames[i].procs.clone();
            if let Some(idx) = frame_procs.iter().position(|&q| q == p) {
                self.frames[i].backtrack.insert(idx);
                continue;
            }
            let proxy = (i + 1..self.stack.len()).find_map(|j| {
                let pj = self.stack[j].proc_id;
                if self.clocks.get(c, pj) >= (j + 1) as u32 {
                    frame_procs.iter().position(|&q| q == pj)
                } else {
                    None
                }
            });
            match proxy {
                Some(idx) => {
                    self.frames[i].backtrack.insert(idx);
                }
                None => {
                    for idx in 0..frame_procs.len() {
                        self.frames[i].backtrack.insert(idx);
                    }
                }
            }
        }
    }

    /// Does section `x`'s close happen before section `y`'s open?
    /// An unclosed section happens-before nothing.
    fn closes_before(&self, x: &Section, y: &Section) -> bool {
        match x.end {
            None => false,
            Some((pos, _)) => {
                self.clocks.get(y.start.1, self.stack[pos].proc_id) >= (pos + 1) as u32
            }
        }
    }

    /// The synthesized linearization exposing an unordered overlap: the
    /// causal past of both opens (in stack order — a valid linearization of
    /// any happens-before–downward-closed subset of the path), then the two
    /// opens. In its final state both sections are open at once.
    fn witness(&self, a: &Section, b: &Section) -> Schedule {
        let mut acts = Vec::new();
        for (i, e) in self.stack.iter().enumerate() {
            if i == a.start.0 || i == b.start.0 {
                continue;
            }
            let idx = (i + 1) as u32;
            if self.clocks.get(a.start.1, e.proc_id) >= idx
                || self.clocks.get(b.start.1, e.proc_id) >= idx
            {
                acts.push(e.action);
            }
        }
        acts.push(self.stack[a.start.0].action);
        acts.push(self.stack[b.start.0].action);
        Schedule(acts)
    }

    /// At the end of an explored path: test every incompatible pair of
    /// critical sections at distinct nodes for happens-before order, and
    /// report each unordered pair with its synthesized witness schedule.
    fn check_overlaps(&mut self) {
        for i in 0..self.sections.len() {
            for j in i + 1..self.sections.len() {
                let (a, b) = (&self.sections[i], &self.sections[j]);
                if a.node == b.node || compatible(a.mode, b.mode) {
                    continue;
                }
                if self.closes_before(a, b) || self.closes_before(b, a) {
                    continue;
                }
                if self.report.violations.len() >= CheckReport::MAX_RECORDED {
                    return;
                }
                let schedule = self.witness(a, b);
                let mut st = State::initial(self.scenario);
                for &act in &schedule.0 {
                    st = st.apply(self.scenario, act).state;
                }
                if !self.flagged.insert(st.fingerprint().0) {
                    continue;
                }
                let errors = audit(&st.nodes, &st.in_flight(), false);
                debug_assert!(
                    !errors.is_empty(),
                    "witness for an unordered incompatible pair must fail the audit"
                );
                if !errors.is_empty() {
                    self.report.violations.push(Violation { errors, schedule });
                }
            }
        }
    }

    fn visit(&mut self, state: State, mclocks: MsgClocks, sleep: BTreeSet<usize>) {
        if self.aborted {
            return;
        }
        let fp = state.fingerprint();
        if self.seen.insert(fp.0) {
            if self.report.states == self.opts.max_states {
                self.report.truncated = true;
                self.aborted = true;
                return;
            }
            self.report.states += 1;
        }

        let errors = audit(&state.nodes, &state.in_flight(), false);
        if !errors.is_empty() {
            if self.flagged.insert(fp.0) && self.report.violations.len() < CheckReport::MAX_RECORDED
            {
                let schedule = self.current_schedule();
                self.report.violations.push(Violation { errors, schedule });
            }
            return; // do not expand an already-broken state
        }

        let enabled = state.enabled_actions(self.scenario);
        if enabled.is_empty() {
            let schedule = self.current_schedule();
            record_terminal(&mut self.report, self.scenario, &state, fp, || schedule);
            self.check_overlaps();
            return;
        }

        let procs: Vec<usize> = enabled.iter().map(|&a| self.intern(a)).collect();
        // Sleep-set–blocked: every continuation from here is a sibling
        // branch's job; this prefix's trace classes are covered there.
        let Some(first_awake) = (0..procs.len()).find(|&i| !sleep.contains(&procs[i])) else {
            return;
        };

        self.scan(&state, &mclocks);

        let mut backtrack = BTreeSet::new();
        backtrack.insert(first_awake);
        self.frames.push(Frame {
            enabled,
            procs,
            backtrack,
            done: BTreeSet::new(),
            sleep,
        });
        let depth = self.frames.len() - 1;

        loop {
            let pick = {
                let f = &self.frames[depth];
                f.backtrack.iter().copied().find(|i| !f.done.contains(i))
            };
            let Some(choice) = pick else { break };
            self.frames[depth].done.insert(choice);
            let action = self.frames[depth].enabled[choice];
            let proc_id = self.frames[depth].procs[choice];
            if self.frames[depth].sleep.contains(&proc_id) {
                continue; // already explored from here, or covered by a sibling
            }

            if self.report.transitions >= self.opts.transition_budget() {
                self.report.truncated = true;
                self.aborted = true;
                break;
            }
            let step = state.apply(self.scenario, action);
            self.report.transitions += 1;

            // Vector-clock bookkeeping for the executed transition.
            let index = (self.stack.len() + 1) as u32;
            let node = action.node() as usize;
            let mut c = self.node_clock[node];
            let mut child_mclocks = mclocks.clone();
            if let Action::Deliver { from, to } = action {
                let q = child_mclocks
                    .get_mut(&(from, to))
                    .expect("message clocks mirror channels");
                let send_clock = q.pop_front().expect("non-empty channel");
                if q.is_empty() {
                    child_mclocks.remove(&(from, to));
                }
                c = self.clocks.join(c, send_clock);
            }
            let clock = self.clocks.with(c, proc_id, index);
            for effect in &step.effects {
                if let Effect::Send { to, .. } = effect {
                    child_mclocks
                        .entry((action.node(), to.0))
                        .or_default()
                        .push_back(clock);
                }
            }
            let saved_proc = self.proc_clock[proc_id];
            let saved_node = self.node_clock[node];
            self.proc_clock[proc_id] = clock;
            self.node_clock[node] = clock;

            // Critical-section bookkeeping: a held-mode change closes the
            // node's open section and/or opens a new one.
            let pos = self.stack.len();
            let (pre_held, post_held) = (state.nodes[node].held(), step.state.nodes[node].held());
            let saved_open = self.open[node];
            let mut closed = None;
            let mut opened = false;
            if pre_held != post_held {
                if let Some(si) = self.open[node].take() {
                    self.sections[si].end = Some((pos, clock));
                    closed = Some(si);
                }
                if post_held != Mode::NoLock {
                    self.open[node] = Some(self.sections.len());
                    self.sections.push(Section {
                        node: node as u32,
                        mode: post_held,
                        start: (pos, clock),
                        end: None,
                    });
                    opened = true;
                }
            }
            self.stack.push(Exec { action, proc_id });

            if step.fifo_errors.is_empty() {
                let child_sleep: BTreeSet<usize> = self.frames[depth]
                    .sleep
                    .iter()
                    .copied()
                    .filter(|&q| self.proc_node[q] != action.node())
                    .collect();
                self.visit(step.state, child_mclocks, child_sleep);
            } else {
                let sfp = step.state.fingerprint();
                if self.flagged.insert(sfp.0)
                    && self.report.violations.len() < CheckReport::MAX_RECORDED
                {
                    let schedule = self.current_schedule();
                    self.report.violations.push(Violation {
                        errors: step.fifo_errors,
                        schedule,
                    });
                }
            }

            self.stack.pop();
            if opened {
                self.sections.pop();
            }
            self.open[node] = saved_open;
            if let Some(si) = closed {
                self.sections[si].end = None;
            }
            self.proc_clock[proc_id] = saved_proc;
            self.node_clock[node] = saved_node;
            if self.aborted {
                break;
            }
            self.frames[depth].sleep.insert(proc_id);
        }
        self.frames.pop();
    }
}
