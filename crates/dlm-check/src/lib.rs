//! A bounded, exhaustive model checker for the hierarchical locking
//! protocol.
//!
//! Property tests sample random schedules; this crate goes further for
//! small configurations: it explores the reachable interleavings of
//! message deliveries (per-channel FIFO, as TCP/MPI guarantee) and
//! application actions, asserting the global safety invariants in every
//! reachable state and liveness (no deadlock, clean quiescence, freeze
//! convergence) in every terminal state.
//!
//! The verification subsystem has three layers:
//!
//! * **Exploration** ([`explore_with`]): either exhaustive breadth-first
//!   search over a 128-bit structural state fingerprint (minimal
//!   counterexamples, exact state budgets), or a sleep-set dynamic
//!   partial-order reduction ([`Reduction::On`], module [`dpor`]) that
//!   exploits the commutativity of deliveries on disjoint channels. The
//!   reduced search is trace-optimal (one execution per Mazurkiewicz
//!   trace), touches 2–4× fewer distinct states on forwarding-heavy
//!   topologies (growing with scale), and needs only a 16-byte
//!   fingerprint per state where the BFS keeps full states; see
//!   `EXPERIMENTS.md` for measurements and the honest limits. Both
//!   drivers run on `Options::workers` work-stealing threads and, with
//!   `Options::symmetry`, quotient the space by the scenario's node
//!   automorphism group (module [`canon`]) — permuted clusters collapse
//!   to one canonical representative, with counterexamples reconstructed
//!   back into concrete minimal schedules.
//! * **Counterexamples** (module [`counterexample`]): every violation and
//!   deadlock carries a replayable [`Schedule`]; schedules re-execute
//!   deterministically ([`replay`]), export as `dlm-trace` JSONL event
//!   streams ([`schedule_trace`]) and render as per-step walkthroughs
//!   ([`walkthrough`]).
//! * **Scenario supply**: hand-written scenarios ([`Scenario`]) and
//!   auto-enumerated families over star/chain/binary-tree topologies with
//!   symmetry deduplication (module [`enumerate`]), driven by the `check`
//!   CLI bin.
//!
//! Checked properties: pairwise holder compatibility, single token,
//! owned-cache coherence, copyset coverage and quiescence at terminals
//! (via `dlm_core::audit`), per-lock FIFO grant order at the token node
//! (via `dlm_core::fifo_overtakes`, checked on every transition), and
//! freeze convergence at terminals (via `dlm_core::frozen_residue`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod canon;
pub mod counterexample;
pub mod dpor;
pub mod enumerate;
pub mod explore;
pub mod scenario;
pub mod state;

pub use canon::{permute_state, Canonicalize, SymmetryGroup};
pub use counterexample::{replay, schedule_trace, walkthrough, Replay, Schedule};
pub use explore::{explore, explore_with, CheckReport, Deadlock, Options, Reduction, Violation};
pub use scenario::{Op, Scenario};
pub use state::{Action, State, Step};

#[cfg(test)]
mod tests {
    use super::*;
    use dlm_core::{Mode, ProtocolConfig};

    fn paper() -> ProtocolConfig {
        ProtocolConfig::paper()
    }

    #[test]
    fn single_writer_is_verified() {
        let s = Scenario::star(
            2,
            vec![vec![], vec![Op::Acquire(Mode::Write), Op::Release]],
            paper(),
        );
        let r = explore(&s, 100_000);
        assert!(r.verified(), "{r:?}");
        assert!(r.states > 1);
    }

    #[test]
    fn two_competing_writers_all_interleavings() {
        let s = Scenario::star(
            3,
            vec![
                vec![],
                vec![Op::Acquire(Mode::Write), Op::Release],
                vec![Op::Acquire(Mode::Write), Op::Release],
            ],
            paper(),
        );
        let r = explore(&s, 2_000_000);
        assert!(r.verified(), "{r:?}");
        assert!(r.terminals >= 1);
    }

    #[test]
    fn readers_and_writer_race() {
        let s = Scenario::star(
            3,
            vec![
                vec![Op::Acquire(Mode::Read), Op::Release],
                vec![Op::Acquire(Mode::Read), Op::Release],
                vec![Op::Acquire(Mode::Write), Op::Release],
            ],
            paper(),
        );
        let r = explore(&s, 2_000_000);
        assert!(r.verified(), "{r:?}");
    }

    #[test]
    fn upgrade_race_with_reader() {
        let s = Scenario::star(
            3,
            vec![
                vec![],
                vec![Op::Acquire(Mode::Upgrade), Op::Upgrade, Op::Release],
                vec![Op::Acquire(Mode::IntentRead), Op::Release],
            ],
            paper(),
        );
        let r = explore(&s, 2_000_000);
        assert!(r.verified(), "{r:?}");
    }

    #[test]
    fn chain_topology_forwarding_and_freezing() {
        // Requests from the chain tail are forwarded through intermediate
        // nodes; the W from the middle freezes the IR holders transitively.
        let s = Scenario::chain(
            4,
            vec![
                vec![Op::Acquire(Mode::IntentRead), Op::Release],
                vec![Op::Acquire(Mode::IntentRead), Op::Release],
                vec![Op::Acquire(Mode::Write), Op::Release],
                vec![Op::Acquire(Mode::IntentRead), Op::Release],
            ],
            paper(),
        );
        let r = explore(&s, 4_000_000);
        assert!(r.verified(), "{r:?}");
        assert!(
            r.states > 1_000,
            "expected a deep interleaving space, got {}",
            r.states
        );
    }

    #[test]
    fn every_ablation_is_safe_in_the_writer_race() {
        for ablation in dlm_core::ALL_ABLATIONS {
            let s = Scenario::star(
                3,
                vec![
                    vec![Op::Acquire(Mode::Read), Op::Release],
                    vec![Op::Acquire(Mode::Write), Op::Release],
                    vec![Op::Acquire(Mode::IntentWrite), Op::Release],
                ],
                paper().without(ablation),
            );
            let r = explore(&s, 4_000_000);
            assert!(r.verified(), "{ablation:?}: {r:?}");
        }
    }

    #[test]
    fn literal_rule_3_2_is_safe_in_the_writer_race() {
        let s = Scenario::star(
            3,
            vec![
                vec![Op::Acquire(Mode::Read), Op::Release],
                vec![Op::Acquire(Mode::Write), Op::Release],
                vec![Op::Acquire(Mode::Read), Op::Release],
            ],
            paper().literal_rule_3_2(),
        );
        let r = explore(&s, 4_000_000);
        assert!(r.verified(), "{r:?}");
    }

    /// The checker itself must be able to *detect* liveness failures: a
    /// reader that never releases leaves the writer waiting in a terminal
    /// state, which must be reported as a deadlock.
    #[test]
    fn checker_detects_genuine_deadlock() {
        let s = Scenario::star(
            3,
            vec![
                vec![],
                vec![Op::Acquire(Mode::Read)], // acquired, never released
                vec![Op::Acquire(Mode::Write), Op::Release],
            ],
            paper(),
        );
        let r = explore(&s, 1_000_000);
        assert!(
            !r.deadlocks.is_empty(),
            "a never-released R must strand the W: {r:?}"
        );
        assert!(r.violations.is_empty(), "stranded, but never unsafe: {r:?}");
        // Deadlock schedules replay into a state that really is stuck.
        let d = &r.deadlocks[0];
        let replayed = replay(&s, &d.schedule);
        let end = replayed.final_state();
        assert!(end.quiet(), "deadlock replay must end quiescent");
        assert!(
            end.nodes.iter().flatten().any(|n| n.pending().is_some()),
            "someone must still be waiting"
        );
    }

    #[test]
    fn grant_release_channel_race_is_covered() {
        // The scenario family that exposed the ack-counter bug: a node whose
        // subtree empties while a grant from the (moved) token races its
        // release on the opposite channel.
        let s = Scenario::star(
            3,
            vec![
                vec![Op::Acquire(Mode::IntentRead), Op::Release],
                vec![Op::Acquire(Mode::Upgrade), Op::Upgrade, Op::Release],
                vec![Op::Acquire(Mode::Read), Op::Release],
            ],
            paper(),
        );
        let r = explore(&s, 4_000_000);
        assert!(r.verified(), "{r:?}");
    }

    /// Satellite: the state budget is exact — a truncated report never
    /// counts more states than `max_states` (the seed incremented before
    /// checking, reporting budget+1).
    #[test]
    fn state_budget_is_exact() {
        let s = Scenario::star(
            3,
            vec![
                vec![],
                vec![Op::Acquire(Mode::Write), Op::Release],
                vec![Op::Acquire(Mode::Write), Op::Release],
            ],
            paper(),
        );
        let full = explore(&s, 1_000_000);
        assert!(full.verified());
        // Exact budget: completes, not truncated.
        let exact = explore(&s, full.states);
        assert!(!exact.truncated, "{exact:?}");
        assert_eq!(exact.states, full.states);
        // One below: truncated, and the count equals the budget exactly.
        for budget in [1usize, 2, full.states - 1] {
            let r = explore(&s, budget);
            assert!(r.truncated, "budget {budget}: {r:?}");
            assert_eq!(r.states, budget, "budget {budget} must be exact");
            assert!(!r.verified());
        }
        // Same contract under reduction.
        let reduced = explore_with(&s, Options::reduced(3));
        assert!(reduced.truncated);
        assert_eq!(reduced.states, 3);
    }

    /// Tentpole: the partial-order reduction must agree with the
    /// exhaustive search bit-for-bit on what matters — verdict and
    /// terminal-state set — while touching measurably fewer distinct
    /// states on the forwarding-heavy chain (the reduced search is
    /// trace-optimal: it runs exactly one execution per Mazurkiewicz
    /// trace, which on this scenario halves the states; see
    /// EXPERIMENTS.md for why 2× is the commutativity structure's actual
    /// yield here, not a tuning shortfall).
    #[test]
    fn reduction_agrees_with_exhaustive_search_and_shrinks_the_chain() {
        let s = Scenario::chain(
            4,
            vec![
                vec![Op::Acquire(Mode::IntentRead), Op::Release],
                vec![Op::Acquire(Mode::IntentRead), Op::Release],
                vec![Op::Acquire(Mode::Write), Op::Release],
                vec![Op::Acquire(Mode::IntentRead), Op::Release],
            ],
            paper(),
        );
        let off = explore_with(&s, Options::exhaustive(4_000_000));
        let on = explore_with(&s, Options::reduced(4_000_000));
        assert!(off.verified(), "{off:?}");
        assert!(on.verified(), "{on:?}");
        assert_eq!(
            off.terminal_fingerprints, on.terminal_fingerprints,
            "reduction must preserve the exact set of terminal states"
        );
        assert_eq!(off.terminals, on.terminals);
        assert!(
            2 * on.states <= off.states,
            "reduction must at least halve distinct states on the chain: \
             off={} on={}",
            off.states,
            on.states
        );
    }

    /// Tentpole acceptance: a seeded protocol bug (accepting stale
    /// releases, gated behind a test-only config flag) must surface as a
    /// mutual-exclusion violation with a *replayable* counterexample: the
    /// schedule re-executes to the same errors, exports as a `dlm-trace`
    /// JSONL stream that round-trips, and renders as a per-step
    /// walkthrough.
    #[test]
    fn seeded_stale_release_bug_yields_replayable_counterexample() {
        let scripts = vec![
            vec![Op::Acquire(Mode::Read), Op::Release],
            vec![Op::Acquire(Mode::IntentRead), Op::Release],
            vec![Op::Acquire(Mode::Upgrade), Op::Upgrade, Op::Release],
        ];
        // Sanity: the correct protocol verifies this exact scenario.
        let sound = Scenario::star(3, scripts.clone(), paper());
        assert!(explore(&sound, 1_000_000).verified());

        let s = Scenario::star(3, scripts, paper().with_seeded_stale_release_bug());
        for opts in [Options::exhaustive(1_000_000), Options::reduced(1_000_000)] {
            let mode = opts.reduction;
            let r = explore_with(&s, opts);
            assert!(
                !r.violations.is_empty(),
                "{mode}: seeded bug must be caught: {r:?}"
            );
            let v = &r.violations[0];

            // The schedule replays deterministically to real audit errors.
            let replayed = replay(&s, &v.schedule);
            let errors = replayed.errors();
            assert!(!errors.is_empty(), "{mode}: replay must reproduce errors");
            assert!(
                errors
                    .iter()
                    .any(|e| matches!(e, dlm_core::AuditError::IncompatibleHolders { .. })),
                "{mode}: the stale release must break mutual exclusion: {errors:?}"
            );

            // The schedule exports as a dlm-trace stream that round-trips
            // through JSONL.
            let records = schedule_trace(&s, &v.schedule);
            assert!(!records.is_empty());
            let mut buf = Vec::new();
            dlm_trace::jsonl::write_jsonl(&mut buf, &records).unwrap();
            let back = dlm_trace::jsonl::read_jsonl(&buf[..]).unwrap();
            assert_eq!(records, back, "{mode}: JSONL round-trip must be lossless");

            // The walkthrough renders every step plus the resulting error.
            let text = walkthrough(&s, &v.schedule);
            for k in 1..=v.schedule.0.len() {
                assert!(
                    text.contains(&format!("step {k}:")),
                    "{mode}: walkthrough must render step {k}:\n{text}"
                );
            }
            assert!(
                text.contains("mutual exclusion violated"),
                "{mode}: walkthrough must state the violation:\n{text}"
            );
        }
    }
}
