//! A bounded, exhaustive model checker for the hierarchical locking
//! protocol.
//!
//! Property tests sample random schedules; this crate goes further for
//! small configurations: it explores **every** reachable interleaving of
//! message deliveries (per-channel FIFO, as TCP/MPI guarantee) and
//! application actions, asserting the global safety invariants in every
//! reachable state and liveness (no deadlock, clean quiescence) in every
//! terminal state.
//!
//! State-space search is a memoized DFS over a canonical encoding of the
//! full system state (all node states plus all channel contents). Scenarios
//! with 3–4 nodes and a handful of operations explore tens of thousands of
//! states in milliseconds — more than enough to cover the races that bit
//! during development (grant/release channel races, re-parenting orphans,
//! upgrade/FIFO interaction; see DESIGN.md §3).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use dlm_core::{audit, HierNode, InFlight, Message, Mode, NodeId, ProtocolConfig};
use std::collections::{BTreeMap, HashSet, VecDeque};

/// One scripted application action at a node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// Acquire the lock in a mode (enabled when idle).
    Acquire(Mode),
    /// Release the held lock (enabled while holding, not mid-upgrade).
    Release,
    /// Rule 7 upgrade (enabled while holding `U`).
    Upgrade,
}

/// A scenario: an initial tree plus one script per node.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// `parents[i]` is node `i`'s initial parent; exactly one `None` (root).
    pub parents: Vec<Option<u32>>,
    /// Per-node operation scripts, executed in order as they become enabled.
    pub scripts: Vec<Vec<Op>>,
    /// Protocol configuration.
    pub config: ProtocolConfig,
}

impl Scenario {
    /// A star of `n` nodes rooted at node 0 with the given scripts.
    pub fn star(n: usize, scripts: Vec<Vec<Op>>, config: ProtocolConfig) -> Self {
        assert_eq!(scripts.len(), n);
        let mut parents = vec![None];
        parents.extend((1..n).map(|_| Some(0)));
        Scenario {
            parents,
            scripts,
            config,
        }
    }

    /// A chain `0 ← 1 ← 2 ← …` (node 0 is the root); requests from the tail
    /// traverse every intermediate node, exercising forwarding, queueing and
    /// transitive freezing.
    pub fn chain(n: usize, scripts: Vec<Vec<Op>>, config: ProtocolConfig) -> Self {
        assert_eq!(scripts.len(), n);
        let mut parents = vec![None];
        parents.extend((1..n).map(|i| Some(i as u32 - 1)));
        Scenario {
            parents,
            scripts,
            config,
        }
    }
}

/// Result of an exploration.
#[derive(Debug, Clone)]
pub struct CheckReport {
    /// Distinct states visited.
    pub states: usize,
    /// Terminal (quiescent) states reached.
    pub terminals: usize,
    /// Safety violations (empty = every reachable state is safe).
    pub violations: Vec<String>,
    /// Deadlocks: terminal states with unfinished scripts or waiting nodes.
    pub deadlocks: Vec<String>,
    /// True if the exploration hit the state budget before completing.
    pub truncated: bool,
}

impl CheckReport {
    /// True when the scenario is fully verified: no violations, no
    /// deadlocks, and the exploration completed within budget.
    pub fn verified(&self) -> bool {
        self.violations.is_empty() && self.deadlocks.is_empty() && !self.truncated
    }
}

#[derive(Clone)]
struct State {
    nodes: Vec<HierNode>,
    /// FIFO per ordered channel (from, to).
    channels: BTreeMap<(u32, u32), VecDeque<Message>>,
    /// Next unexecuted op per node.
    pos: Vec<usize>,
}

impl State {
    fn fingerprint(&self) -> String {
        // HierNode's Debug output covers every protocol-relevant field and
        // iterates BTreeMaps deterministically; channels and positions are
        // appended. A canonical string is slower than a hand-rolled hash but
        // removes any risk of missed fields as the struct evolves.
        format!("{:?}|{:?}|{:?}", self.nodes, self.channels, self.pos)
    }

    fn in_flight(&self) -> Vec<InFlight> {
        self.channels
            .iter()
            .flat_map(|(&(from, to), q)| {
                q.iter().map(move |m| InFlight {
                    from: NodeId(from),
                    to: NodeId(to),
                    message: m.clone(),
                })
            })
            .collect()
    }
}

/// Exhaustively explore `scenario`; `max_states` bounds the search (a
/// generous budget for 3–4 node scenarios is 1–5 million).
pub fn explore(scenario: &Scenario, max_states: usize) -> CheckReport {
    let n = scenario.parents.len();
    assert_eq!(scenario.scripts.len(), n);
    let nodes: Vec<HierNode> = scenario
        .parents
        .iter()
        .enumerate()
        .map(|(i, p)| match p {
            None => HierNode::with_token(NodeId(i as u32), scenario.config),
            Some(parent) => HierNode::new(NodeId(i as u32), NodeId(*parent), scenario.config),
        })
        .collect();
    let initial = State {
        nodes,
        channels: BTreeMap::new(),
        pos: vec![0; n],
    };

    let mut report = CheckReport {
        states: 0,
        terminals: 0,
        violations: Vec::new(),
        deadlocks: Vec::new(),
        truncated: false,
    };
    let mut visited: HashSet<String> = HashSet::new();
    let mut stack = vec![initial];

    while let Some(state) = stack.pop() {
        let fp = state.fingerprint();
        if !visited.insert(fp) {
            continue;
        }
        report.states += 1;
        if report.states > max_states {
            report.truncated = true;
            break;
        }

        // Safety in every reachable state.
        let errors = audit(&state.nodes, &state.in_flight(), false);
        if !errors.is_empty() {
            report.violations.push(format!(
                "unsafe state after {} states: {errors:?}",
                report.states
            ));
            continue; // do not expand an already-broken state
        }

        let successors = expand(&state, scenario);
        if successors.is_empty() {
            report.terminals += 1;
            // Terminal: scripts must be done, nobody waiting, full audit.
            let unfinished: Vec<usize> = (0..state.pos.len())
                .filter(|&i| state.pos[i] < scenario.scripts[i].len())
                .collect();
            let waiting: Vec<u32> = state
                .nodes
                .iter()
                .filter(|nd| nd.pending().is_some())
                .map(|nd| nd.id().0)
                .collect();
            let quiescent_errors = audit(&state.nodes, &[], true);
            if !unfinished.is_empty() || !waiting.is_empty() {
                report.deadlocks.push(format!(
                    "deadlock: scripts stuck at {unfinished:?}, nodes waiting {waiting:?}"
                ));
            } else if !quiescent_errors.is_empty() {
                report.violations.push(format!(
                    "terminal state fails quiescent audit: {quiescent_errors:?}"
                ));
            }
            continue;
        }
        stack.extend(successors);
    }
    report
}

/// All successor states: deliver the head of any channel, or run the next
/// enabled script op of any node.
fn expand(state: &State, scenario: &Scenario) -> Vec<State> {
    let mut out = Vec::new();

    // Message deliveries (per-channel FIFO: only heads are eligible).
    for (&(from, to), queue) in &state.channels {
        if queue.is_empty() {
            continue;
        }
        let mut next = state.clone();
        let message = next
            .channels
            .get_mut(&(from, to))
            .expect("channel exists")
            .pop_front()
            .expect("non-empty");
        if next.channels[&(from, to)].is_empty() {
            next.channels.remove(&(from, to));
        }
        let effects = next.nodes[to as usize].on_message(NodeId(from), message);
        absorb(&mut next, to, effects);
        out.push(next);
    }

    // Script steps.
    for i in 0..state.nodes.len() {
        let Some(&op) = scenario.scripts[i].get(state.pos[i]) else {
            continue;
        };
        let node = &state.nodes[i];
        let enabled = match op {
            Op::Acquire(_) => node.held() == Mode::NoLock && node.pending().is_none(),
            Op::Release => node.held() != Mode::NoLock && !node.pending_is_upgrade(),
            Op::Upgrade => node.held() == Mode::Upgrade && node.pending().is_none(),
        };
        if !enabled {
            continue;
        }
        let mut next = state.clone();
        next.pos[i] += 1;
        let effects = match op {
            Op::Acquire(mode) => next.nodes[i].on_acquire(mode).expect("enabled acquire"),
            Op::Release => next.nodes[i].on_release().expect("enabled release"),
            Op::Upgrade => next.nodes[i].on_upgrade().expect("enabled upgrade"),
        };
        absorb(&mut next, i as u32, effects);
        out.push(next);
    }
    out
}

fn absorb(state: &mut State, from: u32, effects: Vec<dlm_core::Effect>) {
    for effect in effects {
        if let dlm_core::Effect::Send { to, message } = effect {
            state
                .channels
                .entry((from, to.0))
                .or_default()
                .push_back(message);
        }
        // Granted/Upgraded are implicit in node state (held mode).
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper() -> ProtocolConfig {
        ProtocolConfig::paper()
    }

    #[test]
    fn single_writer_is_verified() {
        let s = Scenario::star(
            2,
            vec![vec![], vec![Op::Acquire(Mode::Write), Op::Release]],
            paper(),
        );
        let r = explore(&s, 100_000);
        assert!(r.verified(), "{r:?}");
        assert!(r.states > 1);
    }

    #[test]
    fn two_competing_writers_all_interleavings() {
        let s = Scenario::star(
            3,
            vec![
                vec![],
                vec![Op::Acquire(Mode::Write), Op::Release],
                vec![Op::Acquire(Mode::Write), Op::Release],
            ],
            paper(),
        );
        let r = explore(&s, 2_000_000);
        assert!(r.verified(), "{r:?}");
        assert!(r.terminals >= 1);
    }

    #[test]
    fn readers_and_writer_race() {
        let s = Scenario::star(
            3,
            vec![
                vec![Op::Acquire(Mode::Read), Op::Release],
                vec![Op::Acquire(Mode::Read), Op::Release],
                vec![Op::Acquire(Mode::Write), Op::Release],
            ],
            paper(),
        );
        let r = explore(&s, 2_000_000);
        assert!(r.verified(), "{r:?}");
    }

    #[test]
    fn upgrade_race_with_reader() {
        let s = Scenario::star(
            3,
            vec![
                vec![],
                vec![Op::Acquire(Mode::Upgrade), Op::Upgrade, Op::Release],
                vec![Op::Acquire(Mode::IntentRead), Op::Release],
            ],
            paper(),
        );
        let r = explore(&s, 2_000_000);
        assert!(r.verified(), "{r:?}");
    }

    #[test]
    fn chain_topology_forwarding_and_freezing() {
        // Requests from the chain tail are forwarded through intermediate
        // nodes; the W from the middle freezes the IR holders transitively.
        let s = Scenario::chain(
            4,
            vec![
                vec![Op::Acquire(Mode::IntentRead), Op::Release],
                vec![Op::Acquire(Mode::IntentRead), Op::Release],
                vec![Op::Acquire(Mode::Write), Op::Release],
                vec![Op::Acquire(Mode::IntentRead), Op::Release],
            ],
            paper(),
        );
        let r = explore(&s, 4_000_000);
        assert!(r.verified(), "{r:?}");
        assert!(
            r.states > 1_000,
            "expected a deep interleaving space, got {}",
            r.states
        );
    }

    #[test]
    fn every_ablation_is_safe_in_the_writer_race() {
        for ablation in dlm_core::ALL_ABLATIONS {
            let s = Scenario::star(
                3,
                vec![
                    vec![Op::Acquire(Mode::Read), Op::Release],
                    vec![Op::Acquire(Mode::Write), Op::Release],
                    vec![Op::Acquire(Mode::IntentWrite), Op::Release],
                ],
                paper().without(ablation),
            );
            let r = explore(&s, 4_000_000);
            assert!(r.verified(), "{ablation:?}: {r:?}");
        }
    }

    #[test]
    fn literal_rule_3_2_is_safe_in_the_writer_race() {
        let s = Scenario::star(
            3,
            vec![
                vec![Op::Acquire(Mode::Read), Op::Release],
                vec![Op::Acquire(Mode::Write), Op::Release],
                vec![Op::Acquire(Mode::Read), Op::Release],
            ],
            paper().literal_rule_3_2(),
        );
        let r = explore(&s, 4_000_000);
        assert!(r.verified(), "{r:?}");
    }

    /// The checker itself must be able to *detect* liveness failures: a
    /// reader that never releases leaves the writer waiting in a terminal
    /// state, which must be reported as a deadlock.
    #[test]
    fn checker_detects_genuine_deadlock() {
        let s = Scenario::star(
            3,
            vec![
                vec![],
                vec![Op::Acquire(Mode::Read)], // acquired, never released
                vec![Op::Acquire(Mode::Write), Op::Release],
            ],
            paper(),
        );
        let r = explore(&s, 1_000_000);
        assert!(
            !r.deadlocks.is_empty(),
            "a never-released R must strand the W: {r:?}"
        );
        assert!(r.violations.is_empty(), "stranded, but never unsafe: {r:?}");
    }

    #[test]
    fn grant_release_channel_race_is_covered() {
        // The scenario family that exposed the ack-counter bug: a node whose
        // subtree empties while a grant from the (moved) token races its
        // release on the opposite channel.
        let s = Scenario::star(
            3,
            vec![
                vec![Op::Acquire(Mode::IntentRead), Op::Release],
                vec![Op::Acquire(Mode::Upgrade), Op::Upgrade, Op::Release],
                vec![Op::Acquire(Mode::Read), Op::Release],
            ],
            paper(),
        );
        let r = explore(&s, 4_000_000);
        assert!(r.verified(), "{r:?}");
    }
}
