//! The explored system state and its transition function.

use crate::scenario::{OpKind, Scenario};
use dlm_core::{
    fifo_overtakes, AuditError, Effect, Fingerprint, FpHasher, GrantInfo, HierNode, InFlight,
    Message, Mode, NodeId,
};
use std::collections::{BTreeMap, VecDeque};

/// One atomic transition of the explored system: deliver the head of a
/// FIFO channel, or run a node's next script operation. Either way exactly
/// one node executes, which is what makes actions at distinct nodes
/// commute (the basis of the partial-order reduction in [`crate::dpor`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Action {
    /// Deliver the head message of lock `lock`'s channel `from → to`
    /// (executes at `to`). Channels are per lock object: messages of
    /// different locks never block each other.
    Deliver {
        /// The lock object whose protocol instance this message belongs to.
        lock: u32,
        /// Sending endpoint of the channel.
        from: u32,
        /// Receiving endpoint (the executing node).
        to: u32,
    },
    /// Run node `node`'s next script operation (on whatever lock that op
    /// names).
    Script {
        /// The executing node.
        node: u32,
    },
}

impl Action {
    /// The node whose state this action mutates.
    pub fn node(&self) -> u32 {
        match *self {
            Action::Deliver { to, .. } => to,
            Action::Script { node } => node,
        }
    }
}

impl std::fmt::Display for Action {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Action::Deliver { lock: 0, from, to } => write!(f, "deliver n{from}→n{to}"),
            Action::Deliver { lock, from, to } => write!(f, "deliver n{from}→n{to}@L{lock}"),
            Action::Script { node } => write!(f, "script n{node}"),
        }
    }
}

/// The full system state: every lock's node array, every channel, every
/// script cursor.
#[derive(Clone)]
pub struct State {
    /// Per-lock, per-node protocol state: `nodes[lock][node]`. Each lock
    /// object is an independent instance of the protocol over the same node
    /// set (the common multi-lock deployment the paper's §1 motivates: one
    /// hierarchy per lockable resource).
    pub nodes: Vec<Vec<HierNode>>,
    /// FIFO per ordered channel `(lock, from, to)`. Each in-flight frame is
    /// `(epoch, message)` — stamped with the sender's epoch at transmit
    /// time, exactly as the cluster transport stamps its correlation
    /// header; delivery goes through the Rule R3 fence
    /// ([`HierNode::on_frame_into`]). Empty channels are removed so the map
    /// is canonical. Keying by lock makes links per-lock-FIFO rather than
    /// per-pair-FIFO — a relaxation of a shared transport that covers
    /// strictly more interleavings, so anything verified here also holds on
    /// a multiplexed link.
    pub channels: BTreeMap<(u32, u32, u32), VecDeque<(u32, Message)>>,
    /// Next unexecuted op per node (scripts are per node, spanning locks).
    pub pos: Vec<usize>,
    /// `crashed[i]` — node `i` executed its [`OpKind::Crash`] op: it takes
    /// no further transitions, frames addressed to it vanish, and it is
    /// excluded from audits and deadlock detection.
    pub crashed: Vec<bool>,
}

/// The result of applying one [`Action`].
pub struct Step {
    /// The successor state.
    pub state: State,
    /// The effects the executing node returned (sends already absorbed
    /// into `state.channels`, in order). Empty for fenced deliveries and
    /// crash transitions.
    pub effects: Vec<Effect>,
    /// Per-lock FIFO grant-order violations committed by this transition
    /// (checked against the executing node's pre-transition queue).
    pub fifo_errors: Vec<AuditError>,
    /// The lock object the transition executed on (0 for a crash, which
    /// spans every lock).
    pub lock: u32,
    /// A delivery was dropped by the Rule R3 epoch fence.
    pub fenced: bool,
}

impl State {
    /// The initial state of a scenario: fresh nodes for every lock, no
    /// messages in flight.
    pub fn initial(scenario: &Scenario) -> Self {
        let one = scenario.initial_nodes();
        let mut nodes = Vec::with_capacity(scenario.locks as usize);
        for _ in 0..scenario.locks.saturating_sub(1) {
            nodes.push(one.clone());
        }
        nodes.push(one);
        State {
            nodes,
            channels: BTreeMap::new(),
            pos: vec![0; scenario.parents.len()],
            crashed: vec![false; scenario.parents.len()],
        }
    }

    /// Number of lock objects.
    pub fn locks(&self) -> usize {
        self.nodes.len()
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes[0].len()
    }

    /// Structural 128-bit digest of the complete state (nodes feed every
    /// field via `dlm-core`'s compiler-checked hash visitor).
    pub fn fingerprint(&self) -> Fingerprint {
        let mut h = FpHasher::new();
        h.write_usize(self.nodes.len());
        for lock_nodes in &self.nodes {
            h.write_usize(lock_nodes.len());
            for n in lock_nodes {
                h.write(n);
            }
        }
        h.write_usize(self.channels.len());
        for (&(lock, from, to), q) in &self.channels {
            h.write_u32(lock);
            h.write_u32(from);
            h.write_u32(to);
            h.write_usize(q.len());
            for (epoch, m) in q {
                h.write_u32(*epoch);
                h.write(m);
            }
        }
        for &p in &self.pos {
            h.write_usize(p);
        }
        for &c in &self.crashed {
            h.write_u32(c as u32);
        }
        h.finish()
    }

    /// All in-flight messages of one lock object, for its global audit.
    pub fn in_flight(&self, lock: u32) -> Vec<InFlight> {
        self.channels
            .iter()
            .filter(|(&(l, _, _), _)| l == lock)
            .flat_map(|(&(_, from, to), q)| {
                q.iter().map(move |(epoch, m)| InFlight {
                    from: NodeId(from),
                    to: NodeId(to),
                    epoch: *epoch,
                    message: m.clone(),
                })
            })
            .collect()
    }

    /// Audit one lock object, excluding crashed nodes (the audit resolves
    /// nodes by id, so a survivor-only snapshot is well-formed). Stale
    /// frames still in flight *from* a crashed node are included — the
    /// per-epoch token count is exactly what makes them harmless.
    pub fn audit_lock(&self, lock: u32, quiescent: bool) -> Vec<AuditError> {
        let in_flight = self.in_flight(lock);
        if self.crashed.iter().any(|&c| c) {
            let survivors: Vec<HierNode> = self.nodes[lock as usize]
                .iter()
                .enumerate()
                .filter(|&(i, _)| !self.crashed[i])
                .map(|(_, n)| n.clone())
                .collect();
            dlm_core::audit(&survivors, &in_flight, quiescent)
        } else {
            dlm_core::audit(&self.nodes[lock as usize], &in_flight, quiescent)
        }
    }

    /// True when nothing is in flight on any lock (part of the terminal
    /// condition).
    pub fn quiet(&self) -> bool {
        self.channels.is_empty()
    }

    /// Whether node `i`'s next script op is currently enabled.
    pub fn script_enabled(&self, scenario: &Scenario, i: usize) -> bool {
        if self.crashed[i] {
            return false;
        }
        let Some(op) = scenario.scripts[i].get(self.pos[i]) else {
            return false;
        };
        let (lock, kind) = op.parts();
        let node = &self.nodes[lock as usize][i];
        match kind {
            OpKind::Acquire(_) => node.held() == Mode::NoLock && node.pending().is_none(),
            OpKind::Release => node.held() != Mode::NoLock && !node.pending_is_upgrade(),
            OpKind::Upgrade => node.held() == Mode::Upgrade && node.pending().is_none(),
            // Crashing the last live node leaves no survivor to regenerate
            // the token — not a meaningful schedule.
            OpKind::Crash => self.crashed.iter().enumerate().any(|(j, &c)| j != i && !c),
        }
    }

    /// All enabled actions: one per non-empty channel (FIFO heads only)
    /// plus one per node with an enabled script op. Deterministic order.
    pub fn enabled_actions(&self, scenario: &Scenario) -> Vec<Action> {
        let mut out: Vec<Action> = self
            .channels
            .keys()
            .map(|&(lock, from, to)| Action::Deliver { lock, from, to })
            .collect();
        for i in 0..self.pos.len() {
            if self.script_enabled(scenario, i) {
                out.push(Action::Script { node: i as u32 });
            }
        }
        out
    }

    /// Apply one enabled action, producing the successor state plus the
    /// transition's effects and FIFO-shield verdict.
    ///
    /// Panics if the action is not enabled (callers only pass actions from
    /// [`State::enabled_actions`] or a schedule being replayed).
    pub fn apply(&self, scenario: &Scenario, action: Action) -> Step {
        self.apply_observed(scenario, action, &mut dlm_core::NullObserver)
    }

    /// [`State::apply`] with a `dlm-trace` observer attached to the
    /// executing entry point — used when replaying a counterexample
    /// schedule into a protocol event stream.
    pub fn apply_observed(
        &self,
        scenario: &Scenario,
        action: Action,
        obs: &mut dyn dlm_core::Observer,
    ) -> Step {
        let mut next = self.clone();
        let executor = action.node() as usize;
        // Effects land in a stack-inline sink first; only the surviving
        // `Step.effects` Vec is heap-allocated (it is consumed downstream by
        // the DPOR explorer and counterexample replay, so it stays owned).
        let mut buf = dlm_core::EffectBuf::new();
        let (lock, delivered) = match action {
            Action::Deliver { lock, from, to } => {
                let q = next
                    .channels
                    .get_mut(&(lock, from, to))
                    .expect("delivery on existing channel");
                let (epoch, message) = q.pop_front().expect("delivery from non-empty channel");
                if q.is_empty() {
                    next.channels.remove(&(lock, from, to));
                }
                let accepted = next.nodes[lock as usize][to as usize].on_frame_into(
                    NodeId(from),
                    epoch,
                    message.clone(),
                    &mut buf,
                    obs,
                );
                if !accepted {
                    // Rule R3 fence: the frame is dropped, nothing changed
                    // but the channel.
                    return Step {
                        state: next,
                        effects: Vec::new(),
                        fifo_errors: Vec::new(),
                        lock,
                        fenced: true,
                    };
                }
                (lock, Some(message))
            }
            Action::Script { node } => {
                let i = node as usize;
                assert!(self.script_enabled(scenario, i), "script op not enabled");
                let (lock, kind) = scenario.scripts[i][self.pos[i]].parts();
                next.pos[i] += 1;
                if matches!(kind, OpKind::Crash) {
                    next.crash(i, obs);
                    return Step {
                        state: next,
                        effects: Vec::new(),
                        fifo_errors: Vec::new(),
                        lock: 0,
                        fenced: false,
                    };
                }
                let node_state = &mut next.nodes[lock as usize][i];
                match kind {
                    OpKind::Acquire(mode) => node_state
                        .on_acquire_into(mode, 0, &mut buf, obs)
                        .expect("enabled acquire"),
                    OpKind::Release => node_state
                        .on_release_into(&mut buf, obs)
                        .expect("enabled release"),
                    OpKind::Upgrade => node_state
                        .on_upgrade_into(&mut buf, obs)
                        .expect("enabled upgrade"),
                    OpKind::Crash => unreachable!("handled above"),
                };
                (lock, None)
            }
        };
        let pre = &self.nodes[lock as usize][executor];
        let effects = buf.take_vec();
        let sender_epoch = next.nodes[lock as usize][executor].epoch();
        for effect in &effects {
            if let Effect::Send { to, message } = effect {
                next.absorb_send(lock, executor as u32, to.0, sender_epoch, message.clone());
            }
            // Granted/Upgraded are implicit in node state (held mode).
        }
        let grants = grant_infos(pre, &effects, delivered.as_ref());
        let fifo_errors = fifo_overtakes(pre, &grants);
        Step {
            state: next,
            effects,
            fifo_errors,
            lock,
            fenced: false,
        }
    }

    /// Append a send to its channel, stamped with the sender's epoch.
    /// Frames addressed to a crashed node vanish (a dead host receives
    /// nothing), keeping the channel map free of undeliverable entries.
    fn absorb_send(&mut self, lock: u32, from: u32, to: u32, epoch: u32, message: Message) {
        if self.crashed[to as usize] {
            return;
        }
        self.channels
            .entry((lock, from, to))
            .or_default()
            .push_back((epoch, message));
    }

    /// The crash transition (see [`crate::scenario::Op::Crash`]): node
    /// `dead` stops, its inbound frames vanish, its outbound frames remain
    /// in flight at the old epoch, and every survivor runs the §17 view
    /// change on every lock — mirroring a cluster whose failure detector
    /// has fired at each member. Per lock, the new root is the surviving
    /// holder at the highest epoch when one exists, otherwise the lowest
    /// surviving id, exactly as `dlm_cluster::plan_recovery` plans it.
    fn crash(&mut self, dead: usize, obs: &mut dyn dlm_core::Observer) {
        self.crashed[dead] = true;
        self.channels.retain(|&(_, _, to), _| to != dead as u32);
        let survivors: Vec<NodeId> = (0..self.node_count())
            .filter(|&i| !self.crashed[i])
            .map(|i| NodeId(i as u32))
            .collect();
        for lock in 0..self.locks() {
            let max_epoch = survivors
                .iter()
                .map(|s| self.nodes[lock][s.index()].epoch())
                .max()
                .unwrap_or(0);
            let new_root = survivors
                .iter()
                .copied()
                .find(|s| {
                    let n = &self.nodes[lock][s.index()];
                    n.has_token() && n.epoch() == max_epoch
                })
                .unwrap_or(survivors[0]);
            let new_epoch = max_epoch + 1;
            for &s in &survivors {
                let mut buf = dlm_core::EffectBuf::new();
                self.nodes[lock][s.index()].on_peer_down_into(
                    NodeId(dead as u32),
                    new_root,
                    new_epoch,
                    &survivors,
                    &mut buf,
                    &mut *obs,
                );
                let epoch = self.nodes[lock][s.index()].epoch();
                for effect in buf.drain() {
                    if let Effect::Send { to, message } = effect {
                        self.absorb_send(lock as u32, s.0, to.0, epoch, message);
                    }
                }
            }
        }
    }
}

/// Classify the grants a transition issued, recovering each grant's upgrade
/// flag and priority from the request it answers: the delivered request, the
/// pre-state queue entry, or (for self-grants) the pre-state pending record.
fn grant_infos(pre: &HierNode, effects: &[Effect], delivered: Option<&Message>) -> Vec<GrantInfo> {
    let classify = |to: NodeId, mode: Mode| -> GrantInfo {
        if let Some(Message::Request(req)) = delivered {
            if req.from == to {
                return GrantInfo {
                    to,
                    mode,
                    upgrade: req.upgrade,
                    priority: req.priority,
                };
            }
        }
        if let Some(entry) = pre.queued().find(|q| q.from == to) {
            return GrantInfo {
                to,
                mode,
                upgrade: entry.upgrade,
                priority: entry.priority,
            };
        }
        GrantInfo {
            to,
            mode,
            upgrade: false,
            priority: 0,
        }
    };
    effects
        .iter()
        .filter_map(|e| match e {
            Effect::Send {
                to,
                message: Message::Grant { mode },
            }
            | Effect::Send {
                to,
                message: Message::Token { mode, .. },
            } => Some(classify(*to, *mode)),
            Effect::Granted { mode } => {
                let (upgrade, priority) = pre
                    .pending_request()
                    .map(|p| (p.upgrade, p.priority))
                    .unwrap_or((false, 0));
                Some(GrantInfo {
                    to: pre.id(),
                    mode: *mode,
                    upgrade,
                    priority,
                })
            }
            // An Upgraded effect is the completion of a Rule 7 upgrade,
            // which is exempt from the FIFO shield by design.
            Effect::Upgraded => None,
            Effect::Send { .. } => None,
        })
        .collect()
}
