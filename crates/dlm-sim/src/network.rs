//! Network latency models.
//!
//! The paper randomizes message latency around a mean (150 ms on the TCP/WAN
//! configuration of §4.1; interconnect-class sub-millisecond values on the
//! IBM SP of §4.2). The model here samples a per-message latency from a
//! configurable distribution and, by default, enforces per-channel FIFO
//! delivery — the guarantee both TCP and MPI provide and the protocols
//! assume for their FIFO fairness (never for safety).

use crate::time::Micros;
use dlm_core::NodeId;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Shape of the per-message latency distribution.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum LatencyDistribution {
    /// Every message takes exactly the mean.
    Fixed,
    /// Uniform on `[mean/2, 3·mean/2]` (the "randomized around a mean" of the
    /// paper's experiments).
    Uniform,
    /// Exponential with the given mean (memoryless WAN-ish tail).
    Exponential,
}

/// A latency model: distribution + mean + FIFO discipline.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LatencyModel {
    /// Mean one-way latency.
    pub mean: Micros,
    /// Distribution shape.
    pub distribution: LatencyDistribution,
    /// Enforce per-(sender, receiver) FIFO ordering (TCP/MPI semantics).
    pub fifo: bool,
}

impl LatencyModel {
    /// The §4.1 Linux-cluster configuration: uniform around 150 ms.
    pub fn lan_cluster() -> Self {
        LatencyModel {
            mean: 150 * crate::time::MICROS_PER_MS,
            distribution: LatencyDistribution::Uniform,
            fifo: true,
        }
    }

    /// An SP-class interconnect: uniform around 50 µs one-way (user-level
    /// MPI over the Colony switch is tens of microseconds).
    pub fn sp_switch() -> Self {
        LatencyModel {
            mean: 50,
            distribution: LatencyDistribution::Uniform,
            fifo: true,
        }
    }

    /// Uniform latency around `mean` microseconds.
    pub fn uniform(mean: Micros) -> Self {
        LatencyModel {
            mean,
            distribution: LatencyDistribution::Uniform,
            fifo: true,
        }
    }

    /// Fixed latency of exactly `mean` microseconds.
    pub fn fixed(mean: Micros) -> Self {
        LatencyModel {
            mean,
            distribution: LatencyDistribution::Fixed,
            fifo: true,
        }
    }

    /// Sample one latency.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> Micros {
        match self.distribution {
            LatencyDistribution::Fixed => self.mean,
            LatencyDistribution::Uniform => {
                let half = self.mean / 2;
                let lo = self.mean - half;
                rng.gen_range(lo..=self.mean + half)
            }
            LatencyDistribution::Exponential => {
                // Inverse-CDF with a guard against ln(0).
                let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
                let x = -(u.ln()) * self.mean as f64;
                x.min(u64::MAX as f64 / 2.0) as Micros
            }
        }
    }
}

/// Tracks last-arrival times per channel to enforce FIFO delivery under
/// randomized latencies.
///
/// Channels are a dense `n × n` matrix indexed by `(from, to)` — the clamp
/// runs once per message sent, and the flat lookup replaces a per-message
/// hash of the channel key. Zero means "nothing sent yet", which composes
/// with the clamp's `+ 1` floor since virtual time starts at 0.
#[derive(Debug, Default)]
pub(crate) struct FifoClamp {
    nodes: usize,
    last_arrival: Vec<Micros>,
}

impl FifoClamp {
    /// A clamp for a simulation of `nodes` actors.
    pub fn new(nodes: usize) -> Self {
        FifoClamp {
            nodes,
            last_arrival: vec![0; nodes * nodes],
        }
    }

    /// Given a tentative arrival time for a message on `from → to`, return
    /// the (possibly delayed) arrival that preserves channel order.
    pub fn clamp(&mut self, from: NodeId, to: NodeId, arrival: Micros) -> Micros {
        let slot = &mut self.last_arrival[from.index() * self.nodes + to.index()];
        let fixed = arrival.max(*slot + 1);
        *slot = fixed;
        fixed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn fixed_is_fixed() {
        let mut rng = SmallRng::seed_from_u64(1);
        let m = LatencyModel::fixed(123);
        for _ in 0..10 {
            assert_eq!(m.sample(&mut rng), 123);
        }
    }

    #[test]
    fn uniform_bounds_and_mean() {
        let mut rng = SmallRng::seed_from_u64(7);
        let m = LatencyModel::uniform(1000);
        let mut sum = 0u64;
        for _ in 0..10_000 {
            let x = m.sample(&mut rng);
            assert!((500..=1500).contains(&x), "{x} out of bounds");
            sum += x;
        }
        let mean = sum as f64 / 10_000.0;
        assert!((mean - 1000.0).abs() < 25.0, "sample mean {mean}");
    }

    #[test]
    fn exponential_mean_roughly_matches() {
        let mut rng = SmallRng::seed_from_u64(42);
        let m = LatencyModel {
            mean: 1000,
            distribution: LatencyDistribution::Exponential,
            fifo: true,
        };
        let n = 20_000;
        let sum: u64 = (0..n).map(|_| m.sample(&mut rng)).sum();
        let mean = sum as f64 / n as f64;
        assert!((mean - 1000.0).abs() < 50.0, "sample mean {mean}");
    }

    #[test]
    fn fifo_clamp_preserves_channel_order() {
        let mut clamp = FifoClamp::new(2);
        let a = NodeId(0);
        let b = NodeId(1);
        let t1 = clamp.clamp(a, b, 100);
        let t2 = clamp.clamp(a, b, 50); // sampled earlier than prior arrival
        assert!(t2 > t1, "later send must arrive later on the same channel");
        // Other channels are unaffected.
        let t3 = clamp.clamp(b, a, 10);
        assert_eq!(t3, 10);
    }
}
