//! A deterministic discrete-event simulator for message-passing protocols.
//!
//! This crate is the substitute for the paper's physical testbeds (a
//! 16-machine Linux cluster over TCP and a 120-node IBM SP over MPI): nodes
//! are [`Actor`]s exchanging typed messages through a [`LatencyModel`]
//! network, driven by a virtual clock. Runs are exactly reproducible from a
//! seed — event order is a total order over `(time, sequence)` — which makes
//! the experiment harness's figures stable and the property tests exact.
//!
//! Time is in integer **microseconds** ([`Micros`]); the paper's parameters
//! (15 ms critical sections, 150 ms idle, 150 ms WAN-ish latency) map
//! losslessly.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod engine;
mod network;
mod queue;
mod time;

pub use engine::{Actor, Ctx, RunStats, Sim, SimConfig, TwoSite};
pub use network::{LatencyDistribution, LatencyModel};
pub use time::{Micros, MICROS_PER_MS, MICROS_PER_SEC};

pub use dlm_core::NodeId;
