//! Virtual time.

/// Virtual time in microseconds since simulation start.
pub type Micros = u64;

/// One millisecond in [`Micros`].
pub const MICROS_PER_MS: Micros = 1_000;

/// One second in [`Micros`].
pub const MICROS_PER_SEC: Micros = 1_000_000;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_relations() {
        assert_eq!(MICROS_PER_SEC, 1000 * MICROS_PER_MS);
    }
}
