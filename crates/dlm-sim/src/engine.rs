//! The event loop: a total-ordered heap of message deliveries and timers.

use crate::network::{FifoClamp, LatencyModel};
use crate::queue::EventQueue;
use crate::time::Micros;
use dlm_core::NodeId;
use dlm_trace::{NullObserver, Observer, Recorder, Stamp};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::cell::RefCell;
use std::rc::Rc;

/// A simulated node: reacts to start, messages and timers through a context
/// that can send messages, set timers and draw random numbers.
///
/// Implementations hold the protocol state machines (e.g. one
/// [`dlm_core::HierNode`] per lock) plus application state, and translate
/// protocol effects into `ctx.send(..)` calls.
pub trait Actor {
    /// Message payload exchanged between actors.
    type Msg;

    /// Called once at time zero.
    fn on_start(&mut self, ctx: &mut Ctx<'_, Self::Msg>);

    /// A message arrived.
    fn on_message(&mut self, from: NodeId, msg: Self::Msg, ctx: &mut Ctx<'_, Self::Msg>);

    /// A timer this actor set has fired; `tag` is the value it passed.
    fn on_timer(&mut self, tag: u64, ctx: &mut Ctx<'_, Self::Msg>);
}

/// Per-invocation context handed to actors.
pub struct Ctx<'a, M> {
    now: Micros,
    node: NodeId,
    rng: &'a mut SmallRng,
    outgoing: &'a mut Vec<Outgoing<M>>,
    recorder: Option<&'a Rc<RefCell<dyn Recorder>>>,
}

enum Outgoing<M> {
    Message { to: NodeId, payload: M },
    Timer { delay: Micros, tag: u64 },
}

impl<M> Ctx<'_, M> {
    /// Current virtual time.
    pub fn now(&self) -> Micros {
        self.now
    }

    /// The acting node's id.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Send `payload` to `to`; it arrives after a sampled network latency.
    pub fn send(&mut self, to: NodeId, payload: M) {
        self.outgoing.push(Outgoing::Message { to, payload });
    }

    /// Fire `on_timer(tag)` on this actor after `delay` microseconds.
    pub fn set_timer(&mut self, delay: Micros, tag: u64) {
        self.outgoing.push(Outgoing::Timer { delay, tag });
    }

    /// Deterministic per-node random stream.
    pub fn rng(&mut self) -> &mut SmallRng {
        self.rng
    }

    /// True when a trace recorder is attached to the simulation — lets
    /// actors skip building per-event arguments entirely when disabled.
    pub fn tracing(&self) -> bool {
        self.recorder.is_some()
    }

    /// Run `f` with an [`Observer`] stamping events of lock `lock` at the
    /// current virtual time. Without an attached recorder `f` receives the
    /// [`NullObserver`], so the protocol pays only the enabled-branch:
    ///
    /// ```ignore
    /// let effects = ctx.observe(lock, |obs| node.on_message_observed(from, msg, obs));
    /// ```
    ///
    /// Actors may also emit their own application-scope events through the
    /// same observer (guarded by `obs.enabled()`): the workload's
    /// request-span events (`RequestStart`/`RequestGrant`) ride this path,
    /// which keeps them on the one shared timeline without a second
    /// recorder plumbing.
    pub fn observe<T>(&mut self, lock: u32, f: impl FnOnce(&mut dyn Observer) -> T) -> T {
        match self.recorder {
            Some(rc) => {
                let mut sink = Rc::clone(rc);
                let mut stamp = Stamp {
                    at: self.now,
                    lock,
                    sink: &mut sink,
                };
                f(&mut stamp)
            }
            None => f(&mut NullObserver),
        }
    }
}

/// Two-site (geo-distributed) topology: nodes `0..site_a` form one site,
/// the rest another; messages crossing the boundary use the `wan` latency
/// model instead of the intra-site one.
#[derive(Debug, Clone, Copy)]
pub struct TwoSite {
    /// Number of nodes in the first site.
    pub site_a: usize,
    /// Latency model for cross-site messages.
    pub wan: LatencyModel,
}

impl TwoSite {
    /// True if a `from → to` message crosses the site boundary.
    pub fn crosses(&self, from: NodeId, to: NodeId) -> bool {
        (from.index() < self.site_a) != (to.index() < self.site_a)
    }
}

/// Simulation parameters.
#[derive(Debug, Clone, Copy)]
pub struct SimConfig {
    /// Network latency model (intra-site, when `two_site` is set).
    pub latency: LatencyModel,
    /// Optional geo-distributed topology: cross-site traffic uses its WAN
    /// model (the "geographically distant server farms" of the paper's §1).
    pub two_site: Option<TwoSite>,
    /// Master seed; all per-node streams derive from it.
    pub seed: u64,
    /// Hard stop: events after this virtual time are not processed.
    pub horizon: Micros,
    /// Safety valve on total processed events (0 = unlimited).
    pub max_events: u64,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            latency: LatencyModel::uniform(1_000),
            two_site: None,
            seed: 0xD15C0,
            horizon: Micros::MAX,
            max_events: 0,
        }
    }
}

/// Statistics of a completed run.
#[derive(Debug, Clone, Default)]
pub struct RunStats {
    /// Messages handed to the network.
    pub messages_sent: u64,
    /// Messages delivered to actors.
    pub messages_delivered: u64,
    /// Timer events fired.
    pub timers_fired: u64,
    /// Virtual time of the last processed event.
    pub end_time: Micros,
    /// True if the run stopped because the event heap drained.
    pub quiesced: bool,
}

enum Pending<M> {
    Message {
        from: NodeId,
        to: NodeId,
        payload: M,
    },
    Timer {
        node: NodeId,
        tag: u64,
    },
}

/// The discrete-event engine.
///
/// Event order is the total order `(arrival_time, sequence_number)`, with the
/// sequence assigned at scheduling time — two runs with the same seed and the
/// same actor logic process identical event sequences.
///
/// Events live in a single [`EventQueue`] whose heap entries carry the
/// payload inline, so scheduling and dispatch are pure heap operations — no
/// payload side-table on the hot path.
pub struct Sim<A: Actor> {
    actors: Vec<A>,
    queue: EventQueue<Pending<A::Msg>>,
    clock: Micros,
    rngs: Vec<SmallRng>,
    net_rng: SmallRng,
    fifo: FifoClamp,
    config: SimConfig,
    stats: RunStats,
    scratch: Vec<Outgoing<A::Msg>>,
    recorder: Option<Rc<RefCell<dyn Recorder>>>,
}

impl<A: Actor> Sim<A> {
    /// Build a simulation over `actors` (index = node id).
    pub fn new(actors: Vec<A>, config: SimConfig) -> Self {
        let n = actors.len();
        let rngs = (0..n)
            .map(|i| {
                SmallRng::seed_from_u64(
                    config.seed ^ (0x9E37_79B9_7F4A_7C15u64.wrapping_mul(i as u64 + 1)),
                )
            })
            .collect();
        Sim {
            actors,
            queue: EventQueue::with_capacity(4 * n + 16),
            clock: 0,
            rngs,
            net_rng: SmallRng::seed_from_u64(config.seed ^ 0xA5A5_5A5A_DEAD_BEEF),
            fifo: FifoClamp::new(n),
            config,
            stats: RunStats::default(),
            scratch: Vec::with_capacity(16),
            recorder: None,
        }
    }

    /// Attach a shared [`Recorder`]: actors reach it through
    /// [`Ctx::observe`], with events stamped at the virtual time of the
    /// invoking event.
    pub fn record_into(&mut self, sink: Rc<RefCell<dyn Recorder>>) {
        self.recorder = Some(sink);
    }

    /// Current virtual time.
    pub fn now(&self) -> Micros {
        self.clock
    }

    /// Immutable access to an actor (for audits and result extraction).
    pub fn actor(&self, id: u32) -> &A {
        &self.actors[id as usize]
    }

    /// All actors.
    pub fn actors(&self) -> &[A] {
        &self.actors
    }

    /// Run statistics so far.
    pub fn stats(&self) -> &RunStats {
        &self.stats
    }

    fn flush_outgoing(&mut self, from: NodeId) {
        // The scratch buffer is moved out, drained, and handed back so its
        // capacity is reused across every actor invocation of the run.
        let mut outgoing = std::mem::take(&mut self.scratch);
        for out in outgoing.drain(..) {
            match out {
                Outgoing::Message { to, payload } => {
                    self.stats.messages_sent += 1;
                    let model = match &self.config.two_site {
                        Some(sites) if sites.crosses(from, to) => &sites.wan,
                        _ => &self.config.latency,
                    };
                    let latency = model.sample(&mut self.net_rng);
                    let mut arrival = self.clock + latency;
                    if model.fifo {
                        arrival = self.fifo.clamp(from, to, arrival);
                    }
                    self.queue
                        .push(arrival, Pending::Message { from, to, payload });
                }
                Outgoing::Timer { delay, tag } => {
                    self.queue
                        .push(self.clock + delay, Pending::Timer { node: from, tag });
                }
            }
        }
        self.scratch = outgoing;
    }

    fn invoke<F>(&mut self, node: NodeId, f: F)
    where
        F: FnOnce(&mut A, &mut Ctx<'_, A::Msg>),
    {
        debug_assert!(self.scratch.is_empty());
        let mut ctx = Ctx {
            now: self.clock,
            node,
            rng: &mut self.rngs[node.index()],
            outgoing: &mut self.scratch,
            recorder: self.recorder.as_ref(),
        };
        f(&mut self.actors[node.index()], &mut ctx);
        self.flush_outgoing(node);
    }

    /// Start every actor (in id order) at time zero.
    pub fn start(&mut self) {
        for i in 0..self.actors.len() {
            self.invoke(NodeId(i as u32), |a, ctx| a.on_start(ctx));
        }
    }

    /// Process a single event; `false` when the heap is empty or the horizon
    /// or event budget is reached.
    pub fn step(&mut self) -> bool {
        if self.config.max_events > 0
            && self.stats.messages_delivered + self.stats.timers_fired >= self.config.max_events
        {
            return false;
        }
        let Some(at) = self.queue.peek_time() else {
            self.stats.quiesced = true;
            return false;
        };
        if at > self.config.horizon {
            // Leave the event unprocessed; the run is over.
            return false;
        }
        let event = self.queue.pop().expect("peeked event");
        self.clock = at;
        self.stats.end_time = at;
        match event.payload {
            Pending::Message { from, to, payload } => {
                self.stats.messages_delivered += 1;
                self.invoke(to, |a, ctx| a.on_message(from, payload, ctx));
            }
            Pending::Timer { node, tag } => {
                self.stats.timers_fired += 1;
                self.invoke(node, |a, ctx| a.on_timer(tag, ctx));
            }
        }
        true
    }

    /// Start and run to quiescence / horizon / event budget; returns stats.
    pub fn run(&mut self) -> RunStats {
        self.start();
        while self.step() {}
        self.stats.clone()
    }

    /// Consume the simulation, returning the actors for inspection.
    pub fn into_actors(self) -> Vec<A> {
        self.actors
    }

    /// Iterate messages currently in flight as `(from, to, payload)` —
    /// needed by audits that must account for e.g. an in-flight token.
    pub fn in_flight(&self) -> impl Iterator<Item = (NodeId, NodeId, &A::Msg)> {
        self.queue.iter().filter_map(|s| match &s.payload {
            Pending::Message { from, to, payload } => Some((*from, *to, payload)),
            Pending::Timer { .. } => None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::LatencyModel;

    /// Ping-pong actor: node 0 sends `n` pings; node 1 echoes.
    struct PingPong {
        is_server: bool,
        remaining: u32,
        received: u32,
        fire_times: Vec<Micros>,
    }

    impl Actor for PingPong {
        type Msg = u32;

        fn on_start(&mut self, ctx: &mut Ctx<'_, u32>) {
            if !self.is_server && self.remaining > 0 {
                ctx.send(NodeId(1), self.remaining);
                self.remaining -= 1;
            }
        }

        fn on_message(&mut self, from: NodeId, msg: u32, ctx: &mut Ctx<'_, u32>) {
            self.received += 1;
            self.fire_times.push(ctx.now());
            if self.is_server {
                ctx.send(from, msg);
            } else if self.remaining > 0 {
                ctx.send(NodeId(1), self.remaining);
                self.remaining -= 1;
            }
        }

        fn on_timer(&mut self, _tag: u64, _ctx: &mut Ctx<'_, u32>) {}
    }

    fn pingpong_sim(seed: u64, pings: u32) -> Sim<PingPong> {
        let actors = vec![
            PingPong {
                is_server: false,
                remaining: pings,
                received: 0,
                fire_times: vec![],
            },
            PingPong {
                is_server: true,
                remaining: 0,
                received: 0,
                fire_times: vec![],
            },
        ];
        Sim::new(
            actors,
            SimConfig {
                latency: LatencyModel::uniform(1_000),
                seed,
                ..Default::default()
            },
        )
    }

    #[test]
    fn pingpong_runs_to_quiescence() {
        let mut sim = pingpong_sim(7, 5);
        let stats = sim.run();
        assert!(stats.quiesced);
        assert_eq!(stats.messages_sent, 10);
        assert_eq!(stats.messages_delivered, 10);
        assert_eq!(sim.actor(0).received, 5);
        assert_eq!(sim.actor(1).received, 5);
        assert!(stats.end_time >= 10 * 500, "at least 10 half-RTTs");
    }

    #[test]
    fn same_seed_same_trace() {
        let mut a = pingpong_sim(99, 20);
        let mut b = pingpong_sim(99, 20);
        a.run();
        b.run();
        assert_eq!(a.actor(1).fire_times, b.actor(1).fire_times);
        assert_eq!(a.stats().end_time, b.stats().end_time);
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = pingpong_sim(1, 20);
        let mut b = pingpong_sim(2, 20);
        a.run();
        b.run();
        assert_ne!(
            a.actor(1).fire_times,
            b.actor(1).fire_times,
            "distinct seeds should draw distinct latencies"
        );
    }

    #[test]
    fn horizon_stops_the_run() {
        let mut sim = pingpong_sim(7, 1000);
        sim.config.horizon = 50_000;
        let stats = sim.run();
        assert!(!stats.quiesced);
        assert!(stats.end_time <= 50_000);
    }

    #[test]
    fn max_events_budget_stops_the_run() {
        let mut sim = pingpong_sim(3, 1000);
        sim.config.max_events = 7;
        let stats = sim.run();
        assert!(!stats.quiesced);
        assert_eq!(stats.messages_delivered + stats.timers_fired, 7);
    }

    #[test]
    fn in_flight_reports_pending_messages() {
        let mut sim = pingpong_sim(3, 4);
        sim.start();
        // The first ping is scheduled but not delivered.
        assert_eq!(sim.in_flight().count(), 1);
        let (from, to, &payload) = sim.in_flight().next().unwrap();
        assert_eq!((from, to, payload), (NodeId(0), NodeId(1), 4));
        sim.step();
        // Delivered; the echo is now in flight.
        assert_eq!(sim.in_flight().count(), 1);
    }

    #[test]
    fn two_site_wan_latency_applies_to_cross_site_traffic() {
        // Node 0 (site A) pings node 1 (site B): WAN latency. With a flat
        // config the same exchange is fast.
        let mk = |two_site| {
            let actors = vec![
                PingPong {
                    is_server: false,
                    remaining: 1,
                    received: 0,
                    fire_times: vec![],
                },
                PingPong {
                    is_server: true,
                    remaining: 0,
                    received: 0,
                    fire_times: vec![],
                },
            ];
            Sim::new(
                actors,
                SimConfig {
                    latency: LatencyModel::fixed(100),
                    two_site,
                    seed: 5,
                    ..Default::default()
                },
            )
        };
        let mut flat = mk(None);
        flat.run();
        assert_eq!(flat.stats().end_time, 200, "two 100 µs hops");

        let mut geo = mk(Some(TwoSite {
            site_a: 1,
            wan: LatencyModel::fixed(10_000),
        }));
        geo.run();
        assert_eq!(geo.stats().end_time, 20_000, "two 10 ms WAN hops");
    }

    #[test]
    fn two_site_crossing_predicate() {
        let sites = TwoSite {
            site_a: 2,
            wan: LatencyModel::fixed(1),
        };
        assert!(sites.crosses(NodeId(0), NodeId(2)));
        assert!(sites.crosses(NodeId(3), NodeId(1)));
        assert!(!sites.crosses(NodeId(0), NodeId(1)));
        assert!(!sites.crosses(NodeId(2), NodeId(3)));
    }

    /// Timer actor: schedules a chain of timers and records firing times.
    struct Chain {
        fired: Vec<(u64, Micros)>,
    }

    impl Actor for Chain {
        type Msg = ();

        fn on_start(&mut self, ctx: &mut Ctx<'_, ()>) {
            ctx.set_timer(10, 1);
            ctx.set_timer(5, 2);
        }

        fn on_message(&mut self, _f: NodeId, _m: (), _c: &mut Ctx<'_, ()>) {}

        fn on_timer(&mut self, tag: u64, ctx: &mut Ctx<'_, ()>) {
            self.fired.push((tag, ctx.now()));
            if tag == 2 {
                ctx.set_timer(100, 3);
            }
        }
    }

    #[test]
    fn timers_fire_in_time_order() {
        let mut sim = Sim::new(vec![Chain { fired: vec![] }], SimConfig::default());
        let stats = sim.run();
        assert_eq!(stats.timers_fired, 3);
        assert_eq!(sim.actor(0).fired, vec![(2, 5), (1, 10), (3, 105)]);
    }
}
