//! The event queue: a single binary heap whose entries carry their payload
//! inline.
//!
//! The engine's first implementation kept a `BinaryHeap<Reverse<(Micros,
//! u64)>>` of keys plus a `HashMap<u64, Pending>` side-table of payloads, so
//! every scheduled event paid a hash insert and every dispatched event a
//! hash remove — two hash-map operations per event on the hottest loop of
//! the whole reproduction. Here the payload rides inside the heap entry and
//! ordering is a manual [`Ord`] over `(time, seq)` **only** (the payload is
//! never compared), which keeps the total order bit-identical to the old
//! two-structure design while eliminating the side-table entirely.

use crate::time::Micros;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// One scheduled event: delivery time, scheduling sequence number, and the
/// payload to dispatch.
pub(crate) struct Scheduled<T> {
    /// Virtual delivery time.
    pub at: Micros,
    /// Sequence number assigned at scheduling time; ties on `at` dispatch
    /// in scheduling order.
    pub seq: u64,
    /// The event itself.
    pub payload: T,
}

impl<T> PartialEq for Scheduled<T> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl<T> Eq for Scheduled<T> {}

impl<T> PartialOrd for Scheduled<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<T> Ord for Scheduled<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: `BinaryHeap` is a max-heap, and the earliest
        // `(time, seq)` must surface first.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// Min-queue over `(time, seq)` with inline payloads.
pub(crate) struct EventQueue<T> {
    heap: BinaryHeap<Scheduled<T>>,
    seq: u64,
}

impl<T> EventQueue<T> {
    /// An empty queue with room for `cap` events before reallocating.
    pub fn with_capacity(cap: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(cap),
            seq: 0,
        }
    }

    /// Schedule `payload` at `at`; sequence numbers are assigned here, in
    /// call order, exactly as the old split design assigned them.
    pub fn push(&mut self, at: Micros, payload: T) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Scheduled { at, seq, payload });
    }

    /// Delivery time of the earliest event without removing it — lets the
    /// engine stop at a horizon without a pop/re-push round trip.
    pub fn peek_time(&self) -> Option<Micros> {
        self.heap.peek().map(|s| s.at)
    }

    /// Remove and return the earliest event.
    pub fn pop(&mut self) -> Option<Scheduled<T>> {
        self.heap.pop()
    }

    /// Visit every queued event in unspecified order (audits only).
    pub fn iter(&self) -> impl Iterator<Item = &Scheduled<T>> {
        self.heap.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};
    use std::cmp::Reverse;
    use std::collections::HashMap;

    /// The engine's original queue: heap of keys + payload side-table.
    /// Kept here as the reference semantics the inline queue must match.
    struct SplitQueue<T> {
        heap: BinaryHeap<Reverse<(Micros, u64)>>,
        payloads: HashMap<u64, T>,
        seq: u64,
    }

    impl<T> SplitQueue<T> {
        fn new() -> Self {
            SplitQueue {
                heap: BinaryHeap::new(),
                payloads: HashMap::new(),
                seq: 0,
            }
        }

        fn push(&mut self, at: Micros, payload: T) {
            let seq = self.seq;
            self.seq += 1;
            self.heap.push(Reverse((at, seq)));
            self.payloads.insert(seq, payload);
        }

        fn pop(&mut self) -> Option<(Micros, u64, T)> {
            let Reverse((at, seq)) = self.heap.pop()?;
            let payload = self.payloads.remove(&seq).expect("payload for seq");
            Some((at, seq, payload))
        }
    }

    /// Differential check: an arbitrary interleaving of pushes and pops
    /// drains both queues in the identical `(time, seq, payload)` order.
    #[test]
    fn inline_queue_matches_split_queue_exactly() {
        for seed in 0..32u64 {
            let mut rng = SmallRng::seed_from_u64(0xC0FFEE ^ seed);
            let mut inline = EventQueue::with_capacity(8);
            let mut split = SplitQueue::new();
            let mut tag = 0u32;
            for _ in 0..400 {
                if rng.gen_range(0..3) > 0 {
                    // Deliberately collide times so seq tie-breaks matter.
                    let at = rng.gen_range(0..50u64);
                    inline.push(at, tag);
                    split.push(at, tag);
                    tag += 1;
                } else {
                    let a = inline.pop().map(|s| (s.at, s.seq, s.payload));
                    let b = split.pop();
                    assert_eq!(a, b, "pop divergence (seed {seed})");
                }
            }
            loop {
                let a = inline.pop().map(|s| (s.at, s.seq, s.payload));
                let b = split.pop();
                assert_eq!(a, b, "drain divergence (seed {seed})");
                if a.is_none() {
                    break;
                }
            }
        }
    }

    #[test]
    fn ties_dispatch_in_scheduling_order() {
        let mut q = EventQueue::with_capacity(4);
        q.push(7, "b");
        q.push(3, "a");
        q.push(7, "c");
        q.push(3, "z");
        let order: Vec<_> = std::iter::from_fn(|| q.pop().map(|s| s.payload)).collect();
        assert_eq!(order, vec!["a", "z", "b", "c"]);
    }

    #[test]
    fn peek_time_matches_pop() {
        let mut q = EventQueue::with_capacity(4);
        assert_eq!(q.peek_time(), None);
        q.push(9, ());
        q.push(2, ());
        assert_eq!(q.peek_time(), Some(2));
        q.pop();
        assert_eq!(q.peek_time(), Some(9));
    }
}
