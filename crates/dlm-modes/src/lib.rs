//! Lock modes and rule tables of the peer-to-peer hierarchical locking
//! protocol from Desai & Mueller, *A Log(n) Multi-Mode Locking Protocol for
//! Distributed Systems* (IPPS 2003).
//!
//! The paper specifies its protocol through a set of rules defined over four
//! lookup tables (Table 1(a)–(d)). This crate is the authoritative encoding of
//! those tables:
//!
//! * [`Mode`] — the five CosConcurrency access modes plus `NoLock`,
//! * [`compatible`] — Table 1(a), the compatibility matrix (Rule 1),
//! * the strength partial order ([`Mode::ge`], Definition 1 / inequality (1)),
//! * [`child_can_grant`] — Table 1(b), legal non-token grants (Rule 3.1),
//! * [`queue_or_forward`] — Table 1(c), local queueing vs. forwarding (Rule 4.1),
//! * [`freeze_set`] — Table 1(d), modes frozen at the token node (Rule 6).
//!
//! Each table is stored as data *and* re-derived from first principles in the
//! test suite, so a typo in either the data or the derivation is caught.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod mode;
mod modeset;
mod tables;

pub use mode::{Mode, ALL_MODES, REQUEST_MODES};
pub use modeset::ModeSet;
pub use tables::{
    child_can_grant, compatible, compatible_set, freeze_set, queue_or_forward, strictly_weaker,
    QueueOrForward,
};
