//! The access-mode enumeration and its strength partial order.

use core::fmt;
use serde::{Deserialize, Serialize};

/// An access mode of the hierarchical locking protocol.
///
/// These are the five modes of the OMG Concurrency Service that the paper
/// adopts (§3.1), plus the explicit "no lock" mode `NL` that the paper writes
/// as the empty set. Intent modes (`IntentRead`, `IntentWrite`) are taken on a
/// coarse-granularity lock (e.g. a whole table) to announce finer-granularity
/// activity below it (e.g. on individual entries).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default,
)]
#[repr(u8)]
pub enum Mode {
    /// No lock held (the paper's "∅"). Weakest; compatible with everything.
    #[default]
    NoLock = 0,
    /// Intent read (IR): announces shared access at a finer granularity.
    IntentRead = 1,
    /// Read (R): shared access.
    Read = 2,
    /// Upgrade (U): exclusive read that may later be upgraded to `Write`.
    /// U conflicts with U, which makes the upgrade path deadlock-free (§3.4).
    Upgrade = 3,
    /// Intent write (IW): announces exclusive access at a finer granularity.
    IntentWrite = 4,
    /// Write (W): exclusive access; conflicts with every mode.
    Write = 5,
}

/// All six modes, ordered by discriminant (`NoLock` first).
pub const ALL_MODES: [Mode; 6] = [
    Mode::NoLock,
    Mode::IntentRead,
    Mode::Read,
    Mode::Upgrade,
    Mode::IntentWrite,
    Mode::Write,
];

/// The five modes a node may actually request (everything but `NoLock`).
pub const REQUEST_MODES: [Mode; 5] = [
    Mode::IntentRead,
    Mode::Read,
    Mode::Upgrade,
    Mode::IntentWrite,
    Mode::Write,
];

impl Mode {
    /// Index of this mode in [`ALL_MODES`]; used for table lookups.
    #[inline]
    pub const fn index(self) -> usize {
        self as usize
    }

    /// Construct a mode from its [`Mode::index`] value.
    ///
    /// Returns `None` for out-of-range values.
    #[inline]
    pub const fn from_index(idx: usize) -> Option<Mode> {
        match idx {
            0 => Some(Mode::NoLock),
            1 => Some(Mode::IntentRead),
            2 => Some(Mode::Read),
            3 => Some(Mode::Upgrade),
            4 => Some(Mode::IntentWrite),
            5 => Some(Mode::Write),
            _ => None,
        }
    }

    /// The short name the paper uses (`-`, `IR`, `R`, `U`, `IW`, `W`).
    pub const fn short_name(self) -> &'static str {
        match self {
            Mode::NoLock => "-",
            Mode::IntentRead => "IR",
            Mode::Read => "R",
            Mode::Upgrade => "U",
            Mode::IntentWrite => "IW",
            Mode::Write => "W",
        }
    }

    /// Inverse of [`Mode::short_name`]; `None` for unknown strings.
    pub fn from_short_name(name: &str) -> Option<Mode> {
        match name {
            "-" => Some(Mode::NoLock),
            "IR" => Some(Mode::IntentRead),
            "R" => Some(Mode::Read),
            "U" => Some(Mode::Upgrade),
            "IW" => Some(Mode::IntentWrite),
            "W" => Some(Mode::Write),
            _ => None,
        }
    }

    /// Strength comparison: `self >= other` in the partial order of
    /// Definition 1 / inequality (1) of the paper:
    ///
    /// ```text
    /// NL < IR < R < U < W        NL < IR < IW < W
    /// ```
    ///
    /// `U`/`IW` and `R`/`IW` are incomparable: neither constrains a superset of
    /// the concurrency the other allows. This is the `MO >= MR` test of
    /// Rule 3.1 and the `MO < MR` test of Rules 2 and 3.2.
    ///
    /// Encoded as a downset bitmask per mode (bit `i` set iff this mode
    /// dominates the mode with index `i`), so the comparison is one indexed
    /// load and an AND; the tests re-derive the masks from the chain
    /// definition above.
    #[inline]
    pub fn ge(self, other: Mode) -> bool {
        GE_MASK[self.index()] & (1 << other.index()) != 0
    }

    /// Strict strength: `self > other` in the partial order.
    #[inline]
    pub fn gt(self, other: Mode) -> bool {
        self != other && self.ge(other)
    }

    /// True if the two modes are incomparable in the strength order
    /// (exactly the pairs {U, IW} and {R, IW}).
    #[inline]
    pub fn incomparable(self, other: Mode) -> bool {
        !self.ge(other) && !other.ge(self)
    }

    /// Least upper bound in the strength lattice.
    ///
    /// Used when recomputing a node's *owned* mode from the modes reported by
    /// its copyset children plus its own held mode (Definition 3): the owned
    /// mode must dominate every held mode in the subtree. For the incomparable
    /// pairs the join is the smallest common dominator: `R ∨ IW = W` and
    /// `U ∨ IW = W` (only `W` dominates both chains).
    #[inline]
    pub fn join(self, other: Mode) -> Mode {
        if self.ge(other) {
            self
        } else if other.ge(self) {
            other
        } else {
            // Incomparable pairs mix the read chain with IntentWrite; the only
            // common upper bound is Write.
            Mode::Write
        }
    }
}

/// Downsets of the strength partial order: `GE_MASK[m]` has bit `i` set iff
/// `m >= ALL_MODES[i]`. Bit order `NL, IR, R, U, IW, W` (LSB first).
///
/// Rows: NL dominates only itself; IR adds NL; R adds IR; U adds R; IW
/// dominates {NL, IR, IW}; W dominates everything.
const GE_MASK: [u8; 6] = [
    0b00_0001, // NL
    0b00_0011, // IR
    0b00_0111, // R
    0b00_1111, // U
    0b01_0011, // IW
    0b11_1111, // W
];

impl fmt::Display for Mode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.short_name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indices_round_trip() {
        for (i, &m) in ALL_MODES.iter().enumerate() {
            assert_eq!(m.index(), i);
            assert_eq!(Mode::from_index(i), Some(m));
        }
        assert_eq!(Mode::from_index(6), None);
    }

    #[test]
    fn partial_order_matches_paper_inequality() {
        use Mode::*;
        // NL < IR < R < U  (read chain)
        assert!(IntentRead.gt(NoLock));
        assert!(Read.gt(IntentRead));
        assert!(Upgrade.gt(Read));
        // IW < W and IR < IW  (write chain)
        assert!(IntentWrite.gt(IntentRead));
        assert!(Write.gt(IntentWrite));
        // W dominates the read chain too.
        assert!(Write.gt(Upgrade));
        // Incomparable pairs.
        assert!(Upgrade.incomparable(IntentWrite));
        assert!(Read.incomparable(IntentWrite));
        assert!(!Upgrade.ge(IntentWrite));
        assert!(!IntentWrite.ge(Upgrade));
    }

    /// `GE_MASK` must equal the case analysis it replaced: reflexivity, the
    /// read chain `NL < IR < R < U`, the write chain `NL < IR < IW < W`, and
    /// `W` dominating everything.
    #[test]
    fn ge_mask_matches_chain_definition() {
        use Mode::*;
        for &a in &ALL_MODES {
            for &b in &ALL_MODES {
                let derived = a == b
                    || matches!(
                        (a, b),
                        (_, NoLock)
                            | (Write, _)
                            | (Read, IntentRead)
                            | (Upgrade, IntentRead)
                            | (Upgrade, Read)
                            | (IntentWrite, IntentRead)
                    );
                assert_eq!(a.ge(b), derived, "GE_MASK mismatch at ({a},{b})");
            }
        }
    }

    #[test]
    fn order_is_reflexive_transitive_antisymmetric() {
        for &a in &ALL_MODES {
            assert!(a.ge(a));
            for &b in &ALL_MODES {
                if a.ge(b) && b.ge(a) {
                    assert_eq!(a, b, "antisymmetry violated for {a}/{b}");
                }
                for &c in &ALL_MODES {
                    if a.ge(b) && b.ge(c) {
                        assert!(a.ge(c), "transitivity violated: {a} >= {b} >= {c}");
                    }
                }
            }
        }
    }

    #[test]
    fn join_is_least_upper_bound() {
        for &a in &ALL_MODES {
            for &b in &ALL_MODES {
                let j = a.join(b);
                assert!(j.ge(a) && j.ge(b), "join({a},{b})={j} not an upper bound");
                assert_eq!(j, b.join(a), "join not commutative");
                // Least: no strictly smaller upper bound exists.
                for &c in &ALL_MODES {
                    if c.ge(a) && c.ge(b) {
                        assert!(c.ge(j), "join({a},{b})={j} not least (found {c})");
                    }
                }
            }
        }
    }

    #[test]
    fn display_uses_paper_names() {
        let names: Vec<&str> = ALL_MODES.iter().map(|m| m.short_name()).collect();
        assert_eq!(names, ["-", "IR", "R", "U", "IW", "W"]);
    }
}
