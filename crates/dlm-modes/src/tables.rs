//! Table 1(a)–(d) of the paper, encoded as explicit lookup tables.
//!
//! Row index is the mode `M1` of the node examining a request, column index is
//! the requested mode `M2`, both via [`Mode::index`]. Each table is written
//! out literally (so it can be eyeballed against the paper), then compiled at
//! `const` time into per-row `u8` bitmasks — one load plus one AND per lookup,
//! and Table 1(d) becomes a single indexed [`ModeSet`] load. The literal
//! matrices stay the source of truth: the masks are derived from them by
//! `const fn`, and the tests re-derive both forms from the closed-form rules
//! (see `derivations` below), so a transcription slip in any form fails the
//! suite.

use crate::mode::Mode;
use crate::modeset::ModeSet;
use serde::{Deserialize, Serialize};

/// Compress one boolean table row into a bitmask (bit `i` = column `i`).
const fn row_mask(row: &[bool; 6]) -> u8 {
    let mut mask = 0u8;
    let mut i = 0;
    while i < 6 {
        if row[i] {
            mask |= 1 << i;
        }
        i += 1;
    }
    mask
}

/// Compress a 6×6 boolean table into six row masks.
const fn table_masks(table: &[[bool; 6]; 6]) -> [u8; 6] {
    let mut out = [0u8; 6];
    let mut r = 0;
    while r < 6 {
        out[r] = row_mask(&table[r]);
        r += 1;
    }
    out
}

/// Table 1(a): `true` iff modes may be held concurrently by different nodes
/// (Rule 1). This is the standard OMG Concurrency Service matrix the paper
/// adopts. Symmetric; `NoLock` is compatible with everything.
///
/// Row/column order: `NL, IR, R, U, IW, W`.
const COMPATIBLE: [[bool; 6]; 6] = [
    //               NL     IR     R      U      IW     W
    /* NL */
    [true, true, true, true, true, true],
    /* IR */ [true, true, true, true, true, false],
    /* R  */ [true, true, true, true, false, false],
    /* U  */ [true, true, true, false, false, false],
    /* IW */ [true, true, false, false, true, false],
    /* W  */ [true, false, false, false, false, false],
];

/// Table 1(a) compiled to row masks: bit `b` of `COMPAT_MASK[a]` is
/// `COMPATIBLE[a][b]`.
const COMPAT_MASK: [u8; 6] = table_masks(&COMPATIBLE);

/// Rule 1 / Table 1(a): may `a` and `b` be held concurrently?
#[inline]
pub fn compatible(a: Mode, b: Mode) -> bool {
    COMPAT_MASK[a.index()] & (1 << b.index()) != 0
}

/// Rule 1 extended to sets: the set of modes compatible with `a`, as a
/// [`ModeSet`] — one indexed load, so "is any held mode incompatible with
/// `a`" is a single AND against the complement.
#[inline]
pub fn compatible_set(a: Mode) -> ModeSet {
    ModeSet::from_bits(COMPAT_MASK[a.index()])
}

/// Rule 2 helper: `true` iff owned mode `owned` is *strictly weaker* than the
/// requested mode `req` in the strength partial order, i.e. a request message
/// must be sent. (Incomparable modes also force a request — the node's owned
/// mode does not cover the requested one.)
#[inline]
pub fn strictly_weaker(owned: Mode, req: Mode) -> bool {
    !owned.ge(req)
}

/// Table 1(b): may a *non-token* node that owns `owned` grant a request for
/// `req` (Rule 3.1)?
///
/// Derivation: grant iff `compatible(owned, req) && owned >= req`. A non-token
/// node can never own `W` (a `W` grant always carries the token), so the `W`
/// row is unreachable in practice but still encoded per the paper (all-deny:
/// `W` is compatible with nothing).
#[inline]
pub fn child_can_grant(owned: Mode, req: Mode) -> bool {
    CHILD_GRANT_MASK[owned.index()] & (1 << req.index()) != 0
}

/// Table 1(b) as printed (the paper marks *illegal* grants with X; we store
/// the legal ones as `true`). Row = owned mode of the non-token node,
/// column = requested mode. Column order `NL, IR, R, U, IW, W`; the `NL`
/// column is trivially grantable (an empty request never occurs).
const CHILD_GRANT: [[bool; 6]; 6] = [
    //               NL     IR     R      U      IW     W
    /* NL */
    [true, false, false, false, false, false],
    /* IR */ [true, true, false, false, false, false],
    /* R  */ [true, true, true, false, false, false],
    /* U  */ [true, true, true, false, false, false],
    /* IW */ [true, true, false, false, true, false],
    /* W  */ [true, false, false, false, false, false],
];

/// Table 1(b) compiled to row masks (row = owned mode, bit = requested mode).
const CHILD_GRANT_MASK: [u8; 6] = table_masks(&CHILD_GRANT);

/// The decision of Table 1(c) for a non-token node that cannot grant a request
/// (Rule 4.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum QueueOrForward {
    /// Log the request in the local queue; it will be reconsidered when this
    /// node's own pending request is granted or a release arrives.
    Queue,
    /// Relay the request to this node's parent.
    Forward,
}

/// Table 1(c): queue locally or forward to the parent, keyed by the node's
/// *pending* mode `pending` (the paper's `M1` in sub-table (c); `MP = NL`
/// means no pending request) and the incoming request mode `req`.
///
/// Derivation (validated in tests): queue iff the request would have to
/// serialize behind our pending request anyway (`req == pending` or
/// `!compatible(pending, req)`) *and* we will be able to serve it once our
/// pending request is granted — either because that grant makes us the token
/// node (`pending ∈ {U, W}`: those grants always transfer the token) or
/// because we will own a sufficient mode (`pending >= req &&
/// compatible(pending, req)`). Anything compatible with our pending mode is
/// forwarded instead so an ancestor can serve it concurrently.
#[inline]
pub fn queue_or_forward(pending: Mode, req: Mode) -> QueueOrForward {
    if QUEUE_MASK[pending.index()] & (1 << req.index()) != 0 {
        QueueOrForward::Queue
    } else {
        QueueOrForward::Forward
    }
}

/// Table 1(c) as printed (`true` = Q, `false` = F). Row = pending mode,
/// column = requested mode. The paper's row fragments are
/// `F F F F F / Q F F F F / F Q F F F / F F Q Q Q / F F F Q F / Q Q Q Q Q`
/// for rows `NL, IR, R, U, IW, W` over columns `IR, R, U, IW, W`.
const QUEUE: [[bool; 6]; 6] = [
    //               NL     IR     R      U      IW     W
    /* NL */
    [false, false, false, false, false, false],
    /* IR */ [false, true, false, false, false, false],
    /* R  */ [false, false, true, false, false, false],
    /* U  */ [false, false, false, true, true, true],
    /* IW */ [false, false, false, false, true, false],
    /* W  */ [false, true, true, true, true, true],
];

/// Table 1(c) compiled to row masks (row = pending mode, bit set = Queue).
const QUEUE_MASK: [u8; 6] = table_masks(&QUEUE);

/// Table 1(d): the set of modes the token node freezes when it owns `owned`
/// and must queue an incompatible request for `req` (Rule 6).
///
/// Derivation: `{ m ≠ NL : compatible(m, owned) && !compatible(m, req) }` —
/// exactly the modes that could still be granted today (compatible with what
/// the token owns) but would keep delaying the queued request (incompatible
/// with it). Freezing them preserves FIFO and prevents starvation of strong
/// requests by streams of weak ones (§3.3).
#[inline]
pub fn freeze_set(owned: Mode, req: Mode) -> ModeSet {
    ModeSet::from_bits(FREEZE_LUT[owned.index()][req.index()])
}

/// Table 1(d) fully materialized: `FREEZE_LUT[owned][req]` is the freeze set
/// as a `ModeSet` bit pattern. By symmetry of Table 1(a), "`m` compatible with
/// `owned`" is bit `m` of `COMPAT_MASK[owned]`, so the whole derivation above
/// collapses to `COMPAT_MASK[owned] & !COMPAT_MASK[req]` with the `NL` bit
/// cleared.
const FREEZE_LUT: [[u8; 6]; 6] = {
    let nl_bit = 1u8; // Mode::NoLock has index 0
    let mut out = [[0u8; 6]; 6];
    let mut owned = 0;
    while owned < 6 {
        let mut req = 0;
        while req < 6 {
            out[owned][req] = COMPAT_MASK[owned] & !COMPAT_MASK[req] & !nl_bit;
            req += 1;
        }
        owned += 1;
    }
    out
};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mode::{ALL_MODES, REQUEST_MODES};

    /// The compiled bitmask LUTs must agree, cell for cell, with the literal
    /// boolean matrices transcribed from the paper. Together with the
    /// closed-form derivation tests below this proves the mask encoding is a
    /// faithful compilation of Tables 1(a)–(d).
    #[test]
    fn masks_match_literal_tables() {
        for &a in &ALL_MODES {
            for &b in &ALL_MODES {
                let (i, j) = (a.index(), b.index());
                assert_eq!(compatible(a, b), COMPATIBLE[i][j], "1(a) at ({a},{b})");
                assert_eq!(compatible_set(a).contains(b), COMPATIBLE[i][j]);
                assert_eq!(
                    child_can_grant(a, b),
                    CHILD_GRANT[i][j],
                    "1(b) at ({a},{b})"
                );
                assert_eq!(
                    queue_or_forward(a, b) == QueueOrForward::Queue,
                    QUEUE[i][j],
                    "1(c) at ({a},{b})"
                );
            }
        }
    }

    /// `FREEZE_LUT` must equal the loop derivation of Table 1(d) it replaced:
    /// `{ m ≠ NL : compatible(m, owned) && !compatible(m, req) }`.
    #[test]
    fn freeze_lut_matches_loop_derivation() {
        for &owned in &ALL_MODES {
            for &req in &ALL_MODES {
                let mut derived = ModeSet::new();
                for &m in &ALL_MODES {
                    if m != Mode::NoLock && compatible(m, owned) && !compatible(m, req) {
                        derived.insert(m);
                    }
                }
                assert_eq!(
                    freeze_set(owned, req),
                    derived,
                    "1(d) mismatch at owned={owned}, req={req}"
                );
            }
        }
    }

    #[test]
    fn compatibility_is_symmetric() {
        for &a in &ALL_MODES {
            for &b in &ALL_MODES {
                assert_eq!(compatible(a, b), compatible(b, a), "asymmetry at ({a},{b})");
            }
        }
    }

    #[test]
    fn compatibility_matches_omg_matrix() {
        use Mode::*;
        // The conflicts listed in Table 1(a): IR–W, R–{IW,W}, U–{U,IW,W},
        // IW–{R,U,W}, W–everything.
        let conflicts = [
            (IntentRead, Write),
            (Read, IntentWrite),
            (Read, Write),
            (Upgrade, Upgrade),
            (Upgrade, IntentWrite),
            (Upgrade, Write),
            (IntentWrite, Write),
            (Write, Write),
        ];
        for &a in &ALL_MODES {
            for &b in &ALL_MODES {
                let conflict = conflicts
                    .iter()
                    .any(|&(x, y)| (x, y) == (a, b) || (y, x) == (a, b));
                assert_eq!(compatible(a, b), !conflict, "({a},{b})");
            }
        }
    }

    #[test]
    fn nolock_compatible_with_all() {
        for &m in &ALL_MODES {
            assert!(compatible(Mode::NoLock, m));
        }
    }

    /// Definition 1: stronger modes are compatible with fewer modes. Verify
    /// the partial order is consistent with compatibility-set inclusion.
    #[test]
    fn strength_refines_compatibility_inclusion() {
        for &a in &ALL_MODES {
            for &b in &ALL_MODES {
                if a.ge(b) {
                    // Every mode compatible with the stronger `a` must be
                    // compatible with the weaker `b`.
                    for &m in &ALL_MODES {
                        if compatible(m, a) {
                            assert!(
                                compatible(m, b),
                                "{a} >= {b} but {m} compat {a} and not {b}"
                            );
                        }
                    }
                }
            }
        }
    }

    /// Table 1(b) must equal its closed-form derivation from Rule 3.1.
    #[test]
    fn child_grant_table_matches_rule_3_1() {
        for &owned in &ALL_MODES {
            for &req in &REQUEST_MODES {
                let derived = compatible(owned, req) && owned.ge(req);
                assert_eq!(
                    child_can_grant(owned, req),
                    derived,
                    "Table 1(b) mismatch at owned={owned}, req={req}"
                );
            }
        }
    }

    /// Spot-check Table 1(b) against the paper's printed rows (absence of X
    /// means grantable): NL grants nothing; IR grants IR; R grants IR,R;
    /// U grants IR,R; IW grants IR,IW; W row is all X.
    #[test]
    fn child_grant_rows_match_paper() {
        use Mode::*;
        let grantable = |owned: Mode| -> Vec<Mode> {
            REQUEST_MODES
                .into_iter()
                .filter(|&r| child_can_grant(owned, r))
                .collect()
        };
        assert_eq!(grantable(NoLock), vec![]);
        assert_eq!(grantable(IntentRead), vec![IntentRead]);
        assert_eq!(grantable(Read), vec![IntentRead, Read]);
        assert_eq!(grantable(Upgrade), vec![IntentRead, Read]);
        assert_eq!(grantable(IntentWrite), vec![IntentRead, IntentWrite]);
        assert_eq!(grantable(Write), vec![]);
    }

    /// Table 1(c) must equal its closed-form derivation (see docs on
    /// [`queue_or_forward`]).
    #[test]
    fn queue_table_matches_derivation() {
        for &pending in &ALL_MODES {
            for &req in &REQUEST_MODES {
                let token_after = matches!(pending, Mode::Upgrade | Mode::Write);
                let can_serve_after = token_after || (pending.ge(req) && compatible(pending, req));
                let must_wait_here = req == pending || !compatible(pending, req);
                let derived = must_wait_here && can_serve_after;
                assert_eq!(
                    queue_or_forward(pending, req) == QueueOrForward::Queue,
                    derived,
                    "Table 1(c) mismatch at pending={pending}, req={req}"
                );
            }
        }
    }

    /// Spot-check Table 1(c) against the paper's printed rows over columns
    /// (IR, R, U, IW, W):
    /// NL: FFFFF — no pending request, always forward (Fig. 3(a/b) example).
    /// IR: QFFFF, R: FQFFF, U: FFQQQ, IW: FFFQF, W: QQQQQ.
    #[test]
    fn queue_rows_match_paper() {
        use Mode::*;
        use QueueOrForward::*;
        let row = |pending: Mode| -> Vec<QueueOrForward> {
            REQUEST_MODES
                .into_iter()
                .map(|r| queue_or_forward(pending, r))
                .collect()
        };
        assert_eq!(row(NoLock), vec![Forward; 5]);
        assert_eq!(
            row(IntentRead),
            vec![Queue, Forward, Forward, Forward, Forward]
        );
        assert_eq!(row(Read), vec![Forward, Queue, Forward, Forward, Forward]);
        assert_eq!(row(Upgrade), vec![Forward, Forward, Queue, Queue, Queue]);
        assert_eq!(
            row(IntentWrite),
            vec![Forward, Forward, Forward, Queue, Forward]
        );
        assert_eq!(row(Write), vec![Queue; 5]);
    }

    /// Table 1(d) spot checks against every fragment legible in the paper:
    /// row IR→W freezes {IR,R,U,IW}; row R: {R,U} for IW and {IR,R,U} for W;
    /// row U: {} for U, {R} for IW, {IR,R} for W; row IW: {IW},{IW},{IR,IW}
    /// for R,U,W; rows NL and W freeze nothing.
    #[test]
    fn freeze_sets_match_paper() {
        use Mode::*;
        let fs = |o, r| freeze_set(o, r);
        assert_eq!(
            fs(IntentRead, Write),
            ModeSet::from_modes([IntentRead, Read, Upgrade, IntentWrite])
        );
        assert_eq!(fs(Read, IntentWrite), ModeSet::from_modes([Read, Upgrade]));
        assert_eq!(
            fs(Read, Write),
            ModeSet::from_modes([IntentRead, Read, Upgrade])
        );
        assert_eq!(fs(Upgrade, Upgrade), ModeSet::EMPTY);
        assert_eq!(fs(Upgrade, IntentWrite), ModeSet::from_modes([Read]));
        assert_eq!(fs(Upgrade, Write), ModeSet::from_modes([IntentRead, Read]));
        assert_eq!(fs(IntentWrite, Read), ModeSet::from_modes([IntentWrite]));
        assert_eq!(fs(IntentWrite, Upgrade), ModeSet::from_modes([IntentWrite]));
        assert_eq!(
            fs(IntentWrite, Write),
            ModeSet::from_modes([IntentRead, IntentWrite])
        );
        for &r in &REQUEST_MODES {
            assert_eq!(fs(Write, r), ModeSet::EMPTY, "W owns nothing grantable");
        }
    }

    /// Freezing is only ever needed for incompatible requests: when the
    /// request is compatible, the token grants it and the freeze set is moot —
    /// and indeed the derived set never blocks the requested mode itself
    /// from the *requester's* perspective.
    #[test]
    fn freeze_set_never_contains_modes_compatible_with_request() {
        for &owned in &ALL_MODES {
            for &req in &REQUEST_MODES {
                for m in freeze_set(owned, req).iter() {
                    assert!(!compatible(m, req));
                    assert!(compatible(m, owned));
                }
            }
        }
    }

    /// The fairness argument of §3.3: every mode that the token node could
    /// grant concurrently today (compatible with owned) and that would delay
    /// the queued request (incompatible with it) is frozen.
    #[test]
    fn freeze_set_is_exactly_the_bypass_risk() {
        for &owned in &ALL_MODES {
            for &req in &REQUEST_MODES {
                if compatible(owned, req) {
                    continue; // would be granted, not queued
                }
                let f = freeze_set(owned, req);
                for &m in &REQUEST_MODES {
                    let bypass_risk = compatible(m, owned) && !compatible(m, req);
                    assert_eq!(f.contains(m), bypass_risk, "owned={owned} req={req} m={m}");
                }
            }
        }
    }
}
