//! A small bitset over [`Mode`], used for frozen-mode bookkeeping.

use crate::mode::{Mode, ALL_MODES};
use core::fmt;
use serde::{Deserialize, Serialize};

/// A set of [`Mode`]s stored as a 6-bit mask.
///
/// Freeze messages (Rule 6 / Table 1(d)) carry mode sets, and every node keeps
/// the set of modes currently frozen at it. A bitset keeps those messages and
/// per-node state word-sized.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct ModeSet(u8);

impl ModeSet {
    /// The empty set.
    pub const EMPTY: ModeSet = ModeSet(0);

    /// The set of every mode including `NoLock`.
    pub const ALL: ModeSet = ModeSet(0b11_1111);

    /// Create an empty set.
    #[inline]
    pub const fn new() -> Self {
        ModeSet(0)
    }

    /// Create a set directly from a 6-bit mask (bit `i` = mode with index
    /// `i`). Bits above the mode range are discarded. This is how the
    /// compiled Table 1(d) LUT materializes freeze sets in one load.
    #[inline]
    pub const fn from_bits(bits: u8) -> Self {
        ModeSet(bits & 0b11_1111)
    }

    /// The raw 6-bit mask (inverse of [`ModeSet::from_bits`]).
    #[inline]
    pub const fn bits(self) -> u8 {
        self.0
    }

    /// Create a set from an iterator of modes.
    pub fn from_modes<I: IntoIterator<Item = Mode>>(modes: I) -> Self {
        let mut s = ModeSet::new();
        for m in modes {
            s.insert(m);
        }
        s
    }

    /// Insert a mode; returns `true` if it was not already present.
    #[inline]
    pub fn insert(&mut self, m: Mode) -> bool {
        let bit = 1u8 << m.index();
        let fresh = self.0 & bit == 0;
        self.0 |= bit;
        fresh
    }

    /// Remove a mode; returns `true` if it was present.
    #[inline]
    pub fn remove(&mut self, m: Mode) -> bool {
        let bit = 1u8 << m.index();
        let present = self.0 & bit != 0;
        self.0 &= !bit;
        present
    }

    /// Membership test.
    #[inline]
    pub const fn contains(self, m: Mode) -> bool {
        self.0 & (1u8 << m.index()) != 0
    }

    /// True if no mode is present.
    #[inline]
    pub const fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Number of modes present.
    #[inline]
    pub const fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// Set union.
    #[inline]
    pub const fn union(self, other: ModeSet) -> ModeSet {
        ModeSet(self.0 | other.0)
    }

    /// Set intersection.
    #[inline]
    pub const fn intersection(self, other: ModeSet) -> ModeSet {
        ModeSet(self.0 & other.0)
    }

    /// Set difference (`self \ other`).
    #[inline]
    pub const fn difference(self, other: ModeSet) -> ModeSet {
        ModeSet(self.0 & !other.0)
    }

    /// True if `self` and `other` share at least one mode.
    #[inline]
    pub const fn intersects(self, other: ModeSet) -> bool {
        self.0 & other.0 != 0
    }

    /// Iterate the contained modes in discriminant order.
    pub fn iter(self) -> impl Iterator<Item = Mode> {
        ALL_MODES.into_iter().filter(move |m| self.contains(*m))
    }

    /// Clear the set.
    #[inline]
    pub fn clear(&mut self) {
        self.0 = 0;
    }
}

impl FromIterator<Mode> for ModeSet {
    fn from_iter<I: IntoIterator<Item = Mode>>(iter: I) -> Self {
        ModeSet::from_modes(iter)
    }
}

impl fmt::Debug for ModeSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        let mut first = true;
        for m in self.iter() {
            if !first {
                write!(f, ",")?;
            }
            write!(f, "{m}")?;
            first = false;
        }
        write!(f, "}}")
    }
}

impl fmt::Display for ModeSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mode::REQUEST_MODES;

    #[test]
    fn insert_remove_contains() {
        let mut s = ModeSet::new();
        assert!(s.is_empty());
        assert!(s.insert(Mode::Read));
        assert!(!s.insert(Mode::Read), "double insert reports not-fresh");
        assert!(s.contains(Mode::Read));
        assert!(!s.contains(Mode::Write));
        assert_eq!(s.len(), 1);
        assert!(s.remove(Mode::Read));
        assert!(!s.remove(Mode::Read));
        assert!(s.is_empty());
    }

    #[test]
    fn set_algebra() {
        let a = ModeSet::from_modes([Mode::IntentRead, Mode::Read, Mode::Upgrade]);
        let b = ModeSet::from_modes([Mode::Upgrade, Mode::Write]);
        assert_eq!(
            a.union(b),
            ModeSet::from_modes([Mode::IntentRead, Mode::Read, Mode::Upgrade, Mode::Write])
        );
        assert_eq!(a.intersection(b), ModeSet::from_modes([Mode::Upgrade]));
        assert_eq!(
            a.difference(b),
            ModeSet::from_modes([Mode::IntentRead, Mode::Read])
        );
        assert!(a.intersects(b));
        assert!(!a.difference(b).intersects(b));
    }

    #[test]
    fn iter_yields_sorted_members() {
        let s = ModeSet::from_modes([Mode::Write, Mode::IntentRead]);
        let v: Vec<Mode> = s.iter().collect();
        assert_eq!(v, vec![Mode::IntentRead, Mode::Write]);
    }

    #[test]
    fn all_contains_everything() {
        for &m in &REQUEST_MODES {
            assert!(ModeSet::ALL.contains(m));
        }
        assert!(ModeSet::ALL.contains(Mode::NoLock));
        assert_eq!(ModeSet::ALL.len(), 6);
    }

    #[test]
    fn debug_format_is_compact() {
        let s = ModeSet::from_modes([Mode::IntentRead, Mode::Read, Mode::Upgrade]);
        assert_eq!(format!("{s:?}"), "{IR,R,U}");
        assert_eq!(format!("{}", ModeSet::EMPTY), "{}");
    }
}
