//! Property tests for the mode lattice and bitset: set-algebra laws,
//! order/compatibility interplay, and table consistency under arbitrary
//! mode pairs (the exhaustive pair tests live in the unit suites; these
//! cover the derived algebraic laws).

use dlm_modes::{
    child_can_grant, compatible, freeze_set, queue_or_forward, Mode, ModeSet, QueueOrForward,
    ALL_MODES,
};
use proptest::prelude::*;

fn mode_strategy() -> impl Strategy<Value = Mode> {
    proptest::sample::select(ALL_MODES.to_vec())
}

fn modeset_strategy() -> impl Strategy<Value = ModeSet> {
    proptest::collection::vec(mode_strategy(), 0..6).prop_map(ModeSet::from_modes)
}

proptest! {
    /// Union/intersection/difference satisfy the standard lattice laws.
    #[test]
    fn modeset_algebra_laws(a in modeset_strategy(), b in modeset_strategy(), c in modeset_strategy()) {
        // Commutativity & associativity.
        prop_assert_eq!(a.union(b), b.union(a));
        prop_assert_eq!(a.intersection(b), b.intersection(a));
        prop_assert_eq!(a.union(b).union(c), a.union(b.union(c)));
        // Absorption.
        prop_assert_eq!(a.union(a.intersection(b)), a);
        prop_assert_eq!(a.intersection(a.union(b)), a);
        // Difference/complement relations.
        prop_assert_eq!(a.difference(b).intersection(b), ModeSet::EMPTY);
        prop_assert_eq!(a.difference(b).union(a.intersection(b)), a);
        // intersects <=> non-empty intersection.
        prop_assert_eq!(a.intersects(b), !a.intersection(b).is_empty());
    }

    /// Membership matches construction.
    #[test]
    fn modeset_membership(modes in proptest::collection::vec(mode_strategy(), 0..6)) {
        let set = ModeSet::from_modes(modes.clone());
        for &m in &ALL_MODES {
            prop_assert_eq!(set.contains(m), modes.contains(&m));
        }
        prop_assert_eq!(set.iter().count(), set.len());
    }

    /// The grant predicate implies both of its defining conditions; a
    /// non-grantable pair fails at least one (Rule 3.1 soundness both ways).
    #[test]
    fn child_grant_iff_compatible_and_dominating(owned in mode_strategy(), req in mode_strategy()) {
        if req == Mode::NoLock { return Ok(()); }
        prop_assert_eq!(
            child_can_grant(owned, req),
            compatible(owned, req) && owned.ge(req)
        );
    }

    /// Queue decisions never queue something the node could have granted
    /// (granting is checked first in the protocol, so Table 1(c) only ever
    /// sees non-grantable requests — but the table itself must also never
    /// contradict the service guarantee: queued ⇒ servable after pending).
    #[test]
    fn queued_requests_are_servable_after_pending(pending in mode_strategy(), req in mode_strategy()) {
        if req == Mode::NoLock { return Ok(()); }
        if queue_or_forward(pending, req) == QueueOrForward::Queue {
            let token_after = matches!(pending, Mode::Upgrade | Mode::Write);
            let servable = token_after || (pending.ge(req) && compatible(pending, req));
            prop_assert!(servable, "queued ({pending},{req}) but not servable");
        }
    }

    /// Freeze sets only contain modes that are live threats: compatible with
    /// what is owned, incompatible with what waits.
    #[test]
    fn freeze_sets_are_threat_sets(owned in mode_strategy(), req in mode_strategy()) {
        for m in freeze_set(owned, req).iter() {
            prop_assert!(compatible(m, owned));
            prop_assert!(!compatible(m, req));
            prop_assert!(m != Mode::NoLock);
        }
    }

    /// Join dominates, monotonically: joining more modes never weakens.
    #[test]
    fn join_monotone(a in mode_strategy(), b in mode_strategy(), c in mode_strategy()) {
        let ab = a.join(b);
        prop_assert!(ab.join(c).ge(ab.join(Mode::NoLock)));
        prop_assert!(a.join(b).ge(a));
    }
}
