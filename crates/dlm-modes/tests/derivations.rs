//! Cross-derivation of the rule tables: Table 1(a) (the compatibility
//! matrix) is the single semantic source from which everything else in the
//! paper follows. This suite rebuilds the strength order and Tables
//! 1(b)/(c)/(d) from `compatible` alone, and separately compares the
//! crate's encodings against full hand-transcribed literal tables — so a
//! transcription slip in the data, a bug in a closed form, or a drift
//! between the two is caught from three independent directions.

use dlm_modes::{
    child_can_grant, compatible, freeze_set, queue_or_forward, Mode, ModeSet, QueueOrForward,
    ALL_MODES, REQUEST_MODES,
};

/// The compatibility set of a mode: everything it can coexist with.
fn compat_set(a: Mode) -> Vec<Mode> {
    ALL_MODES
        .into_iter()
        .filter(|&m| compatible(m, a))
        .collect()
}

/// Definition 1, derived: `a` is at least as strong as `b` iff everything
/// compatible with `a` is compatible with `b` (stronger modes exclude
/// more). The crate's `Mode::ge` is an independent encoding of the
/// paper's Hasse diagram (IR < R < U < W, IR < IW < W); the two must be
/// the same relation.
#[test]
fn strength_order_is_compatibility_set_inclusion() {
    for &a in &ALL_MODES {
        for &b in &ALL_MODES {
            let inclusion = compat_set(a).iter().all(|&m| compatible(m, b));
            assert_eq!(
                a.ge(b),
                inclusion,
                "ge({a},{b}) disagrees with compat-set inclusion"
            );
        }
    }
}

/// Table 1(b) derived from 1(a): a non-token node owning `owned` may grant
/// `req` iff the two can coexist *and* `owned` covers `req` in the derived
/// strength order (so the node's own ownership already licenses every
/// state `req` can cause).
#[test]
fn table_1b_derives_from_table_1a() {
    for &owned in &ALL_MODES {
        for &req in &REQUEST_MODES {
            let covers = compat_set(owned).iter().all(|&m| compatible(m, req));
            let derived = compatible(owned, req) && covers;
            assert_eq!(
                child_can_grant(owned, req),
                derived,
                "Table 1(b) at owned={owned}, req={req}"
            );
        }
    }
}

/// Table 1(c) derived from 1(a): queue iff the request must serialize
/// behind our pending request anyway (same mode or incompatible) and we
/// will be able to serve it after our grant — because the grant makes us
/// the token node (`U`/`W` grants always carry the token) or because our
/// pending mode covers the request.
#[test]
fn table_1c_derives_from_table_1a() {
    for &pending in &ALL_MODES {
        for &req in &REQUEST_MODES {
            let covers = compat_set(pending).iter().all(|&m| compatible(m, req));
            let serves_after = matches!(pending, Mode::Upgrade | Mode::Write)
                || (covers && compatible(pending, req));
            let serializes_here = req == pending || !compatible(pending, req);
            let derived = serializes_here && serves_after;
            assert_eq!(
                queue_or_forward(pending, req) == QueueOrForward::Queue,
                derived,
                "Table 1(c) at pending={pending}, req={req}"
            );
        }
    }
}

/// Table 1(d) derived from 1(a): when the token owns `owned` and queues an
/// incompatible `req`, it freezes exactly the modes that are still
/// grantable today (compatible with `owned`) but would keep delaying the
/// queued request (incompatible with `req`).
#[test]
fn table_1d_derives_from_table_1a() {
    for &owned in &ALL_MODES {
        for &req in &REQUEST_MODES {
            let mut derived = ModeSet::new();
            for &m in &REQUEST_MODES {
                if compatible(m, owned) && !compatible(m, req) {
                    derived.insert(m);
                }
            }
            assert_eq!(
                freeze_set(owned, req),
                derived,
                "Table 1(d) at owned={owned}, req={req}"
            );
        }
    }
}

/// Row/column order of every literal matrix below: rows are the node's
/// mode `NL, IR, R, U, IW, W`; columns are the requested mode
/// `IR, R, U, IW, W` (requests are never `NL`).
const ROWS: [Mode; 6] = [
    Mode::NoLock,
    Mode::IntentRead,
    Mode::Read,
    Mode::Upgrade,
    Mode::IntentWrite,
    Mode::Write,
];

/// Table 1(a) as printed in the paper (OMG Concurrency Service matrix),
/// hand-transcribed: `true` = compatible.
#[test]
fn literal_table_1a_matches() {
    #[rustfmt::skip]
    let table: [[bool; 5]; 6] = [
        //        IR     R      U      IW     W
        /* NL */ [true,  true,  true,  true,  true],
        /* IR */ [true,  true,  true,  true,  false],
        /* R  */ [true,  true,  true,  false, false],
        /* U  */ [true,  true,  false, false, false],
        /* IW */ [true,  false, false, true,  false],
        /* W  */ [false, false, false, false, false],
    ];
    for (i, &row) in ROWS.iter().enumerate() {
        for (j, &col) in REQUEST_MODES.iter().enumerate() {
            assert_eq!(compatible(row, col), table[i][j], "1(a) at ({row},{col})");
        }
    }
}

/// Table 1(b) as printed, hand-transcribed: `true` = a non-token node
/// owning the row mode may grant the column mode (the paper marks illegal
/// grants with X).
#[test]
fn literal_table_1b_matches() {
    #[rustfmt::skip]
    let table: [[bool; 5]; 6] = [
        //        IR     R      U      IW     W
        /* NL */ [false, false, false, false, false],
        /* IR */ [true,  false, false, false, false],
        /* R  */ [true,  true,  false, false, false],
        /* U  */ [true,  true,  false, false, false],
        /* IW */ [true,  false, false, true,  false],
        /* W  */ [false, false, false, false, false],
    ];
    for (i, &row) in ROWS.iter().enumerate() {
        for (j, &col) in REQUEST_MODES.iter().enumerate() {
            assert_eq!(
                child_can_grant(row, col),
                table[i][j],
                "1(b) at (owned={row}, req={col})"
            );
        }
    }
}

/// Table 1(c) as printed, hand-transcribed: `true` = Q (queue locally),
/// `false` = F (forward to parent); the row is the node's *pending* mode.
#[test]
fn literal_table_1c_matches() {
    #[rustfmt::skip]
    let table: [[bool; 5]; 6] = [
        //        IR     R      U      IW     W
        /* NL */ [false, false, false, false, false],
        /* IR */ [true,  false, false, false, false],
        /* R  */ [false, true,  false, false, false],
        /* U  */ [false, false, true,  true,  true],
        /* IW */ [false, false, false, true,  false],
        /* W  */ [true,  true,  true,  true,  true],
    ];
    for (i, &row) in ROWS.iter().enumerate() {
        for (j, &col) in REQUEST_MODES.iter().enumerate() {
            assert_eq!(
                queue_or_forward(row, col) == QueueOrForward::Queue,
                table[i][j],
                "1(c) at (pending={row}, req={col})"
            );
        }
    }
}

/// Table 1(d) as printed, hand-transcribed in full. A cell is `Some(set)`
/// where the paper defines a freeze set — i.e. where the request is
/// incompatible with the token's owned mode and actually queues — and
/// `None` where the request would simply be granted (the paper leaves
/// those cells blank; the closed form still evaluates there, which the
/// derivation test above covers).
#[test]
fn literal_table_1d_matches() {
    use Mode::*;
    let s = |modes: &[Mode]| -> Option<ModeSet> {
        let mut set = ModeSet::new();
        for &m in modes {
            set.insert(m);
        }
        Some(set)
    };
    #[rustfmt::skip]
    let table: [[Option<ModeSet>; 5]; 6] = [
        //        IR    R     U            IW              W
        /* NL */ [None, None, None,        None,           None],
        /* IR */ [None, None, None,        None,           s(&[IntentRead, Read, Upgrade, IntentWrite])],
        /* R  */ [None, None, None,        s(&[Read, Upgrade]), s(&[IntentRead, Read, Upgrade])],
        /* U  */ [None, None, s(&[]),      s(&[Read]),     s(&[IntentRead, Read])],
        /* IW */ [None, s(&[IntentWrite]), s(&[IntentWrite]), None, s(&[IntentRead, IntentWrite])],
        /* W  */ [s(&[]), s(&[]), s(&[]),  s(&[]),         s(&[])],
    ];
    for (i, &row) in ROWS.iter().enumerate() {
        for (j, &col) in REQUEST_MODES.iter().enumerate() {
            match &table[i][j] {
                None => assert!(
                    compatible(row, col),
                    "paper leaves 1(d) blank only where the request is granted \
                     (owned={row}, req={col})"
                ),
                Some(expected) => {
                    assert!(
                        !compatible(row, col),
                        "1(d) is defined only where the request queues \
                         (owned={row}, req={col})"
                    );
                    assert_eq!(
                        &freeze_set(row, col),
                        expected,
                        "1(d) at (owned={row}, req={col})"
                    );
                }
            }
        }
    }
}
