//! Aggregated results of one workload run.

use crate::params::WorkloadParams;
use dlm_metrics::Histogram;
use dlm_sim::Micros;
use serde::Serialize;

/// Results of one simulated experiment (one point of one figure series).
#[derive(Debug, Clone, Serialize)]
pub struct WorkloadReport {
    /// The parameters that produced this report.
    pub params: WorkloadParams,
    /// Total lock requests issued across all nodes (including message-free
    /// local admissions and upgrade requests).
    pub requests: u64,
    /// Total protocol messages sent.
    pub messages: u64,
    /// Operations completed across all nodes.
    pub ops_completed: u64,
    /// Operations expected (`nodes × ops_per_node`).
    pub ops_expected: u64,
    /// Upgrades performed.
    pub upgrades: u64,
    /// Virtual end time of the run.
    pub end_time: Micros,
    /// Whether the run quiesced (all traffic drained before the horizon).
    pub quiesced: bool,
    /// Per-request wait distribution, µs.
    #[serde(skip)]
    pub request_latency: Histogram,
    /// Per-operation wait (first request → CS entry) distribution, µs.
    #[serde(skip)]
    pub op_latency: Histogram,
    /// Per-operation wait split by operation kind (mix order IR,R,U,IW,W).
    #[serde(skip)]
    pub op_latency_by_kind: [Histogram; 5],
    /// Messages by protocol kind (request/grant/token/release/freeze).
    pub sent_by_kind: dlm_metrics::CounterSet,
    /// Structured-trace events per paper rule (`rule3.1-child-grant`, …).
    /// Empty for Naimi runs (only the hierarchical protocol is traced).
    pub rule_counters: dlm_metrics::CounterSet,
    /// Send-class trace events per wire kind; sums to [`Self::messages`]
    /// exactly on hierarchical runs (the 1:1 event↔send contract).
    pub trace_sends: dlm_metrics::CounterSet,
    /// Local queue depth observed at every queue insertion.
    #[serde(skip)]
    pub queue_depth: Histogram,
    /// Per-(lock, node) freeze durations, µs of virtual time.
    #[serde(skip)]
    pub freeze_spans: Histogram,
}

impl WorkloadReport {
    /// Messages per lock request — the paper's Fig. 7 / Fig. 9 metric.
    pub fn messages_per_request(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.messages as f64 / self.requests as f64
        }
    }

    /// Messages per *functional* request: the request count the application
    /// demanded (one per operation — exactly Naimi-pure's request count).
    /// This is the normalization under which the paper's same-work series is
    /// comparable to the pure one: the `entries − 1` extra acquisitions a
    /// same-work whole-table operation performs are protocol overhead, not
    /// application demand.
    pub fn messages_per_functional_request(&self) -> f64 {
        if self.ops_completed == 0 {
            0.0
        } else {
            self.messages as f64 / self.ops_completed as f64
        }
    }

    /// Mean per-request wait in milliseconds — the Fig. 10 metric.
    pub fn mean_request_latency_ms(&self) -> f64 {
        self.request_latency.mean() / 1_000.0
    }

    /// Mean per-request wait divided by the mean one-way network latency —
    /// the Fig. 8 "latency factor".
    pub fn latency_factor(&self) -> f64 {
        if self.params.latency.mean == 0 {
            return 0.0;
        }
        self.request_latency.mean() / self.params.latency.mean as f64
    }

    /// True if every node completed its operations.
    pub fn complete(&self) -> bool {
        self.ops_completed == self.ops_expected
    }
}
