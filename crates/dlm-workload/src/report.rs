//! Aggregated results of one workload run.

use crate::params::WorkloadParams;
use dlm_metrics::Histogram;
use dlm_sim::Micros;
use serde::Serialize;

/// Results of one simulated experiment (one point of one figure series).
#[derive(Debug, Clone, Serialize)]
pub struct WorkloadReport {
    /// The parameters that produced this report.
    pub params: WorkloadParams,
    /// Total lock requests issued across all nodes (including message-free
    /// local admissions and upgrade requests).
    pub requests: u64,
    /// Total protocol messages sent.
    pub messages: u64,
    /// Operations completed across all nodes.
    pub ops_completed: u64,
    /// Operations expected (`nodes × ops_per_node`).
    pub ops_expected: u64,
    /// Upgrades performed.
    pub upgrades: u64,
    /// Virtual end time of the run.
    pub end_time: Micros,
    /// Whether the run quiesced (all traffic drained before the horizon).
    pub quiesced: bool,
    /// Per-request wait distribution, µs.
    pub request_latency: Histogram,
    /// Per-operation wait (first request → CS entry) distribution, µs.
    pub op_latency: Histogram,
    /// Per-operation wait split by operation kind (mix order IR,R,U,IW,W).
    pub op_latency_by_kind: [Histogram; 5],
    /// Messages by protocol kind (request/grant/token/release/freeze).
    pub sent_by_kind: dlm_metrics::CounterSet,
    /// Structured-trace events per paper rule (`rule3.1-child-grant`, …).
    /// Empty for Naimi runs (only the hierarchical protocol is traced).
    pub rule_counters: dlm_metrics::CounterSet,
    /// Send-class trace events per wire kind; sums to [`Self::messages`]
    /// exactly on hierarchical runs (the 1:1 event↔send contract).
    pub trace_sends: dlm_metrics::CounterSet,
    /// Local queue depth observed at every queue insertion.
    pub queue_depth: Histogram,
    /// Per-(lock, node) freeze durations, µs of virtual time.
    pub freeze_spans: Histogram,
}

/// Render one histogram as a JSON object: headline stats, tail percentiles,
/// and the lossless compact bucket encoding (see
/// [`Histogram::encode_compact`]) so a consumer can rebuild the full
/// distribution, not just the summary.
fn histogram_json(h: &Histogram) -> String {
    let p = h.percentiles();
    format!(
        concat!(
            "{{\"count\":{},\"mean\":{:.3},\"min\":{},\"max\":{},",
            "\"p50\":{},\"p95\":{},\"p99\":{},\"compact\":\"{}\"}}"
        ),
        h.count(),
        h.mean(),
        h.min(),
        h.max(),
        p.p50,
        p.p95,
        p.p99,
        h.encode_compact()
    )
}

/// Render a counter set as a JSON object (kinds sorted by the set itself).
fn counters_json(set: &dlm_metrics::CounterSet) -> String {
    let mut out = String::from("{");
    for (i, (kind, count)) in set.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("\"{kind}\":{count}"));
    }
    out.push('}');
    out
}

impl WorkloadReport {
    /// Messages per lock request — the paper's Fig. 7 / Fig. 9 metric.
    pub fn messages_per_request(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.messages as f64 / self.requests as f64
        }
    }

    /// Messages per *functional* request: the request count the application
    /// demanded (one per operation — exactly Naimi-pure's request count).
    /// This is the normalization under which the paper's same-work series is
    /// comparable to the pure one: the `entries − 1` extra acquisitions a
    /// same-work whole-table operation performs are protocol overhead, not
    /// application demand.
    pub fn messages_per_functional_request(&self) -> f64 {
        if self.ops_completed == 0 {
            0.0
        } else {
            self.messages as f64 / self.ops_completed as f64
        }
    }

    /// Mean per-request wait in milliseconds — the Fig. 10 metric.
    pub fn mean_request_latency_ms(&self) -> f64 {
        self.request_latency.mean() / 1_000.0
    }

    /// Mean per-request wait divided by the mean one-way network latency —
    /// the Fig. 8 "latency factor".
    pub fn latency_factor(&self) -> f64 {
        if self.params.latency.mean == 0 {
            return 0.0;
        }
        self.request_latency.mean() / self.params.latency.mean as f64
    }

    /// True if every node completed its operations.
    pub fn complete(&self) -> bool {
        self.ops_completed == self.ops_expected
    }

    /// Hand-rolled JSON rendering of the full report, histograms included:
    /// each distribution carries its tail percentiles (p50/p95/p99) plus the
    /// lossless compact bucket string, so archived reports can answer
    /// questions the headline means cannot.
    pub fn to_json(&self) -> String {
        let p = &self.params;
        let mut out = String::from("{");
        out.push_str(&format!(
            concat!(
                "\"params\":{{\"protocol\":\"{}\",\"nodes\":{},\"entries\":{},",
                "\"ops_per_node\":{},\"cs_mean_us\":{},\"idle_mean_us\":{},",
                "\"hot_entry_percent\":{},\"seed\":{}}},"
            ),
            p.protocol.label(),
            p.nodes,
            p.entries,
            p.ops_per_node,
            p.cs_mean,
            p.idle_mean,
            p.hot_entry_percent,
            p.seed
        ));
        out.push_str(&format!(
            concat!(
                "\"requests\":{},\"messages\":{},\"ops_completed\":{},",
                "\"ops_expected\":{},\"upgrades\":{},\"end_time\":{},",
                "\"quiesced\":{},"
            ),
            self.requests,
            self.messages,
            self.ops_completed,
            self.ops_expected,
            self.upgrades,
            self.end_time,
            self.quiesced
        ));
        out.push_str(&format!(
            "\"request_latency_us\":{},",
            histogram_json(&self.request_latency)
        ));
        out.push_str(&format!(
            "\"op_latency_us\":{},",
            histogram_json(&self.op_latency)
        ));
        out.push_str("\"op_latency_by_kind_us\":[");
        for (i, h) in self.op_latency_by_kind.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&histogram_json(h));
        }
        out.push_str("],");
        out.push_str(&format!(
            "\"queue_depth\":{},",
            histogram_json(&self.queue_depth)
        ));
        out.push_str(&format!(
            "\"freeze_spans_us\":{},",
            histogram_json(&self.freeze_spans)
        ));
        out.push_str(&format!(
            "\"sent_by_kind\":{},",
            counters_json(&self.sent_by_kind)
        ));
        out.push_str(&format!(
            "\"rule_counters\":{},",
            counters_json(&self.rule_counters)
        ));
        out.push_str(&format!(
            "\"trace_sends\":{}",
            counters_json(&self.trace_sends)
        ));
        out.push('}');
        out
    }
}

#[cfg(test)]
mod tests {
    use crate::{run_workload, ProtocolKind, WorkloadParams};
    use dlm_metrics::Histogram;

    #[test]
    fn report_json_carries_percentiles_and_lossless_histograms() {
        let params = WorkloadParams {
            ops_per_node: 6,
            seed: 99,
            ..WorkloadParams::linux_cluster(4, ProtocolKind::Hier)
        };
        let report = run_workload(&params);
        assert!(report.complete());
        let json = report.to_json();
        for needle in [
            "\"protocol\":\"our-protocol\"",
            "\"request_latency_us\":{\"count\":",
            "\"p50\":",
            "\"p95\":",
            "\"p99\":",
            "\"compact\":\"v1;",
            "\"rule_counters\":{",
        ] {
            assert!(json.contains(needle), "missing {needle} in:\n{json}");
        }
        // The embedded compact string is lossless: extract the request
        // latency one and rebuild the exact distribution from it.
        let tag = "\"request_latency_us\":{";
        let obj = &json[json.find(tag).unwrap()..];
        let compact_tag = "\"compact\":\"";
        let start = obj.find(compact_tag).unwrap() + compact_tag.len();
        let compact = &obj[start..start + obj[start..].find('"').unwrap()];
        let rebuilt = Histogram::decode_compact(compact).unwrap();
        assert_eq!(rebuilt.count(), report.request_latency.count());
        assert_eq!(rebuilt.percentiles(), report.request_latency.percentiles());
        assert_eq!(rebuilt.max(), report.request_latency.max());
    }
}
