//! Workload parameters (the knobs of the paper's experiments).

use dlm_core::ProtocolConfig;
use dlm_sim::{LatencyModel, Micros, MICROS_PER_MS};
use serde::{Deserialize, Serialize};

/// Which protocol drives the run (the three series of Figures 7/8).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ProtocolKind {
    /// The hierarchical multi-mode protocol (the paper's contribution).
    Hier,
    /// Naimi–Trehel, one lock request where the hierarchical protocol issues
    /// one (functionally weaker on whole-table operations).
    NaimiPure,
    /// Naimi–Trehel doing the same work: whole-table operations acquire every
    /// entry lock sequentially in fixed order.
    NaimiSameWork,
}

impl ProtocolKind {
    /// Label used in reports and figure output.
    pub fn label(self) -> &'static str {
        match self {
            ProtocolKind::Hier => "our-protocol",
            ProtocolKind::NaimiPure => "naimi-pure",
            ProtocolKind::NaimiSameWork => "naimi-same-work",
        }
    }
}

/// Table-level request-mode mix, in percent (must sum to 100).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ModeMix {
    /// Intent-read share.
    pub ir: u8,
    /// Read share.
    pub r: u8,
    /// Upgrade share.
    pub u: u8,
    /// Intent-write share.
    pub iw: u8,
    /// Write share.
    pub w: u8,
}

impl ModeMix {
    /// The paper's §4 mix: IR 80 %, R 10 %, U 4 %, IW 5 %, W 1 %.
    pub const fn paper() -> Self {
        ModeMix {
            ir: 80,
            r: 10,
            u: 4,
            iw: 5,
            w: 1,
        }
    }

    /// Sum of the shares (validated to 100 at workload construction).
    pub fn total(&self) -> u32 {
        self.ir as u32 + self.r as u32 + self.u as u32 + self.iw as u32 + self.w as u32
    }
}

impl Default for ModeMix {
    fn default() -> Self {
        Self::paper()
    }
}

/// Full description of one simulated experiment run.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct WorkloadParams {
    /// Number of participating nodes.
    pub nodes: usize,
    /// Number of table entries (each with its own lock).
    pub entries: u32,
    /// Mean critical-section length (paper: 15 ms).
    pub cs_mean: Micros,
    /// Mean inter-request idle time (paper §4.1: 150 ms; §4.2: ratio × cs).
    pub idle_mean: Micros,
    /// Operations each node performs before stopping.
    pub ops_per_node: u32,
    /// Table-mode mix.
    pub mix: ModeMix,
    /// Protocol under test.
    pub protocol: ProtocolKind,
    /// Hierarchical-protocol feature toggles (ignored by the Naimi drivers).
    pub hier_config: ProtocolConfig,
    /// Network model.
    pub latency: LatencyModel,
    /// Master seed.
    pub seed: u64,
    /// Follow each table-`U` operation with a Rule 7 upgrade to `W`
    /// mid-critical-section. The paper's mode mix counts U *requests*; an
    /// upgrade stalls the entire table (W is compatible with nothing), so
    /// the figure reproductions leave this off and the upgrade-path tests
    /// turn it on.
    pub upgrade_u_ops: bool,
    /// Optional geo-distributed two-site topology (see
    /// [`dlm_sim::TwoSite`]): the `latency` field becomes the intra-site
    /// model and cross-site traffic uses the WAN model. Serialized reports
    /// skip it (the TSV output records it via the experiment name).
    #[serde(skip)]
    pub geo: Option<dlm_sim::TwoSite>,
    /// Entry-access skew: probability (percent) that an entry-scoped
    /// operation touches entry 0 (the "hot" fare) instead of a uniformly
    /// random entry. 0 = the paper's uniform access. Drives the contention
    /// extension experiment.
    pub hot_entry_percent: u8,
}

impl WorkloadParams {
    /// The §4.1 Linux-cluster configuration at `nodes` nodes: CS 15 ms, idle
    /// 150 ms, 150 ms uniform network latency, paper mix, 8-entry table.
    pub fn linux_cluster(nodes: usize, protocol: ProtocolKind) -> Self {
        WorkloadParams {
            nodes,
            entries: 8,
            cs_mean: 15 * MICROS_PER_MS,
            idle_mean: 150 * MICROS_PER_MS,
            ops_per_node: 40,
            mix: ModeMix::paper(),
            protocol,
            hier_config: ProtocolConfig::paper(),
            latency: LatencyModel::lan_cluster(),
            seed: 0x5EED,
            upgrade_u_ops: false,
            geo: None,
            hot_entry_percent: 0,
        }
    }

    /// The §4.2 IBM-SP configuration: CS 15 ms, idle = `ratio` × 15 ms,
    /// SP-switch latency; always the hierarchical protocol.
    pub fn ibm_sp(nodes: usize, ratio: u32) -> Self {
        WorkloadParams {
            nodes,
            entries: 8,
            cs_mean: 15 * MICROS_PER_MS,
            idle_mean: ratio as u64 * 15 * MICROS_PER_MS,
            ops_per_node: 40,
            mix: ModeMix::paper(),
            protocol: ProtocolKind::Hier,
            hier_config: ProtocolConfig::paper(),
            latency: LatencyModel::sp_switch(),
            seed: 0x5EED,
            upgrade_u_ops: false,
            geo: None,
            hot_entry_percent: 0,
        }
    }

    /// Total lock objects (table + entries).
    pub fn lock_count(&self) -> usize {
        1 + self.entries as usize
    }

    /// Panics if the parameters are inconsistent.
    pub fn validate(&self) {
        assert!(self.nodes >= 1, "need at least one node");
        assert!(self.entries >= 1, "need at least one entry");
        assert_eq!(self.mix.total(), 100, "mode mix must sum to 100");
        assert!(self.ops_per_node >= 1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_mix_sums_to_100() {
        assert_eq!(ModeMix::paper().total(), 100);
    }

    #[test]
    fn presets_validate() {
        WorkloadParams::linux_cluster(16, ProtocolKind::Hier).validate();
        WorkloadParams::ibm_sp(120, 25).validate();
        assert_eq!(
            WorkloadParams::ibm_sp(8, 10).idle_mean,
            150 * MICROS_PER_MS,
            "ratio 10 × 15 ms = 150 ms idle"
        );
    }

    #[test]
    fn labels_are_distinct() {
        let labels = [
            ProtocolKind::Hier.label(),
            ProtocolKind::NaimiPure.label(),
            ProtocolKind::NaimiSameWork.label(),
        ];
        assert_eq!(
            labels
                .iter()
                .collect::<std::collections::HashSet<_>>()
                .len(),
            3
        );
    }
}
