//! A per-node adapter holding one protocol instance per lock object and
//! translating between protocol effects and simulator sends, so the
//! application actor is protocol-agnostic.

use crate::actor::Wire;
use crate::LockId;
use dlm_core::{Effect, EffectBuf, HierNode, Message, Mode, NodeId, Observer, ProtocolConfig};
use dlm_naimi::{NaimiEffect, NaimiMessage, NaimiNode};

/// A protocol-level notification back to the application.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProtoEvent {
    /// Lock `LockId` was granted (in the requested mode).
    Granted(LockId),
    /// The U→W upgrade on `LockId` completed.
    Upgraded(LockId),
}

/// The per-lock protocol instances, one variant per protocol under study.
#[derive(Debug, Clone)]
enum Inner {
    /// Hierarchical protocol: one state machine per lock.
    Hier(Vec<HierNode>),
    /// Naimi–Trehel: one state machine per lock.
    Naimi(Vec<NaimiNode>),
}

/// One node's protocol state across all lock objects, plus the reusable
/// effect sinks the allocation-free protocol entry points drain into.
#[derive(Debug, Clone)]
pub struct ProtoStack {
    inner: Inner,
    /// Scratch sink for hierarchical-protocol effects, reused across calls.
    hier_buf: EffectBuf,
    /// Scratch sink for Naimi–Trehel effects, reused across calls.
    naimi_buf: EffectBuf<NaimiEffect>,
}

impl ProtoStack {
    /// Build the per-lock protocol instances for node `me` out of `n` nodes
    /// and `locks` lock objects. Node 0 initially holds every token (star
    /// topology, as in the experiments).
    pub fn new_hier(me: NodeId, locks: usize, config: ProtocolConfig) -> Self {
        let nodes = (0..locks)
            .map(|_| {
                if me == NodeId(0) {
                    HierNode::with_token(me, config)
                } else {
                    HierNode::new(me, NodeId(0), config)
                }
            })
            .collect();
        ProtoStack {
            inner: Inner::Hier(nodes),
            hier_buf: EffectBuf::new(),
            naimi_buf: EffectBuf::new(),
        }
    }

    /// Naimi–Trehel equivalent of [`Self::new_hier`].
    pub fn new_naimi(me: NodeId, locks: usize) -> Self {
        let nodes = (0..locks)
            .map(|_| {
                if me == NodeId(0) {
                    NaimiNode::with_token(me)
                } else {
                    NaimiNode::new(me, NodeId(0))
                }
            })
            .collect();
        ProtoStack {
            inner: Inner::Naimi(nodes),
            hier_buf: EffectBuf::new(),
            naimi_buf: EffectBuf::new(),
        }
    }

    /// Immutable access to the hierarchical instance for `lock` (None when
    /// running Naimi). Used by the post-run audits.
    pub fn hier(&self, lock: LockId) -> Option<&HierNode> {
        match &self.inner {
            Inner::Hier(v) => v.get(lock.index()),
            Inner::Naimi(_) => None,
        }
    }

    /// Request `lock` in `mode` (mode ignored by Naimi: always exclusive).
    /// `obs` receives the structured protocol events of the hierarchical
    /// protocol (Naimi is not instrumented).
    pub fn acquire(
        &mut self,
        lock: LockId,
        mode: Mode,
        out: &mut Vec<(NodeId, Wire)>,
        events: &mut Vec<ProtoEvent>,
        obs: &mut dyn Observer,
    ) {
        let ProtoStack {
            inner,
            hier_buf,
            naimi_buf,
        } = self;
        match inner {
            Inner::Hier(v) => {
                v[lock.index()]
                    .on_acquire_into(mode, 0, hier_buf, obs)
                    .expect("workload issues well-formed acquires");
                absorb_hier(lock, hier_buf, out, events);
            }
            Inner::Naimi(v) => {
                v[lock.index()]
                    .on_acquire_into(naimi_buf)
                    .expect("workload issues well-formed acquires");
                absorb_naimi(lock, naimi_buf, out, events);
            }
        }
    }

    /// Release `lock`.
    pub fn release(
        &mut self,
        lock: LockId,
        out: &mut Vec<(NodeId, Wire)>,
        events: &mut Vec<ProtoEvent>,
        obs: &mut dyn Observer,
    ) {
        let ProtoStack {
            inner,
            hier_buf,
            naimi_buf,
        } = self;
        match inner {
            Inner::Hier(v) => {
                v[lock.index()]
                    .on_release_into(hier_buf, obs)
                    .expect("workload releases only held locks");
                absorb_hier(lock, hier_buf, out, events);
            }
            Inner::Naimi(v) => {
                v[lock.index()]
                    .on_release_into(naimi_buf)
                    .expect("workload releases only held locks");
                absorb_naimi(lock, naimi_buf, out, events);
            }
        }
    }

    /// Rule 7 upgrade on `lock` (hierarchical protocol only).
    pub fn upgrade(
        &mut self,
        lock: LockId,
        out: &mut Vec<(NodeId, Wire)>,
        events: &mut Vec<ProtoEvent>,
        obs: &mut dyn Observer,
    ) {
        let ProtoStack {
            inner, hier_buf, ..
        } = self;
        match inner {
            Inner::Hier(v) => {
                v[lock.index()]
                    .on_upgrade_into(hier_buf, obs)
                    .expect("workload upgrades only held U locks");
                absorb_hier(lock, hier_buf, out, events);
            }
            Inner::Naimi(_) => panic!("Naimi has no upgrade operation"),
        }
    }

    /// Route an incoming wire message to the right lock instance.
    pub fn on_wire(
        &mut self,
        from: NodeId,
        wire: Wire,
        out: &mut Vec<(NodeId, Wire)>,
        events: &mut Vec<ProtoEvent>,
        obs: &mut dyn Observer,
    ) {
        let ProtoStack {
            inner,
            hier_buf,
            naimi_buf,
        } = self;
        match (inner, wire) {
            (Inner::Hier(v), Wire::Hier { lock, message }) => {
                v[lock.index()].on_message_into(from, message, hier_buf, obs);
                absorb_hier(lock, hier_buf, out, events);
            }
            (Inner::Naimi(v), Wire::Naimi { lock, message }) => {
                v[lock.index()].on_message_into(from, message, naimi_buf);
                absorb_naimi(lock, naimi_buf, out, events);
            }
            _ => panic!("wire message for the wrong protocol"),
        }
    }
}

fn absorb_hier(
    lock: LockId,
    effects: &mut EffectBuf,
    out: &mut Vec<(NodeId, Wire)>,
    events: &mut Vec<ProtoEvent>,
) {
    for effect in effects.drain() {
        match effect {
            Effect::Send { to, message } => out.push((to, Wire::Hier { lock, message })),
            Effect::Granted { .. } => events.push(ProtoEvent::Granted(lock)),
            Effect::Upgraded => events.push(ProtoEvent::Upgraded(lock)),
        }
    }
}

fn absorb_naimi(
    lock: LockId,
    effects: &mut EffectBuf<NaimiEffect>,
    out: &mut Vec<(NodeId, Wire)>,
    events: &mut Vec<ProtoEvent>,
) {
    for effect in effects.drain() {
        match effect {
            NaimiEffect::Send { to, message } => out.push((to, Wire::Naimi { lock, message })),
            NaimiEffect::Granted => events.push(ProtoEvent::Granted(lock)),
        }
    }
}

/// Label a [`Wire`] by protocol message kind and lock class (table vs
/// entry), for per-kind accounting in reports.
pub fn wire_kind(wire: &Wire) -> &'static str {
    match wire {
        Wire::Hier { message, lock } => {
            let table = *lock == LockId::TABLE;
            match message {
                Message::Request(_) if table => "request.table",
                Message::Request(_) => "request.entry",
                Message::Grant { .. } if table => "grant.table",
                Message::Grant { .. } => "grant.entry",
                Message::Token { .. } if table => "token.table",
                Message::Token { .. } => "token.entry",
                Message::Release { .. } if table => "release.table",
                Message::Release { .. } => "release.entry",
                Message::SetFrozen { .. } if table => "freeze.table",
                Message::SetFrozen { .. } => "freeze.entry",
                Message::Recover { .. } if table => "recover.table",
                Message::Recover { .. } => "recover.entry",
            }
        }
        Wire::Naimi { message, lock } => {
            let table = *lock == LockId::TABLE;
            match message {
                NaimiMessage::Request { .. } if table => "request.table",
                NaimiMessage::Request { .. } => "request.entry",
                NaimiMessage::Token if table => "token.table",
                NaimiMessage::Token => "token.entry",
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlm_core::NullObserver;

    #[test]
    fn hier_stack_local_token_grant() {
        let mut stack = ProtoStack::new_hier(NodeId(0), 3, ProtocolConfig::paper());
        let mut out = Vec::new();
        let mut events = Vec::new();
        stack.acquire(
            LockId::TABLE,
            Mode::Read,
            &mut out,
            &mut events,
            &mut NullObserver,
        );
        assert!(out.is_empty(), "token node grants itself locally");
        assert_eq!(events, vec![ProtoEvent::Granted(LockId::TABLE)]);
    }

    #[test]
    fn hier_stack_remote_sends_request() {
        let mut stack = ProtoStack::new_hier(NodeId(1), 2, ProtocolConfig::paper());
        let mut out = Vec::new();
        let mut events = Vec::new();
        stack.acquire(
            LockId::entry(0),
            Mode::Write,
            &mut out,
            &mut events,
            &mut NullObserver,
        );
        assert_eq!(out.len(), 1);
        assert!(events.is_empty());
        let (to, wire) = &out[0];
        assert_eq!(*to, NodeId(0));
        assert_eq!(wire_kind(wire), "request.entry");
        match wire {
            Wire::Hier { lock, .. } => assert_eq!(*lock, LockId::entry(0)),
            _ => panic!("wrong wire"),
        }
    }

    #[test]
    fn naimi_stack_round_trip_between_two_stacks() {
        let mut a = ProtoStack::new_naimi(NodeId(0), 1);
        let mut b = ProtoStack::new_naimi(NodeId(1), 1);
        let mut out = Vec::new();
        let mut events = Vec::new();
        b.acquire(
            LockId::TABLE,
            Mode::Write,
            &mut out,
            &mut events,
            &mut NullObserver,
        );
        let (to, wire) = out.pop().unwrap();
        assert_eq!(to, NodeId(0));
        a.on_wire(NodeId(1), wire, &mut out, &mut events, &mut NullObserver);
        let (to, wire) = out.pop().unwrap();
        assert_eq!(to, NodeId(1));
        assert_eq!(wire_kind(&wire), "token.table");
        b.on_wire(NodeId(0), wire, &mut out, &mut events, &mut NullObserver);
        assert_eq!(events, vec![ProtoEvent::Granted(LockId::TABLE)]);
    }

    #[test]
    #[should_panic(expected = "wrong protocol")]
    fn cross_protocol_wire_panics() {
        let mut a = ProtoStack::new_naimi(NodeId(0), 1);
        let mut out = Vec::new();
        let mut events = Vec::new();
        a.on_wire(
            NodeId(1),
            Wire::Hier {
                lock: LockId::TABLE,
                message: Message::Grant { mode: Mode::Read },
            },
            &mut out,
            &mut events,
            &mut NullObserver,
        );
    }
}
