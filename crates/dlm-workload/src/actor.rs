//! The per-node application actor: an airline-reservation client issuing
//! randomized lock operations against its protocol stack.

use crate::params::WorkloadParams;
use crate::plan::{OpKind, OpPlan};
use crate::proto::{wire_kind, ProtoEvent, ProtoStack};
use crate::LockId;
use dlm_core::{Message, Mode, NodeId};
use dlm_metrics::{CounterSet, Histogram};
use dlm_naimi::NaimiMessage;
use dlm_sim::{Actor, Ctx, Micros};
use dlm_trace::ProtocolEvent;
use rand::Rng;

/// Wire payload multiplexing both protocols over multiple lock objects.
#[derive(Debug, Clone)]
pub enum Wire {
    /// A hierarchical-protocol message for one lock object.
    Hier {
        /// Target lock.
        lock: LockId,
        /// Protocol payload.
        message: Message,
    },
    /// A Naimi–Trehel message for one lock object.
    Naimi {
        /// Target lock.
        lock: LockId,
        /// Protocol payload.
        message: NaimiMessage,
    },
}

impl Wire {
    /// The lock this payload targets.
    pub fn lock(&self) -> LockId {
        match self {
            Wire::Hier { lock, .. } | Wire::Naimi { lock, .. } => *lock,
        }
    }
}

const TIMER_IDLE: u64 = 1;
const TIMER_CS: u64 = 2;
const TIMER_CS_POST_UPGRADE: u64 = 3;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// Waiting out the inter-request idle time.
    Idle,
    /// Waiting for the grant of `plan.locks[step]`.
    Acquiring,
    /// Inside the critical section (primary part).
    InCs,
    /// Waiting for the Rule 7 upgrade to complete.
    Upgrading,
    /// Inside the post-upgrade write section.
    InCsUpgraded,
    /// All operations performed.
    Done,
}

/// One node of the workload: protocol stack + application state machine +
/// local measurements.
pub struct AppActor {
    me: NodeId,
    params: WorkloadParams,
    stack: ProtoStack,
    /// Reusable outbound-send scratch, drained by [`Self::send_all`]. The
    /// protocol-event buffers must stay per-call (`handle_events` re-enters
    /// `advance_acquisition`), but the send list never nests.
    out: Vec<(NodeId, Wire)>,
    phase: Phase,
    plan: Option<OpPlan>,
    step: usize,
    ops_done: u32,
    issue_time: Micros,
    op_start: Micros,
    /// Monotone per-node request counter; ids are `(node << 32) | counter`
    /// so they are globally unique and never the `0` uncorrelated sentinel.
    next_req: u64,
    /// Request id of the in-flight acquire/upgrade (at most one at a time).
    cur_req: u64,
    /// Lock requests issued (including message-free local admissions).
    pub requests_issued: u64,
    /// Per-request wait: request issue → grant, in µs.
    pub request_latency: Histogram,
    /// Per-operation wait: first acquire → critical-section entry, in µs.
    pub op_latency: Histogram,
    /// Per-operation wait split by operation kind (indexed like
    /// [`OpKind::index`]); feeds the fairness/starvation analyses.
    pub op_latency_by_kind: [Histogram; 5],
    /// Completed operations.
    pub ops_completed: u32,
    /// Upgrades performed.
    pub upgrades_done: u32,
    /// Messages sent by this node, tallied by protocol message kind.
    pub sent_by_kind: CounterSet,
}

impl AppActor {
    /// Build the actor for node `me`.
    pub fn new(me: NodeId, params: WorkloadParams) -> Self {
        params.validate();
        let stack = match params.protocol {
            crate::params::ProtocolKind::Hier => {
                ProtoStack::new_hier(me, params.lock_count(), params.hier_config)
            }
            _ => ProtoStack::new_naimi(me, params.lock_count()),
        };
        AppActor {
            me,
            params,
            stack,
            out: Vec::new(),
            phase: Phase::Idle,
            plan: None,
            step: 0,
            ops_done: 0,
            issue_time: 0,
            op_start: 0,
            next_req: 0,
            cur_req: 0,
            requests_issued: 0,
            request_latency: Histogram::new(),
            op_latency: Histogram::new(),
            op_latency_by_kind: Default::default(),
            ops_completed: 0,
            upgrades_done: 0,
            sent_by_kind: CounterSet::new(),
        }
    }

    /// Drain the `out` scratch into the simulator, tallying per-kind counts.
    fn send_all(&mut self, ctx: &mut Ctx<'_, Wire>) {
        let AppActor {
            out, sent_by_kind, ..
        } = self;
        for (to, wire) in out.drain(..) {
            sent_by_kind.incr(wire_kind(&wire));
            ctx.send(to, wire);
        }
    }

    /// The application phase as a coarse liveness probe: `true` once all
    /// operations completed.
    pub fn is_done(&self) -> bool {
        self.phase == Phase::Done
    }

    /// Expose the protocol stack (for post-run audits).
    pub fn stack(&self) -> &ProtoStack {
        &self.stack
    }

    /// Open a request span: allocate a fresh id and emit `RequestStart`.
    /// Span events ride the same observer as protocol events but are
    /// excluded from rule/send tallies, so differential fingerprints and
    /// the 1:1 send contract are untouched.
    fn open_span(&mut self, ctx: &mut Ctx<'_, Wire>, lock: LockId, mode: Mode, upgrade: bool) {
        self.next_req += 1;
        self.cur_req = ((self.me.0 as u64) << 32) | self.next_req;
        let (me, req) = (self.me.0, self.cur_req);
        ctx.observe(lock.0, |obs| {
            if obs.enabled() {
                obs.emit(me, ProtocolEvent::RequestStart { req, mode, upgrade });
            }
        });
    }

    /// Close the current request span. The simulator delivers grants with
    /// zero transport hops from the application's viewpoint (hop counts are
    /// a cluster-frame concept), so spans carry `hops: 0` here; hop
    /// distributions come from the cluster runtime.
    fn close_span(&mut self, ctx: &mut Ctx<'_, Wire>, lock: LockId) {
        let (me, req) = (self.me.0, self.cur_req);
        ctx.observe(lock.0, |obs| {
            if obs.enabled() {
                obs.emit(me, ProtocolEvent::RequestGrant { req, hops: 0 });
            }
        });
    }

    fn sample_around(mean: Micros, rng: &mut impl Rng) -> Micros {
        // "Randomized around the mean" (§4): uniform on [mean/2, 3·mean/2].
        if mean == 0 {
            return 0;
        }
        let half = mean / 2;
        rng.gen_range(mean - half..=mean + half)
    }

    fn begin_operation(&mut self, ctx: &mut Ctx<'_, Wire>) {
        let kind = OpKind::sample(&self.params.mix, ctx.rng());
        let entry = if self.params.hot_entry_percent > 0
            && ctx.rng().gen_range(0u8..100) < self.params.hot_entry_percent
        {
            0 // the hot fare
        } else {
            ctx.rng().gen_range(0..self.params.entries)
        };
        let mut plan = OpPlan::expand(kind, self.params.protocol, entry, self.params.entries);
        plan.upgrade &= self.params.upgrade_u_ops;
        self.plan = Some(plan);
        self.step = 0;
        self.phase = Phase::Acquiring;
        self.op_start = ctx.now();
        self.advance_acquisition(ctx);
    }

    /// Issue acquires until one blocks or the plan is fully acquired.
    fn advance_acquisition(&mut self, ctx: &mut Ctx<'_, Wire>) {
        loop {
            let plan = self.plan.as_ref().expect("acquiring implies a plan");
            if self.step == plan.locks.len() {
                self.enter_cs(ctx);
                return;
            }
            let (lock, mode) = plan.locks[self.step];
            let mut events = Vec::new();
            self.requests_issued += 1;
            self.issue_time = ctx.now();
            self.open_span(ctx, lock, mode, false);
            let AppActor { stack, out, .. } = self;
            ctx.observe(lock.0, |obs| {
                stack.acquire(lock, mode, out, &mut events, obs)
            });
            if !self.out.is_empty() {
                self.sent_by_kind.incr("request.initial");
            }
            self.send_all(ctx);
            if events.contains(&ProtoEvent::Granted(lock)) {
                // Local admission (Rule 2 fast path): zero latency.
                self.request_latency.record(0);
                self.close_span(ctx, lock);
                self.step += 1;
                continue;
            }
            return; // wait for the grant message
        }
    }

    fn enter_cs(&mut self, ctx: &mut Ctx<'_, Wire>) {
        self.phase = Phase::InCs;
        let wait = ctx.now().saturating_sub(self.op_start);
        self.op_latency.record(wait);
        let kind = self.plan.as_ref().expect("in an operation").kind;
        self.op_latency_by_kind[kind.index()].record(wait);
        let cs = Self::sample_around(self.params.cs_mean, ctx.rng());
        ctx.set_timer(cs, TIMER_CS);
    }

    fn finish_operation(&mut self, ctx: &mut Ctx<'_, Wire>) {
        let plan = self.plan.take().expect("finishing implies a plan");
        // Release in reverse acquisition order (entry before table).
        for &(lock, _) in plan.locks.iter().rev() {
            let mut events = Vec::new();
            let AppActor { stack, out, .. } = self;
            ctx.observe(lock.0, |obs| stack.release(lock, out, &mut events, obs));
            debug_assert!(events.is_empty(), "release grants nothing locally");
            self.send_all(ctx);
        }
        self.ops_completed += 1;
        self.ops_done += 1;
        if self.ops_done < self.params.ops_per_node {
            self.phase = Phase::Idle;
            let idle = Self::sample_around(self.params.idle_mean, ctx.rng());
            ctx.set_timer(idle, TIMER_IDLE);
        } else {
            self.phase = Phase::Done;
        }
    }

    fn handle_events(&mut self, events: Vec<ProtoEvent>, ctx: &mut Ctx<'_, Wire>) {
        for event in events {
            match event {
                ProtoEvent::Granted(lock) => {
                    assert_eq!(self.phase, Phase::Acquiring, "unexpected grant");
                    let plan = self.plan.as_ref().expect("grant implies a plan");
                    assert_eq!(plan.locks[self.step].0, lock, "grant for awaited lock");
                    self.request_latency
                        .record(ctx.now().saturating_sub(self.issue_time));
                    self.close_span(ctx, lock);
                    self.step += 1;
                    self.advance_acquisition(ctx);
                }
                ProtoEvent::Upgraded(lock) => {
                    assert_eq!(lock, LockId::TABLE);
                    assert_eq!(
                        self.phase,
                        Phase::Upgrading,
                        "unexpected upgrade completion"
                    );
                    self.request_latency
                        .record(ctx.now().saturating_sub(self.issue_time));
                    self.close_span(ctx, lock);
                    self.upgrades_done += 1;
                    self.phase = Phase::InCsUpgraded;
                    let cs = Self::sample_around(self.params.cs_mean / 2, ctx.rng());
                    ctx.set_timer(cs, TIMER_CS_POST_UPGRADE);
                }
            }
        }
    }
}

impl Actor for AppActor {
    type Msg = Wire;

    fn on_start(&mut self, ctx: &mut Ctx<'_, Wire>) {
        if self.params.ops_per_node == 0 {
            self.phase = Phase::Done;
            return;
        }
        let idle = Self::sample_around(self.params.idle_mean, ctx.rng());
        ctx.set_timer(idle, TIMER_IDLE);
    }

    fn on_message(&mut self, from: NodeId, wire: Wire, ctx: &mut Ctx<'_, Wire>) {
        let mut events = Vec::new();
        let lock = wire.lock();
        let AppActor { stack, out, .. } = self;
        ctx.observe(lock.0, |obs| {
            stack.on_wire(from, wire, out, &mut events, obs)
        });
        self.send_all(ctx);
        self.handle_events(events, ctx);
    }

    fn on_timer(&mut self, tag: u64, ctx: &mut Ctx<'_, Wire>) {
        match tag {
            TIMER_IDLE => {
                debug_assert_eq!(self.phase, Phase::Idle);
                self.begin_operation(ctx);
            }
            TIMER_CS => {
                debug_assert_eq!(self.phase, Phase::InCs);
                let wants_upgrade = self.plan.as_ref().map(|p| p.upgrade).unwrap_or(false);
                if wants_upgrade {
                    self.phase = Phase::Upgrading;
                    self.requests_issued += 1;
                    self.issue_time = ctx.now();
                    self.open_span(ctx, LockId::TABLE, Mode::Write, true);
                    let mut events = Vec::new();
                    let AppActor { stack, out, .. } = self;
                    ctx.observe(LockId::TABLE.0, |obs| {
                        stack.upgrade(LockId::TABLE, out, &mut events, obs)
                    });
                    self.send_all(ctx);
                    self.handle_events(events, ctx);
                } else {
                    self.finish_operation(ctx);
                }
            }
            TIMER_CS_POST_UPGRADE => {
                debug_assert_eq!(self.phase, Phase::InCsUpgraded);
                self.finish_operation(ctx);
            }
            other => unreachable!("unknown timer tag {other}"),
        }
    }
}
