//! The paper's §4 evaluation workload: a **multi-airline reservation
//! system**. Ticket prices live in a table shared by every node; each table
//! entry carries its own lock, and the whole table carries a
//! coarser-granularity lock. Application instances on every node issue lock
//! requests in a randomized mix (IR 80 %, R 10 %, U 4 %, IW 5 %, W 1 % by
//! default), with randomized critical-section lengths and inter-request idle
//! times.
//!
//! Three protocol drivers reproduce the paper's three measurement series:
//!
//! * [`ProtocolKind::Hier`] — the hierarchical protocol: table-level lock in
//!   the drawn mode; intent modes additionally take the entry-level lock
//!   underneath.
//! * [`ProtocolKind::NaimiPure`] — Naimi–Trehel with *an equivalent number of
//!   lock requests* (functionally weaker: a whole-table operation locks a
//!   single object).
//! * [`ProtocolKind::NaimiSameWork`] — Naimi–Trehel doing *the same work*: a
//!   whole-table operation acquires every entry lock sequentially (in fixed
//!   index order, the paper's deadlock-avoidance discipline).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod actor;
mod params;
mod plan;
mod proto;
mod report;
mod runner;

pub use actor::{AppActor, Wire};
pub use params::{ModeMix, ProtocolKind, WorkloadParams};
pub use plan::{OpKind, OpPlan};
pub use report::WorkloadReport;
pub use runner::{audit_hier_run, run_workload, run_workload_traced};

pub use dlm_core::{LockId, NodeId};
