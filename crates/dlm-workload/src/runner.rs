//! Building and running one simulated experiment.

use crate::actor::AppActor;
use crate::params::{ProtocolKind, WorkloadParams};
use crate::report::WorkloadReport;
use crate::{LockId, Wire};
use dlm_core::{audit, AuditError, InFlight, NodeId};
use dlm_metrics::Histogram;
use dlm_sim::{Sim, SimConfig};
use dlm_trace::{Recorder, Tee, TraceStats};
use std::cell::RefCell;
use std::rc::Rc;

fn build_sim(params: &WorkloadParams) -> Sim<AppActor> {
    let actors: Vec<AppActor> = (0..params.nodes)
        .map(|i| AppActor::new(NodeId(i as u32), *params))
        .collect();
    Sim::new(
        actors,
        SimConfig {
            latency: params.latency,
            two_site: params.geo,
            seed: params.seed,
            // Generous safety horizon: a run that exceeds it is stuck.
            horizon: u64::MAX,
            max_events: 50_000_000,
        },
    )
}

/// Attach the always-on statistics sink (plus an optional full-trace sink)
/// and return the handle the report is filled from.
fn attach_trace(
    sim: &mut Sim<AppActor>,
    extra: Option<Rc<RefCell<dyn Recorder>>>,
) -> Rc<RefCell<TraceStats>> {
    let stats: Rc<RefCell<TraceStats>> = Rc::new(RefCell::new(TraceStats::new()));
    match extra {
        Some(sink) => sim.record_into(Rc::new(RefCell::new(Tee(Rc::clone(&stats), sink)))),
        None => sim.record_into(Rc::clone(&stats) as Rc<RefCell<dyn Recorder>>),
    }
    stats
}

/// Run one workload to completion and aggregate the measurements.
///
/// Deterministic: the same `params` (including seed) produce bit-identical
/// reports.
pub fn run_workload(params: &WorkloadParams) -> WorkloadReport {
    run_workload_traced(params, None)
}

/// [`run_workload`] with an optional extra [`Recorder`] receiving the full
/// structured event stream (e.g. a `VecRecorder` destined for a JSONL trace
/// file). The per-rule statistics in the report are collected either way.
pub fn run_workload_traced(
    params: &WorkloadParams,
    extra: Option<Rc<RefCell<dyn Recorder>>>,
) -> WorkloadReport {
    params.validate();
    let mut sim = build_sim(params);
    let trace = attach_trace(&mut sim, extra);
    let stats = sim.run();
    let trace = trace.borrow().clone();
    aggregate(params, sim.actors(), &stats, trace)
}

/// Fold per-actor measurements into one report.
fn aggregate(
    params: &WorkloadParams,
    actors: &[AppActor],
    stats: &dlm_sim::RunStats,
    trace: TraceStats,
) -> WorkloadReport {
    let mut request_latency = Histogram::new();
    let mut op_latency = Histogram::new();
    let mut op_latency_by_kind: [Histogram; 5] = Default::default();
    let mut requests = 0;
    let mut ops_completed = 0;
    let mut upgrades = 0;
    let mut sent_by_kind = dlm_metrics::CounterSet::new();
    for actor in actors {
        requests += actor.requests_issued;
        ops_completed += actor.ops_completed as u64;
        upgrades += actor.upgrades_done as u64;
        request_latency.merge(&actor.request_latency);
        op_latency.merge(&actor.op_latency);
        sent_by_kind.merge(&actor.sent_by_kind);
        for (agg, one) in op_latency_by_kind.iter_mut().zip(&actor.op_latency_by_kind) {
            agg.merge(one);
        }
    }
    WorkloadReport {
        params: *params,
        requests,
        messages: stats.messages_sent,
        ops_completed,
        ops_expected: params.nodes as u64 * params.ops_per_node as u64,
        upgrades,
        end_time: stats.end_time,
        quiesced: stats.quiesced,
        request_latency,
        op_latency,
        op_latency_by_kind,
        sent_by_kind,
        rule_counters: trace.rules,
        trace_sends: trace.sends,
        queue_depth: trace.queue_depth,
        freeze_spans: trace.freeze_spans,
    }
}

/// Run a hierarchical-protocol workload and, at quiescence, audit every lock
/// object's global state (single token, coherent tree/copysets, no stuck
/// requests). Returns the report plus any violations (empty = clean).
pub fn audit_hier_run(params: &WorkloadParams) -> (WorkloadReport, Vec<AuditError>) {
    assert_eq!(
        params.protocol,
        ProtocolKind::Hier,
        "auditing applies to the hierarchical protocol"
    );
    params.validate();
    let mut sim = build_sim(params);
    let trace = attach_trace(&mut sim, None);
    let stats = sim.run();

    let mut errors = Vec::new();
    for lock_idx in 0..params.lock_count() {
        let lock = LockId(lock_idx as u32);
        let nodes: Vec<dlm_core::HierNode> = sim
            .actors()
            .iter()
            .map(|a| a.stack().hier(lock).expect("hier protocol stack").clone())
            .collect();
        let in_flight: Vec<InFlight> = sim
            .in_flight()
            .filter_map(|(from, to, wire)| match wire {
                Wire::Hier { lock: l, message } if *l == lock => Some(InFlight {
                    from,
                    to,
                    // The discrete-event sim never crashes nodes, so every
                    // frame belongs to the initial generation.
                    epoch: 0,
                    message: message.clone(),
                }),
                _ => None,
            })
            .collect();
        errors.extend(audit(&nodes, &in_flight, stats.quiesced));
    }

    let trace = trace.borrow().clone();
    let report = aggregate(params, sim.actors(), &stats, trace);
    (report, errors)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlm_sim::{LatencyModel, MICROS_PER_MS};

    fn small(protocol: ProtocolKind, nodes: usize, seed: u64) -> WorkloadParams {
        WorkloadParams {
            nodes,
            entries: 4,
            cs_mean: 2 * MICROS_PER_MS,
            idle_mean: 10 * MICROS_PER_MS,
            ops_per_node: 10,
            mix: Default::default(),
            protocol,
            hier_config: Default::default(),
            latency: LatencyModel::uniform(MICROS_PER_MS),
            seed,
            // Exercise the full Rule 7 path in the correctness tests.
            upgrade_u_ops: true,
            geo: None,
            hot_entry_percent: 0,
        }
    }

    #[test]
    fn hier_run_completes_and_audits_clean() {
        let (report, errors) = audit_hier_run(&small(ProtocolKind::Hier, 6, 42));
        assert!(errors.is_empty(), "{errors:?}");
        assert!(report.complete(), "{report:?}");
        assert!(report.quiesced);
        assert!(report.requests > 0);
        assert!(report.messages > 0);
    }

    #[test]
    fn naimi_pure_run_completes() {
        let report = run_workload(&small(ProtocolKind::NaimiPure, 6, 42));
        assert!(report.complete());
        assert!(report.quiesced);
    }

    #[test]
    fn naimi_same_work_issues_more_requests() {
        let pure = run_workload(&small(ProtocolKind::NaimiPure, 6, 42));
        let same = run_workload(&small(ProtocolKind::NaimiSameWork, 6, 42));
        assert!(same.complete());
        assert!(
            same.requests > pure.requests,
            "same-work expands whole-table ops into per-entry locks: {} vs {}",
            same.requests,
            pure.requests
        );
    }

    #[test]
    fn runs_are_deterministic() {
        let a = run_workload(&small(ProtocolKind::Hier, 5, 7));
        let b = run_workload(&small(ProtocolKind::Hier, 5, 7));
        assert_eq!(a.messages, b.messages);
        assert_eq!(a.requests, b.requests);
        assert_eq!(a.end_time, b.end_time);
        assert_eq!(a.request_latency.mean(), b.request_latency.mean());
    }

    #[test]
    fn different_seeds_vary() {
        let a = run_workload(&small(ProtocolKind::Hier, 5, 1));
        let b = run_workload(&small(ProtocolKind::Hier, 5, 2));
        assert_ne!(
            (a.messages, a.end_time),
            (b.messages, b.end_time),
            "distinct seeds should give distinct traces"
        );
    }

    #[test]
    fn single_node_needs_no_messages() {
        let report = run_workload(&small(ProtocolKind::Hier, 1, 3));
        assert!(report.complete());
        assert_eq!(
            report.messages, 0,
            "a lone token holder self-grants everything"
        );
        assert_eq!(report.request_latency.max(), 0);
    }

    #[test]
    fn trace_sends_equal_messages() {
        let report = run_workload(&small(ProtocolKind::Hier, 6, 42));
        assert_eq!(
            report.trace_sends.total(),
            report.messages,
            "one send-class event per wire message"
        );
        assert!(report.rule_counters.total() > 0);
        assert!(report.rule_counters.get("rule1-request") > 0);
    }

    #[test]
    fn naimi_runs_produce_empty_trace() {
        let report = run_workload(&small(ProtocolKind::NaimiPure, 4, 42));
        assert_eq!(report.rule_counters.total(), 0);
        assert_eq!(report.trace_sends.total(), 0);
    }

    #[test]
    fn extra_recorder_sees_the_full_stream() {
        use dlm_trace::VecRecorder;
        let rec: Rc<RefCell<VecRecorder>> = Rc::new(RefCell::new(VecRecorder::new()));
        let report = run_workload_traced(
            &small(ProtocolKind::Hier, 5, 9),
            Some(Rc::clone(&rec) as Rc<RefCell<dyn Recorder>>),
        );
        let records = rec.borrow();
        let sends = records
            .records
            .iter()
            .filter(|r| r.event.send_class().is_some())
            .count() as u64;
        assert_eq!(sends, report.messages);
        // Virtual-time stamps are monotone within the single-threaded sim.
        assert!(records.records.windows(2).all(|w| w[0].at <= w[1].at));
    }

    #[test]
    fn upgrades_happen_under_paper_mix() {
        let mut p = small(ProtocolKind::Hier, 4, 11);
        p.ops_per_node = 60;
        let (report, errors) = audit_hier_run(&p);
        assert!(errors.is_empty(), "{errors:?}");
        assert!(report.upgrades > 0, "4% of ops upgrade: {report:?}");
    }
}
