//! Operation planning: drawing a table-mode from the mix and expanding it
//! into the per-protocol lock acquisition sequence.

use crate::params::{ModeMix, ProtocolKind};
use crate::LockId;
use dlm_core::Mode;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// The application-level operation class, named by its table-level mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum OpKind {
    /// Read one entry (table IR + entry R).
    ReadEntry,
    /// Read the whole table (table R).
    ReadTable,
    /// Read-modify-write the whole table (table U, upgraded to W mid-way).
    UpgradeTable,
    /// Write one entry (table IW + entry W).
    WriteEntry,
    /// Write the whole table (table W).
    WriteTable,
}

impl OpKind {
    /// Draw an operation from the mix.
    pub fn sample<R: Rng>(mix: &ModeMix, rng: &mut R) -> OpKind {
        let roll = rng.gen_range(0u32..100);
        let ir = mix.ir as u32;
        let r = ir + mix.r as u32;
        let u = r + mix.u as u32;
        let iw = u + mix.iw as u32;
        if roll < ir {
            OpKind::ReadEntry
        } else if roll < r {
            OpKind::ReadTable
        } else if roll < u {
            OpKind::UpgradeTable
        } else if roll < iw {
            OpKind::WriteEntry
        } else {
            OpKind::WriteTable
        }
    }

    /// The table-level mode of this operation in the hierarchical protocol.
    pub fn table_mode(self) -> Mode {
        match self {
            OpKind::ReadEntry => Mode::IntentRead,
            OpKind::ReadTable => Mode::Read,
            OpKind::UpgradeTable => Mode::Upgrade,
            OpKind::WriteEntry => Mode::IntentWrite,
            OpKind::WriteTable => Mode::Write,
        }
    }

    /// True for operations whose table mode is an intent mode (they also
    /// lock one entry underneath).
    pub fn is_intent(self) -> bool {
        matches!(self, OpKind::ReadEntry | OpKind::WriteEntry)
    }

    /// Dense index (mix order: IR, R, U, IW, W) for per-kind arrays.
    pub fn index(self) -> usize {
        match self {
            OpKind::ReadEntry => 0,
            OpKind::ReadTable => 1,
            OpKind::UpgradeTable => 2,
            OpKind::WriteEntry => 3,
            OpKind::WriteTable => 4,
        }
    }

    /// All operation kinds in mix order.
    pub const ALL: [OpKind; 5] = [
        OpKind::ReadEntry,
        OpKind::ReadTable,
        OpKind::UpgradeTable,
        OpKind::WriteEntry,
        OpKind::WriteTable,
    ];

    /// Short label for report rows.
    pub fn label(self) -> &'static str {
        match self {
            OpKind::ReadEntry => "read-entry(IR)",
            OpKind::ReadTable => "read-table(R)",
            OpKind::UpgradeTable => "upgrade-table(U)",
            OpKind::WriteEntry => "write-entry(IW)",
            OpKind::WriteTable => "write-table(W)",
        }
    }
}

/// A fully expanded operation: the ordered list of lock acquisitions, and
/// whether a Rule 7 upgrade happens mid-critical-section.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct OpPlan {
    /// The drawn operation class.
    pub kind: OpKind,
    /// Locks to acquire, in order, with the hierarchical mode. The Naimi
    /// drivers ignore the mode (every acquisition is exclusive).
    pub locks: Vec<(LockId, Mode)>,
    /// Perform an atomic U→W upgrade on the table lock mid-CS
    /// (hierarchical protocol only).
    pub upgrade: bool,
}

impl OpPlan {
    /// Expand `kind` for `protocol`, touching `entry` (0-based) where the
    /// operation is entry-scoped. `entries` is the table size (for
    /// same-work whole-table expansion).
    pub fn expand(kind: OpKind, protocol: ProtocolKind, entry: u32, entries: u32) -> OpPlan {
        let locks = match protocol {
            ProtocolKind::Hier => match kind {
                // Intent ops: coarse intent + one fine lock (the paper's
                // hierarchical pattern — the intent reacquisition is usually
                // message-free under Rule 2).
                OpKind::ReadEntry => vec![
                    (LockId::TABLE, Mode::IntentRead),
                    (LockId::entry(entry), Mode::Read),
                ],
                OpKind::WriteEntry => vec![
                    (LockId::TABLE, Mode::IntentWrite),
                    (LockId::entry(entry), Mode::Write),
                ],
                // Whole-table ops: a single coarse lock.
                OpKind::ReadTable => vec![(LockId::TABLE, Mode::Read)],
                OpKind::UpgradeTable => vec![(LockId::TABLE, Mode::Upgrade)],
                OpKind::WriteTable => vec![(LockId::TABLE, Mode::Write)],
            },
            ProtocolKind::NaimiPure => match kind {
                // Entry ops need only the entry lock (§4.1: intent-mode table
                // locking has no counterpart in Naimi).
                OpKind::ReadEntry | OpKind::WriteEntry => {
                    vec![(LockId::entry(entry), Mode::Write)]
                }
                // Whole-table ops: a single lock — functionally weaker, the
                // paper's "pure" variant.
                OpKind::ReadTable | OpKind::UpgradeTable | OpKind::WriteTable => {
                    vec![(LockId::TABLE, Mode::Write)]
                }
            },
            ProtocolKind::NaimiSameWork => match kind {
                OpKind::ReadEntry | OpKind::WriteEntry => {
                    vec![(LockId::entry(entry), Mode::Write)]
                }
                // Whole-table ops lock every entry, in fixed index order —
                // the deadlock-avoidance total order the paper charges to
                // Naimi's account in Fig. 8.
                OpKind::ReadTable | OpKind::UpgradeTable | OpKind::WriteTable => (0..entries)
                    .map(|e| (LockId::entry(e), Mode::Write))
                    .collect(),
            },
        };
        OpPlan {
            kind,
            locks,
            upgrade: protocol == ProtocolKind::Hier && kind == OpKind::UpgradeTable,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn sample_respects_mix_roughly() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mix = ModeMix::paper();
        let mut counts = [0u32; 5];
        let n = 100_000;
        for _ in 0..n {
            match OpKind::sample(&mix, &mut rng) {
                OpKind::ReadEntry => counts[0] += 1,
                OpKind::ReadTable => counts[1] += 1,
                OpKind::UpgradeTable => counts[2] += 1,
                OpKind::WriteEntry => counts[3] += 1,
                OpKind::WriteTable => counts[4] += 1,
            }
        }
        let pct = |c: u32| c as f64 * 100.0 / n as f64;
        assert!((pct(counts[0]) - 80.0).abs() < 1.0);
        assert!((pct(counts[1]) - 10.0).abs() < 0.5);
        assert!((pct(counts[2]) - 4.0).abs() < 0.5);
        assert!((pct(counts[3]) - 5.0).abs() < 0.5);
        assert!((pct(counts[4]) - 1.0).abs() < 0.3);
    }

    #[test]
    fn degenerate_mix_always_samples_that_op() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mix = ModeMix {
            ir: 0,
            r: 0,
            u: 0,
            iw: 0,
            w: 100,
        };
        for _ in 0..100 {
            assert_eq!(OpKind::sample(&mix, &mut rng), OpKind::WriteTable);
        }
    }

    #[test]
    fn hier_expansion_uses_hierarchy() {
        let p = OpPlan::expand(OpKind::ReadEntry, ProtocolKind::Hier, 3, 8);
        assert_eq!(
            p.locks,
            vec![
                (LockId::TABLE, Mode::IntentRead),
                (LockId::entry(3), Mode::Read)
            ]
        );
        assert!(!p.upgrade);
        let p = OpPlan::expand(OpKind::UpgradeTable, ProtocolKind::Hier, 0, 8);
        assert_eq!(p.locks, vec![(LockId::TABLE, Mode::Upgrade)]);
        assert!(p.upgrade);
    }

    #[test]
    fn same_work_expands_whole_table() {
        let p = OpPlan::expand(OpKind::WriteTable, ProtocolKind::NaimiSameWork, 5, 4);
        assert_eq!(p.locks.len(), 4);
        // Fixed index order: deadlock-free total order.
        let ids: Vec<u32> = p.locks.iter().map(|(l, _)| l.0).collect();
        assert_eq!(ids, vec![1, 2, 3, 4]);
        assert!(!p.upgrade);
    }

    #[test]
    fn pure_locks_exactly_one_object() {
        for kind in [
            OpKind::ReadEntry,
            OpKind::ReadTable,
            OpKind::UpgradeTable,
            OpKind::WriteEntry,
            OpKind::WriteTable,
        ] {
            let p = OpPlan::expand(kind, ProtocolKind::NaimiPure, 2, 8);
            assert_eq!(p.locks.len(), 1, "{kind:?}");
        }
    }

    #[test]
    fn table_modes_match_kinds() {
        assert_eq!(OpKind::ReadEntry.table_mode(), Mode::IntentRead);
        assert_eq!(OpKind::WriteTable.table_mode(), Mode::Write);
        assert!(OpKind::ReadEntry.is_intent());
        assert!(OpKind::WriteEntry.is_intent());
        assert!(!OpKind::ReadTable.is_intent());
    }
}
