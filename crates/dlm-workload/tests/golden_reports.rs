//! Golden-value differential tests for the simulator's event engine.
//!
//! The constants below are full `WorkloadReport` fingerprints captured from
//! the engine **before** the inline-payload event-queue rewrite (the
//! `BinaryHeap<Reverse<(Micros, u64)>>` + side `HashMap` design). The
//! current engine must reproduce them bit-for-bit — means are compared via
//! `f64::to_bits`, not with a tolerance — across both protocols, both
//! cluster configurations, and a sweep of seeds, proving the queue swap
//! changed *how* events are stored, not *which order* they dispatch in.
//!
//! If a deliberate protocol or workload change invalidates these, recapture
//! with the snippet in `fingerprint`'s doc comment.

use dlm_workload::{run_workload, ProtocolKind, WorkloadParams, WorkloadReport};

/// The observable surface of a report, flattened to exactly-comparable
/// integers: counts, virtual end time, latency means (as IEEE-754 bit
/// patterns), maxima, and the trace/queue/freeze tallies.
/// Order: messages, requests, ops_completed, upgrades, end_time,
/// request_latency mean bits, request_latency max, op_latency mean bits,
/// op_latency max, rule_counters total, trace_sends total, queue_depth
/// count, freeze_spans count.
type Fingerprint = [u64; 13];

/// Capture a report's fingerprint. To regenerate the golden constants after
/// an intentional behavior change, print
/// `println!("{:?}", fingerprint(&run_workload(&params)));` for each case.
fn fingerprint(r: &WorkloadReport) -> Fingerprint {
    [
        r.messages,
        r.requests,
        r.ops_completed,
        r.upgrades,
        r.end_time,
        r.request_latency.mean().to_bits(),
        r.request_latency.max(),
        r.op_latency.mean().to_bits(),
        r.op_latency.max(),
        r.rule_counters.total(),
        r.trace_sends.total(),
        r.queue_depth.count(),
        r.freeze_spans.count(),
    ]
}

fn check(params: WorkloadParams, golden: &[(u64, Fingerprint)]) {
    for &(seed, expected) in golden {
        let mut p = params;
        p.seed = seed;
        let report = run_workload(&p);
        assert!(report.complete(), "golden run must complete (seed {seed})");
        assert_eq!(
            fingerprint(&report),
            expected,
            "report drifted from the pre-rewrite engine: n={} proto={:?} seed={seed}",
            p.nodes,
            p.protocol,
        );
    }
}

#[test]
fn hier_linux_cluster_matches_pre_rewrite_engine() {
    let mut params = WorkloadParams::linux_cluster(8, ProtocolKind::Hier);
    params.ops_per_node = 12;
    check(
        params,
        &[
            (
                7919,
                [
                    418,
                    182,
                    96,
                    0,
                    10547026,
                    0x41106147a05a05a0,
                    1474967,
                    0x411f0dc275555555,
                    1474967,
                    802,
                    418,
                    10,
                    0,
                ],
            ),
            (
                15838,
                [
                    457,
                    180,
                    96,
                    0,
                    12345196,
                    0x4116320282d82d83,
                    2138780,
                    0x4124cee25aaaaaab,
                    2138780,
                    890,
                    457,
                    24,
                    3,
                ],
            ),
            (
                23757,
                [
                    400,
                    181,
                    96,
                    0,
                    10172781,
                    0x410d871c6b7de0e2,
                    983459,
                    0x411bd60975555555,
                    983772,
                    759,
                    400,
                    7,
                    0,
                ],
            ),
            (
                31676,
                [
                    414,
                    179,
                    96,
                    0,
                    10377377,
                    0x410f160107269d52,
                    1010935,
                    0x411cfb2e4aaaaaab,
                    1327673,
                    811,
                    414,
                    15,
                    5,
                ],
            ),
        ],
    );
}

#[test]
fn hier_ibm_sp_matches_pre_rewrite_engine() {
    let mut params = WorkloadParams::ibm_sp(16, 5);
    params.ops_per_node = 12;
    check(
        params,
        &[
            (
                104729,
                [
                    1250,
                    358,
                    192,
                    0,
                    1309778,
                    0x4091d266f8d962ae,
                    36623,
                    0x40a09d7d55555555,
                    36623,
                    2197,
                    1250,
                    23,
                    4,
                ],
            ),
            (
                209458,
                [
                    1243,
                    356,
                    192,
                    0,
                    1224991,
                    0x407fd42e05c0b817,
                    16368,
                    0x408d820aaaaaaaab,
                    16368,
                    2190,
                    1243,
                    15,
                    2,
                ],
            ),
            (
                314187,
                [
                    1285,
                    354,
                    192,
                    0,
                    1223934,
                    0x40884a4850fe8dbd,
                    34481,
                    0x4096647aaaaaaaab,
                    34618,
                    2226,
                    1285,
                    14,
                    1,
                ],
            ),
        ],
    );
}

#[test]
fn naimi_same_work_matches_pre_rewrite_engine() {
    let mut params = WorkloadParams::linux_cluster(6, ProtocolKind::NaimiSameWork);
    params.ops_per_node = 10;
    check(
        params,
        &[
            (
                31,
                [
                    309,
                    130,
                    60,
                    0,
                    32706045,
                    0x41329f40295a95a9,
                    14710627,
                    0x41442c8582222222,
                    17570500,
                    0,
                    0,
                    0,
                    0,
                ],
            ),
            (
                62,
                [
                    298,
                    130,
                    60,
                    0,
                    33206965,
                    0x41322f766e46e46e,
                    9129251,
                    0x4143b36af7777777,
                    11435488,
                    0,
                    0,
                    0,
                    0,
                ],
            ),
        ],
    );
}

/// Same run, same seed, run twice → identical fingerprints. Catches any
/// hidden nondeterminism (iteration-order dependence, time-of-day leakage)
/// the golden constants alone would not, because it holds for *any* seed.
#[test]
fn repeated_runs_are_bit_identical_across_a_seed_sweep() {
    for seed in (0..10).map(|s| 0xFEED + s * 7919) {
        let mut params = WorkloadParams::linux_cluster(5, ProtocolKind::Hier);
        params.ops_per_node = 8;
        params.seed = seed;
        let a = fingerprint(&run_workload(&params));
        let b = fingerprint(&run_workload(&params));
        assert_eq!(a, b, "seed {seed} is not reproducible");
    }
}
