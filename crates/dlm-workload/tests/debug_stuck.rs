//! Diagnostic for the stuck-run scenario (kept as a regression test once
//! fixed; the dump only prints on failure).

use dlm_core::{NodeId, ProtocolConfig};
use dlm_sim::{LatencyModel, Sim, SimConfig, MICROS_PER_MS};
use dlm_workload::{AppActor, LockId, ModeMix, ProtocolKind, WorkloadParams};

#[test]
fn six_node_hier_run_is_live() {
    let params = WorkloadParams {
        nodes: 6,
        entries: 4,
        cs_mean: 2 * MICROS_PER_MS,
        idle_mean: 10 * MICROS_PER_MS,
        ops_per_node: 10,
        mix: ModeMix::paper(),
        protocol: ProtocolKind::Hier,
        hier_config: ProtocolConfig::paper(),
        latency: LatencyModel::uniform(MICROS_PER_MS),
        seed: 42,
        upgrade_u_ops: true,
        geo: None,
        hot_entry_percent: 0,
    };
    let actors: Vec<AppActor> = (0..params.nodes)
        .map(|i| AppActor::new(NodeId(i as u32), params))
        .collect();
    let mut sim = Sim::new(
        actors,
        SimConfig {
            latency: params.latency,
            seed: params.seed,
            ..Default::default()
        },
    );
    sim.run();
    let all_done = sim.actors().iter().all(|a| a.is_done());
    if !all_done {
        let mut dump = String::new();
        for lock in 0..=params.entries {
            let lock = LockId(lock);
            let any_pending = sim
                .actors()
                .iter()
                .any(|a| a.stack().hier(lock).unwrap().pending().is_some());
            if !any_pending {
                continue;
            }
            dump.push_str(&format!("== lock {lock} ==\n"));
            for a in sim.actors() {
                let n = a.stack().hier(lock).unwrap();
                dump.push_str(&format!(
                    "  {}: token={} parent={:?} owned={} held={} pending={:?}(upg={}) queue={:?} frozen={} copyset={:?}\n",
                    n.id(),
                    n.has_token(),
                    n.parent(),
                    n.owned(),
                    n.held(),
                    n.pending(),
                    n.pending_is_upgrade(),
                    n.queued().collect::<Vec<_>>(),
                    n.frozen(),
                    n.copyset(),
                ));
            }
        }
        panic!("run did not complete:\n{dump}");
    }
}
