//! Tests for the workload extensions: hot-entry skew and the two-site
//! (geo) topology.

use dlm_core::ProtocolConfig;
use dlm_sim::{LatencyModel, TwoSite, MICROS_PER_MS};
use dlm_workload::{audit_hier_run, run_workload, ModeMix, ProtocolKind, WorkloadParams};

fn base(protocol: ProtocolKind) -> WorkloadParams {
    WorkloadParams {
        nodes: 8,
        entries: 4,
        cs_mean: 2 * MICROS_PER_MS,
        idle_mean: 8 * MICROS_PER_MS,
        ops_per_node: 15,
        mix: ModeMix::paper(),
        protocol,
        hier_config: ProtocolConfig::paper(),
        latency: LatencyModel::uniform(MICROS_PER_MS),
        seed: 77,
        upgrade_u_ops: false,
        geo: None,
        hot_entry_percent: 0,
    }
}

#[test]
fn hot_skew_completes_and_audits_clean() {
    for hot in [0u8, 50, 100] {
        let mut params = base(ProtocolKind::Hier);
        params.hot_entry_percent = hot;
        let (report, errors) = audit_hier_run(&params);
        assert!(errors.is_empty(), "hot={hot}: {errors:?}");
        assert!(report.complete(), "hot={hot}");
    }
}

#[test]
fn full_skew_increases_naimi_contention() {
    let uniform = run_workload(&base(ProtocolKind::NaimiPure));
    let mut skewed_params = base(ProtocolKind::NaimiPure);
    skewed_params.hot_entry_percent = 100;
    let skewed = run_workload(&skewed_params);
    assert!(skewed.complete());
    assert!(
        skewed.op_latency.mean() > uniform.op_latency.mean(),
        "all ops on one exclusive entry must wait longer: {} vs {}",
        skewed.op_latency.mean(),
        uniform.op_latency.mean()
    );
}

#[test]
fn geo_topology_completes_and_audits_clean() {
    let mut params = base(ProtocolKind::Hier);
    params.geo = Some(TwoSite {
        site_a: 4,
        wan: LatencyModel::uniform(20 * MICROS_PER_MS),
    });
    let (report, errors) = audit_hier_run(&params);
    assert!(errors.is_empty(), "{errors:?}");
    assert!(report.complete());
}

#[test]
fn wan_latency_slows_cross_site_work() {
    let near = run_workload(&base(ProtocolKind::Hier));
    let mut far_params = base(ProtocolKind::Hier);
    far_params.geo = Some(TwoSite {
        site_a: 4,
        wan: LatencyModel::uniform(50 * MICROS_PER_MS),
    });
    let far = run_workload(&far_params);
    assert!(far.complete());
    assert!(
        far.end_time > near.end_time,
        "a 50x WAN must stretch the run: {} vs {}",
        far.end_time,
        near.end_time
    );
    assert!(far.op_latency.mean() > near.op_latency.mean());
}

#[test]
fn geo_is_deterministic_too() {
    let mk = || {
        let mut p = base(ProtocolKind::Hier);
        p.geo = Some(TwoSite {
            site_a: 4,
            wan: LatencyModel::uniform(10 * MICROS_PER_MS),
        });
        run_workload(&p)
    };
    let a = mk();
    let b = mk();
    assert_eq!(a.messages, b.messages);
    assert_eq!(a.end_time, b.end_time);
}
