//! Differential test for the zero-allocation plumbing: the `Vec`-returning
//! wrapper API and the `*_into` [`EffectBuf`] API must be observationally
//! identical. Two replicas of the same topology are driven through the same
//! random operation/delivery schedule — one per API, the `*_into` replica
//! reusing a single scratch buffer across every call — and every step's
//! effect stream plus every node's closing 128-bit structural fingerprint
//! must match bit for bit.

use dlm_core::{
    AcquireError, Effect, EffectBuf, Fingerprintable, HierNode, Mode, NodeId, NullObserver,
    ProtocolConfig, ReleaseError, UpgradeError,
};
use proptest::prelude::*;
use std::collections::VecDeque;

/// The paper's request-mode mix (§4).
fn paper_mode(w: u8) -> Mode {
    match w % 100 {
        0..=79 => Mode::IntentRead,
        80..=89 => Mode::Read,
        90..=93 => Mode::Upgrade,
        94..=98 => Mode::IntentWrite,
        _ => Mode::Write,
    }
}

#[derive(Debug, Clone)]
enum Step {
    Deliver(u8),
    Acquire(u8, u8),
    Release(u8),
    Upgrade(u8),
}

fn step_strategy() -> impl Strategy<Value = Step> {
    prop_oneof![
        4 => any::<u8>().prop_map(Step::Deliver),
        3 => (any::<u8>(), any::<u8>()).prop_map(|(n, m)| Step::Acquire(n, m)),
        3 => any::<u8>().prop_map(Step::Release),
        1 => any::<u8>().prop_map(Step::Upgrade),
    ]
}

/// Parent links for the three exercised topologies over `n` nodes; node 0 is
/// always the initial token node.
fn parents(topology: usize, n: usize) -> Vec<Option<u32>> {
    (0..n as u32)
        .map(|i| match topology {
            // Star: everyone under the token.
            0 => (i != 0).then_some(0),
            // Chain: i under i-1.
            1 => i.checked_sub(1),
            // Binary tree: i under (i-1)/2.
            _ => i.checked_sub(1).map(|p| p / 2),
        })
        .collect()
}

/// One replica: the protocol nodes plus an in-order message queue. The
/// `Vec`-API and `EffectBuf`-API replicas share this state shape so the only
/// varying ingredient is which entry points execute the schedule.
struct World {
    nodes: Vec<HierNode>,
    inbox: VecDeque<(NodeId, NodeId, dlm_core::Message)>,
}

impl World {
    fn new(topology: usize, n: usize) -> Self {
        let config = ProtocolConfig::paper();
        let nodes = parents(topology, n)
            .iter()
            .enumerate()
            .map(|(i, p)| match p {
                Some(parent) => HierNode::new(NodeId(i as u32), NodeId(*parent), config),
                None => HierNode::with_token(NodeId(i as u32), config),
            })
            .collect();
        World {
            nodes,
            inbox: VecDeque::new(),
        }
    }

    fn absorb(&mut self, from: NodeId, effects: &[Effect]) {
        for effect in effects {
            if let Effect::Send { to, message } = effect {
                self.inbox.push_back((from, *to, message.clone()));
            }
        }
    }
}

type StepOutcome = (
    Vec<Effect>,
    Option<Result<(), AcquireError>>,
    Option<Result<(), ReleaseError>>,
    Option<Result<(), UpgradeError>>,
);

/// Execute one schedule step in `world` through the Vec wrappers (`buf`
/// `None`) or through `*_into` with the shared scratch buffer, returning the
/// step's effect stream and entry-point verdicts for comparison.
fn execute(world: &mut World, step: &Step, mut buf: Option<&mut EffectBuf>) -> StepOutcome {
    let n = world.nodes.len() as u8;
    match *step {
        Step::Deliver(k) => {
            if world.inbox.is_empty() {
                return (Vec::new(), None, None, None);
            }
            let pos = k as usize % world.inbox.len();
            let (from, to, message) = world.inbox.remove(pos).expect("position in range");
            let node = &mut world.nodes[to.0 as usize];
            let effects = match buf.as_deref_mut() {
                None => node.on_message(from, message),
                Some(b) => {
                    node.on_message_into(from, message, b, &mut NullObserver);
                    b.take_vec()
                }
            };
            world.absorb(to, &effects);
            (effects, None, None, None)
        }
        Step::Acquire(who, m) => {
            let id = NodeId((who % n) as u32);
            let mode = paper_mode(m);
            let node = &mut world.nodes[id.0 as usize];
            let (effects, result) = match buf.as_deref_mut() {
                None => match node.on_acquire(mode) {
                    Ok(eff) => (eff, Ok(())),
                    Err(e) => (Vec::new(), Err(e)),
                },
                Some(b) => {
                    let r = node.on_acquire_into(mode, 0, b, &mut NullObserver);
                    (b.take_vec(), r)
                }
            };
            world.absorb(id, &effects);
            (effects, Some(result), None, None)
        }
        Step::Release(who) => {
            let id = NodeId((who % n) as u32);
            let node = &mut world.nodes[id.0 as usize];
            let (effects, result) = match buf.as_deref_mut() {
                None => match node.on_release() {
                    Ok(eff) => (eff, Ok(())),
                    Err(e) => (Vec::new(), Err(e)),
                },
                Some(b) => {
                    let r = node.on_release_into(b, &mut NullObserver);
                    (b.take_vec(), r)
                }
            };
            world.absorb(id, &effects);
            (effects, None, Some(result), None)
        }
        Step::Upgrade(who) => {
            let id = NodeId((who % n) as u32);
            let node = &mut world.nodes[id.0 as usize];
            let (effects, result) = match buf {
                None => match node.on_upgrade() {
                    Ok(eff) => (eff, Ok(())),
                    Err(e) => (Vec::new(), Err(e)),
                },
                Some(b) => {
                    let r = node.on_upgrade_into(b, &mut NullObserver);
                    (b.take_vec(), r)
                }
            };
            world.absorb(id, &effects);
            (effects, None, None, Some(result))
        }
    }
}

fn run_differential(topology: usize, n: usize, steps: &[Step]) {
    let mut vec_world = World::new(topology, n);
    let mut buf_world = World::new(topology, n);
    // ONE buffer reused across the whole schedule: stale-state leakage from
    // any earlier call would corrupt a later step's stream and be caught.
    let mut scratch = EffectBuf::new();
    for (i, step) in steps.iter().enumerate() {
        let vec_out = execute(&mut vec_world, step, None);
        let buf_out = execute(&mut buf_world, step, Some(&mut scratch));
        assert_eq!(vec_out, buf_out, "step {i} diverged on {step:?}");
    }
    for (a, b) in vec_world.nodes.iter().zip(&buf_world.nodes) {
        assert_eq!(
            a.fingerprint(),
            b.fingerprint(),
            "closing fingerprints diverged at node {:?}",
            a.id()
        );
    }
    assert_eq!(
        vec_world.inbox, buf_world.inbox,
        "in-flight traffic diverged"
    );
}

fn cases(default_cases: u32) -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default_cases)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(cases(96)))]

    /// Vec API ≡ EffectBuf API on star, chain, and binary-tree topologies.
    #[test]
    fn effectbuf_api_matches_vec_api(
        topology in 0usize..3,
        n in 2usize..7,
        steps in proptest::collection::vec(step_strategy(), 1..120),
    ) {
        run_differential(topology, n, &steps);
    }
}

/// A deterministic smoke of each topology so a plain `cargo test` without
/// proptest shrinking still exercises all three shapes.
#[test]
fn all_topologies_smoke() {
    let steps: Vec<Step> = (0..60)
        .map(|i| match i % 4 {
            0 => Step::Acquire(i, i.wrapping_mul(37)),
            1 => Step::Deliver(i.wrapping_mul(13)),
            2 => Step::Release(i),
            _ => Step::Deliver(i),
        })
        .collect();
    for topology in 0..3 {
        run_differential(topology, 5, &steps);
    }
}
