//! Tests of the priority extension (the authors' prior-work lineage,
//! §2 [15][16]): higher-priority requests overtake lower-priority queued
//! ones at the token; FIFO holds within a priority level; priority 0
//! reproduces the paper's protocol exactly.

use dlm_core::testkit::LockStepNet;
use dlm_core::{Mode, NodeId};

/// Build a net where node 0 (token) holds W so that every later request
/// queues; then release and observe the service order.
fn queue_three_writers(priorities: [u8; 3]) -> Vec<NodeId> {
    let mut net = LockStepNet::star(4);
    net.acquire(0, Mode::Write);
    for (i, &prio) in priorities.iter().enumerate() {
        let id = (i + 1) as u32;
        let effects = {
            // Issue with explicit priority through the node API.
            let node = unsafe_node_hack(&mut net, id);
            node.on_acquire_with_priority(Mode::Write, prio).unwrap()
        };
        absorb(&mut net, id, effects);
        net.deliver_all();
    }
    net.release(0);
    // Serve all three, releasing as each is granted.
    for _ in 0..8 {
        net.deliver_all();
        for id in 1..4 {
            if net.node(id).held() == Mode::Write {
                net.release(id);
            }
        }
        net.deliver_all();
        if (1..4).all(|id| net.node(id).pending().is_none()) {
            break;
        }
    }
    let order: Vec<NodeId> = net
        .granted
        .iter()
        .filter(|(n, m)| *m == Mode::Write && n.0 != 0)
        .map(|&(n, _)| n)
        .collect();
    let errors = net.audit_now(true);
    assert!(errors.is_empty(), "{errors:?}");
    order
}

// The testkit drives nodes through `acquire` (priority 0); reach the
// priority API through a thin helper that borrows the node mutably.
fn unsafe_node_hack(net: &mut LockStepNet, id: u32) -> &mut dlm_core::HierNode {
    net.node_mut(id)
}

fn absorb(net: &mut LockStepNet, from: u32, effects: Vec<dlm_core::Effect>) {
    net.inject_effects(NodeId(from), effects);
}

#[test]
fn equal_priorities_serve_fifo() {
    let order = queue_three_writers([0, 0, 0]);
    assert_eq!(order, vec![NodeId(1), NodeId(2), NodeId(3)]);
}

#[test]
fn higher_priority_overtakes() {
    let order = queue_three_writers([0, 0, 9]);
    assert_eq!(
        order,
        vec![NodeId(3), NodeId(1), NodeId(2)],
        "the priority-9 writer jumps the two priority-0 writers"
    );
}

#[test]
fn fifo_within_priority_levels() {
    let order = queue_three_writers([5, 9, 5]);
    assert_eq!(
        order,
        vec![NodeId(2), NodeId(1), NodeId(3)],
        "9 first, then the two 5s in arrival order"
    );
}
